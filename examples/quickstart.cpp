// Quickstart: create a database, capture synthetic audio/video into an
// interleaved BLOB with its interpretation, register the media objects,
// query a descriptor, and "play" (simulate presentation of) the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "tbm.h"

using namespace tbm;

namespace {

#define DIE_IF(expr)                                              \
  do {                                                            \
    if (auto s = (expr); !s.ok()) {                               \
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

#define UNWRAP(var, expr)                                                  \
  auto var##_result = (expr);                                              \
  if (!var##_result.ok()) {                                                \
    std::fprintf(stderr, "error: %s\n",                                    \
                 var##_result.status().ToString().c_str());                \
    return 1;                                                              \
  }                                                                        \
  auto& var = *var##_result

}  // namespace

int main() {
  // 1. An in-memory database (use MediaDatabase::Open(dir) to persist).
  std::unique_ptr<MediaDatabase> db = MediaDatabase::CreateInMemory();

  // 2. "Capture hardware": 2 seconds of synthetic PAL-style video plus
  //    a stereo CD-quality tone.
  std::vector<Image> frames = videogen::Clip(320, 240, 50, /*scene_id=*/42);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 2.1);

  // 3. Digitize into one interleaved BLOB. The interpretation — which
  //    byte ranges are which elements of which media objects — is built
  //    alongside and permanently associated with the BLOB.
  AvCaptureConfig config;
  config.video_quality = "VHS quality";  // Descriptive quality factor.
  UNWRAP(capture,
         CaptureInterleavedAv(db->blob_store(), frames, audio, config));
  std::printf("captured BLOB %llu: raw video %s -> encoded %s\n",
              (unsigned long long)capture.blob,
              HumanBytes(capture.raw_video_bytes).c_str(),
              HumanBytes(capture.encoded_video_bytes).c_str());

  // 4. Register in the catalog.
  UNWRAP(interp_id, db->AddInterpretation("clip_interp",
                                          capture.interpretation));
  UNWRAP(video_id, db->AddMediaObject("clip_video", interp_id, "video1"));
  UNWRAP(audio_id, db->AddMediaObject("clip_audio", interp_id, "audio1"));

  // 5. Inspect the video's media descriptor and stream category.
  UNWRAP(video_stream, db->MaterializeStream(video_id));
  std::printf("\n%s\n", video_stream.descriptor().ToString("clip_video").c_str());
  std::printf("category: %s\n", Classify(video_stream).ToString().c_str());
  std::printf("span: %lld frames, %.2f s, mean rate %s\n",
              (long long)video_stream.size(),
              video_stream.DurationSeconds().ToDouble(),
              HumanRate(video_stream.MeanDataRate()).c_str());

  // 6. A structural query: frames [10, 20) only — no full-BLOB read.
  UNWRAP(span, db->MaterializeStreamSpan(video_id, TickSpan{10, 10}));
  std::printf("\nduration query: materialized %zu of %zu elements\n",
              span.size(), video_stream.size());

  // 7. "Play": simulate synchronized presentation of both streams and
  //    report timing (this is what a BLOB without interpretation cannot
  //    do — it has no notion of deadlines).
  UNWRAP(audio_stream, db->MaterializeStream(audio_id));
  PlaybackConfig playback;
  playback.seconds_per_megabyte = 0.01;
  playback.buffer_delay_ms = 5.0;
  UNWRAP(report, SimulatePlayback({&video_stream, &audio_stream}, playback));
  std::printf(
      "play: %lld elements, %lld deadline misses, max A/V skew %.1f us\n",
      (long long)report.total_elements, (long long)report.total_misses,
      report.max_sync_skew_us);

  std::printf("\nquickstart OK\n");
  return 0;
}

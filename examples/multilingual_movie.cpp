// The paper's introduction scenario: "consider a digital movie with
// audio tracks in different languages. If the movie is represented
// structurally, rather than as a long uninterpreted byte sequence, it
// is possible to issue queries which select a specific sound track, or
// select a specific duration, or perhaps retrieve frames at a specific
// visual fidelity."
#include <cstdio>

#include "tbm.h"

using namespace tbm;

namespace {

#define UNWRAP(var, expr)                                                  \
  auto var##_result = (expr);                                              \
  if (!var##_result.ok()) {                                                \
    std::fprintf(stderr, "error: %s\n",                                    \
                 var##_result.status().ToString().c_str());                \
    return 1;                                                              \
  }                                                                        \
  auto& var = *var##_result

constexpr int kW = 320, kH = 240;
constexpr int64_t kFrames = 75;  // 3 seconds at 25 fps.

}  // namespace

int main() {
  std::unique_ptr<MediaDatabase> db = MediaDatabase::CreateInMemory();

  // --- Ingest one movie with three language tracks, all interleaved in
  // --- a single BLOB frame-by-frame.
  UNWRAP(session, CaptureSession::Begin(db->blob_store()));

  MediaDescriptor video_desc;
  video_desc.type_name = "video/tjpeg";
  video_desc.kind = MediaKind::kVideo;
  video_desc.attrs.SetRational("frame rate", Rational(25));
  video_desc.attrs.SetInt("frame width", kW);
  video_desc.attrs.SetInt("frame height", kH);
  video_desc.attrs.SetInt("frame depth", 24);
  video_desc.attrs.SetString("color model", "RGB");
  video_desc.attrs.SetString("encoding", "YUV 4:2:0, TJPEG");
  video_desc.attrs.SetString("quality factor", "VHS quality");
  UNWRAP(video_handle,
         session.DeclareObject("video", video_desc, TimeSystem(25)));

  const char* languages[] = {"English", "German", "French"};
  MediaDescriptor audio_desc;
  audio_desc.type_name = "audio/pcm-block";
  audio_desc.kind = MediaKind::kAudio;
  audio_desc.attrs.SetInt("sample rate", 22050);
  audio_desc.attrs.SetInt("sample size", 16);
  audio_desc.attrs.SetInt("number of channels", 1);
  audio_desc.attrs.SetString("encoding", "PCM");
  size_t track_handles[3];
  AudioBuffer tracks[3];
  for (int t = 0; t < 3; ++t) {
    UNWRAP(handle,
           session.DeclareObject(std::string("audio_") + languages[t],
                                 audio_desc, TimeSystem(22050)));
    track_handles[t] = handle;
    tracks[t] = audiogen::Narration(22050, 1, kFrames / 25.0 + 0.1,
                                    1000 + t);
  }

  for (int64_t f = 0; f < kFrames; ++f) {
    Image frame = videogen::Frame(kW, kH, f, 7);
    UNWRAP(encoded, TjpegEncode(frame, 50));
    if (auto s = session.CaptureContiguous(video_handle, encoded, 1);
        !s.ok()) {
      std::fprintf(stderr, "capture: %s\n", s.ToString().c_str());
      return 1;
    }
    // 882 samples of each language track follow the frame.
    const int64_t a0 = f * 22050 / 25, a1 = (f + 1) * 22050 / 25;
    for (int t = 0; t < 3; ++t) {
      Bytes block((a1 - a0) * 2);
      for (int64_t i = 0; i < a1 - a0; ++i) {
        uint16_t u = static_cast<uint16_t>(tracks[t].samples[a0 + i]);
        block[2 * i] = static_cast<uint8_t>(u);
        block[2 * i + 1] = static_cast<uint8_t>(u >> 8);
      }
      if (auto s = session.CaptureContiguous(track_handles[t], block,
                                             a1 - a0);
          !s.ok()) {
        std::fprintf(stderr, "capture: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  UNWRAP(interp, session.Finish());
  UNWRAP(blob_size, db->blob_store()->Size(interp.blob()));
  std::printf("movie BLOB: %s holding 1 video + 3 audio tracks\n",
              HumanBytes(blob_size).c_str());

  UNWRAP(interp_id, db->AddInterpretation("movie_interp", interp));
  UNWRAP(video_id, db->AddMediaObject("movie_video", interp_id, "video"));
  for (int t = 0; t < 3; ++t) {
    AttrMap attrs;
    attrs.SetString("language", languages[t]);
    UNWRAP(track_id,
           db->AddMediaObject(std::string("movie_audio_") + languages[t],
                              interp_id, std::string("audio_") + languages[t],
                              attrs));
    (void)track_id;
  }
  AttrMap movie_attrs;
  movie_attrs.SetString("title", "Der Film");
  movie_attrs.SetString("director", "S. Gibbs");
  UNWRAP(movie, db->AddEntity("movie", movie_attrs));
  if (auto s = db->SetMediaAttr(movie, "content", video_id); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- Query 1: select a specific sound track --------------------------------
  std::printf("\nQ1: select the German sound track\n");
  auto hits = db->SelectByAttr("language", AttrValue(std::string("German")));
  for (ObjectId id : hits) {
    UNWRAP(entry, db->Get(id));
    UNWRAP(stream, db->MaterializeStream(id));
    std::printf("  -> %s: %zu elements, %.2f s, %s\n", entry->name.c_str(),
                stream.size(), stream.DurationSeconds().ToDouble(),
                HumanBytes(stream.TotalBytes()).c_str());
  }

  // --- Query 2: select a specific duration -----------------------------------
  std::printf("\nQ2: select seconds [1.0, 2.0) of the video\n");
  UNWRAP(span, db->MaterializeStreamSpan(video_id, TickSpan{25, 25}));
  std::printf("  -> %zu frames materialized (of %lld), first start = %lld\n",
              span.size(), (long long)kFrames, (long long)span.at(0).start);

  // --- Query 3: retrieve frames at a specific visual fidelity ----------------
  std::printf("\nQ3: retrieve frames at reduced fidelity (keys only)\n");
  {
    // Store an interframe-coded rendition and read only its sync
    // (key) elements through the compact index.
    VideoValue rendition;
    rendition.frame_rate = Rational(25);
    rendition.frames = videogen::Clip(kW, kH, 24, 7);
    StoreOptions options;
    options.video_codec = "tmpeg";
    options.key_interval = 8;
    UNWRAP(scalable,
           StoreValue(db->blob_store(), rendition, "rendition", options));
    UNWRAP(object, scalable.FindObject("rendition"));
    CompactElementIndex index = CompactElementIndex::Build(*object);
    uint64_t key_bytes = 0;
    std::vector<TmpegFrame> keys;
    for (int64_t key : index.sync_elements()) {
      UNWRAP(element,
             scalable.ReadElement(*db->blob_store(), "rendition", key));
      key_bytes += element.data.size();
      UNWRAP(parsed, TmpegParseFrame(element.data));
      keys.push_back(std::move(parsed));
    }
    UNWRAP(decoded, TmpegDecodeKeysOnly(keys));
    std::printf(
        "  -> %zu key frames decoded, reading %s of %s (%.0f%% of bytes)\n",
        decoded.size(), HumanBytes(key_bytes).c_str(),
        HumanBytes(object->PayloadBytes()).c_str(),
        100.0 * key_bytes / object->PayloadBytes());
  }

  // --- Subtitles: timed text per language, burned in on demand ----------------
  std::printf("\nSubtitles: caption track + burn-in derivation\n");
  {
    CaptionTrack subtitles(TimeSystem(25));
    if (auto s = subtitles.Add(5, 30, "GUTEN TAG"); !s.ok()) return 1;
    if (auto s = subtitles.Add(45, 25, "AUF WIEDERSEHEN"); !s.ok()) return 1;
    UNWRAP(subtitle_stream, subtitles.ToTimedStream());
    UNWRAP(subtitle_interp,
           StoreValue(db->blob_store(), MediaValue(subtitle_stream),
                      "subtitles_de"));
    UNWRAP(subtitle_interp_id,
           db->AddInterpretation("subtitles_de_interp", subtitle_interp));
    UNWRAP(subtitle_id, db->AddMediaObject("subtitles_de", subtitle_interp_id,
                                           "subtitles_de"));
    AttrMap burn_params;
    burn_params.SetInt("scale", 2);
    UNWRAP(burned, db->AddDerivedObject("movie_subtitled", "caption burn-in",
                                        {video_id, subtitle_id}, burn_params));
    UNWRAP(burned_value, db->Materialize(burned));
    const VideoValue& subtitled = std::get<VideoValue>(burned_value);
    std::printf("  burned %zu frames; exporting a subtitled poster frame\n",
                subtitled.frames.size());
    // Export one subtitled frame for external viewing.
    if (auto s = WritePnm(subtitled.frames[10], "/tmp/movie_subtitled.ppm");
        s.ok()) {
      std::printf("  wrote /tmp/movie_subtitled.ppm\n");
    }
  }

  // --- Indexed queries ---------------------------------------------------------
  if (auto s = db->CreateAttrIndex("language"); !s.ok()) return 1;
  auto indexed = db->SelectByAttr("language", AttrValue(std::string("French")));
  std::printf("\nindexed language query: %zu hit(s)\n", indexed.size());

  // --- Entity-level query -----------------------------------------------------
  std::printf("\nQ4: the movie entity and its media-valued attribute\n");
  UNWRAP(content, db->GetMediaAttr(movie, "content"));
  UNWRAP(content_entry, db->Get(content));
  std::printf("  movie \"Der Film\" content -> %s\n",
              content_entry->name.c_str());

  std::printf("\nmultilingual_movie OK\n");
  return 0;
}

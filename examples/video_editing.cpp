// Non-destructive video editing session (paper §4.2): build an edited
// program from two source clips using derivation objects only — cuts, a
// fade transition, concatenation — show the storage accounting, then
// expand the final cut into a stored non-derived object.
#include <cstdio>

#include "tbm.h"

using namespace tbm;

namespace {

#define UNWRAP(var, expr)                                                  \
  auto var##_result = (expr);                                              \
  if (!var##_result.ok()) {                                                \
    std::fprintf(stderr, "error: %s\n",                                    \
                 var##_result.status().ToString().c_str());                \
    return 1;                                                              \
  }                                                                        \
  auto& var = *var##_result

// Ingests a synthetic clip as a TJPEG-encoded media object.
Result<ObjectId> Ingest(MediaDatabase* db, const std::string& name,
                        uint32_t scene, int64_t frames) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(320, 240, frames, scene);
  StoreOptions options;
  options.video_codec = "tjpeg";
  options.quality_factor = "VHS quality";
  auto interp = StoreValue(db->blob_store(), video, name, options);
  if (!interp.ok()) return interp.status();
  auto interp_id = db->AddInterpretation(name + "_interp", *interp);
  if (!interp_id.ok()) return interp_id.status();
  return db->AddMediaObject(name, *interp_id, name);
}

}  // namespace

int main() {
  std::unique_ptr<MediaDatabase> db = MediaDatabase::CreateInMemory();

  // Raw material: two 4-second shots.
  UNWRAP(shot_a, Ingest(db.get(), "shot_a", 111, 100));
  UNWRAP(shot_b, Ingest(db.get(), "shot_b", 222, 100));
  std::printf("ingested shot_a and shot_b (100 frames each)\n");

  // --- The edit, as derivation objects (nothing is copied) -----------------
  // cut1 = shot_a[10..60), cut2 = shot_b[20..70),
  // program = cut1 fades into cut2 over 12 frames.
  AttrMap cut1_params;
  cut1_params.SetInt("start frame", 10);
  cut1_params.SetInt("frame count", 50);
  UNWRAP(cut1, db->AddDerivedObject("cut1", "video edit", {shot_a},
                                    cut1_params));
  AttrMap cut2_params;
  cut2_params.SetInt("start frame", 20);
  cut2_params.SetInt("frame count", 50);
  UNWRAP(cut2, db->AddDerivedObject("cut2", "video edit", {shot_b},
                                    cut2_params));
  AttrMap fade_params;
  fade_params.SetString("kind", "fade");
  fade_params.SetInt("duration frames", 12);
  UNWRAP(program, db->AddDerivedObject("program", "video transition",
                                       {cut1, cut2}, fade_params));

  // --- Storage accounting ---------------------------------------------------
  UNWRAP(record_bytes, db->DerivationRecordBytes(program));
  UNWRAP(value, db->Materialize(program));
  uint64_t expanded = ExpandedBytes(value);
  std::printf(
      "\nedit list (cut1 + cut2 + fade derivation records): %llu bytes\n"
      "expanded program:                                   %s\n"
      "ratio: %.0fx — the paper's \"many orders of magnitude\"\n",
      (unsigned long long)record_bytes, HumanBytes(expanded).c_str(),
      static_cast<double>(expanded) / record_bytes);

  const VideoValue& video = std::get<VideoValue>(value);
  std::printf("program: %zu frames (50 + 50 with 12 overlapped in the fade)\n",
              video.frames.size());

  // The sources are untouched — non-destructive means the original
  // material is preserved.
  UNWRAP(original, db->MaterializeStream(shot_a));
  std::printf("shot_a still has %zu elements (original preserved)\n",
              original.size());

  // --- Optional expansion ----------------------------------------------------
  // If expansion could not run in real time we would store the result;
  // ExpandAndStore does exactly that (re-encoded, new BLOB +
  // interpretation + media object).
  UNWRAP(stored, db->ExpandAndStore(program, "program_expanded"));
  UNWRAP(stored_stream, db->MaterializeStream(stored));
  std::printf(
      "\nexpanded & stored as 'program_expanded': %zu elements, %s encoded\n",
      stored_stream.size(), HumanBytes(stored_stream.TotalBytes()).c_str());

  // Editing decisions remain queryable: every step is a catalog object.
  std::printf("\ncatalog after the session:\n");
  for (ObjectId id : db->List()) {
    UNWRAP(entry, db->Get(id));
    std::printf("  [%llu] %-22s %s\n", (unsigned long long)id,
                entry->name.c_str(),
                std::string(CatalogKindToString(entry->kind)).c_str());
  }
  std::printf("\nvideo_editing OK\n");
  return 0;
}

// Music production pipeline: compose a MIDI piece (symbolic music,
// event-based stream), synthesize it to audio — the paper's canonical
// type-changing derivation — normalize it, mix it with narration, and
// assemble the result as a multimedia object.
#include <cstdio>

#include "tbm.h"

using namespace tbm;

namespace {

#define UNWRAP(var, expr)                                                  \
  auto var##_result = (expr);                                              \
  if (!var##_result.ok()) {                                                \
    std::fprintf(stderr, "error: %s\n",                                    \
                 var##_result.status().ToString().c_str());                \
    return 1;                                                              \
  }                                                                        \
  auto& var = *var##_result

// A short two-voice piece: arpeggiated chords over a bass line.
MidiSequence ComposePiece() {
  MidiSequence seq(480, 100.0);
  (void)seq.SetProgram(0, 4);  // Pluck for the arpeggio.
  (void)seq.SetProgram(1, 5);  // Organ for the bass.
  const int chords[4][3] = {
      {60, 64, 67}, {57, 60, 64}, {65, 69, 72}, {62, 65, 69}};
  for (int bar = 0; bar < 4; ++bar) {
    int64_t bar_start = bar * 1920;
    // Bass: whole note per bar.
    (void)seq.AddNote(bar_start, 1920, chords[bar][0] - 24, 90, 1);
    // Arpeggio: eighth notes cycling through the chord.
    for (int eighth = 0; eighth < 8; ++eighth) {
      (void)seq.AddNote(bar_start + eighth * 240, 220,
                        chords[bar][eighth % 3], 100, 0);
    }
  }
  return seq;
}

}  // namespace

int main() {
  std::unique_ptr<MediaDatabase> db = MediaDatabase::CreateInMemory();

  // 1. The music object: store the MIDI sequence itself (the symbolic
  //    representation — tiny) in the database.
  MidiSequence piece = ComposePiece();
  std::printf("composed %zu MIDI events, %.1f s at %g BPM\n",
              piece.events().size(), piece.DurationSeconds(),
              piece.tempo_bpm());
  UNWRAP(piece_stream, piece.ToEventStream());
  std::printf("as a timed stream: %s\n",
              Classify(piece_stream).ToString().c_str());

  UNWRAP(interp, StoreValue(db->blob_store(), MediaValue(piece), "piece"));
  UNWRAP(interp_id, db->AddInterpretation("piece_interp", interp));
  UNWRAP(music_id, db->AddMediaObject("piece", interp_id, "piece"));

  // 2. Synthesis: music -> audio (change of media type). Tempo and
  //    instrument are derivation parameters, exactly as in Table 1.
  AttrMap synth_params;
  synth_params.SetInt("sample rate", 44100);
  synth_params.SetInt("channels", 2);
  synth_params.SetDouble("gain", 0.6);
  UNWRAP(rendered, db->AddDerivedObject("piece_audio", "MIDI synthesis",
                                        {music_id}, synth_params));

  // 3. Normalize the rendered audio (change of content).
  AttrMap normalize_params;
  normalize_params.SetDouble("target peak", 0.95);
  UNWRAP(normalized, db->AddDerivedObject("piece_normalized",
                                          "audio normalization", {rendered},
                                          normalize_params));

  // 4. Narration track, resampled to match, mixed under the music.
  AudioBuffer narration_raw = audiogen::Narration(22050, 2, 6.0, 7);
  UNWRAP(narr_interp,
         StoreValue(db->blob_store(), MediaValue(narration_raw), "narration"));
  UNWRAP(narr_interp_id, db->AddInterpretation("narr_interp", narr_interp));
  UNWRAP(narr_id, db->AddMediaObject("narration", narr_interp_id,
                                     "narration"));
  AttrMap resample_params;
  resample_params.SetInt("target rate", 44100);
  UNWRAP(narr_cd, db->AddDerivedObject("narration_44k", "audio resample",
                                       {narr_id}, resample_params));
  AttrMap mix_params;
  mix_params.SetDouble("gain a", 0.8);
  mix_params.SetDouble("gain b", 1.0);
  mix_params.SetInt("offset frames", 44100);  // Narration enters at 1 s.
  UNWRAP(mixdown, db->AddDerivedObject("mixdown", "audio mix",
                                       {normalized, narr_cd}, mix_params));

  // 5. Evaluate the whole derivation chain.
  UNWRAP(value, db->Materialize(mixdown));
  const AudioBuffer& final_audio = std::get<AudioBuffer>(value);
  std::printf(
      "\nmixdown: %.2f s of %lld Hz stereo, peak %d, RMS %.0f\n",
      final_audio.DurationSeconds(), (long long)final_audio.sample_rate,
      PeakAmplitude(final_audio), RmsAmplitude(final_audio));

  // 6. Storage economics: symbolic music + derivation chain vs audio.
  UNWRAP(record, db->DerivationRecordBytes(mixdown));
  std::printf(
      "derivation chain records: %llu B; expanded audio: %s (%.0fx)\n",
      (unsigned long long)record,
      HumanBytes(ExpandedBytes(value)).c_str(),
      double(ExpandedBytes(value)) / record);

  // 7. The production steps remain queryable (paper: "by storing
  //    derivation objects it is possible to keep track of, and query,
  //    manipulations to media objects").
  std::printf("\nproduction history of 'mixdown':\n");
  ObjectId current = mixdown;
  for (int depth = 0; depth < 8; ++depth) {
    UNWRAP(entry, db->Get(current));
    if (entry->kind != CatalogKind::kDerivedObject) {
      std::printf("  %s (non-derived source)\n", entry->name.c_str());
      break;
    }
    std::printf("  %s <- %s\n", entry->name.c_str(), entry->op.c_str());
    current = entry->inputs.front();
  }

  std::printf("\nmusic_production OK\n");
  return 0;
}

// Animation pipeline: author a 2-D animation as movement events (a
// non-continuous timed stream — the paper's §3.3 example), render it to
// video via the animation->video type-changing derivation, synthesize a
// music bed from MIDI, and compose both into a multimedia object.
#include <cstdio>

#include "tbm.h"

using namespace tbm;

namespace {

#define UNWRAP(var, expr)                                                  \
  auto var##_result = (expr);                                              \
  if (!var##_result.ok()) {                                                \
    std::fprintf(stderr, "error: %s\n",                                    \
                 var##_result.status().ToString().c_str());                \
    return 1;                                                              \
  }                                                                        \
  auto& var = *var##_result

AnimationScene AuthorScene() {
  AnimationScene scene(320, 240, Rational(25));
  scene.SetBackground(12, 20, 36);

  SceneObject sun;
  sun.id = 1;
  sun.shape = ShapeKind::kCircle;
  sun.r = 250;
  sun.g = 200;
  sun.b = 60;
  sun.size = 24;
  sun.x = 40;
  sun.y = 200;
  (void)scene.AddObject(sun);

  SceneObject cart;
  cart.id = 2;
  cart.shape = ShapeKind::kRectangle;
  cart.r = 200;
  cart.g = 60;
  cart.b = 60;
  cart.size = 14;
  cart.x = 20;
  cart.y = 210;
  (void)scene.AddObject(cart);

  // The sun arcs up over 2 s, rests 1 s, sets over 2 s.
  (void)scene.AddMovement({0, 50, 1, 160, 40});
  (void)scene.AddMovement({75, 50, 1, 290, 200});
  // The cart rolls across, pauses mid-screen, rolls off.
  (void)scene.AddMovement({10, 40, 2, 150, 210});
  (void)scene.AddMovement({70, 45, 2, 310, 210});
  return scene;
}

MidiSequence ComposeBed() {
  MidiSequence seq(480, 120.0);
  (void)seq.SetProgram(0, 3);  // Triangle wave.
  const int notes[] = {60, 64, 67, 72, 67, 64, 60, 55};
  for (int i = 0; i < 10; ++i) {
    (void)seq.AddNote(i * 480, 440, notes[i % 8], 90);
  }
  return seq;
}

}  // namespace

int main() {
  std::unique_ptr<MediaDatabase> db = MediaDatabase::CreateInMemory();

  // 1. Store the symbolic animation (tiny) as a media object.
  AnimationScene scene = AuthorScene();
  UNWRAP(movement_stream, scene.ToTimedStream());
  std::printf("animation: %zu movement events, category: %s\n",
              movement_stream.size(),
              Classify(movement_stream).ToString().c_str());
  UNWRAP(scene_interp,
         StoreValue(db->blob_store(), MediaValue(scene), "scene"));
  UNWRAP(scene_interp_id, db->AddInterpretation("scene_interp", scene_interp));
  UNWRAP(scene_id, db->AddMediaObject("scene", scene_interp_id, "scene"));

  // 2. The rendering derivation: animation -> video.
  AttrMap render_params;
  render_params.SetInt("frame count", 125);  // 5 s at 25 fps.
  UNWRAP(rendered, db->AddDerivedObject("scene_video", "animation render",
                                        {scene_id}, render_params));

  // 3. The music bed: music -> audio derivation.
  MidiSequence bed = ComposeBed();
  UNWRAP(bed_interp, StoreValue(db->blob_store(), MediaValue(bed), "bed"));
  UNWRAP(bed_interp_id, db->AddInterpretation("bed_interp", bed_interp));
  UNWRAP(bed_id, db->AddMediaObject("bed", bed_interp_id, "bed"));
  AttrMap synth_params;
  synth_params.SetInt("sample rate", 22050);
  synth_params.SetInt("channels", 1);
  UNWRAP(bed_audio, db->AddDerivedObject("bed_audio", "MIDI synthesis",
                                         {bed_id}, synth_params));

  // 4. Compose: video at t=0, music at t=0.
  std::vector<StoredComponent> components;
  components.push_back({"c1", rendered, Rational(0), std::nullopt});
  components.push_back({"c2", bed_audio, Rational(0), std::nullopt});
  UNWRAP(mm, db->AddMultimediaObject("cartoon", components));

  UNWRAP(view, db->Compose(mm));
  UNWRAP(ascii, view->object.RenderTimelineAscii(48));
  std::printf("\ntimeline of 'cartoon':\n%s", ascii.c_str());

  // 5. Evaluate: expansion happens lazily, only now.
  UNWRAP(duration, view->object.Duration());
  std::printf("duration: %.2f s\n", duration.ToDouble());
  UNWRAP(frame, view->object.RenderFrameAt(2.0, 320, 240));
  std::printf("rendered composite frame at t=2.0 s (%dx%d)\n", frame.width,
              frame.height);
  UNWRAP(mix, view->object.MixAudio(22050, 1));
  std::printf("mixed audio: %.2f s, RMS %.0f\n", mix.DurationSeconds(),
              RmsAmplitude(mix));

  // 6. Economics: the whole cartoon is described in a few hundred bytes
  //    until someone actually plays it.
  UNWRAP(record, db->DerivationRecordBytes(rendered));
  UNWRAP(video_value, db->Materialize(rendered));
  std::printf(
      "\nscene + render derivation: %llu B; expanded video: %s (%.0fx)\n",
      (unsigned long long)record,
      HumanBytes(ExpandedBytes(video_value)).c_str(),
      double(ExpandedBytes(video_value)) / record);

  std::printf("\nanimation_render OK\n");
  return 0;
}

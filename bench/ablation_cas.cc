// Substrate ablation: content-addressed BLOB storage. The paper treats
// BLOB layout as a performance concern hidden from the data model
// (Def. 4); the CAS tier extends that to *identity* — identical
// uploads from different sessions store once. This bench quantifies
// the trade on a corpus of overlapping clips: storage reduction from
// dedup, push/pull throughput vs the plain file store, and the
// mark-and-sweep GC's reclaim rate and mutator pause.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "blob/cas_store.h"
#include "blob/file_store.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

namespace fs = std::filesystem;

Bytes Payload(size_t n, uint32_t seed) {
  Bytes data(n);
  uint32_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    data[i] = static_cast<uint8_t>(x >> 24);
  }
  return data;
}

std::string ScratchDir(const char* tag) {
  static int counter = 0;
  std::string dir = (fs::temp_directory_path() /
                     ("tbm_bench_cas_" + std::string(tag) + "_" +
                      std::to_string(counter++)))
                        .string();
  fs::remove_all(dir);
  return dir;
}

uint64_t DiskBytes(const std::string& root) {
  uint64_t total = 0;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_regular_file(ec)) total += it->file_size(ec);
  }
  return total;
}

double Mibps(uint64_t bytes, double seconds) {
  return seconds <= 0 ? 0.0
                      : static_cast<double>(bytes) / (1024.0 * 1024.0) /
                            seconds;
}

// The corpus: `kClips` distinct clips (a few MiB each), each uploaded
// by `kSessions` independent sessions — the multi-tenant ingest
// pattern where several editors pull the same dailies. A plain file
// store keeps every copy; the CAS tier keeps one.
constexpr int kClips = 12;
constexpr int kSessions = 4;
constexpr size_t kClipBytes = 3 << 20;  // 3 MiB per clip.

std::vector<Bytes> MakeCorpus() {
  std::vector<Bytes> clips;
  clips.reserve(kClips);
  for (int i = 0; i < kClips; ++i) {
    clips.push_back(Payload(kClipBytes, static_cast<uint32_t>(i + 1)));
  }
  return clips;
}

template <typename Store>
double TimedIngest(Store* store, const std::vector<Bytes>& clips,
                   std::vector<BlobId>* ids) {
  auto start = std::chrono::steady_clock::now();
  for (int session = 0; session < kSessions; ++session) {
    for (const Bytes& clip : clips) {
      auto push = ValueOrDie(store->StartPush(), "start push");
      // 256 KiB spans model the capture chunking.
      constexpr size_t kSpan = 256 << 10;
      for (size_t off = 0; off < clip.size(); off += kSpan) {
        size_t take = std::min(kSpan, clip.size() - off);
        CheckOk(push->Push(ByteSpan(clip.data() + off, take)), "push");
      }
      ids->push_back(ValueOrDie(push->Finish(), "finish"));
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <typename Store>
double TimedPull(Store* store, const std::vector<BlobId>& ids,
                 uint64_t* bytes_out) {
  // Chunked sequential pull of every stored id — the playback path.
  constexpr uint64_t kChunk = 256 << 10;
  uint64_t bytes = 0;
  auto start = std::chrono::steady_clock::now();
  for (BlobId id : ids) {
    uint64_t size = ValueOrDie(store->Size(id), "size");
    for (uint64_t off = 0; off < size; off += kChunk) {
      uint64_t take = std::min(kChunk, size - off);
      auto slice = store->Read(id, ByteRange{off, take});
      CheckOk(slice.status(), "read");
      benchmark::DoNotOptimize(slice->data());
      bytes += take;
    }
  }
  *bytes_out = bytes;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void PrintAblation() {
  bench::Header(
      "Ablation: content-addressed BLOB tier — dedup, throughput, GC\n"
      "(corpus: 12 distinct 3 MiB clips, each pushed by 4 sessions)");

  std::vector<Bytes> clips = MakeCorpus();
  const uint64_t logical =
      static_cast<uint64_t>(kClips) * kSessions * kClipBytes;

  // --- Plain file store: every session's copy hits disk. ---
  std::string file_dir = ScratchDir("file");
  auto file_store = ValueOrDie(FileBlobStore::Open(file_dir), "file store");
  std::vector<BlobId> file_ids;
  double file_push_s = TimedIngest(file_store.get(), clips, &file_ids);
  uint64_t file_disk = DiskBytes(file_dir);

  // --- CAS store: dedup on push. ---
  std::string cas_dir = ScratchDir("cas");
  auto cas_store = ValueOrDie(CasBlobStore::Open(cas_dir), "cas store");
  std::vector<BlobId> cas_ids;
  double cas_push_s = TimedIngest(cas_store.get(), clips, &cas_ids);
  uint64_t cas_disk = DiskBytes(cas_dir);
  CasStoreStats stats = cas_store->Stats();

  std::printf("Ingest (%d clips x %d sessions, %s logical):\n", kClips,
              kSessions, HumanBytes(logical).c_str());
  std::printf("  file store: %6.1f MiB/s push, %s on disk\n",
              Mibps(logical, file_push_s), HumanBytes(file_disk).c_str());
  std::printf("  cas  store: %6.1f MiB/s push, %s on disk\n",
              Mibps(logical, cas_push_s), HumanBytes(cas_disk).c_str());
  std::printf("  dedup ratio %.2fx  (%llu pushes, %llu dedup hits)\n",
              stats.dedup_ratio(),
              static_cast<unsigned long long>(stats.pushes),
              static_cast<unsigned long long>(stats.dedup_hits));
  std::printf("  storage reduction %.2fx vs file store\n",
              file_disk > 0 && cas_disk > 0
                  ? static_cast<double>(file_disk) / cas_disk
                  : 0.0);

  // --- Pull throughput: chunked sequential read of every id. ---
  uint64_t file_bytes = 0, cas_bytes = 0;
  double file_pull_s = TimedPull(file_store.get(), file_ids, &file_bytes);
  double cas_pull_s = TimedPull(cas_store.get(), cas_ids, &cas_bytes);
  std::printf("Pull (256 KiB chunked sequential, all %d ids):\n",
              kClips * kSessions);
  std::printf("  file store: %6.1f MiB/s\n", Mibps(file_bytes, file_pull_s));
  std::printf("  cas  store: %6.1f MiB/s (mmap, zero-copy)\n",
              Mibps(cas_bytes, cas_pull_s));
  std::printf("  cas/file pull ratio: %.2f\n",
              Mibps(cas_bytes, cas_pull_s) / Mibps(file_bytes, file_pull_s));

  // --- GC: drop all but one session's references, then sweep. ---
  // Live set: the first kClips ids (session 0). Everything else is
  // garbage — but dedup means the *content* stays pinned by session
  // 0's references, so the sweep reclaims nothing until those go too.
  std::vector<BlobId> live(cas_ids.begin(), cas_ids.begin() + kClips);
  auto partial = ValueOrDie(cas_store->Sweep(live), "sweep live");
  std::printf("GC with one session still live:\n");
  std::printf("  scanned %llu, swept %llu, reclaimed %s, pause %llu us\n",
              static_cast<unsigned long long>(partial.scanned),
              static_cast<unsigned long long>(partial.swept),
              HumanBytes(partial.reclaimed_bytes).c_str(),
              static_cast<unsigned long long>(partial.pause_us));
  auto full = ValueOrDie(cas_store->Sweep({}), "sweep all");
  std::printf("GC with no live references:\n");
  std::printf("  scanned %llu, swept %llu, reclaimed %s, pause %llu us\n",
              static_cast<unsigned long long>(full.scanned),
              static_cast<unsigned long long>(full.swept),
              HumanBytes(full.reclaimed_bytes).c_str(),
              static_cast<unsigned long long>(full.pause_us));
  std::printf("  disk after sweep: %s\n",
              HumanBytes(DiskBytes(cas_dir)).c_str());

  fs::remove_all(file_dir);
  fs::remove_all(cas_dir);
}

// --- Micro: push throughput, cold vs dedup-hit ------------------------------

void BM_CasPush_Cold(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::string dir = ScratchDir("push_cold");
  auto store = ValueOrDie(CasBlobStore::Open(dir), "open");
  uint32_t seed = 1;
  for (auto _ : state) {
    Bytes data = Payload(size, seed++);  // Distinct content every time.
    benchmark::DoNotOptimize(ValueOrDie(store->PushAll(data), "push"));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
  fs::remove_all(dir);
}
BENCHMARK(BM_CasPush_Cold)->Arg(64 << 10)->Arg(1 << 20);

void BM_CasPush_DedupHit(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::string dir = ScratchDir("push_dup");
  auto store = ValueOrDie(CasBlobStore::Open(dir), "open");
  Bytes data = Payload(size, 7);
  CheckOk(store->PushAll(data).status(), "seed push");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(store->PushAll(data), "push"));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
  fs::remove_all(dir);
}
BENCHMARK(BM_CasPush_DedupHit)->Arg(64 << 10)->Arg(1 << 20);

void BM_FilePush(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  std::string dir = ScratchDir("push_file");
  auto store = ValueOrDie(FileBlobStore::Open(dir), "open");
  uint32_t seed = 1;
  for (auto _ : state) {
    Bytes data = Payload(size, seed++);
    benchmark::DoNotOptimize(ValueOrDie(store->PushAll(data), "push"));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
  fs::remove_all(dir);
}
BENCHMARK(BM_FilePush)->Arg(64 << 10)->Arg(1 << 20);

// --- Micro: ranged pulls, mmap vs pread -------------------------------------

template <typename Store>
void PullBench(benchmark::State& state, Store* store, BlobId id,
               uint64_t blob_size) {
  const uint64_t chunk = static_cast<uint64_t>(state.range(0));
  uint64_t offset = 0;
  for (auto _ : state) {
    auto slice = store->Read(id, ByteRange{offset, chunk});
    CheckOk(slice.status(), "read");
    benchmark::DoNotOptimize(slice->data());
    offset = (offset + 7919 * chunk) % (blob_size - chunk);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(chunk));
}

void BM_CasPull(benchmark::State& state) {
  std::string dir = ScratchDir("pull_cas");
  auto store = ValueOrDie(CasBlobStore::Open(dir), "open");
  BlobId id = ValueOrDie(store->PushAll(Payload(8 << 20, 3)), "push");
  PullBench(state, store.get(), id, 8 << 20);
  fs::remove_all(dir);
}
BENCHMARK(BM_CasPull)->Arg(16 << 10)->Arg(256 << 10);

void BM_FilePull(benchmark::State& state) {
  std::string dir = ScratchDir("pull_file");
  auto store = ValueOrDie(FileBlobStore::Open(dir), "open");
  BlobId id = ValueOrDie(store->PushAll(Payload(8 << 20, 3)), "push");
  PullBench(state, store.get(), id, 8 << 20);
  fs::remove_all(dir);
}
BENCHMARK(BM_FilePull)->Arg(16 << 10)->Arg(256 << 10);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  bool stats = tbm::bench::ConsumeFlag(&argc, argv, "--stats");
  tbm::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  if (stats) tbm::bench::PrintRegistrySnapshot();
  return 0;
}

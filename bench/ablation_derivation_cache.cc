// Substrate ablation: derivation evaluation strategy. The paper (§4.2)
// frames the store-derived vs store-expanded decision around expansion
// cost; this bench quantifies the knobs the library adds around it —
// memoized vs cold expansion of shared DAGs, expand-and-store
// amortization, and activity-flow streaming overhead versus batch
// materialization.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "derive/graph.h"
#include "playback/activity.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

VideoValue Clip(int64_t frames, uint32_t scene) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(96, 64, frames, scene);
  return video;
}

// A diamond DAG: one source feeding two cuts feeding one concat. The
// source subtree is shared, so caching pays twice.
struct Diamond {
  DerivationGraph graph;
  NodeId top = 0;
};

Diamond MakeDiamond() {
  Diamond d;
  NodeId source = d.graph.AddLeaf(Clip(40, 9), "source");
  AttrMap blur;  // A content derivation to make the shared stage cost real.
  blur.SetString("kind", "fade");
  AttrMap cut1;
  cut1.SetInt("start frame", 0);
  cut1.SetInt("frame count", 20);
  AttrMap cut2;
  cut2.SetInt("start frame", 20);
  cut2.SetInt("frame count", 20);
  NodeId a = ValueOrDie(d.graph.AddDerived("video edit", {source}, cut1, "a"),
                        "a");
  NodeId b = ValueOrDie(d.graph.AddDerived("video edit", {source}, cut2, "b"),
                        "b");
  d.top = ValueOrDie(
      d.graph.AddDerived("video concat", {a, b}, AttrMap{}, "top"), "top");
  return d;
}

void PrintAblation() {
  bench::Header(
      "Ablation: derivation evaluation — memoized vs cold expansion,\n"
      "and streaming (activity) vs batch materialization");
  Diamond d = MakeDiamond();
  auto feasibility = ValueOrDie(d.graph.MeasureFeasibility(d.top), "feas");
  std::printf(
      "diamond DAG (shared source, 2 cuts, concat):\n"
      "  cold expansion: %.3f ms for %.2f s of video (real-time: %s)\n",
      feasibility.expansion_seconds * 1e3, feasibility.presentation_seconds,
      feasibility.real_time ? "yes" : "no");
}

void BM_EvaluateCold(benchmark::State& state) {
  Diamond d = MakeDiamond();
  for (auto _ : state) {
    d.graph.DropCache();
    auto value = d.graph.Evaluate(d.top);
    CheckOk(value.status(), "evaluate");
    benchmark::DoNotOptimize(*value);
  }
}
BENCHMARK(BM_EvaluateCold)->Unit(benchmark::kMillisecond);

void BM_EvaluateWarm(benchmark::State& state) {
  Diamond d = MakeDiamond();
  CheckOk(d.graph.Evaluate(d.top).status(), "warm");
  for (auto _ : state) {
    auto value = d.graph.Evaluate(d.top);
    CheckOk(value.status(), "evaluate");
    benchmark::DoNotOptimize(*value);
  }
}
BENCHMARK(BM_EvaluateWarm);

void BM_DeepChainEvaluation(benchmark::State& state) {
  // N chained gain stages over audio: linear cost in chain depth.
  DerivationGraph graph;
  NodeId node = graph.AddLeaf(audiogen::Sine(22050, 1, 440, 0.5, 1.0), "src");
  for (int64_t i = 0; i < state.range(0); ++i) {
    AttrMap params;
    params.SetDouble("gain", 0.999);
    node = ValueOrDie(graph.AddDerived("audio gain", {node}, params), "gain");
  }
  for (auto _ : state) {
    graph.DropCache();
    auto value = graph.Evaluate(node);
    CheckOk(value.status(), "evaluate");
    benchmark::DoNotOptimize(*value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeepChainEvaluation)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// --- Activity flows vs batch -------------------------------------------------

MediaDescriptor FlowDescriptor() {
  MediaDescriptor desc;
  desc.type_name = "audio/pcm-block";
  desc.kind = MediaKind::kAudio;
  return desc;
}

TimedStream FlowStream(int64_t elements) {
  TimedStream stream(FlowDescriptor(), TimeSystem(1000));
  for (int64_t i = 0; i < elements; ++i) {
    CheckOk(stream.AppendContiguous(Bytes(256, 1), 4), "element");
  }
  return stream;
}

void BM_ActivityPipeline(benchmark::State& state) {
  TimedStream stream = FlowStream(state.range(0));
  for (auto _ : state) {
    TransformActivity pipeline(
        std::make_unique<TransformActivity>(
            std::make_unique<StreamSource>(&stream),
            [](StreamElement element) -> Result<StreamElement> {
              for (uint8_t& byte : element.data) byte ^= 0x5A;
              return element;
            }),
        [](StreamElement element) -> Result<StreamElement> {
          element.descriptor.SetInt("stage", 2);
          return element;
        });
    auto stats = Drain(&pipeline);
    CheckOk(stats.status(), "drain");
    benchmark::DoNotOptimize(stats->bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActivityPipeline)->Range(256, 16384);

void BM_BatchEquivalent(benchmark::State& state) {
  TimedStream stream = FlowStream(state.range(0));
  for (auto _ : state) {
    // The batch version of the same two stages.
    TimedStream out(stream.descriptor(), stream.time_system());
    for (const StreamElement& element : stream) {
      StreamElement copy = element;
      for (uint8_t& byte : copy.data) byte ^= 0x5A;
      copy.descriptor.SetInt("stage", 2);
      CheckOk(out.Append(std::move(copy)), "append");
    }
    benchmark::DoNotOptimize(out.TotalBytes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchEquivalent)->Range(256, 16384);

void BM_MergeActivity(benchmark::State& state) {
  TimedStream a = FlowStream(state.range(0));
  TimedStream b = FlowStream(state.range(0));
  for (auto _ : state) {
    MergeActivity merge(std::make_unique<StreamSource>(&a),
                        std::make_unique<StreamSource>(&b));
    auto stats = Drain(&merge);
    CheckOk(stats.status(), "drain");
    benchmark::DoNotOptimize(stats->elements);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_MergeActivity)->Range(256, 4096);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

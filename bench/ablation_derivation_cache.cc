// Substrate ablation: derivation evaluation strategy. The paper (§4.2)
// frames the store-derived vs store-expanded decision around expansion
// cost; this bench quantifies the knobs the library adds around it —
// memoized vs cold expansion of shared DAGs, expand-and-store
// amortization, and activity-flow streaming overhead versus batch
// materialization.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "derive/graph.h"
#include "derive/scheduler.h"
#include "playback/activity.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

VideoValue Clip(int64_t frames, uint32_t scene) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(96, 64, frames, scene);
  return video;
}

// A diamond DAG: one source feeding two cuts feeding one concat. The
// source subtree is shared, so caching pays twice.
struct Diamond {
  DerivationGraph graph;
  NodeId top = 0;
};

Diamond MakeDiamond() {
  Diamond d;
  NodeId source = d.graph.AddLeaf(Clip(40, 9), "source");
  AttrMap blur;  // A content derivation to make the shared stage cost real.
  blur.SetString("kind", "fade");
  AttrMap cut1;
  cut1.SetInt("start frame", 0);
  cut1.SetInt("frame count", 20);
  AttrMap cut2;
  cut2.SetInt("start frame", 20);
  cut2.SetInt("frame count", 20);
  NodeId a = ValueOrDie(d.graph.AddDerived("video edit", {source}, cut1, "a"),
                        "a");
  NodeId b = ValueOrDie(d.graph.AddDerived("video edit", {source}, cut2, "b"),
                        "b");
  d.top = ValueOrDie(
      d.graph.AddDerived("video concat", {a, b}, AttrMap{}, "top"), "top");
  return d;
}

// A wide fan-out: one source clip feeding `branches` independent
// transition branches (each per-pixel heavy), joined by a concat tree —
// Table 1's "several derivations of one source" shape. This is the DAG
// the parallel scheduler is for: every branch is independent.
struct FanOut {
  DerivationGraph graph;
  NodeId root = 0;
};

FanOut MakeFanOut(int branches) {
  FanOut f;
  NodeId source = f.graph.AddLeaf(Clip(64, 7), "source");
  std::vector<NodeId> tops;
  for (int i = 0; i < branches; ++i) {
    AttrMap cut_a;
    cut_a.SetInt("start frame", 0);
    cut_a.SetInt("frame count", 32);
    AttrMap cut_b;
    cut_b.SetInt("start frame", 32);
    cut_b.SetInt("frame count", 32);
    std::string tag = std::to_string(i);
    NodeId a = ValueOrDie(
        f.graph.AddDerived("video edit", {source}, cut_a, "a" + tag), "a");
    NodeId b = ValueOrDie(
        f.graph.AddDerived("video edit", {source}, cut_b, "b" + tag), "b");
    AttrMap fade;
    fade.SetString("kind", i % 2 == 0 ? "fade" : "wipe");
    fade.SetInt("duration frames", 32);
    fade.SetInt("start a", 0);
    fade.SetInt("start b", 0);
    tops.push_back(ValueOrDie(
        f.graph.AddDerived("video transition", {a, b}, fade, "x" + tag),
        "transition"));
  }
  // Balanced concat tree down to one root.
  while (tops.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < tops.size(); i += 2) {
      next.push_back(ValueOrDie(
          f.graph.AddDerived("video concat", {tops[i], tops[i + 1]},
                             AttrMap{}),
          "concat"));
    }
    if (tops.size() % 2 == 1) next.push_back(tops.back());
    tops = std::move(next);
  }
  f.root = tops.front();
  return f;
}

// A registry whose source-fetch operator blocks for `latency` of
// simulated storage/network time before producing audio — the shape of
// a derivation whose inputs live in a remote blob store. Unlike the
// compute-bound fan-out above, branches of this DAG overlap their
// waits, so DAG parallelism pays even on a single hardware thread.
const DerivationRegistry& LatencyRegistry(
    std::chrono::milliseconds latency) {
  static DerivationRegistry* registry = [latency] {
    auto* r = new DerivationRegistry;
    for (const std::string& name : DerivationRegistry::Builtin().Names()) {
      CheckOk(r->Register(*ValueOrDie(
                  DerivationRegistry::Builtin().Find(name), "builtin op")),
              "register builtin");
    }
    DerivationOp fetch;
    fetch.name = "slow fetch";
    fetch.arg_kinds = {MediaKind::kAudio};
    fetch.result_kind = MediaKind::kAudio;
    fetch.category = DerivationCategory::kContent;
    fetch.description = "simulated high-latency blob fetch";
    fetch.fn = [latency](const std::vector<const MediaValue*>& args,
                         const AttrMap&) -> Result<MediaValue> {
      std::this_thread::sleep_for(latency);
      return *args[0];
    };
    CheckOk(r->Register(std::move(fetch)), "register slow fetch");
    return r;
  }();
  return *registry;
}

// `branches` independent fetch+gain chains of one source, joined by
// mixes: the I/O-bound flavour of the Table 1 fan-out.
FanOut MakeLatencyFanOut(int branches, std::chrono::milliseconds latency) {
  FanOut f{DerivationGraph(&LatencyRegistry(latency)), 0};
  AudioBuffer tone;
  tone.sample_rate = 8000;
  tone.channels = 1;
  tone.samples = std::vector<int16_t>(8000, 1000);
  NodeId source = f.graph.AddLeaf(std::move(tone), "source");
  std::vector<NodeId> tops;
  for (int i = 0; i < branches; ++i) {
    NodeId fetched = ValueOrDie(
        f.graph.AddDerived("slow fetch", {source}, AttrMap{},
                           "fetch" + std::to_string(i)),
        "fetch");
    AttrMap gain;
    gain.SetDouble("gain", 1.0 / (i + 2));
    tops.push_back(ValueOrDie(
        f.graph.AddDerived("audio gain", {fetched}, gain), "gain"));
  }
  while (tops.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < tops.size(); i += 2) {
      AttrMap mix;
      next.push_back(ValueOrDie(
          f.graph.AddDerived("audio mix", {tops[i], tops[i + 1]}, mix),
          "mix"));
    }
    if (tops.size() % 2 == 1) next.push_back(tops.back());
    tops = std::move(next);
  }
  f.root = tops.front();
  return f;
}

double ColdEvalSeconds(DerivationEngine* engine, NodeId root) {
  engine->InvalidateAll();
  auto start = std::chrono::steady_clock::now();
  CheckOk(engine->Evaluate(root).status(), "engine evaluate");
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void PrintAblation() {
  bench::Header(
      "Ablation: derivation evaluation — memoized vs cold expansion,\n"
      "and streaming (activity) vs batch materialization");
  Diamond d = MakeDiamond();
  auto feasibility = ValueOrDie(d.graph.MeasureFeasibility(d.top), "feas");
  std::printf(
      "diamond DAG (shared source, 2 cuts, concat):\n"
      "  cold expansion: %.3f ms for %.2f s of video (real-time: %s)\n",
      feasibility.expansion_seconds * 1e3, feasibility.presentation_seconds,
      feasibility.real_time ? "yes" : "no");

  bench::Header(
      "Ablation: scheduler — fan-out DAG (8 transition branches of one\n"
      "source), cold expansion, 1 vs 4 worker threads");
  FanOut f = MakeFanOut(8);
  EvalOptions serial;
  serial.threads = 1;
  EvalOptions wide;
  wide.threads = 4;
  DerivationEngine engine1(&f.graph, serial);
  DerivationEngine engine4(&f.graph, wide);
  double best1 = 1e9, best4 = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    best1 = std::min(best1, ColdEvalSeconds(&engine1, f.root));
    best4 = std::min(best4, ColdEvalSeconds(&engine4, f.root));
  }
  std::printf("  threads=1: %.3f ms\n  threads=4: %.3f ms\n  speedup: %.2fx\n",
              best1 * 1e3, best4 * 1e3, best1 / best4);
  std::printf("  (hardware threads: %d — branch-parallel speedup needs >1)\n",
              ThreadPool::DefaultThreads());
  std::printf("engine stats (threads=4):\n%s",
              engine4.stats().ToString().c_str());

  bench::Header(
      "Ablation: scheduler — latency-bound fan-out (8 branches, each\n"
      "blocking 4 ms on a simulated blob fetch), 1 vs 4 worker threads.\n"
      "Waits overlap, so this speedup holds even on one hardware thread.");
  FanOut io = MakeLatencyFanOut(8, std::chrono::milliseconds(4));
  DerivationEngine io1(&io.graph, serial);
  DerivationEngine io4(&io.graph, wide);
  double io_best1 = 1e9, io_best4 = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    io_best1 = std::min(io_best1, ColdEvalSeconds(&io1, io.root));
    io_best4 = std::min(io_best4, ColdEvalSeconds(&io4, io.root));
  }
  std::printf("  threads=1: %.3f ms\n  threads=4: %.3f ms\n  speedup: %.2fx\n",
              io_best1 * 1e3, io_best4 * 1e3, io_best1 / io_best4);
}

void BM_EvaluateCold(benchmark::State& state) {
  Diamond d = MakeDiamond();
  for (auto _ : state) {
    d.graph.DropCache();
    auto value = d.graph.Evaluate(d.top);
    CheckOk(value.status(), "evaluate");
    benchmark::DoNotOptimize(*value);
  }
}
BENCHMARK(BM_EvaluateCold)->Unit(benchmark::kMillisecond);

void BM_EvaluateWarm(benchmark::State& state) {
  Diamond d = MakeDiamond();
  CheckOk(d.graph.Evaluate(d.top).status(), "warm");
  for (auto _ : state) {
    auto value = d.graph.Evaluate(d.top);
    CheckOk(value.status(), "evaluate");
    benchmark::DoNotOptimize(*value);
  }
}
BENCHMARK(BM_EvaluateWarm);

void BM_EngineFanoutCold(benchmark::State& state) {
  FanOut f = MakeFanOut(8);
  EvalOptions options;
  options.threads = static_cast<int>(state.range(0));
  DerivationEngine engine(&f.graph, options);
  for (auto _ : state) {
    engine.InvalidateAll();
    auto value = engine.Evaluate(f.root);
    CheckOk(value.status(), "evaluate");
    benchmark::DoNotOptimize(*value);
  }
}
BENCHMARK(BM_EngineFanoutCold)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_DeepChainEvaluation(benchmark::State& state) {
  // N chained gain stages over audio: linear cost in chain depth.
  DerivationGraph graph;
  NodeId node = graph.AddLeaf(audiogen::Sine(22050, 1, 440, 0.5, 1.0), "src");
  for (int64_t i = 0; i < state.range(0); ++i) {
    AttrMap params;
    params.SetDouble("gain", 0.999);
    node = ValueOrDie(graph.AddDerived("audio gain", {node}, params), "gain");
  }
  for (auto _ : state) {
    graph.DropCache();
    auto value = graph.Evaluate(node);
    CheckOk(value.status(), "evaluate");
    benchmark::DoNotOptimize(*value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeepChainEvaluation)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// --- Activity flows vs batch -------------------------------------------------

MediaDescriptor FlowDescriptor() {
  MediaDescriptor desc;
  desc.type_name = "audio/pcm-block";
  desc.kind = MediaKind::kAudio;
  return desc;
}

TimedStream FlowStream(int64_t elements) {
  TimedStream stream(FlowDescriptor(), TimeSystem(1000));
  for (int64_t i = 0; i < elements; ++i) {
    CheckOk(stream.AppendContiguous(Bytes(256, 1), 4), "element");
  }
  return stream;
}

void BM_ActivityPipeline(benchmark::State& state) {
  TimedStream stream = FlowStream(state.range(0));
  for (auto _ : state) {
    TransformActivity pipeline(
        std::make_unique<TransformActivity>(
            std::make_unique<StreamSource>(&stream),
            [](StreamElement element) -> Result<StreamElement> {
              Bytes scrambled = element.data.MutableCopy();
              for (uint8_t& byte : scrambled) byte ^= 0x5A;
              element.data = std::move(scrambled);
              return element;
            }),
        [](StreamElement element) -> Result<StreamElement> {
          element.descriptor.SetInt("stage", 2);
          return element;
        });
    auto stats = Drain(&pipeline);
    CheckOk(stats.status(), "drain");
    benchmark::DoNotOptimize(stats->bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActivityPipeline)->Range(256, 16384);

void BM_BatchEquivalent(benchmark::State& state) {
  TimedStream stream = FlowStream(state.range(0));
  for (auto _ : state) {
    // The batch version of the same two stages.
    TimedStream out(stream.descriptor(), stream.time_system());
    for (const StreamElement& element : stream) {
      StreamElement copy = element;
      Bytes scrambled = copy.data.MutableCopy();
      for (uint8_t& byte : scrambled) byte ^= 0x5A;
      copy.data = std::move(scrambled);
      copy.descriptor.SetInt("stage", 2);
      CheckOk(out.Append(std::move(copy)), "append");
    }
    benchmark::DoNotOptimize(out.TotalBytes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchEquivalent)->Range(256, 16384);

void BM_MergeActivity(benchmark::State& state) {
  TimedStream a = FlowStream(state.range(0));
  TimedStream b = FlowStream(state.range(0));
  for (auto _ : state) {
    MergeActivity merge(std::make_unique<StreamSource>(&a),
                        std::make_unique<StreamSource>(&b));
    auto stats = Drain(&merge);
    CheckOk(stats.status(), "drain");
    benchmark::DoNotOptimize(stats->elements);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_MergeActivity)->Range(256, 4096);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  bool stats = tbm::bench::ConsumeFlag(&argc, argv, "--stats");
  tbm::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  if (stats) tbm::bench::PrintRegistrySnapshot();
  return 0;
}

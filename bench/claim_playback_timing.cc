// Validates the paper's timing claims (§2.2 Timing, §5): with timing
// information in the data model, "play" is meaningful; deadlines are
// soft; "playback 'jitter' can be removed by the application just
// prior to presentation"; and misses appear when media data rates
// exceed service capacity. Sweeps service speed, load noise and
// start-delay buffering on simulated synchronized A/V playback.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "playback/admission.h"
#include "playback/simulator.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

MediaDescriptor Descriptor(const char* type, MediaKind kind) {
  MediaDescriptor desc;
  desc.type_name = type;
  desc.kind = kind;
  return desc;
}

TimedStream VideoSchedule(int64_t frames, size_t bytes_per_frame) {
  TimedStream stream(Descriptor("video/tjpeg", MediaKind::kVideo),
                     TimeSystem(25));
  for (int64_t i = 0; i < frames; ++i) {
    CheckOk(stream.AppendContiguous(Bytes(bytes_per_frame, 0), 1), "frame");
  }
  return stream;
}

TimedStream AudioSchedule(int64_t frames) {
  TimedStream stream(Descriptor("audio/pcm-block", MediaKind::kAudio),
                     TimeSystem(25));
  for (int64_t i = 0; i < frames; ++i) {
    CheckOk(stream.AppendContiguous(Bytes(1764 * 4, 0), 1), "block");
  }
  return stream;
}

void PrintTiming() {
  bench::Header(
      "Claim (paper §2.2/§5): playback timing — deadlines are soft,\n"
      "jitter is removable by application-side buffering, and misses\n"
      "appear when the data rate exceeds service capacity");

  const int64_t frames = 250;  // 10 s at 25 fps.
  TimedStream video = VideoSchedule(frames, 20000);  // 0.5 MB/s.
  TimedStream audio = AudioSchedule(frames);         // 176 kB/s.
  std::vector<const TimedStream*> streams = {&video, &audio};

  std::printf(
      "Sweep 1: service capacity (noise 20 ms peak, no buffer).\n"
      "%14s %10s %12s %12s %10s\n",
      "service MB/s", "misses", "mean late", "max late", "util");
  for (double mbps : {0.2, 0.7, 2.0, 20.0}) {
    PlaybackConfig config;
    config.seconds_per_megabyte = 1.0 / mbps;
    config.load_noise_us = 20000.0;
    config.seed = 11;
    PlaybackReport report =
        ValueOrDie(SimulatePlayback(streams, config), "simulate");
    std::printf("%14.1f %6lld/%-3lld %10.1fms %10.1fms %9.2f\n", mbps,
                static_cast<long long>(report.total_misses),
                static_cast<long long>(report.total_elements),
                report.mean_lateness_us / 1000.0,
                report.max_lateness_us / 1000.0, report.utilization);
  }

  std::printf(
      "\nSweep 2: start-delay buffer at 2.0 MB/s service with bursty\n"
      "load noise — adequate average capacity, transient lateness\n"
      "(jitter removal, paper §5).\n"
      "%12s %10s %12s %12s %12s\n",
      "buffer ms", "misses", "mean late", "max late", "max skew");
  for (double buffer_ms : {0.0, 50.0, 200.0, 1000.0}) {
    PlaybackConfig config;
    config.seconds_per_megabyte = 1.0 / 2.0;
    config.load_noise_us = 30000.0;
    config.seed = 11;
    config.buffer_delay_ms = buffer_ms;
    PlaybackReport report =
        ValueOrDie(SimulatePlayback(streams, config), "simulate");
    std::printf("%12.0f %6lld/%-3lld %10.1fms %10.1fms %10.1fms\n", buffer_ms,
                static_cast<long long>(report.total_misses),
                static_cast<long long>(report.total_elements),
                report.mean_lateness_us / 1000.0,
                report.max_lateness_us / 1000.0,
                report.max_sync_skew_us / 1000.0);
  }
  std::printf(
      "\nShape check: misses collapse to zero once capacity exceeds the\n"
      "stream rate; with marginal capacity, a modest start delay removes\n"
      "all residual jitter. Without timing information (a bare BLOB) none\n"
      "of these rows could even be computed — \"play\" would have no\n"
      "meaning.\n");

  // Sweep 3: descriptor-driven admission control (paper §4.1:
  // descriptors carry the data rates resource allocation needs). Use a
  // bursty stream — action scenes every 10 s that triple the rate —
  // so the two booking policies genuinely differ.
  TimedStream bursty(Descriptor("video/tmpeg", MediaKind::kVideo),
                     TimeSystem(25));
  for (int64_t i = 0; i < 250; ++i) {
    size_t bytes = (i / 25) % 10 == 0 ? 36000 : 8000;
    CheckOk(bursty.AppendContiguous(Bytes(bytes, 0), 1), "bursty frame");
  }
  RateProfile bursty_profile = MeasureRateProfile(bursty);
  MediaDescriptor session_desc;
  session_desc.type_name = "video/tmpeg";
  session_desc.kind = MediaKind::kVideo;
  AnnotateRateProfile(&session_desc, bursty_profile);
  std::printf(
      "\nSweep 3: admission control on a 2.0 MB/s server; each session\n"
      "plays a bursty clip (avg %s, peak %s, burstiness %.1fx).\n"
      "%14s %12s %12s\n",
      HumanRate(bursty_profile.average_bytes_per_second).c_str(),
      HumanRate(bursty_profile.peak_bytes_per_second).c_str(),
      bursty_profile.Burstiness(), "policy", "admitted", "booked");
  for (auto policy : {AdmissionController::Policy::kAverageRate,
                      AdmissionController::Policy::kPeakRate}) {
    AdmissionController controller(2.0e6, policy);
    int admitted = 0;
    while (controller
               .Admit("s" + std::to_string(admitted), session_desc)
               .ok()) {
      ++admitted;
    }
    std::printf("%14s %12d %12s\n",
                policy == AdmissionController::Policy::kAverageRate
                    ? "average-rate"
                    : "peak-rate",
                admitted, HumanRate(controller.booked()).c_str());
  }
  std::printf(
      "Shape check: peak-rate booking admits fewer sessions but\n"
      "guarantees each one the capacity sweep above shows it needs.\n");
}

// --- Benchmarks -------------------------------------------------------------

void BM_SimulatePlayback(benchmark::State& state) {
  TimedStream video = VideoSchedule(state.range(0), 20000);
  TimedStream audio = AudioSchedule(state.range(0));
  std::vector<const TimedStream*> streams = {&video, &audio};
  PlaybackConfig config;
  config.seconds_per_megabyte = 0.5;
  config.load_noise_us = 10000.0;
  for (auto _ : state) {
    auto report = SimulatePlayback(streams, config);
    CheckOk(report.status(), "simulate");
    benchmark::DoNotOptimize(report->total_misses);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_SimulatePlayback)->Range(64, 8192);

void BM_ScheduleExtraction(benchmark::State& state) {
  // Building the deadline list from stream timing — the part of "play"
  // the data model enables.
  TimedStream video = VideoSchedule(state.range(0), 100);
  for (auto _ : state) {
    double total = 0;
    for (const StreamElement& element : video) {
      total += video.time_system().ToSecondsF(element.start);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleExtraction)->Range(256, 16384);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintTiming();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Validates the §4.2 storage/efficiency claims for derivation-based
// (non-destructive) editing: an edit list is orders of magnitude
// smaller than the video object it derives from, and creating the edit
// is orders of magnitude faster than copy-based editing. Sweeps video
// length and edit count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/synthetic.h"
#include "db/database.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kW = 160, kH = 120;

struct Corpus {
  std::unique_ptr<MediaDatabase> db;
  ObjectId video = 0;
  int64_t frames = 0;
};

Corpus& SharedCorpus() {
  static Corpus* corpus = [] {
    auto* c = new Corpus();
    c->db = MediaDatabase::CreateInMemory();
    c->frames = 100;
    VideoValue video;
    video.frame_rate = Rational(25);
    video.frames = videogen::Clip(kW, kH, c->frames, 31);
    StoreOptions options;
    options.video_codec = "tjpeg";
    auto interp = ValueOrDie(
        StoreValue(c->db->blob_store(), video, "source", options), "store");
    ObjectId interp_id =
        ValueOrDie(c->db->AddInterpretation("source_interp", interp), "i");
    c->video = ValueOrDie(
        c->db->AddMediaObject("source", interp_id, "source"), "v");
    return c;
  }();
  return *corpus;
}

// An "edit session": E alternating cuts from the source, chained with
// concat derivations — the derivation-object form of an edit list.
ObjectId BuildEditChain(MediaDatabase* db, ObjectId source, int edits,
                        const std::string& prefix) {
  ObjectId current = kInvalidObjectId;
  for (int e = 0; e < edits; ++e) {
    AttrMap params;
    params.SetInt("start frame", (e * 13) % 80);
    params.SetInt("frame count", 10);
    ObjectId cut = ValueOrDie(
        db->AddDerivedObject(prefix + "_cut" + std::to_string(e),
                             "video edit", {source}, params),
        "cut");
    if (current == kInvalidObjectId) {
      current = cut;
    } else {
      current = ValueOrDie(
          db->AddDerivedObject(prefix + "_join" + std::to_string(e),
                               "video concat", {current, cut}, AttrMap{}),
          "join");
    }
  }
  return current;
}

void PrintClaim() {
  bench::Header(
      "Claim (paper §4.2): non-destructive editing via derivation\n"
      "objects — \"a video edit list is likely many orders of magnitude\n"
      "smaller than a video object\" and edits need no data copying");
  Corpus& corpus = SharedCorpus();
  auto source_stream = ValueOrDie(
      corpus.db->MaterializeStream(corpus.video), "source stream");
  uint64_t stored_bytes = source_stream.TotalBytes();

  std::printf("%8s %16s %18s %10s\n", "edits", "edit-list bytes",
              "video bytes (enc)", "ratio");
  for (int edits : {1, 4, 16, 64}) {
    ObjectId chain = BuildEditChain(corpus.db.get(), corpus.video, edits,
                                    "p" + std::to_string(edits));
    uint64_t record =
        ValueOrDie(corpus.db->DerivationRecordBytes(chain), "record");
    std::printf("%8d %16llu %18llu %9.0fx\n", edits,
                static_cast<unsigned long long>(record),
                static_cast<unsigned long long>(stored_bytes),
                static_cast<double>(stored_bytes) / record);
  }
  std::printf(
      "\n(The encoded source is itself ~60x smaller than raw frames;\n"
      "against raw video the edit list is another ~50x smaller still.)\n");
}

// --- Benchmarks: derivation-edit vs copy-edit -------------------------------

void BM_EditByDerivation(benchmark::State& state) {
  // Cost of *performing* an edit non-destructively: record a
  // derivation object. No media bytes touched.
  Corpus& corpus = SharedCorpus();
  static int64_t counter = 0;  // Unique across benchmark re-runs.
  for (auto _ : state) {
    AttrMap params;
    params.SetInt("start frame", 5);
    params.SetInt("frame count", 50);
    auto cut = corpus.db->AddDerivedObject(
        "bench_cut" + std::to_string(counter++), "video edit",
        {corpus.video}, params);
    CheckOk(cut.status(), "cut");
    benchmark::DoNotOptimize(*cut);
  }
}
BENCHMARK(BM_EditByDerivation);

void BM_EditByCopy(benchmark::State& state) {
  // The copy-based alternative: decode, slice, re-encode, store.
  Corpus& corpus = SharedCorpus();
  static int64_t counter = 0;  // Unique across benchmark re-runs.
  for (auto _ : state) {
    auto value = corpus.db->Materialize(corpus.video);
    CheckOk(value.status(), "decode");
    VideoValue& video = std::get<VideoValue>(*value);
    VideoValue sliced;
    sliced.frame_rate = video.frame_rate;
    sliced.frames.assign(video.frames.begin() + 5,
                         video.frames.begin() + 55);
    auto interp = StoreValue(corpus.db->blob_store(), sliced,
                             "copy" + std::to_string(counter++));
    CheckOk(interp.status(), "store");
    benchmark::DoNotOptimize(interp->blob());
  }
}
BENCHMARK(BM_EditByCopy)->Unit(benchmark::kMillisecond);

void BM_ExpandEditChain(benchmark::State& state) {
  // Cost of *playing* a derivation-edited object: expansion on demand.
  Corpus& corpus = SharedCorpus();
  static int64_t run = 0;
  ObjectId chain =
      BuildEditChain(corpus.db.get(), corpus.video,
                     static_cast<int>(state.range(0)),
                     "x" + std::to_string(run++) + "_" +
                         std::to_string(state.range(0)));
  for (auto _ : state) {
    auto value = corpus.db->Materialize(chain);
    CheckOk(value.status(), "expand");
    benchmark::DoNotOptimize(std::get<VideoValue>(*value).frames.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_ExpandEditChain)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintClaim();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Reproduces Figure 2 and the §4.1 worked example: a PAL video signal
// with stereo CD audio digitized, compressed (RGB → YUV → TJPEG at "VHS
// quality"), interleaved in one BLOB, and interpreted. Prints the two
// media descriptors in the paper's box style, checks the paper's data-
// rate numbers, and benchmarks indexed vs linear element lookup.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "blob/memory_store.h"
#include "codec/synthetic.h"
#include "interp/av_capture.h"
#include "interp/index.h"
#include "stream/category.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

// Scaled-down stand-in for the paper's 10-minute PAL tape: full PAL
// geometry (640x480 @ 25 fps) but a few seconds long; every reported
// rate is per second, so the paper's numbers are directly comparable.
constexpr int kPalWidth = 640;
constexpr int kPalHeight = 480;
constexpr double kSeconds = 2.0;

struct CapturedExample {
  MemoryBlobStore store;
  AvCaptureResult result;
};

CapturedExample& Example() {
  static CapturedExample* example = [] {
    auto* e = new CapturedExample();
    std::vector<Image> frames =
        videogen::Clip(kPalWidth, kPalHeight,
                       static_cast<int64_t>(kSeconds * 25), 1994);
    AudioBuffer audio =
        audiogen::Sine(44100, 2, 440.0, 0.5, kSeconds + 0.1);
    AvCaptureConfig config;  // PAL + VHS quality + CD audio defaults.
    e->result = ValueOrDie(
        CaptureInterleavedAv(&e->store, frames, audio, config),
        "figure 2 capture");
    return e;
  }();
  return *example;
}

void PrintFigure2() {
  bench::Header(
      "Figure 2 reproduction: interpretation of a BLOB\n"
      "(PAL video, RGB->YUV->TJPEG at \"VHS quality\", interleaved with\n"
      " 44.1 kHz 16-bit stereo PCM; audio samples follow their frame)");
  CapturedExample& e = Example();
  const Interpretation& interp = e.result.interpretation;

  for (const InterpretedObject& object : interp.objects()) {
    TimedStream stream = ValueOrDie(
        interp.Materialize(e.store, object.name), "materialize");
    StreamCategories cats = Classify(stream);
    MediaDescriptor desc = object.descriptor;
    desc.attrs.SetString("category", cats.ToString());
    desc.attrs.SetString(
        "duration", std::to_string(stream.DurationSeconds().ToDouble()) + " s");
    std::printf("\n%s\n", desc.ToString(object.name).c_str());
  }

  uint64_t blob_size = ValueOrDie(e.store.Size(e.result.blob), "blob size");
  double raw_rate = e.result.raw_video_bytes / kSeconds;
  double video_rate = e.result.encoded_video_bytes / kSeconds;
  double audio_rate = e.result.audio_bytes / kSeconds;

  std::printf("\nData-rate accounting (paper's numbers in brackets):\n");
  std::printf("  raw video           %10s   [~22 MB/s for 24-bit PAL]\n",
              HumanRate(raw_rate).c_str());
  std::printf("  encoded video       %10s   [~0.5 MB/s at VHS quality]\n",
              HumanRate(video_rate).c_str());
  std::printf("  audio               %10s   [172 kB/s = 44100*2*2]\n",
              HumanRate(audio_rate).c_str());
  std::printf("  compression ratio   %9.1fx   [~44x]\n",
              raw_rate / video_rate);
  std::printf("  BLOB size           %10s   coverage %.1f%%\n",
              HumanBytes(blob_size).c_str(),
              100.0 * interp.Coverage(blob_size));

  // The paper's table view of the mapping: one row per element.
  auto video_obj = ValueOrDie(interp.FindObject("video1"), "video1");
  std::printf("\nvideo1(elementNumber, elementSize, blobPlacement) — first rows:\n");
  for (int i = 0; i < 4; ++i) {
    const ElementPlacement& p = video_obj->elements[i];
    std::printf("  (%3lld, %6llu, %8llu)\n",
                static_cast<long long>(p.element_number),
                static_cast<unsigned long long>(p.placement.length),
                static_cast<unsigned long long>(p.placement.offset));
  }
  auto audio_obj = ValueOrDie(interp.FindObject("audio1"), "audio1");
  std::printf("audio1 element 0: %lld sample pairs [paper: 1764 per PAL frame]\n",
              static_cast<long long>(audio_obj->elements[0].duration));

  CompactElementIndex index = CompactElementIndex::Build(*video_obj);
  std::printf(
      "\nIndex compaction (QuickTime-style): flat table %zu B -> compact "
      "%zu B (%zu time runs, %zu chunks)\n",
      video_obj->elements.size() * sizeof(ElementPlacement),
      index.MemoryBytes(), index.time_run_count(), index.chunk_count());
}

// --- Benchmarks -------------------------------------------------------------

void BM_IndexedElementAtTime(benchmark::State& state) {
  CapturedExample& e = Example();
  auto video_obj =
      ValueOrDie(e.result.interpretation.FindObject("video1"), "video1");
  CompactElementIndex index = CompactElementIndex::Build(*video_obj);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.ElementAtTime(t));
    t = (t + 3) % index.element_count();
  }
}
BENCHMARK(BM_IndexedElementAtTime);

void BM_LinearElementAtTime(benchmark::State& state) {
  CapturedExample& e = Example();
  auto video_obj =
      ValueOrDie(e.result.interpretation.FindObject("video1"), "video1");
  int64_t t = 0;
  for (auto _ : state) {
    // Linear scan baseline over the flat table.
    const ElementPlacement* hit = nullptr;
    for (const ElementPlacement& p : video_obj->elements) {
      if (p.start <= t && t < p.start + p.duration) {
        hit = &p;
        break;
      }
    }
    benchmark::DoNotOptimize(hit);
    t = (t + 3) % static_cast<int64_t>(video_obj->elements.size());
  }
}
BENCHMARK(BM_LinearElementAtTime);

void BM_MaterializeVideoElement(benchmark::State& state) {
  CapturedExample& e = Example();
  int64_t element = 0;
  for (auto _ : state) {
    auto read = e.result.interpretation.ReadElement(e.store, "video1",
                                                    element);
    bench::CheckOk(read.status(), "read element");
    benchmark::DoNotOptimize(read->data.data());
    element = (element + 1) % 50;
  }
}
BENCHMARK(BM_MaterializeVideoElement);

void BM_MaterializeSpan(benchmark::State& state) {
  CapturedExample& e = Example();
  for (auto _ : state) {
    auto span = e.result.interpretation.MaterializeSpan(
        e.store, "audio1", TickSpan{44100 / 2, 44100 / 4});
    bench::CheckOk(span.status(), "span");
    benchmark::DoNotOptimize(span->size());
  }
}
BENCHMARK(BM_MaterializeSpan);

void BM_CaptureInterleaved(benchmark::State& state) {
  // Cost of the whole Figure 2 capture pipeline per frame, at reduced
  // geometry to keep iterations fast.
  std::vector<Image> frames = videogen::Clip(160, 120, 10, 7);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.5, 0.5);
  for (auto _ : state) {
    MemoryBlobStore store;
    auto result =
        CaptureInterleavedAv(&store, frames, audio, AvCaptureConfig{});
    bench::CheckOk(result.status(), "capture");
    benchmark::DoNotOptimize(result->encoded_video_bytes);
  }
  state.SetItemsProcessed(state.iterations() * frames.size());
}
BENCHMARK(BM_CaptureInterleaved)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintFigure2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Serve-layer ablation: the tentpole acceptance check for the
// multi-session media service. An in-memory database (one PCM-block
// clip) sits behind a FaultInjectingStore with a 5% transient read
// fault rate, and a MediaServer sized to admit exactly 64 sessions —
// 63 at full fidelity, the 64th at stride 2 — is offered 72.
//
// Phase 1 opens the 72 sessions sequentially so the admission order is
// exact: every denial must come after the first degraded admission
// (degrade-before-deny is the acceptance criterion, not a tendency).
// Phase 2 streams all admitted sessions concurrently over loopback
// transports; the global byte budget paces (and mid-stream degrades)
// them, retries absorb most injected faults, and every session must
// end DONE or DEGRADED with bit-exact payloads for every element it
// was delivered.
//
// Prints a JSON object with p50/p99 request latency and the
// admit/degrade/deny/evict counts; `-o <file>` also writes it to a
// file (the committed BENCH_serve.json at the repo root is one such
// run). Exits 1 on any acceptance violation.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "blob/fault_store.h"
#include "blob/memory_store.h"
#include "db/database.h"
#include "interp/capture.h"
#include "serve/client.h"
#include "serve/server.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kSessionsAttempted = 72;
constexpr int kRequiredAdmitted = 64;
constexpr int kElements = 32;
constexpr int kElementBytes = 512;
constexpr double kFaultRate = 0.05;

// One element per tick at 10 ticks/s: the clip's average rate.
constexpr double kClipRate = kElementBytes * 10.0;

Bytes ElementPayload(int index) {
  Bytes bytes(kElementBytes);
  for (int j = 0; j < kElementBytes; ++j) {
    bytes[static_cast<size_t>(j)] =
        static_cast<uint8_t>(index * 131 + j * 7 + 3);
  }
  return bytes;
}

std::unique_ptr<MediaDatabase> BuildDb(FaultInjectingStore** faulty_out) {
  FaultConfig faults;
  faults.read_fault_rate = kFaultRate;
  faults.seed = 17;
  auto faulty = std::make_unique<FaultInjectingStore>(
      std::make_unique<MemoryBlobStore>(), faults);
  *faulty_out = faulty.get();
  auto db = MediaDatabase::CreateWithStore(std::move(faulty));
  auto capture = ValueOrDie(CaptureSession::Begin(db->blob_store()), "capture");
  MediaDescriptor descriptor;
  descriptor.type_name = "audio/pcm-block";
  descriptor.kind = MediaKind::kAudio;
  size_t handle =
      ValueOrDie(capture.DeclareObject("clip", descriptor, TimeSystem(10)),
                 "declare");
  for (int i = 0; i < kElements; ++i) {
    CheckOk(capture.CaptureContiguous(handle, ElementPayload(i), 1),
            "capture element");
  }
  auto interpretation = ValueOrDie(capture.Finish(), "finish capture");
  ObjectId interp_id = ValueOrDie(
      db->AddInterpretation("clip_interp", interpretation), "add interp");
  ValueOrDie(db->AddMediaObject("clip", interp_id, "clip"), "add object");
  return db;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  return sorted[std::min(index, sorted.size() - 1)];
}

int Run(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) out_path = argv[i + 1];
  }

  FaultInjectingStore* faulty = nullptr;
  auto db = BuildDb(&faulty);

  serve::ServeConfig config;
  config.max_sessions = kSessionsAttempted + 8;
  // Room for 63 full-rate sessions plus one stride-2 tier: the 64th
  // admission must degrade, the 65th must be denied.
  config.capacity_bytes_per_second =
      (kRequiredAdmitted - 1) * kClipRate + kClipRate / 2.0;
  config.max_stride = 8;
  config.worker_threads = 8;
  config.io_threads = 4;
  config.budget_wait = std::chrono::milliseconds(100);
  config.read_options.policy.max_retries = 4;
  config.read_options.policy.backoff_initial_us = 50.0;
  serve::MediaServer sized_server(db.get(), config);

  // ---- Phase 1: sequential admissions (exact degrade-before-deny order).
  std::vector<std::unique_ptr<serve::MediaClient>> clients;
  int admitted_full = 0, admitted_degraded = 0, denied = 0;
  bool deny_before_degrade = false;
  for (int i = 0; i < kSessionsAttempted; ++i) {
    auto [client_end, server_end] = serve::CreateLoopbackPair();
    CheckOk(sized_server.Serve(std::move(server_end)), "adopt connection");
    auto client = std::make_unique<serve::MediaClient>(std::move(client_end));
    auto open = client->Open("clip");
    if (!open.ok()) {
      ++denied;
      if (admitted_degraded == 0) deny_before_degrade = true;
      continue;
    }
    if (open->stride > 1) {
      ++admitted_degraded;
    } else {
      ++admitted_full;
    }
    clients.push_back(std::move(client));
  }
  int admitted = admitted_full + admitted_degraded;

  // ---- Phase 2: stream every admitted session concurrently.
  std::mutex results_mu;
  std::vector<double> latencies_us;
  int bad_states = 0, payload_mismatches = 0, transport_failures = 0;
  uint64_t delivered_total = 0, skipped_total = 0;

  double wall_start = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (auto& client_ptr : clients) {
    threads.emplace_back([&, client = client_ptr.get()] {
      std::vector<double> local_latencies;
      int local_mismatches = 0;
      bool end_of_stream = false;
      for (int rounds = 0; !end_of_stream && rounds < 4 * kElements;
           ++rounds) {
        auto start = std::chrono::steady_clock::now();
        auto batch = client->Read(8);
        auto elapsed = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        if (!batch.ok()) {
          std::lock_guard<std::mutex> lock(results_mu);
          ++transport_failures;
          return;
        }
        local_latencies.push_back(elapsed);
        for (const serve::WireElement& element : batch->elements) {
          if (element.payload !=
              ElementPayload(static_cast<int>(element.element_number))) {
            ++local_mismatches;
          }
        }
        end_of_stream = batch->end_of_stream;
      }
      auto stats = client->Stats();
      std::lock_guard<std::mutex> lock(results_mu);
      latencies_us.insert(latencies_us.end(), local_latencies.begin(),
                          local_latencies.end());
      payload_mismatches += local_mismatches;
      if (!stats.ok()) {
        ++transport_failures;
        return;
      }
      delivered_total += stats->elements_delivered;
      skipped_total += stats->elements_skipped;
      if (stats->state != serve::SessionState::kDone &&
          stats->state != serve::SessionState::kDegraded) {
        ++bad_states;
      }
      (void)client->Close();
    });
  }
  for (std::thread& thread : threads) thread.join();
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count() -
                   wall_start;
  sized_server.Stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  double p50 = Percentile(latencies_us, 0.50);
  double p99 = Percentile(latencies_us, 0.99);
  serve::ServerStatsSnapshot stats = sized_server.stats();

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"ablation_serve\",\n"
      " \"workload\": \"%d loopback sessions offered, %d-element clip, "
      "%d B/element, 5%% transient read faults\",\n"
      " \"sessions_attempted\": %d,\n"
      " \"sessions_admitted\": %d,\n"
      " \"admitted_full\": %d,\n"
      " \"admitted_degraded\": %d,\n"
      " \"sessions_denied\": %d,\n"
      " \"sessions_evicted\": %llu,\n"
      " \"degraded_total\": %llu,\n"
      " \"degrade_before_deny\": %s,\n"
      " \"requests\": %llu,\n"
      " \"read_p50_us\": %.1f,\n"
      " \"read_p99_us\": %.1f,\n"
      " \"injected_read_faults\": %llu,\n"
      " \"elements_delivered\": %llu,\n"
      " \"elements_skipped\": %llu,\n"
      " \"response_bytes\": %llu,\n"
      " \"stream_wall_ms\": %.1f,\n"
      " \"payload_mismatches\": %d,\n"
      " \"sessions_not_done_or_degraded\": %d}\n",
      kSessionsAttempted, kElements, kElementBytes, kSessionsAttempted,
      admitted, admitted_full, admitted_degraded, denied,
      static_cast<unsigned long long>(stats.sessions_evicted),
      static_cast<unsigned long long>(stats.sessions_degraded),
      deny_before_degrade ? "false" : "true",
      static_cast<unsigned long long>(stats.requests), p50, p99,
      static_cast<unsigned long long>(faulty->injected_read_faults()),
      static_cast<unsigned long long>(delivered_total),
      static_cast<unsigned long long>(skipped_total),
      static_cast<unsigned long long>(stats.response_bytes), wall_ms,
      payload_mismatches, bad_states);
  std::printf("%s", json);

  int failures = 0;
  if (admitted < kRequiredAdmitted) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: admitted %d < %d sessions\n",
                 admitted, kRequiredAdmitted);
    ++failures;
  }
  if (deny_before_degrade) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILURE: a session was denied before any "
                 "degraded admission\n");
    ++failures;
  }
  if (denied == 0) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILURE: overload never reached denial — "
                 "capacity is not binding\n");
    ++failures;
  }
  if (bad_states != 0 || transport_failures != 0) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILURE: %d sessions not DONE/DEGRADED, "
                 "%d transport failures\n",
                 bad_states, transport_failures);
    ++failures;
  }
  if (stats.sessions_evicted != 0) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: %llu sessions evicted\n",
                 static_cast<unsigned long long>(stats.sessions_evicted));
    ++failures;
  }
  if (payload_mismatches != 0) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: %d payload mismatches\n",
                 payload_mismatches);
    ++failures;
  }
  if (faulty->injected_read_faults() == 0) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILURE: the fault injector never fired\n");
    ++failures;
  }
  if (failures != 0) return 1;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) { return tbm::Run(argc, argv); }

// Zero-copy buffer-sharing ablation: the acceptance check for the
// ref-counted Buffer/BufferSlice ownership refactor. A timing-only
// derivation program (edit → reverse → 4x slow-motion) is run over a
// decoded clip two ways:
//
//  - deep-copy:  every step materializes owned pixel vectors, the
//                pre-refactor ownership model (emulated here with
//                MutableCopy at each frame hand-off);
//  - zero-copy:  the shipped operator path, where timing-only steps
//                re-arrange BufferSlices over the source's buffers and
//                no pixel is copied.
//
// Besides wall time, the run reports the memory story the paper's
// storage argument (Table 1) depends on: the derived program's
// logical bytes (every frame counted at full size) against its
// resident bytes (unique backing buffers only), and the cache charge
// for inserting source + view under deduplicated accounting.
//
// Prints a JSON object; `-o <file>` also writes it to a file (the
// committed BENCH_zero_copy.json at the repo root is one such run).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "codec/synthetic.h"
#include "derive/cache.h"
#include "derive/operators.h"
#include "derive/value.h"

namespace tbm {
namespace {

using bench::ValueOrDie;

constexpr int kFrames = 192;
constexpr int kWidth = 320;
constexpr int kHeight = 240;
constexpr int kRepetitions = 5;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const DerivationRegistry& Reg() { return DerivationRegistry::Builtin(); }

MediaValue MakeClip() {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(kWidth, kHeight, kFrames, 5);
  return video;
}

/// Forces every frame of `video` onto a freshly owned buffer — the
/// pre-refactor cost of handing a value across an ownership boundary.
VideoValue DeepCopy(const VideoValue& video) {
  VideoValue out;
  out.frame_rate = video.frame_rate;
  out.frames.reserve(video.frames.size());
  for (const Image& frame : video.frames) {
    Image copy = frame;
    copy.data = frame.data.MutableCopy();
    out.frames.push_back(std::move(copy));
  }
  return out;
}

/// The timing-only program: edit out a span, reverse it, slow it 4x.
MediaValue RunProgram(const MediaValue& source, bool deep_copy) {
  AttrMap edit_params;
  edit_params.SetInt("start frame", kFrames / 8);
  edit_params.SetInt("frame count", 3 * kFrames / 4);
  MediaValue edited =
      ValueOrDie(Reg().Apply("video edit", {&source}, edit_params), "edit");
  if (deep_copy) edited = DeepCopy(std::get<VideoValue>(edited));
  MediaValue reversed =
      ValueOrDie(Reg().Apply("video reverse", {&edited}, AttrMap{}), "rev");
  if (deep_copy) reversed = DeepCopy(std::get<VideoValue>(reversed));
  AttrMap speed_params;
  speed_params.SetInt("speed num", 1);
  speed_params.SetInt("speed den", 4);
  MediaValue slowed =
      ValueOrDie(Reg().Apply("video speed", {&reversed}, speed_params), "spd");
  if (deep_copy) slowed = DeepCopy(std::get<VideoValue>(slowed));
  return slowed;
}

double MeasureMs(const MediaValue& source, bool deep_copy) {
  double best = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    double start = NowMs();
    MediaValue result = RunProgram(source, deep_copy);
    if (std::get<VideoValue>(result).frames.empty()) std::abort();
    best = std::min(best, NowMs() - start);
  }
  return best;
}

int Run(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) out_path = argv[i + 1];
  }

  MediaValue source = MakeClip();
  uint64_t source_bytes = ExpandedBytes(source);

  double copy_ms = MeasureMs(source, /*deep_copy=*/true);
  double share_ms = MeasureMs(source, /*deep_copy=*/false);
  double speedup = share_ms > 0 ? copy_ms / share_ms : 0.0;

  MediaValue derived = RunProgram(source, /*deep_copy=*/false);
  uint64_t logical = ExpandedBytes(derived);
  uint64_t resident = ResidentBytes(derived);

  // Deduplicated cache accounting: caching the 4x-expanded view next
  // to its source charges (nearly) nothing beyond the source.
  ExpansionCache cache(1ull << 30, 1);
  cache.Insert(1, std::make_shared<const MediaValue>(source), source_bytes,
               0.01);
  uint64_t charge_before = cache.stats().bytes_cached;
  cache.Insert(2, std::make_shared<const MediaValue>(std::move(derived)),
               logical, 0.01);
  uint64_t view_charge = cache.stats().bytes_cached - charge_before;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"ablation_zero_copy\",\n"
      " \"workload\": \"%dx%d RGB clip, %d frames; edit + reverse + 4x "
      "slow-motion (timing-only)\",\n"
      " \"deep_copy_ms\": %.2f,\n"
      " \"zero_copy_ms\": %.2f,\n"
      " \"speedup\": %.1f,\n"
      " \"derived_logical_bytes\": %llu,\n"
      " \"derived_resident_bytes\": %llu,\n"
      " \"logical_over_resident\": %.2f,\n"
      " \"cache_charge_source\": %llu,\n"
      " \"cache_charge_view\": %llu}\n",
      kWidth, kHeight, kFrames, copy_ms, share_ms, speedup,
      (unsigned long long)logical, (unsigned long long)resident,
      resident > 0 ? (double)logical / (double)resident : 0.0,
      (unsigned long long)charge_before, (unsigned long long)view_charge);
  std::printf("%s", json);
  if (speedup < 5.0) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: speedup %.1fx < 5x\n", speedup);
    return 1;
  }
  if (resident >= logical) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILURE: resident %llu >= logical %llu\n",
                 (unsigned long long)resident, (unsigned long long)logical);
    return 1;
  }
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) { return tbm::Run(argc, argv); }

// Reproduces Table 1 ("Examples of Derivation") and Figure 3: runs the
// five derivations the paper names — color separation, audio
// normalization, video edit, video transition, MIDI synthesis — prints
// the table with measured argument/result types and categories, and
// quantifies the storage-saving and real-time-feasibility claims of
// §4.2 for each.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "derive/graph.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

VideoValue Clip(int64_t frames, uint32_t scene) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(160, 120, frames, scene);
  return video;
}

MidiSequence Melody() {
  MidiSequence seq(480, 120.0);
  for (int i = 0; i < 16; ++i) {
    CheckOk(seq.AddNote(i * 480, 400, 60 + (i * 5) % 12, 100), "note");
  }
  return seq;
}

struct Table1Row {
  const char* derivation;
  const char* op;
  std::vector<NodeId> inputs;
  AttrMap params;
};

void PrintTable1() {
  bench::Header(
      "Table 1 / Figure 3 reproduction: the five named derivations\n"
      "(argument type(s), result type, category — plus measured\n"
      " derivation-record size vs expanded size and real-time check)");

  DerivationGraph graph;
  NodeId image = graph.AddLeaf(videogen::Still(320, 240, 8), "image1");
  NodeId audio =
      graph.AddLeaf(audiogen::Sine(44100, 2, 440.0, 0.25, 2.0), "audio1");
  NodeId video_a = graph.AddLeaf(Clip(50, 10), "video1");
  NodeId video_b = graph.AddLeaf(Clip(50, 20), "video2");
  NodeId music = graph.AddLeaf(Melody(), "music1");

  std::vector<Table1Row> rows;
  {
    AttrMap params;
    params.SetDouble("black generation", 1.0);
    params.SetDouble("under color removal", 1.0);
    rows.push_back({"color separation", "color separation", {image}, params});
  }
  {
    AttrMap params;
    params.SetDouble("target peak", 0.95);
    rows.push_back(
        {"audio normalization", "audio normalization", {audio}, params});
  }
  {
    AttrMap params;
    params.SetInt("start frame", 5);
    params.SetInt("frame count", 30);
    rows.push_back({"video edit", "video edit", {video_a}, params});
  }
  {
    AttrMap params;
    params.SetString("kind", "fade");
    params.SetInt("duration frames", 10);
    rows.push_back({"video transition", "video transition",
                    {video_a, video_b}, params});
  }
  {
    AttrMap params;
    params.SetInt("sample rate", 44100);
    params.SetInt("channels", 2);
    params.SetInt("instrument", 4);
    rows.push_back({"MIDI synthesis", "MIDI synthesis", {music}, params});
  }

  std::printf("%-20s %-16s %-8s %-18s %10s %12s %8s %9s\n", "derivation",
              "argument(s)", "result", "category", "record B", "expanded B",
              "ratio", "real-time");
  const DerivationRegistry& registry = DerivationRegistry::Builtin();
  for (Table1Row& row : rows) {
    const DerivationOp* op = ValueOrDie(registry.Find(row.op), "find op");
    NodeId node = ValueOrDie(
        graph.AddDerived(row.op, row.inputs, row.params, row.derivation),
        "add derived");
    auto feasibility =
        ValueOrDie(graph.MeasureFeasibility(node), "feasibility");
    ValueRef value = ValueOrDie(graph.Evaluate(node), "evaluate");
    uint64_t record = ValueOrDie(graph.DerivationRecordBytes(node), "record");
    uint64_t expanded = ExpandedBytes(*value);

    std::string args;
    for (size_t i = 0; i < op->arg_kinds.size(); ++i) {
      if (i) args += ", ";
      args += MediaKindToString(op->arg_kinds[i]);
    }
    std::printf("%-20s %-16s %-8s %-18s %10llu %12llu %7llux %9s\n",
                row.derivation, args.c_str(),
                std::string(MediaKindToString(op->result_kind)).c_str(),
                std::string(DerivationCategoryToString(op->category)).c_str(),
                static_cast<unsigned long long>(record),
                static_cast<unsigned long long>(expanded),
                static_cast<unsigned long long>(expanded / record),
                feasibility.real_time ? "yes" : "NO");
  }
  std::printf(
      "\nPaper checks: video edit is 'change of timing', transition and\n"
      "separation and normalization are 'change of content', synthesis is\n"
      "'change of type'; derivation records are orders of magnitude\n"
      "smaller than expanded objects (\"an edit list is likely many orders\n"
      "of magnitude smaller than a video object\").\n");
}

// --- Benchmarks: expansion cost per derivation -----------------------------

void BM_ColorSeparation(benchmark::State& state) {
  const DerivationRegistry& reg = DerivationRegistry::Builtin();
  MediaValue image = videogen::Still(state.range(0), state.range(0), 3);
  AttrMap params;
  for (auto _ : state) {
    auto out = reg.Apply("color separation", {&image}, params);
    CheckOk(out.status(), "separation");
    benchmark::DoNotOptimize(std::get<Image>(*out).data.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          std::get<Image>(image).data.size());
}
BENCHMARK(BM_ColorSeparation)->Arg(64)->Arg(256)->Arg(512);

void BM_AudioNormalization(benchmark::State& state) {
  const DerivationRegistry& reg = DerivationRegistry::Builtin();
  MediaValue audio =
      audiogen::Sine(44100, 2, 440.0, 0.25, static_cast<double>(state.range(0)));
  AttrMap params;
  params.SetDouble("target peak", 0.95);
  for (auto _ : state) {
    auto out = reg.Apply("audio normalization", {&audio}, params);
    CheckOk(out.status(), "normalize");
    benchmark::DoNotOptimize(std::get<AudioBuffer>(*out).samples.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 44100);
}
BENCHMARK(BM_AudioNormalization)->Arg(1)->Arg(5);

void BM_VideoEdit(benchmark::State& state) {
  const DerivationRegistry& reg = DerivationRegistry::Builtin();
  MediaValue video = Clip(state.range(0), 5);
  AttrMap params;
  params.SetInt("start frame", 2);
  params.SetInt("frame count", state.range(0) / 2);
  for (auto _ : state) {
    auto out = reg.Apply("video edit", {&video}, params);
    CheckOk(out.status(), "edit");
    benchmark::DoNotOptimize(std::get<VideoValue>(*out).frames.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) / 2);
}
BENCHMARK(BM_VideoEdit)->Arg(16)->Arg(64);

void BM_VideoTransitionFade(benchmark::State& state) {
  const DerivationRegistry& reg = DerivationRegistry::Builtin();
  MediaValue a = Clip(20, 10);
  MediaValue b = Clip(20, 20);
  AttrMap params;
  params.SetString("kind", "fade");
  params.SetInt("duration frames", state.range(0));
  for (auto _ : state) {
    auto out = reg.Apply("video transition", {&a, &b}, params);
    CheckOk(out.status(), "fade");
    benchmark::DoNotOptimize(std::get<VideoValue>(*out).frames.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VideoTransitionFade)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

void BM_MidiSynthesis(benchmark::State& state) {
  const DerivationRegistry& reg = DerivationRegistry::Builtin();
  MediaValue music = Melody();
  AttrMap params;
  params.SetInt("sample rate", static_cast<int64_t>(state.range(0)));
  params.SetInt("channels", 2);
  for (auto _ : state) {
    auto out = reg.Apply("MIDI synthesis", {&music}, params);
    CheckOk(out.status(), "synthesis");
    benchmark::DoNotOptimize(std::get<AudioBuffer>(*out).samples.data());
  }
}
BENCHMARK(BM_MidiSynthesis)->Arg(8000)->Arg(44100)->Unit(benchmark::kMillisecond);

void BM_ChromaKey(benchmark::State& state) {
  const DerivationRegistry& reg = DerivationRegistry::Builtin();
  MediaValue fg = Clip(10, 11);
  MediaValue bg = Clip(10, 22);
  AttrMap params;
  for (auto _ : state) {
    auto out = reg.Apply("chroma key", {&fg, &bg}, params);
    CheckOk(out.status(), "chroma key");
    benchmark::DoNotOptimize(std::get<VideoValue>(*out).frames.size());
  }
}
BENCHMARK(BM_ChromaKey)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintTable1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

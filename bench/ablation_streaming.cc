// Streaming read-pipeline ablation: the tentpole acceptance check for
// the chunked-read + prefetch + retry stack. A TJPEG clip is stored in
// a cold FileBlobStore wrapped in a FaultInjectingStore that models a
// mid-90s sequential device (fixed per-request latency plus a per-KiB
// transfer cost), and the same object is then expanded to frames four
// ways:
//
//  - whole:    one ranged read of the entire BLOB, slice, decode —
//              maximum batching, whole object resident;
//  - sync:     Interpretation::Materialize (one ranged read per
//              element) + DecodeStream — the pre-streaming read path;
//  - depth N:  DecodeStreamed with chunked reads and a prefetch depth
//              of N (N = 1, 4, 16), decode overlapping store I/O.
//
// A second section plays the clip through PlayStreamed against a 5%
// transient read-fault rate with retries enabled, demonstrating the
// zero-abort acceptance criterion.
//
// Prints a JSON object; `-o <file>` also writes it to a file (the
// committed BENCH_streaming.json at the repo root is one such run).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "base/thread_pool.h"
#include "bench/bench_util.h"
#include "blob/fault_store.h"
#include "blob/file_store.h"
#include "codec/synthetic.h"
#include "db/codec_bridge.h"
#include "playback/streaming.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kFrames = 256;
constexpr int kRepetitions = 3;  // Keep the min: device latency is
                                 // injected, so runs are near-identical
                                 // and the min sheds scheduler noise.

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

VideoValue MakeClip() {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(128, 96, kFrames, 11);
  return video;
}

size_t FrameCount(const MediaValue& value) {
  return std::get<VideoValue>(value).frames.size();
}

/// Baseline A: one ranged read of the whole BLOB, then slice elements
/// out of the buffer and decode.
double MeasureWholeObjectMs(const BlobStore& store,
                            const Interpretation& interp,
                            const std::string& name) {
  double best = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    double start = NowMs();
    uint64_t blob_size = ValueOrDie(store.Size(interp.blob()), "size");
    BufferSlice all =
        ValueOrDie(store.Read(interp.blob(), ByteRange{0, blob_size}), "read");
    const InterpretedObject* object =
        ValueOrDie(interp.FindObject(name), "find");
    TimedStream stream(object->descriptor, object->time_system);
    for (const ElementPlacement& element : object->elements) {
      Bytes data(all.begin() + element.placement.offset,
                 all.begin() + element.placement.end());
      CheckOk(stream.Append({std::move(data), element.start, element.duration,
                             element.descriptor}),
              "append");
    }
    MediaValue value = ValueOrDie(DecodeStream(stream), "decode");
    if (FrameCount(value) != kFrames) std::abort();
    best = std::min(best, NowMs() - start);
  }
  return best;
}

/// Baseline B: the pre-streaming path — one ranged read per element,
/// then decode the assembled stream.
double MeasureSyncElementsMs(const BlobStore& store,
                             const Interpretation& interp,
                             const std::string& name) {
  double best = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    double start = NowMs();
    TimedStream stream = ValueOrDie(interp.Materialize(store, name), "mat");
    MediaValue value = ValueOrDie(DecodeStream(stream), "decode");
    if (FrameCount(value) != kFrames) std::abort();
    best = std::min(best, NowMs() - start);
  }
  return best;
}

/// Streamed: chunked reads with prefetch depth `depth`, decode
/// overlapping I/O.
double MeasureStreamedMs(const BlobStore& store, const Interpretation& interp,
                         const std::string& name, int depth, ThreadPool* pool,
                         ElementStreamStats* stats) {
  double best = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    double start = NowMs();
    StreamReadOptions options;
    options.chunk_size = 16 * 1024;
    options.prefetch_depth = depth;
    options.pool = depth > 0 ? pool : nullptr;
    ElementStreamStats run_stats;
    MediaValue value = ValueOrDie(
        DecodeStreamed(store, interp, name, options, &run_stats), "streamed");
    if (FrameCount(value) != kFrames) std::abort();
    double elapsed = NowMs() - start;
    if (elapsed < best) {
      best = elapsed;
      if (stats != nullptr) *stats = run_stats;
    }
  }
  return best;
}

int Run(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) out_path = argv[i + 1];
  }

  std::string dir = std::filesystem::temp_directory_path() /
                    "tbm_bench_streaming";
  std::filesystem::remove_all(dir);

  // The device model: 8 ms per request (seek + rotational + request
  // round-trip) plus 150 us/KiB (~6.5 MB/s sustained) — a mid-90s
  // magnetic disk, the hardware the paper's continuous-media servers
  // ran on. Faults off in the latency section.
  FaultConfig device;
  device.read_latency_fixed_us = 8'000.0;
  device.read_latency_per_kib_us = 150.0;
  FaultInjectingStore store(
      ValueOrDie(FileBlobStore::Open(dir), "open file store"), device);

  Interpretation interp = ValueOrDie(
      StoreValue(store.inner(), MediaValue(MakeClip()), "clip"), "store clip");
  uint64_t blob_bytes = ValueOrDie(store.Size(interp.blob()), "size");

  ThreadPool pool(8);
  double whole_ms = MeasureWholeObjectMs(store, interp, "clip");
  double sync_ms = MeasureSyncElementsMs(store, interp, "clip");
  ElementStreamStats depth4_stats;
  double depth1_ms = MeasureStreamedMs(store, interp, "clip", 1, &pool, nullptr);
  double depth4_ms =
      MeasureStreamedMs(store, interp, "clip", 4, &pool, &depth4_stats);
  double depth16_ms =
      MeasureStreamedMs(store, interp, "clip", 16, &pool, nullptr);
  double speedup = depth4_ms > 0 ? sync_ms / depth4_ms : 0.0;

  // Fault tolerance: 5% transient read-fault rate, retries on — the
  // zero-abort criterion. Latency off so retries are cheap to run.
  FaultConfig flaky;
  flaky.read_fault_rate = 0.05;
  flaky.seed = 42;
  FaultInjectingStore faulty(
      ValueOrDie(FileBlobStore::Open(dir), "reopen file store"), flaky);
  StreamReadOptions robust;
  robust.chunk_size = 8 * 1024;
  robust.prefetch_depth = 4;
  robust.pool = &pool;
  robust.policy.max_retries = 8;
  robust.policy.backoff_initial_us = 50.0;
  StreamedPlaybackReport report = ValueOrDie(
      PlayStreamed(faulty, interp, {"clip"}, PlaybackConfig{}, robust),
      "faulty playback");

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"ablation_streaming\",\n"
      " \"workload\": \"TJPEG clip, %d frames, %llu KiB BLOB, cold file "
      "store\",\n"
      " \"device_model\": \"8 ms/request + 150 us/KiB (~6.5 MB/s)\",\n"
      " \"whole_object_ms\": %.1f,\n"
      " \"sync_per_element_ms\": %.1f,\n"
      " \"streamed_depth1_ms\": %.1f,\n"
      " \"streamed_depth4_ms\": %.1f,\n"
      " \"streamed_depth16_ms\": %.1f,\n"
      " \"speedup_depth4_vs_sync\": %.2f,\n"
      " \"depth4_prefetch_hit_rate\": %.2f,\n"
      " \"depth4_prefetch_stalls\": %llu,\n"
      " \"fault_rate\": 0.05,\n"
      " \"fault_injected_read_faults\": %llu,\n"
      " \"fault_elements_skipped\": %llu,\n"
      " \"fault_elements_played\": %lld}\n",
      kFrames, static_cast<unsigned long long>(blob_bytes / 1024), whole_ms,
      sync_ms, depth1_ms, depth4_ms, depth16_ms, speedup,
      depth4_stats.prefetch.HitRate(),
      static_cast<unsigned long long>(depth4_stats.prefetch.stalls),
      static_cast<unsigned long long>(faulty.injected_read_faults()),
      static_cast<unsigned long long>(report.elements_skipped),
      static_cast<long long>(report.playback.total_elements));
  std::printf("%s", json);
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILURE: depth-4 speedup %.2fx < 1.5x\n", speedup);
    return 1;
  }
  if (report.elements_skipped != 0) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: %llu elements skipped\n",
                 static_cast<unsigned long long>(report.elements_skipped));
    return 1;
  }
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json, f);
    std::fclose(f);
  }
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) { return tbm::Run(argc, argv); }

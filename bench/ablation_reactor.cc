// Reactor ablation: the tentpole acceptance check for the event-driven
// serve core. One process holds 1024 concurrent streams against a
// single MediaServer (whose reactor loop multiplexes every connection
// on one thread) in two shapes:
//
//   multiplexed          16 connections x 64 streams each — the v2
//                        protocol's intended shape; per-stream QoS
//                        priorities exercise the priority write
//                        scheduler on every connection.
//   connection-per-stream 1024 connections x 1 stream — the shape a
//                        pre-multiplexing client forces, priced by
//                        per-connection state and client pump threads.
//
// Both shapes must admit all 1024 streams, hold them concurrently
// (active_sessions is sampled while every stream is open), and finish
// with bit-exact payloads, zero evictions, and zero denials. Three
// probes then verify the control loops still bind at this scale:
// admission must degrade-then-deny on an undersized server, byte-budget
// pacing must thin (not kill) a stream that outruns an undersized
// budget, and a flow-control-stalled stream must be evicted while its
// siblings stream on.
//
// Prints a JSON object with per-QoS-priority p50/p99 client-observed
// READ latency for both shapes; `-o <file>` also writes it to a file
// (the committed BENCH_reactor.json at the repo root is one such run).
// Exits 1 on any acceptance violation.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "blob/memory_store.h"
#include "db/database.h"
#include "interp/capture.h"
#include "serve/connection.h"
#include "serve/framing.h"
#include "serve/server.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kStreams = 1024;
constexpr int kMuxConnections = 16;
constexpr int kStreamsPerConnection = kStreams / kMuxConnections;
constexpr int kElements = 32;
constexpr int kElementBytes = 512;
constexpr int kReadBatch = 4;

// One element per tick at 10 ticks/s: the clip's average rate.
constexpr double kClipRate = kElementBytes * 10.0;

// Streams rotate through three scheduler priorities: interactive (0),
// standard (4), background (7).
constexpr uint8_t kPriorities[] = {0, 4, 7};
constexpr int kQosClasses = 3;

Bytes ElementPayload(int index) {
  Bytes bytes(kElementBytes);
  for (int j = 0; j < kElementBytes; ++j) {
    bytes[static_cast<size_t>(j)] =
        static_cast<uint8_t>(index * 131 + j * 7 + 3);
  }
  return bytes;
}

std::unique_ptr<MediaDatabase> BuildDb() {
  auto db = MediaDatabase::CreateWithStore(std::make_unique<MemoryBlobStore>());
  auto capture = ValueOrDie(CaptureSession::Begin(db->blob_store()), "capture");
  MediaDescriptor descriptor;
  descriptor.type_name = "audio/pcm-block";
  descriptor.kind = MediaKind::kAudio;
  size_t handle =
      ValueOrDie(capture.DeclareObject("clip", descriptor, TimeSystem(10)),
                 "declare");
  for (int i = 0; i < kElements; ++i) {
    CheckOk(capture.CaptureContiguous(handle, ElementPayload(i), 1),
            "capture element");
  }
  auto interpretation = ValueOrDie(capture.Finish(), "finish capture");
  ObjectId interp_id = ValueOrDie(
      db->AddInterpretation("clip_interp", interpretation), "add interp");
  ValueOrDie(db->AddMediaObject("clip", interp_id, "clip"), "add object");
  return db;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  return sorted[std::min(index, sorted.size() - 1)];
}

serve::ServeConfig ScaleConfig() {
  serve::ServeConfig config;
  config.max_sessions = kStreams + 64;
  config.max_streams_per_connection = kStreamsPerConnection;
  // Far above the 1024 streams' aggregate booked rate (~5 MB/s):
  // admission takes everyone at stride 1, and the byte budget never
  // runs dry even with every client reading flat out — the scale
  // shapes must finish bit-exact, so pacing degradation (which skips
  // elements by design) is exercised separately in ProbePacing.
  config.capacity_bytes_per_second = 256.0 * 1024 * 1024;
  config.worker_threads = 8;
  config.io_threads = 4;
  config.budget_wait = std::chrono::milliseconds(50);
  config.stall_timeout = std::chrono::seconds(30);
  return config;
}

struct ShapeResult {
  bool held_all_concurrently = false;
  uint64_t admitted = 0;
  uint64_t denied = 0;
  uint64_t evicted = 0;
  int open_failures = 0;
  int read_failures = 0;
  int payload_mismatches = 0;
  int completed = 0;
  double wall_ms = 0.0;
  std::vector<double> latencies_us[kQosClasses];  // Sorted after the run.

  double p50(int qos) { return Percentile(latencies_us[qos], 0.50); }
  double p99(int qos) { return Percentile(latencies_us[qos], 0.99); }
  std::vector<double> all() const {
    std::vector<double> merged;
    for (const auto& per_qos : latencies_us) {
      merged.insert(merged.end(), per_qos.begin(), per_qos.end());
    }
    std::sort(merged.begin(), merged.end());
    return merged;
  }
};

// Runs 1024 streams spread over `connection_count` connections:
// `streams_per_connection` per connection, one driver thread per
// group of 64 streams regardless of shape (so the two shapes differ
// only in connection count, not in client-side driving parallelism).
// Every driver opens its streams, then all drivers rendezvous while
// the main thread samples active_sessions — the "holds 1024
// concurrent streams" claim is measured, not assumed — and only then
// does reading begin.
ShapeResult RunShape(MediaDatabase* db, int connection_count,
                     int streams_per_connection) {
  serve::ServeConfig config = ScaleConfig();
  config.max_streams_per_connection =
      static_cast<size_t>(std::max(streams_per_connection, 1));
  serve::MediaServer server(db, config);

  std::vector<std::unique_ptr<serve::Connection>> connections;
  connections.reserve(static_cast<size_t>(connection_count));
  for (int c = 0; c < connection_count; ++c) {
    auto [client_end, server_end] = serve::CreateLoopbackPair();
    CheckOk(server.Serve(std::move(server_end)), "adopt connection");
    connections.push_back(serve::Connect(std::move(client_end)));
  }

  ShapeResult result;
  std::mutex results_mu;
  std::atomic<int> streams_open{0};
  std::atomic<bool> start_reading{false};

  constexpr int kStreamsPerDriver = 64;
  const int driver_count = kStreams / kStreamsPerDriver;
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<size_t>(driver_count));
  for (int d = 0; d < driver_count; ++d) {
    drivers.emplace_back([&, d] {
      struct Driver {
        std::unique_ptr<serve::StreamHandle> stream;
        int qos_class = 0;
        uint64_t next_expected = 0;
        bool done = false;
      };
      std::vector<Driver> mine(kStreamsPerDriver);
      int local_open_failures = 0;
      for (int i = 0; i < kStreamsPerDriver; ++i) {
        int global = d * kStreamsPerDriver + i;
        serve::Connection* connection =
            connections[static_cast<size_t>(global / streams_per_connection)]
                .get();
        serve::StreamQos qos;
        qos.priority = kPriorities[global % kQosClasses];
        auto stream = connection->OpenStream("clip", qos);
        if (!stream.ok()) {
          ++local_open_failures;
        } else {
          mine[static_cast<size_t>(i)].stream = std::move(*stream);
          mine[static_cast<size_t>(i)].qos_class = global % kQosClasses;
        }
        streams_open.fetch_add(1);
      }
      while (!start_reading.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }

      std::vector<double> local_latencies[kQosClasses];
      int local_read_failures = 0, local_mismatches = 0, local_completed = 0;
      int remaining = 0;
      for (Driver& driver : mine) {
        if (driver.stream != nullptr) ++remaining;
      }
      while (remaining > 0) {
        for (Driver& driver : mine) {
          if (driver.stream == nullptr || driver.done) continue;
          auto start = std::chrono::steady_clock::now();
          auto batch = driver.stream->Read(kReadBatch);
          auto elapsed = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count();
          if (!batch.ok()) {
            ++local_read_failures;
            driver.done = true;
            --remaining;
            continue;
          }
          local_latencies[driver.qos_class].push_back(elapsed);
          for (const serve::WireElement& element : batch->elements) {
            if (element.element_number != driver.next_expected ||
                element.payload !=
                    ElementPayload(static_cast<int>(element.element_number))) {
              ++local_mismatches;
            }
            ++driver.next_expected;
          }
          if (batch->end_of_stream) {
            driver.done = true;
            --remaining;
            if (driver.next_expected == static_cast<uint64_t>(kElements)) {
              ++local_completed;
            }
            (void)driver.stream->Close();
          }
        }
      }
      std::lock_guard<std::mutex> lock(results_mu);
      result.open_failures += local_open_failures;
      result.read_failures += local_read_failures;
      result.payload_mismatches += local_mismatches;
      result.completed += local_completed;
      for (int qos = 0; qos < kQosClasses; ++qos) {
        result.latencies_us[qos].insert(result.latencies_us[qos].end(),
                                        local_latencies[qos].begin(),
                                        local_latencies[qos].end());
      }
    });
  }

  // Rendezvous: every stream is open and held before anyone reads.
  while (streams_open.load() < kStreams) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.held_all_concurrently =
      server.stats().active_sessions == static_cast<uint64_t>(kStreams);
  auto wall_start = std::chrono::steady_clock::now();
  start_reading.store(true, std::memory_order_release);

  for (std::thread& driver : drivers) driver.join();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  connections.clear();
  server.Stop();

  serve::ServerStatsSnapshot stats = server.stats();
  result.admitted = stats.sessions_admitted;
  result.denied = stats.sessions_denied;
  result.evicted = stats.sessions_evicted;
  for (auto& per_qos : result.latencies_us) {
    std::sort(per_qos.begin(), per_qos.end());
  }
  return result;
}

// Admission probe: an undersized server must degrade before denying.
bool ProbeAdmission(MediaDatabase* db, std::string* error) {
  serve::ServeConfig config;
  // Room for two full-rate streams plus one stride-2 tier.
  config.capacity_bytes_per_second = 2.5 * kClipRate;
  config.max_stride = 2;
  serve::MediaServer server(db, config);
  auto [client_end, server_end] = serve::CreateLoopbackPair();
  CheckOk(server.Serve(std::move(server_end)), "adopt probe connection");
  auto connection = serve::Connect(std::move(client_end));

  std::vector<std::unique_ptr<serve::StreamHandle>> held;
  std::vector<uint32_t> strides;
  bool denied = false, deny_before_degrade = false;
  for (int i = 0; i < 4; ++i) {
    auto stream = connection->OpenStream("clip");
    if (stream.ok()) {
      if (denied) deny_before_degrade = true;
      strides.push_back((*stream)->info().stride);
      held.push_back(std::move(*stream));
    } else {
      denied = true;
    }
  }
  held.clear();
  server.Stop();
  if (strides != std::vector<uint32_t>{1, 1, 2} || !denied ||
      deny_before_degrade) {
    *error = "admission probe: expected strides {1,1,2} then denial";
    return false;
  }
  return true;
}

// Pacing probe: a stream reading flat out against an undersized byte
// budget must be thinned mid-flight (stride degraded, elements
// skipped) — never stalled past budget_wait, never evicted. Element
// numbers must stay strictly increasing and every delivered payload
// bit-exact for its number.
bool ProbePacing(MediaDatabase* db, std::string* error) {
  serve::ServeConfig config;
  // Just above one stream's booked rate, so admission grants stride 1
  // but the bucket runs dry as soon as the client outruns the clip.
  config.capacity_bytes_per_second = 1.2 * kClipRate;
  config.budget_wait = std::chrono::milliseconds(5);
  serve::MediaServer server(db, config);
  auto [client_end, server_end] = serve::CreateLoopbackPair();
  CheckOk(server.Serve(std::move(server_end)), "adopt probe connection");
  auto connection = serve::Connect(std::move(client_end));

  auto stream = connection->OpenStream("clip");
  if (!stream.ok() || (*stream)->info().stride != 1) {
    *error = "pacing probe: expected admission at stride 1";
    return false;
  }
  uint64_t last = 0;
  bool have_last = false;
  int delivered = 0;
  for (;;) {
    auto batch = (*stream)->Read(kReadBatch);
    if (!batch.ok()) {
      *error = "pacing probe: READ failed mid-degrade";
      return false;
    }
    for (const serve::WireElement& element : batch->elements) {
      if ((have_last && element.element_number <= last) ||
          element.payload !=
              ElementPayload(static_cast<int>(element.element_number))) {
        *error = "pacing probe: non-monotonic or corrupt element";
        return false;
      }
      last = element.element_number;
      have_last = true;
      ++delivered;
    }
    if (batch->end_of_stream) break;
  }
  serve::ServerStatsSnapshot stats = server.stats();
  (void)(*stream)->Close();
  connection.reset();
  server.Stop();
  if (delivered >= kElements || stats.sessions_degraded == 0) {
    *error = "pacing probe: budget never thinned the stream";
    return false;
  }
  if (stats.sessions_evicted != 0) {
    *error = "pacing probe: pacing must degrade, not evict";
    return false;
  }
  return true;
}

// Eviction probe: a stream that parks on an empty flow-control window
// past stall_timeout is evicted; its sibling streams on.
bool ProbeEviction(MediaDatabase* db, std::string* error) {
  serve::ServeConfig config;
  config.stall_timeout = std::chrono::milliseconds(100);
  serve::MediaServer server(db, config);
  auto [client_end, server_end] = serve::CreateLoopbackPair();
  CheckOk(server.Serve(std::move(server_end)), "adopt probe connection");

  // Raw v2 frames: the stalled stream's READ response never arrives,
  // so a blocking handle would wedge.
  auto send = [&](uint64_t stream_id, const serve::Request& request) {
    serve::FrameHeader header;
    header.version = 2;
    header.stream_id = stream_id;
    CheckOk(serve::WriteFrame(
                *client_end,
                serve::EncodeFrameBody(header, serve::EncodeRequest(request))),
            "probe send");
  };
  auto recv = [&]() -> std::pair<uint64_t, serve::Response> {
    Bytes body =
        ValueOrDie(serve::ReadFrame(*client_end, serve::kMaxFrameBytes),
                   "probe recv");
    serve::Frame frame =
        ValueOrDie(serve::DecodeFrameBody(body), "probe frame");
    return {frame.header.stream_id,
            ValueOrDie(serve::DecodeResponse(frame.payload), "probe decode")};
  };

  serve::Request open_tight;
  open_tight.type = serve::RequestType::kOpen;
  open_tight.object_name = "clip";
  open_tight.qos.window_bytes = 16;  // Far less than one element.
  send(1, open_tight);
  auto opened_tight = recv();
  CheckOk(opened_tight.second.status, "probe open tight");

  serve::Request open_free;
  open_free.type = serve::RequestType::kOpen;
  open_free.object_name = "clip";
  send(2, open_free);
  auto opened_free = recv();
  CheckOk(opened_free.second.status, "probe open free");

  serve::Request read_tight;
  read_tight.type = serve::RequestType::kRead;
  read_tight.session_id = opened_tight.second.open.session_id;
  read_tight.max_elements = 1;
  send(1, read_tight);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().sessions_evicted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (server.stats().sessions_evicted != 1) {
    *error = "eviction probe: window-stalled stream was not evicted";
    return false;
  }

  serve::Request read_free;
  read_free.type = serve::RequestType::kRead;
  read_free.session_id = opened_free.second.open.session_id;
  read_free.max_elements = 2;
  send(2, read_free);
  auto batch = recv();
  if (batch.first != 2 || !batch.second.status.ok() ||
      batch.second.read.elements.size() != 2) {
    *error = "eviction probe: sibling stream did not survive the eviction";
    return false;
  }
  server.Stop();
  return true;
}

int Run(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) out_path = argv[i + 1];
  }

  auto db = BuildDb();

  ShapeResult mux = RunShape(db.get(), kMuxConnections, kStreamsPerConnection);
  ShapeResult per_stream = RunShape(db.get(), kStreams, 1);

  std::string admission_error, pacing_error, eviction_error;
  bool admission_ok = ProbeAdmission(db.get(), &admission_error);
  bool pacing_ok = ProbePacing(db.get(), &pacing_error);
  bool eviction_ok = ProbeEviction(db.get(), &eviction_error);

  std::vector<double> mux_all = mux.all();
  std::vector<double> per_all = per_stream.all();

  char json[4096];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"ablation_reactor\",\n"
      " \"workload\": \"%d concurrent streams, %d-element clip, "
      "%d B/element, QoS priorities {0,4,7}\",\n"
      " \"streams\": %d,\n"
      " \"multiplexed\": {\n"
      "  \"connections\": %d,\n"
      "  \"streams_per_connection\": %d,\n"
      "  \"held_all_concurrently\": %s,\n"
      "  \"admitted\": %llu, \"denied\": %llu, \"evicted\": %llu,\n"
      "  \"completed\": %d,\n"
      "  \"read_p50_us\": %.1f, \"read_p99_us\": %.1f,\n"
      "  \"read_p50_us_p0\": %.1f, \"read_p99_us_p0\": %.1f,\n"
      "  \"read_p50_us_p4\": %.1f, \"read_p99_us_p4\": %.1f,\n"
      "  \"read_p50_us_p7\": %.1f, \"read_p99_us_p7\": %.1f,\n"
      "  \"wall_ms\": %.1f},\n"
      " \"connection_per_stream\": {\n"
      "  \"connections\": %d,\n"
      "  \"streams_per_connection\": 1,\n"
      "  \"held_all_concurrently\": %s,\n"
      "  \"admitted\": %llu, \"denied\": %llu, \"evicted\": %llu,\n"
      "  \"completed\": %d,\n"
      "  \"read_p50_us\": %.1f, \"read_p99_us\": %.1f,\n"
      "  \"read_p50_us_p0\": %.1f, \"read_p99_us_p0\": %.1f,\n"
      "  \"read_p50_us_p4\": %.1f, \"read_p99_us_p4\": %.1f,\n"
      "  \"read_p50_us_p7\": %.1f, \"read_p99_us_p7\": %.1f,\n"
      "  \"wall_ms\": %.1f},\n"
      " \"admission_probe_ok\": %s,\n"
      " \"pacing_probe_ok\": %s,\n"
      " \"eviction_probe_ok\": %s}\n",
      kStreams, kElements, kElementBytes, kStreams, kMuxConnections,
      kStreamsPerConnection, mux.held_all_concurrently ? "true" : "false",
      static_cast<unsigned long long>(mux.admitted),
      static_cast<unsigned long long>(mux.denied),
      static_cast<unsigned long long>(mux.evicted), mux.completed,
      Percentile(mux_all, 0.50), Percentile(mux_all, 0.99), mux.p50(0),
      mux.p99(0), mux.p50(1), mux.p99(1), mux.p50(2), mux.p99(2), mux.wall_ms,
      kStreams, per_stream.held_all_concurrently ? "true" : "false",
      static_cast<unsigned long long>(per_stream.admitted),
      static_cast<unsigned long long>(per_stream.denied),
      static_cast<unsigned long long>(per_stream.evicted),
      per_stream.completed, Percentile(per_all, 0.50),
      Percentile(per_all, 0.99), per_stream.p50(0), per_stream.p99(0),
      per_stream.p50(1), per_stream.p99(1), per_stream.p50(2),
      per_stream.p99(2), per_stream.wall_ms, admission_ok ? "true" : "false",
      pacing_ok ? "true" : "false", eviction_ok ? "true" : "false");
  std::printf("%s", json);

  int failures = 0;
  for (const auto& [name, shape] :
       {std::pair<const char*, ShapeResult*>{"multiplexed", &mux},
        {"connection_per_stream", &per_stream}}) {
    if (!shape->held_all_concurrently) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAILURE: %s did not hold %d concurrent "
                   "streams\n",
                   name, kStreams);
      ++failures;
    }
    if (shape->admitted != static_cast<uint64_t>(kStreams) ||
        shape->denied != 0 || shape->open_failures != 0) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAILURE: %s admitted %llu/%d (%llu denied, "
                   "%d open failures)\n",
                   name, static_cast<unsigned long long>(shape->admitted),
                   kStreams, static_cast<unsigned long long>(shape->denied),
                   shape->open_failures);
      ++failures;
    }
    if (shape->completed != kStreams || shape->read_failures != 0) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAILURE: %s completed %d/%d streams "
                   "(%d read failures)\n",
                   name, shape->completed, kStreams, shape->read_failures);
      ++failures;
    }
    if (shape->payload_mismatches != 0) {
      std::fprintf(stderr, "ACCEPTANCE FAILURE: %s had %d payload "
                   "mismatches\n",
                   name, shape->payload_mismatches);
      ++failures;
    }
    if (shape->evicted != 0) {
      std::fprintf(stderr, "ACCEPTANCE FAILURE: %s evicted %llu streams\n",
                   name, static_cast<unsigned long long>(shape->evicted));
      ++failures;
    }
  }
  if (!admission_ok) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: %s\n", admission_error.c_str());
    ++failures;
  }
  if (!pacing_ok) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: %s\n", pacing_error.c_str());
    ++failures;
  }
  if (!eviction_ok) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: %s\n", eviction_error.c_str());
    ++failures;
  }
  if (failures != 0) return 1;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) { return tbm::Run(argc, argv); }

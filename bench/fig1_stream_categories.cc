// Reproduces Figure 1: "Examples of timed streams for different forms
// of time-based media" — one concrete stream per category, classified
// by the library, plus classification-throughput sweeps.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/adpcm.h"
#include "codec/pcm.h"
#include "midi/midi.h"
#include "stream/category.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

MediaDescriptor Descriptor(const char* type, MediaKind kind) {
  MediaDescriptor desc;
  desc.type_name = type;
  desc.kind = kind;
  return desc;
}

// --- One real stream per Figure 1 row. -------------------------------------

// CD audio: uniform (constant size, constant duration, continuous).
TimedStream CdAudioStream(int64_t elements) {
  TimedStream stream(Descriptor("audio/pcm", MediaKind::kAudio),
                     TimeSystem(44100));
  for (int64_t i = 0; i < elements; ++i) {
    CheckOk(stream.AppendContiguous(Bytes(4, 0), 1), "cd stream");
  }
  return stream;
}

// ADPCM audio: heterogeneous (element descriptors vary), uniform shape.
TimedStream AdpcmStream(int64_t blocks) {
  AudioBuffer audio = audiogen::Sine(44100, 1, 440.0, 0.7,
                                     blocks * 256 / 44100.0 + 0.1);
  auto encoded = ValueOrDie(AdpcmEncode(audio, 256), "adpcm encode");
  TimedStream stream(Descriptor("audio/adpcm", MediaKind::kAudio),
                     TimeSystem(44100));
  for (int64_t i = 0; i < blocks && i < static_cast<int64_t>(encoded.size());
       ++i) {
    ElementDescriptor ed;
    ed.SetInt("predictor", encoded[i].predictor[0]);
    ed.SetInt("step index", encoded[i].step_index[0]);
    CheckOk(stream.AppendContiguous(encoded[i].data, encoded[i].frames,
                                    std::move(ed)),
            "adpcm stream");
  }
  return stream;
}

// Compressed video: constant frequency, varying element size.
TimedStream CompressedVideoStream(int64_t frames) {
  TimedStream stream(Descriptor("video/tjpeg", MediaKind::kVideo),
                     TimeSystem(25));
  for (int64_t i = 0; i < frames; ++i) {
    CheckOk(stream.AppendContiguous(Bytes(1800 + (i * 97) % 600, 0), 1),
            "video stream");
  }
  return stream;
}

// Constant-data-rate stream: element size proportional to duration.
TimedStream CbrStream(int64_t elements) {
  TimedStream stream(Descriptor("audio/pcm-block", MediaKind::kAudio),
                     TimeSystem(44100));
  for (int64_t i = 0; i < elements; ++i) {
    int64_t duration = 1000 + (i % 3) * 500;
    CheckOk(stream.AppendContiguous(Bytes(duration * 4, 0), duration),
            "cbr stream");
  }
  return stream;
}

// Music as notes: non-continuous with overlaps (chords) and gaps.
TimedStream MusicStream(int64_t chords) {
  MidiSequence seq(480, 120.0);
  for (int64_t i = 0; i < chords; ++i) {
    int64_t at = i * 960;
    CheckOk(seq.AddNote(at, 720, 60), "note");
    CheckOk(seq.AddNote(at, 720, 64), "note");
    CheckOk(seq.AddNote(at, 720, 67), "note");  // Rest for 240 ticks after.
  }
  return ValueOrDie(seq.ToNoteStream(), "note stream");
}

// MIDI events: event-based (duration-less elements).
TimedStream MidiEventStream(int64_t notes) {
  MidiSequence seq(480, 120.0);
  for (int64_t i = 0; i < notes; ++i) {
    CheckOk(seq.AddNote(i * 480, 240, 60 + i % 12), "note");
  }
  return ValueOrDie(seq.ToEventStream(), "event stream");
}

void PrintFigure1() {
  bench::Header(
      "Figure 1 reproduction: timed-stream categories\n"
      "(paper: homogeneous / heterogeneous / continuous / non-continuous /\n"
      " event-based / constant frequency / constant data rate / uniform)");
  struct Row {
    const char* medium;
    TimedStream stream;
  };
  Row rows[] = {
      {"CD audio (PCM samples)", CdAudioStream(2000)},
      {"ADPCM audio (coded blocks)", AdpcmStream(40)},
      {"compressed video (TJPEG-like)", CompressedVideoStream(100)},
      {"constant-rate blocks", CbrStream(50)},
      {"music as notes (chords + rests)", MusicStream(12)},
      {"MIDI events", MidiEventStream(40)},
  };
  std::printf("%-34s %8s  %s\n", "stream", "elements", "classification");
  for (const Row& row : rows) {
    StreamCategories cats = Classify(row.stream);
    std::printf("%-34s %8zu  %s\n", row.medium, row.stream.size(),
                cats.ToString().c_str());
  }
  std::printf(
      "\nPaper shape check: audio/video classify as continuous media;\n"
      "music/animation as non-continuous; MIDI as event-based. Uniform\n"
      "implies constant data rate implies continuous.\n");
}

// --- Throughput sweeps. -----------------------------------------------------

void BM_ClassifyUniform(benchmark::State& state) {
  TimedStream stream = CdAudioStream(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classify(stream));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClassifyUniform)->Range(1 << 8, 1 << 16);

void BM_ClassifyHeterogeneous(benchmark::State& state) {
  TimedStream stream = AdpcmStream(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Classify(stream));
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_ClassifyHeterogeneous)->Range(64, 4096);

void BM_ElementAtTime(benchmark::State& state) {
  TimedStream stream = CompressedVideoStream(state.range(0));
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.ElementAtTime(t));
    t = (t + 7) % state.range(0);
  }
}
BENCHMARK(BM_ElementAtTime)->Range(1 << 8, 1 << 16);

void BM_ValidateAgainstType(benchmark::State& state) {
  TimedStream stream = CdAudioStream(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValidateAgainstType(stream, MediaTypeRegistry::Builtin()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValidateAgainstType)->Range(1 << 8, 1 << 14);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintFigure1();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Validates the §1.2 claim that structural interpretation enables
// queries a raw BLOB cannot answer: "it is possible to issue queries
// which select a specific sound track, or select a specific duration,
// or perhaps retrieve frames at a specific visual fidelity." Builds a
// catalog of movies with multi-language audio tracks and runs all
// three query shapes, with catalog-scaling sweeps.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "db/database.h"
#include "interp/av_capture.h"
#include "interp/index.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

const char* kLanguages[] = {"English", "German", "French", "Japanese"};

struct MovieCatalog {
  std::unique_ptr<MediaDatabase> db;
  std::vector<ObjectId> movies;
};

// One "movie": a video object plus one audio track per language, all in
// one interleaved BLOB (languages interleaved like the paper's §4.3
// music/narration example).
void IngestMovie(MediaDatabase* db, int index) {
  std::string name = "movie" + std::to_string(index);
  auto session = CaptureSession::Begin(db->blob_store());
  CheckOk(session.status(), "session");

  MediaDescriptor video_desc;
  video_desc.type_name = "video/raw";
  video_desc.kind = MediaKind::kVideo;
  video_desc.attrs.SetRational("frame rate", Rational(25));
  video_desc.attrs.SetInt("frame width", 64);
  video_desc.attrs.SetInt("frame height", 48);
  video_desc.attrs.SetInt("frame depth", 24);
  video_desc.attrs.SetString("color model", "RGB");
  size_t video_handle = ValueOrDie(
      session->DeclareObject("video", video_desc, TimeSystem(25)), "video");

  MediaDescriptor audio_desc;
  audio_desc.type_name = "audio/pcm-block";
  audio_desc.kind = MediaKind::kAudio;
  audio_desc.attrs.SetInt("sample rate", 8000);
  audio_desc.attrs.SetInt("sample size", 16);
  audio_desc.attrs.SetInt("number of channels", 1);
  audio_desc.attrs.SetString("encoding", "PCM");
  std::vector<size_t> track_handles;
  for (const char* language : kLanguages) {
    track_handles.push_back(ValueOrDie(
        session->DeclareObject(std::string("audio_") + language, audio_desc,
                               TimeSystem(8000)),
        "track"));
  }

  // 1 second of content: 25 frames, with per-frame audio blocks of all
  // four language tracks interleaved after each frame.
  for (int f = 0; f < 25; ++f) {
    CheckOk(session->CaptureContiguous(
                video_handle,
                videogen::Frame(64, 48, f, 1000 + index).data, 1),
            "frame");
    for (size_t t = 0; t < track_handles.size(); ++t) {
      Bytes block(320 * 2, static_cast<uint8_t>(t));
      CheckOk(session->CaptureContiguous(track_handles[t], block, 320),
              "audio block");
    }
  }
  auto interp = ValueOrDie(session->Finish(), "finish");
  ObjectId interp_id =
      ValueOrDie(db->AddInterpretation(name + "_interp", interp), "interp");
  ObjectId video = ValueOrDie(
      db->AddMediaObject(name + "_video", interp_id, "video"), "video obj");
  AttrMap entity_attrs;
  entity_attrs.SetString("title", "Movie #" + std::to_string(index));
  entity_attrs.SetString("director",
                         index % 3 == 0 ? "Gibbs" : "Breiteneder");
  ObjectId entity = ValueOrDie(db->AddEntity(name, entity_attrs), "entity");
  CheckOk(db->SetMediaAttr(entity, "content", video), "media attr");
  for (const char* language : kLanguages) {
    AttrMap attrs;
    attrs.SetString("language", language);
    CheckOk(db->AddMediaObject(name + "_audio_" + language, interp_id,
                               std::string("audio_") + language, attrs)
                .status(),
            "track obj");
  }
}

MovieCatalog& Catalog() {
  static MovieCatalog* catalog = [] {
    auto* c = new MovieCatalog();
    c->db = MediaDatabase::CreateInMemory();
    for (int i = 0; i < 16; ++i) {
      IngestMovie(c->db.get(), i);
      c->movies.push_back(
          ValueOrDie(c->db->FindByName("movie" + std::to_string(i)), "find"));
    }
    return c;
  }();
  return *catalog;
}

void PrintQueries() {
  bench::Header(
      "Claim (paper §1.2): structural queries on interpreted media —\n"
      "select a sound track, select a duration, retrieve frames at a\n"
      "specific fidelity. (A raw BLOB supports none of these.)");
  MovieCatalog& catalog = Catalog();
  MediaDatabase* db = catalog.db.get();
  std::printf("Catalog: %zu objects for 16 movies x 4 language tracks.\n\n",
              db->size());

  // Query 1: select a specific sound track.
  auto german = db->SelectByAttr("language", AttrValue(std::string("German")));
  std::printf("Q1 'select the German sound track': %zu hits (expect 16)\n",
              german.size());
  auto stream = ValueOrDie(db->MaterializeStream(german.front()), "track");
  std::printf("   first hit materializes: %zu elements, %.2f s of audio\n",
              stream.size(), stream.DurationSeconds().ToDouble());

  // Query 2: select a specific duration.
  ObjectId video = ValueOrDie(db->FindByName("movie3_video"), "video");
  auto span = ValueOrDie(
      db->MaterializeStreamSpan(video, TickSpan{5, 10}), "span");
  std::printf("Q2 'select frames [5,15) of movie3': %zu elements\n",
              span.size());

  // Query 3: retrieve frames at a specific fidelity — store one movie
  // interframe-coded and read keys only.
  {
    VideoValue clip;
    clip.frame_rate = Rational(25);
    clip.frames = videogen::Clip(64, 48, 24, 9);
    StoreOptions options;
    options.video_codec = "tmpeg";
    options.key_interval = 8;
    auto interp = ValueOrDie(
        StoreValue(db->blob_store(), clip, "scalable_clip", options),
        "store");
    auto object = ValueOrDie(interp.FindObject("scalable_clip"), "object");
    CompactElementIndex index = CompactElementIndex::Build(*object);
    uint64_t key_bytes = 0;
    for (int64_t key : index.sync_elements()) {
      key_bytes += ValueOrDie(index.PlacementOf(key), "place").length;
    }
    std::printf(
        "Q3 'retrieve at reduced fidelity': %zu key frames, reading %.1f%% "
        "of the stream's bytes\n",
        index.sync_elements().size(),
        100.0 * key_bytes / object->PayloadBytes());
  }

  // Entity-level query over domain attributes.
  auto by_director =
      db->SelectByAttr("director", AttrValue(std::string("Gibbs")));
  std::printf("Q4 'movies directed by Gibbs': %zu hits\n",
              by_director.size());
}

// --- Benchmarks -------------------------------------------------------------

void BM_SelectByLanguage(benchmark::State& state) {
  MovieCatalog& catalog = Catalog();
  if (catalog.db->HasAttrIndex("language")) {
    CheckOk(catalog.db->DropAttrIndex("language"), "drop index");
  }
  for (auto _ : state) {
    auto hits = catalog.db->SelectByAttr(
        "language", AttrValue(std::string("French")));
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations() * catalog.db->size());
}
BENCHMARK(BM_SelectByLanguage);

void BM_SelectByLanguageIndexed(benchmark::State& state) {
  MovieCatalog& catalog = Catalog();
  CheckOk(catalog.db->CreateAttrIndex("language"), "create index");
  for (auto _ : state) {
    auto hits = catalog.db->SelectByAttr(
        "language", AttrValue(std::string("French")));
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations() * catalog.db->size());
  CheckOk(catalog.db->DropAttrIndex("language"), "drop index");
}
BENCHMARK(BM_SelectByLanguageIndexed);

void BM_MaterializeTrack(benchmark::State& state) {
  MovieCatalog& catalog = Catalog();
  auto track = ValueOrDie(
      catalog.db->FindByName("movie5_audio_French"), "track");
  for (auto _ : state) {
    auto stream = catalog.db->MaterializeStream(track);
    CheckOk(stream.status(), "materialize");
    benchmark::DoNotOptimize(stream->TotalBytes());
  }
}
BENCHMARK(BM_MaterializeTrack);

void BM_DurationQuery(benchmark::State& state) {
  MovieCatalog& catalog = Catalog();
  auto video = ValueOrDie(catalog.db->FindByName("movie7_video"), "video");
  for (auto _ : state) {
    auto span = catalog.db->MaterializeStreamSpan(
        video, TickSpan{5, static_cast<int64_t>(state.range(0))});
    CheckOk(span.status(), "span");
    benchmark::DoNotOptimize(span->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DurationQuery)->Arg(5)->Arg(20);

void BM_CatalogScan(benchmark::State& state) {
  MovieCatalog& catalog = Catalog();
  for (auto _ : state) {
    auto hits = catalog.db->Filter([](const CatalogEntry& entry) {
      return entry.kind == CatalogKind::kMediaObject;
    });
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetItemsProcessed(state.iterations() * catalog.db->size());
}
BENCHMARK(BM_CatalogScan);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintQueries();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Substrate ablation: the codec family. The data model cares about
// stream *shape* (element sizes, key/delta structure, descriptors);
// this bench quantifies the codecs behind those shapes: intraframe
// TJPEG vs interframe TMPEG (forward / bidirectional / motion-
// compensated) on coherent video, and PCM vs ADPCM on audio — rate,
// fidelity and speed for each.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/adpcm.h"
#include "codec/pcm.h"
#include "codec/rle.h"
#include "codec/synthetic.h"
#include "codec/tjpeg.h"
#include "codec/tmpeg.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kW = 160, kH = 120;
constexpr int64_t kFrames = 24;

std::vector<Image> Clip() { return videogen::Clip(kW, kH, kFrames, 77); }

double MeanPsnr(const std::vector<Image>& a, const std::vector<Image>& b) {
  double total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += ValueOrDie(Psnr(a[i], b[i]), "psnr");
  }
  return total / a.size();
}

void PrintVideoAblation() {
  bench::Header(
      "Ablation: video codec family at quality 50 on a coherent clip\n"
      "(raw 24-bit RGB baseline; paper §2.1 contrasts intraframe JPEG\n"
      "video with interframe MPEG/DVI)");
  std::vector<Image> clip = Clip();
  uint64_t raw_bytes = static_cast<uint64_t>(kW) * kH * 3 * kFrames;

  std::printf("%-28s %12s %8s %10s\n", "codec", "bytes", "ratio",
              "mean PSNR");
  std::printf("%-28s %12llu %7.1fx %10s\n", "raw RGB",
              (unsigned long long)raw_bytes, 1.0, "inf");

  // Intraframe.
  {
    uint64_t bytes = 0;
    std::vector<Image> decoded;
    for (const Image& frame : clip) {
      Bytes encoded = ValueOrDie(TjpegEncode(frame, 50), "encode");
      bytes += encoded.size();
      decoded.push_back(ValueOrDie(TjpegDecode(encoded), "decode"));
    }
    std::printf("%-28s %12llu %7.1fx %9.1f\n", "TJPEG (intraframe)",
                (unsigned long long)bytes,
                static_cast<double>(raw_bytes) / bytes,
                MeanPsnr(clip, decoded));
  }

  // Interframe variants.
  struct Variant {
    const char* name;
    TmpegConfig config;
  };
  TmpegConfig forward;
  forward.quality = 50;
  forward.key_interval = 12;
  TmpegConfig bidi = forward;
  bidi.bidirectional = true;
  TmpegConfig mc = forward;
  mc.motion_compensation = true;
  for (const Variant& variant :
       {Variant{"TMPEG forward (I/P)", forward},
        Variant{"TMPEG bidirectional", bidi},
        Variant{"TMPEG forward + motion", mc}}) {
    auto encoded = ValueOrDie(TmpegEncodeSequence(clip, variant.config),
                              "encode");
    uint64_t bytes = 0;
    for (const TmpegFrame& frame : encoded) bytes += frame.data.size();
    auto decoded = ValueOrDie(TmpegDecodeSequence(encoded), "decode");
    std::printf("%-28s %12llu %7.1fx %9.1f\n", variant.name,
                (unsigned long long)bytes,
                static_cast<double>(raw_bytes) / bytes,
                MeanPsnr(clip, decoded));
  }
  std::printf(
      "\nShape check: interframe beats intraframe on coherent video; the\n"
      "paper's trade-off is the inverse (intraframe frames reorder and\n"
      "reverse freely; interframe needs key-first storage).\n");

  // Audio.
  bench::Header("Ablation: audio codecs (1 s of 44.1 kHz stereo)");
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.6, 1.0);
  uint64_t pcm_bytes = audio.samples.size() * 2;
  auto blocks = ValueOrDie(AdpcmEncode(audio, 1024), "adpcm");
  uint64_t adpcm_bytes = 0;
  for (const AdpcmBlock& block : blocks) adpcm_bytes += block.data.size();
  auto adpcm_decoded = ValueOrDie(AdpcmDecode(blocks, 44100, 2), "decode");
  std::printf("%-28s %12llu %7.1fx %9s\n", "PCM (uniform stream)",
              (unsigned long long)pcm_bytes, 1.0, "inf");
  std::printf("%-28s %12llu %7.1fx %8.1f dB SNR\n",
              "IMA ADPCM (heterogeneous)",
              (unsigned long long)adpcm_bytes,
              static_cast<double>(pcm_bytes) / adpcm_bytes,
              ValueOrDie(AudioSnr(audio, adpcm_decoded), "snr"));
  Bytes rle = RleEncode(audio.ToBytes());
  std::printf("%-28s %12zu %7.1fx %9s  (PCM is noise-like to RLE)\n",
              "RLE (lossless baseline)", rle.size(),
              static_cast<double>(pcm_bytes) / rle.size(), "inf");
}

// --- Speed benchmarks -------------------------------------------------------

void BM_TmpegEncode(benchmark::State& state) {
  std::vector<Image> clip = Clip();
  TmpegConfig config;
  config.quality = 50;
  config.key_interval = 12;
  config.motion_compensation = state.range(0) != 0;
  for (auto _ : state) {
    auto encoded = TmpegEncodeSequence(clip, config);
    CheckOk(encoded.status(), "encode");
    benchmark::DoNotOptimize(encoded->size());
  }
  state.SetItemsProcessed(state.iterations() * kFrames);
  state.SetLabel(state.range(0) ? "motion" : "plain");
}
BENCHMARK(BM_TmpegEncode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TmpegDecode(benchmark::State& state) {
  std::vector<Image> clip = Clip();
  TmpegConfig config;
  config.quality = 50;
  config.key_interval = 12;
  config.motion_compensation = state.range(0) != 0;
  auto encoded = ValueOrDie(TmpegEncodeSequence(clip, config), "encode");
  for (auto _ : state) {
    auto decoded = TmpegDecodeSequence(encoded);
    CheckOk(decoded.status(), "decode");
    benchmark::DoNotOptimize(decoded->size());
  }
  state.SetItemsProcessed(state.iterations() * kFrames);
  state.SetLabel(state.range(0) ? "motion" : "plain");
}
BENCHMARK(BM_TmpegDecode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_AdpcmEncode(benchmark::State& state) {
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.6, 1.0);
  for (auto _ : state) {
    auto blocks = AdpcmEncode(audio, 1024);
    CheckOk(blocks.status(), "encode");
    benchmark::DoNotOptimize(blocks->size());
  }
  state.SetItemsProcessed(state.iterations() * audio.samples.size());
}
BENCHMARK(BM_AdpcmEncode);

void BM_AdpcmDecode(benchmark::State& state) {
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.6, 1.0);
  auto blocks = ValueOrDie(AdpcmEncode(audio, 1024), "encode");
  for (auto _ : state) {
    auto decoded = AdpcmDecode(blocks, 44100, 2);
    CheckOk(decoded.status(), "decode");
    benchmark::DoNotOptimize(decoded->samples.data());
  }
  state.SetItemsProcessed(state.iterations() * audio.samples.size());
}
BENCHMARK(BM_AdpcmDecode);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  bool stats = tbm::bench::ConsumeFlag(&argc, argv, "--stats");
  tbm::PrintVideoAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  if (stats) tbm::bench::PrintRegistrySnapshot();
  return 0;
}

// Reproduces Figure 5: "Successive interpretation, derivation and
// composition" — measures the cost and storage footprint of each layer
// of the stack (BLOB -> interpretation -> non-derived media objects ->
// derived media objects -> temporal composition -> multimedia object)
// on one end-to-end pipeline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "db/database.h"
#include "interp/av_capture.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kW = 160, kH = 120;
constexpr int64_t kFrames = 50;

struct Pipeline {
  std::unique_ptr<MediaDatabase> db;
  ObjectId interp_id = 0, video = 0, audio = 0, cut = 0, mm = 0;
};

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void PrintFigure5() {
  bench::Header(
      "Figure 5 reproduction: the layering BLOB -> interpretation ->\n"
      "media objects -> derived objects -> composition -> multimedia\n"
      "object, with per-layer build cost and storage footprint");

  Pipeline p;
  p.db = MediaDatabase::CreateInMemory();
  auto clock = std::chrono::steady_clock::now;

  // Layer 0: uninterpreted capture into a BLOB (with its
  // interpretation built alongside, as §4.1 recommends).
  auto t0 = clock();
  std::vector<Image> frames = videogen::Clip(kW, kH, kFrames, 77);
  AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.4,
                                     kFrames / 25.0 + 0.1);
  auto capture = ValueOrDie(CaptureInterleavedAv(p.db->blob_store(), frames,
                                                 audio, AvCaptureConfig{}),
                            "capture");
  auto t1 = clock();

  // Layer 1: register the interpretation.
  p.interp_id = ValueOrDie(
      p.db->AddInterpretation("blob_interp", capture.interpretation),
      "interp");
  auto t2 = clock();

  // Layer 2: non-derived media objects.
  p.video = ValueOrDie(p.db->AddMediaObject("video1", p.interp_id, "video1"),
                       "video");
  p.audio = ValueOrDie(p.db->AddMediaObject("audio1", p.interp_id, "audio1"),
                       "audio");
  auto t3 = clock();

  // Layer 3: a derived media object.
  AttrMap params;
  params.SetInt("start frame", 5);
  params.SetInt("frame count", 30);
  p.cut = ValueOrDie(
      p.db->AddDerivedObject("cut", "video edit", {p.video}, params), "cut");
  auto t4 = clock();

  // Layer 4: temporal composition.
  std::vector<StoredComponent> components;
  components.push_back({"c1", p.audio, Rational(0), std::nullopt});
  components.push_back({"c2", p.cut, Rational(0), std::nullopt});
  p.mm = ValueOrDie(p.db->AddMultimediaObject("m", components), "mm");
  auto t5 = clock();

  // Layer 5: full materialization of the multimedia object (expansion
  // of every layer).
  auto view = ValueOrDie(p.db->Compose(p.mm), "compose");
  auto timeline = ValueOrDie(view->object.Timeline(), "timeline");
  auto t6 = clock();

  uint64_t blob_bytes = ValueOrDie(
      p.db->blob_store()->Size(capture.interpretation.blob()), "size");
  BinaryWriter interp_writer;
  capture.interpretation.Serialize(&interp_writer);
  uint64_t record = ValueOrDie(p.db->DerivationRecordBytes(p.cut), "record");

  std::printf("%-44s %12s %12s\n", "layer", "build time", "storage");
  std::printf("%-44s %10.3f ms %12s\n", "BLOB (capture + encode, 2 s of A/V)",
              Seconds(t0, t1) * 1e3, HumanBytes(blob_bytes).c_str());
  std::printf("%-44s %10.3f ms %12s\n", "interpretation (element tables)",
              Seconds(t1, t2) * 1e3,
              HumanBytes(interp_writer.size()).c_str());
  std::printf("%-44s %10.3f ms %12s\n", "media objects (catalog rows)",
              Seconds(t2, t3) * 1e3, "~100 B");
  std::printf("%-44s %10.3f ms %12s\n", "derived object (derivation record)",
              Seconds(t3, t4) * 1e3, HumanBytes(record).c_str());
  std::printf("%-44s %10.3f ms %12s\n", "composition (component records)",
              Seconds(t4, t5) * 1e3, "~100 B");
  std::printf("%-44s %10.3f ms %12s\n",
              "materialize multimedia object (expand all)",
              Seconds(t5, t6) * 1e3, "(transient)");
  std::printf(
      "\nShape check: everything above the BLOB is metadata — the stack\n"
      "of interpretation + derivation + composition records is orders of\n"
      "magnitude smaller than the media bytes they organize.\n");
  std::printf("Timeline components: %zu, total duration %.2f s\n",
              timeline.size(),
              ValueOrDie(view->object.Duration(), "dur").ToDouble());
}

// --- Benchmarks: per-layer steady-state costs -------------------------------

struct BenchPipeline {
  std::unique_ptr<MediaDatabase> db;
  ObjectId video = 0, audio = 0, cut = 0, mm = 0;
};

BenchPipeline& Shared() {
  static BenchPipeline* shared = [] {
    auto* p = new BenchPipeline();
    p->db = MediaDatabase::CreateInMemory();
    std::vector<Image> frames = videogen::Clip(kW, kH, kFrames, 77);
    AudioBuffer audio = audiogen::Sine(44100, 2, 440.0, 0.4,
                                       kFrames / 25.0 + 0.1);
    auto capture = ValueOrDie(
        CaptureInterleavedAv(p->db->blob_store(), frames, audio,
                             AvCaptureConfig{}),
        "capture");
    ObjectId interp_id = ValueOrDie(
        p->db->AddInterpretation("blob_interp", capture.interpretation),
        "interp");
    p->video = ValueOrDie(
        p->db->AddMediaObject("video1", interp_id, "video1"), "video");
    p->audio = ValueOrDie(
        p->db->AddMediaObject("audio1", interp_id, "audio1"), "audio");
    AttrMap params;
    params.SetInt("start frame", 5);
    params.SetInt("frame count", 30);
    p->cut = ValueOrDie(
        p->db->AddDerivedObject("cut", "video edit", {p->video}, params),
        "cut");
    std::vector<StoredComponent> components;
    components.push_back({"c1", p->audio, Rational(0), std::nullopt});
    components.push_back({"c2", p->cut, Rational(0), std::nullopt});
    p->mm = ValueOrDie(p->db->AddMultimediaObject("m", components), "mm");
    return p;
  }();
  return *shared;
}

void BM_Layer_MaterializeStream(benchmark::State& state) {
  BenchPipeline& p = Shared();
  for (auto _ : state) {
    auto stream = p.db->MaterializeStream(p.video);
    CheckOk(stream.status(), "stream");
    benchmark::DoNotOptimize(stream->size());
  }
}
BENCHMARK(BM_Layer_MaterializeStream)->Unit(benchmark::kMillisecond);

void BM_Layer_DecodeTypedValue(benchmark::State& state) {
  BenchPipeline& p = Shared();
  for (auto _ : state) {
    auto value = p.db->Materialize(p.video);
    CheckOk(value.status(), "value");
    benchmark::DoNotOptimize(value->index());
  }
}
BENCHMARK(BM_Layer_DecodeTypedValue)->Unit(benchmark::kMillisecond);

void BM_Layer_ExpandDerived(benchmark::State& state) {
  BenchPipeline& p = Shared();
  for (auto _ : state) {
    auto value = p.db->Materialize(p.cut);
    CheckOk(value.status(), "cut value");
    benchmark::DoNotOptimize(value->index());
  }
}
BENCHMARK(BM_Layer_ExpandDerived)->Unit(benchmark::kMillisecond);

void BM_Layer_ComposeMultimedia(benchmark::State& state) {
  BenchPipeline& p = Shared();
  for (auto _ : state) {
    auto view = p.db->Compose(p.mm);
    CheckOk(view.status(), "compose");
    auto timeline = (*view)->object.Timeline();
    CheckOk(timeline.status(), "timeline");
    benchmark::DoNotOptimize(timeline->size());
  }
}
BENCHMARK(BM_Layer_ComposeMultimedia)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintFigure5();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

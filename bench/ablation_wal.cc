// Durability ablation: the write-ahead log behind the transactional
// catalog (DESIGN.md §16). The paper's catalog is the system of record
// for every interpretation and derivation, so losing an acknowledged
// mutation is not acceptable — but neither is paying a full snapshot
// per mutation (the pre-WAL Save() model). This bench quantifies the
// WAL trade: per-commit latency with and without the fsync, how much
// of the fsync cost group commit amortizes across concurrent writers,
// what a checkpoint costs, and how fast recovery replays the log on
// reopen.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "blob/memory_store.h"
#include "db/database.h"
#include "obs/metrics.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

namespace fs = std::filesystem;

std::string ScratchDir(const char* tag) {
  static int counter = 0;
  std::string dir = (fs::temp_directory_path() /
                     ("tbm_bench_wal_" + std::string(tag) + "_" +
                      std::to_string(counter++)))
                        .string();
  fs::remove_all(dir);
  return dir;
}

std::unique_ptr<MediaDatabase> OpenDb(const std::string& dir,
                                      wal::WalOptions options = {}) {
  return ValueOrDie(MediaDatabase::Open(
                        dir, std::make_unique<MemoryBlobStore>(), options),
                    "open database");
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

uint64_t CounterValue(const char* name) {
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  auto it = snapshot.counters.find(name);
  return it != snapshot.counters.end() ? it->second : 0;
}

// --- Macro: the durability story in one run ---------------------------------

constexpr int kSingleCommits = 400;
constexpr int kGroupThreads = 8;
constexpr int kGroupPerThread = 200;
constexpr int kReplayRecords = 10000;

void PrintAblation() {
  bench::Header("ablation: write-ahead log (single vs group commit, "
                "fsync cost, checkpoint, recovery)");

  // Single-writer commit latency, fsync per commit.
  {
    std::string dir = ScratchDir("single_sync");
    auto db = OpenDb(dir);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSingleCommits; ++i) {
      ValueOrDie(db->AddEntity("e" + std::to_string(i), {}), "add");
    }
    auto t1 = std::chrono::steady_clock::now();
    double s = Seconds(t0, t1);
    std::printf("single writer, fsync:    %7.1f us/commit  (%6.0f commits/s)\n",
                1e6 * s / kSingleCommits, kSingleCommits / s);
    fs::remove_all(dir);
  }

  // Single-writer commit latency, write() only — the fsync ablated.
  {
    std::string dir = ScratchDir("single_nosync");
    wal::WalOptions options;
    options.sync = wal::SyncMode::kNoSync;
    auto db = OpenDb(dir, options);
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSingleCommits; ++i) {
      ValueOrDie(db->AddEntity("e" + std::to_string(i), {}), "add");
    }
    auto t1 = std::chrono::steady_clock::now();
    double s = Seconds(t0, t1);
    std::printf("single writer, no fsync: %7.1f us/commit  (%6.0f commits/s)\n",
                1e6 * s / kSingleCommits, kSingleCommits / s);
    fs::remove_all(dir);
  }

  // Group commit: concurrent writers share fsyncs. The records/fsync
  // ratio is the amortization the leader/follower protocol buys.
  {
    std::string dir = ScratchDir("group");
    auto db = OpenDb(dir);
    uint64_t fsyncs_before = CounterValue("wal.fsyncs");
    uint64_t records_before = CounterValue("wal.records");
    std::vector<std::thread> writers;
    auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < kGroupThreads; ++t) {
      writers.emplace_back([&db, t] {
        for (int i = 0; i < kGroupPerThread; ++i) {
          ValueOrDie(db->AddEntity(
                         "w" + std::to_string(t) + "_" + std::to_string(i),
                         {}),
                     "add");
        }
      });
    }
    for (std::thread& w : writers) w.join();
    auto t1 = std::chrono::steady_clock::now();
    double s = Seconds(t0, t1);
    uint64_t fsyncs = CounterValue("wal.fsyncs") - fsyncs_before;
    uint64_t records = CounterValue("wal.records") - records_before;
    const int total = kGroupThreads * kGroupPerThread;
    std::printf("group commit, %d threads: %6.1f us/commit  "
                "(%6.0f commits/s, %.1f records/fsync over %llu fsyncs)\n",
                kGroupThreads, 1e6 * s / total, total / s,
                fsyncs ? static_cast<double>(records) /
                             static_cast<double>(fsyncs)
                       : 0.0,
                (unsigned long long)fsyncs);
    fs::remove_all(dir);
  }

  // Checkpoint cost and recovery: replay a 10k-record log, then show
  // a checkpoint reducing reopen to a snapshot load.
  {
    std::string dir = ScratchDir("recovery");
    wal::WalOptions nosync;  // Build the log fast; durability is not
    nosync.sync = wal::SyncMode::kNoSync;  // the variable here.
    nosync.checkpoint_threshold_bytes = 0;
    {
      auto db = OpenDb(dir, nosync);
      for (int i = 0; i < kReplayRecords; ++i) {
        ValueOrDie(db->AddEntity("r" + std::to_string(i), {}), "add");
      }
    }
    {
      auto t0 = std::chrono::steady_clock::now();
      auto db = OpenDb(dir);
      auto t1 = std::chrono::steady_clock::now();
      wal::RecoveryStats stats = db->recovery_stats();
      double s = Seconds(t0, t1);
      std::printf("recovery, %5llu-record log: %7.1f ms  "
                  "(%.0f records/s replayed)\n",
                  (unsigned long long)stats.replayed, 1e3 * s,
                  static_cast<double>(stats.replayed) / s);

      auto c0 = std::chrono::steady_clock::now();
      CheckOk(db->Checkpoint(), "checkpoint");
      auto c1 = std::chrono::steady_clock::now();
      std::printf("checkpoint of %d objects:   %7.1f ms  (log -> %llu bytes)\n",
                  kReplayRecords, 1e3 * Seconds(c0, c1),
                  (unsigned long long)db->wal_status().wal_bytes);
    }
    {
      auto t0 = std::chrono::steady_clock::now();
      auto db = OpenDb(dir);
      auto t1 = std::chrono::steady_clock::now();
      std::printf("reopen after checkpoint:   %7.1f ms  "
                  "(%llu records replayed)\n",
                  1e3 * Seconds(t0, t1),
                  (unsigned long long)db->recovery_stats().replayed);
    }
    fs::remove_all(dir);
  }
}

// --- Micro: google-benchmark rows -------------------------------------------

void BM_CommitSync(benchmark::State& state) {
  std::string dir = ScratchDir("bm_sync");
  auto db = OpenDb(dir);
  int i = 0;
  for (auto _ : state) {
    ValueOrDie(db->AddEntity("e" + std::to_string(i++), {}), "add");
  }
  state.SetItemsProcessed(state.iterations());
  db.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_CommitSync);

void BM_CommitNoSync(benchmark::State& state) {
  std::string dir = ScratchDir("bm_nosync");
  wal::WalOptions options;
  options.sync = wal::SyncMode::kNoSync;
  auto db = OpenDb(dir, options);
  int i = 0;
  for (auto _ : state) {
    ValueOrDie(db->AddEntity("e" + std::to_string(i++), {}), "add");
  }
  state.SetItemsProcessed(state.iterations());
  db.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_CommitNoSync);

// Group commit throughput: N threads hammer one database; items/sec is
// the aggregate commit rate.
void BM_GroupCommit(benchmark::State& state) {
  static std::unique_ptr<MediaDatabase> db;
  static std::string dir;
  static std::atomic<int> name_counter{0};
  if (state.thread_index() == 0) {
    dir = ScratchDir("bm_group");
    db = OpenDb(dir);
  }
  for (auto _ : state) {
    int i = name_counter.fetch_add(1, std::memory_order_relaxed);
    ValueOrDie(db->AddEntity("g" + std::to_string(i), {}), "add");
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    db.reset();
    fs::remove_all(dir);
  }
}
BENCHMARK(BM_GroupCommit)->Threads(1)->Threads(4)->Threads(8);

// Recovery replay rate: each iteration opens (and so replays) a
// 1000-record log.
void BM_RecoveryReplay(benchmark::State& state) {
  std::string dir = ScratchDir("bm_recovery");
  constexpr int kRecords = 1000;
  {
    wal::WalOptions options;
    options.sync = wal::SyncMode::kNoSync;
    options.checkpoint_threshold_bytes = 0;
    auto db = OpenDb(dir, options);
    for (int i = 0; i < kRecords; ++i) {
      ValueOrDie(db->AddEntity("r" + std::to_string(i), {}), "add");
    }
  }
  wal::WalOptions options;
  options.checkpoint_threshold_bytes = 0;  // Keep the log intact.
  for (auto _ : state) {
    auto db = OpenDb(dir, options);
    benchmark::DoNotOptimize(db->recovery_stats().replayed);
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplay);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  bool stats = tbm::bench::ConsumeFlag(&argc, argv, "--stats");
  tbm::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  if (stats) tbm::bench::PrintRegistrySnapshot();
  return 0;
}

// Substrate ablation: BLOB storage layout. The paper (Def. 4) treats
// BLOB layout — contiguous vs fragmented — as a performance concern
// hidden from the data model. This bench quantifies that concern:
// append/read throughput across the three store implementations,
// fragmentation effects from interleaved writers, checksum overhead,
// and compact-index build cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "blob/file_store.h"
#include "blob/memory_store.h"
#include "blob/paged_store.h"
#include "interp/index.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

Bytes Payload(size_t n) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint8_t>(i * 31);
  return data;
}

void PrintAblation() {
  bench::Header(
      "Ablation: BLOB store layout (paper Def. 4: \"the layout of BLOBs\n"
      "is a performance issue and not directly relevant to data\n"
      "modeling\") — same interface, different physics");

  // Fragmentation demonstration: two pushes interleaving writes on a
  // paged store.
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(4096));
  auto push_a = ValueOrDie(store.StartPush(), "a");
  auto push_b = ValueOrDie(store.StartPush(), "b");
  Bytes chunk = Payload(6000);
  for (int i = 0; i < 100; ++i) {
    CheckOk(push_a->Push(chunk), "push a");
    CheckOk(push_b->Push(chunk), "push b");
  }
  BlobId a = ValueOrDie(push_a->Finish(), "finish a");
  ValueOrDie(push_b->Finish(), "finish b");
  std::printf("Interleaved writers on 4 KiB pages:\n");
  std::printf("  blob A fragmentation: %.2f (0 = contiguous pages)\n",
              ValueOrDie(store.Fragmentation(a), "frag"));
  BlobStoreStats stats = store.Stats();
  std::printf("  logical %s, physical %s (page overhead %.1f%%)\n",
              HumanBytes(stats.logical_bytes).c_str(),
              HumanBytes(stats.physical_bytes).c_str(),
              100.0 * (stats.physical_bytes - stats.logical_bytes) /
                  stats.logical_bytes);

  PagedBlobStore solo(std::make_unique<MemoryPageDevice>(4096));
  auto push_c = ValueOrDie(solo.StartPush(), "c");
  for (int i = 0; i < 100; ++i) CheckOk(push_c->Push(chunk), "push c");
  BlobId c = ValueOrDie(push_c->Finish(), "finish c");
  std::printf("  single writer fragmentation: %.2f\n",
              ValueOrDie(solo.Fragmentation(c), "frag"));
}

// --- Push throughput --------------------------------------------------------

template <typename MakeStore>
void AppendBench(benchmark::State& state, MakeStore make_store) {
  const size_t chunk_size = static_cast<size_t>(state.range(0));
  Bytes chunk = Payload(chunk_size);
  for (auto _ : state) {
    auto store = make_store();
    auto push = ValueOrDie(store->StartPush(), "start push");
    for (int i = 0; i < 64; ++i) {
      CheckOk(push->Push(chunk), "push");
    }
    BlobId id = ValueOrDie(push->Finish(), "finish");
    benchmark::DoNotOptimize(store->Size(id));
  }
  state.SetBytesProcessed(state.iterations() * 64 * chunk_size);
}

void BM_Append_Memory(benchmark::State& state) {
  AppendBench(state, [] { return std::make_unique<MemoryBlobStore>(); });
}
BENCHMARK(BM_Append_Memory)->Arg(4096)->Arg(65536);

void BM_Append_Paged(benchmark::State& state) {
  AppendBench(state, [] {
    return std::make_unique<PagedBlobStore>(
        std::make_unique<MemoryPageDevice>(4096));
  });
}
BENCHMARK(BM_Append_Paged)->Arg(4096)->Arg(65536);

void BM_Append_File(benchmark::State& state) {
  std::string dir = std::filesystem::temp_directory_path() /
                    "tbm_bench_filestore";
  std::filesystem::remove_all(dir);
  int counter = 0;
  AppendBench(state, [&] {
    std::string sub = dir + "/" + std::to_string(counter++);
    return ValueOrDie(FileBlobStore::Open(sub), "open");
  });
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Append_File)->Arg(65536);

// --- Read throughput: contiguous vs fragmented -----------------------------

void BM_Read_Contiguous(benchmark::State& state) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(4096));
  BlobId id = ValueOrDie(store.PushAll(Payload(1 << 20)), "push");
  for (auto _ : state) {
    auto data = store.Read(id, ByteRange{0, 1 << 20});
    CheckOk(data.status(), "read");
    benchmark::DoNotOptimize(data->data());
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_Read_Contiguous);

void BM_Read_Fragmented(benchmark::State& state) {
  // Same logical content, but pages interleaved with a second blob.
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(4096));
  auto push = ValueOrDie(store.StartPush(), "push");
  auto push_other = ValueOrDie(store.StartPush(), "push other");
  Bytes piece = Payload(4088);  // One page payload.
  for (int i = 0; i < 257; ++i) {
    CheckOk(push->Push(piece), "push");
    CheckOk(push_other->Push(piece), "push other");
  }
  BlobId id = ValueOrDie(push->Finish(), "finish");
  ValueOrDie(push_other->Finish(), "finish other");
  const uint64_t span = 1 << 20;
  for (auto _ : state) {
    auto data = store.Read(id, ByteRange{0, span});
    CheckOk(data.status(), "read");
    benchmark::DoNotOptimize(data->data());
  }
  state.SetBytesProcessed(state.iterations() * span);
}
BENCHMARK(BM_Read_Fragmented);

void BM_Read_MemoryBaseline(benchmark::State& state) {
  MemoryBlobStore store;
  BlobId id = ValueOrDie(store.PushAll(Payload(1 << 20)), "push");
  for (auto _ : state) {
    auto data = store.Read(id, ByteRange{0, 1 << 20});
    CheckOk(data.status(), "read");
    benchmark::DoNotOptimize(data->data());
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_Read_MemoryBaseline);

// --- Random element-sized reads (media access pattern) ----------------------

void BM_RandomElementReads(benchmark::State& state) {
  PagedBlobStore store(std::make_unique<MemoryPageDevice>(4096));
  BlobId id = ValueOrDie(store.PushAll(Payload(4 << 20)), "push");
  uint64_t offset = 0;
  const uint64_t element = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto data = store.Read(id, ByteRange{offset, element});
    CheckOk(data.status(), "read");
    benchmark::DoNotOptimize(data->data());
    offset = (offset + 777 * element) % ((4 << 20) - element);
  }
  state.SetBytesProcessed(state.iterations() * element);
}
BENCHMARK(BM_RandomElementReads)->Arg(1764 * 4)->Arg(20000);

// --- Index construction -----------------------------------------------------

void BM_BuildCompactIndex(benchmark::State& state) {
  InterpretedObject object;
  object.name = "v";
  object.time_system = TimeSystem(25);
  const int64_t n = state.range(0);
  uint64_t offset = 0;
  for (int64_t i = 0; i < n; ++i) {
    uint64_t size = 15000 + (i * 97) % 2000;
    object.elements.push_back({i, i, 1, ByteRange{offset, size}, {}});
    offset += size;
  }
  for (auto _ : state) {
    CompactElementIndex index = CompactElementIndex::Build(object);
    benchmark::DoNotOptimize(index.MemoryBytes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BuildCompactIndex)->Range(256, 16384);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  bool stats = tbm::bench::ConsumeFlag(&argc, argv, "--stats");
  tbm::PrintAblation();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  if (stats) tbm::bench::PrintRegistrySnapshot();
  return 0;
}

// Validates the §2.2 "scalability" claim: a stream recorded at high
// fidelity can be presented at lower fidelity while *reading only part
// of the storage unit* — here by decoding only the key frames of an
// interframe-coded (TMPEG) stream, found through the interpretation's
// sync index. Sweeps the key interval and reports the fraction of BLOB
// bytes touched versus the fraction of frames delivered.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "blob/memory_store.h"
#include "codec/layered.h"
#include "codec/synthetic.h"
#include "codec/tmpeg.h"
#include "db/codec_bridge.h"
#include "interp/index.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kW = 160, kH = 120;
constexpr int64_t kFrames = 48;

struct StoredClip {
  MemoryBlobStore store;
  Interpretation interp;
};

StoredClip MakeClip(int key_interval) {
  StoredClip clip;
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(kW, kH, kFrames, 61);
  StoreOptions options;
  options.video_codec = "tmpeg";
  options.key_interval = key_interval;
  clip.interp = ValueOrDie(
      StoreValue(&clip.store, video, "clip", options), "store");
  return clip;
}

void PrintScalability() {
  bench::Header(
      "Claim (paper §2.2): scalability — \"bandwidth can be saved and\n"
      "processing reduced if the video sequence is 'scaled' to a lower\n"
      "resolution by ignoring parts of the storage unit\"");

  std::printf("%12s %10s %14s %14s %12s\n", "key interval", "keys",
              "bytes touched", "of total", "frames out");
  for (int key_interval : {4, 8, 12, 24}) {
    StoredClip clip = MakeClip(key_interval);
    auto object = ValueOrDie(clip.interp.FindObject("clip"), "object");
    CompactElementIndex index = CompactElementIndex::Build(*object);
    uint64_t key_bytes = 0;
    for (int64_t key : index.sync_elements()) {
      key_bytes += ValueOrDie(index.PlacementOf(key), "placement").length;
    }
    uint64_t total = object->PayloadBytes();
    std::printf("%12d %10zu %14llu %13.1f%% %8zu/%lld\n", key_interval,
                index.sync_elements().size(),
                static_cast<unsigned long long>(key_bytes),
                100.0 * key_bytes / total, index.sync_elements().size(),
                static_cast<long long>(kFrames));
  }
  std::printf(
      "\nShape check: the scaled read touches a shrinking fraction of the\n"
      "BLOB as the key interval grows, while full-fidelity playback always\n"
      "reads 100%%.\n");

  // Image scalability: layered coding (base + enhancement), per the
  // paper's citation of Lippman's feature sets.
  std::printf(
      "\nLayered image coding (base layer only vs full read):\n"
      "%12s %12s %12s %10s %10s\n",
      "geometry", "base bytes", "total bytes", "base PSNR", "full PSNR");
  for (int32_t size : {128, 256, 512}) {
    Image image = videogen::Still(size, size * 3 / 4, 1994);
    LayeredImage layered = ValueOrDie(LayeredEncode(image), "layered");
    Image base = ValueOrDie(LayeredDecodeBase(layered), "base");
    Image full = ValueOrDie(LayeredDecodeFull(layered), "full");
    char geometry[16];
    std::snprintf(geometry, sizeof(geometry), "%dx%d", size, size * 3 / 4);
    std::printf("%12s %12zu %12zu %9.1f %9.1f\n", geometry,
                layered.base.size(),
                layered.base.size() + layered.enhancement.size(),
                ValueOrDie(Psnr(image, base), "psnr"),
                ValueOrDie(Psnr(image, full), "psnr"));
  }
}

void BM_LayeredBaseOnlyDecode(benchmark::State& state) {
  Image image = videogen::Still(256, 192, 3);
  LayeredImage layered = ValueOrDie(LayeredEncode(image), "layered");
  for (auto _ : state) {
    auto base = LayeredDecodeBase(layered);
    CheckOk(base.status(), "base");
    benchmark::DoNotOptimize(base->data.data());
  }
}
BENCHMARK(BM_LayeredBaseOnlyDecode)->Unit(benchmark::kMillisecond);

void BM_LayeredFullDecode(benchmark::State& state) {
  Image image = videogen::Still(256, 192, 3);
  LayeredImage layered = ValueOrDie(LayeredEncode(image), "layered");
  for (auto _ : state) {
    auto full = LayeredDecodeFull(layered);
    CheckOk(full.status(), "full");
    benchmark::DoNotOptimize(full->data.data());
  }
}
BENCHMARK(BM_LayeredFullDecode)->Unit(benchmark::kMillisecond);

// --- Benchmarks -------------------------------------------------------------

void BM_FullFidelityDecode(benchmark::State& state) {
  StoredClip clip = MakeClip(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto stream = clip.interp.Materialize(clip.store, "clip");
    CheckOk(stream.status(), "materialize");
    auto value = DecodeStream(*stream);
    CheckOk(value.status(), "decode");
    benchmark::DoNotOptimize(std::get<VideoValue>(*value).frames.size());
  }
  state.SetItemsProcessed(state.iterations() * kFrames);
}
BENCHMARK(BM_FullFidelityDecode)->Arg(8)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_ScaledKeysOnlyDecode(benchmark::State& state) {
  StoredClip clip = MakeClip(static_cast<int>(state.range(0)));
  auto object = ValueOrDie(clip.interp.FindObject("clip"), "object");
  CompactElementIndex index = CompactElementIndex::Build(*object);
  for (auto _ : state) {
    std::vector<TmpegFrame> keys;
    for (int64_t key : index.sync_elements()) {
      auto element = clip.interp.ReadElement(clip.store, "clip", key);
      CheckOk(element.status(), "read key");
      keys.push_back(ValueOrDie(TmpegParseFrame(element->data), "parse"));
    }
    auto decoded = TmpegDecodeKeysOnly(keys);
    CheckOk(decoded.status(), "keys only");
    benchmark::DoNotOptimize(decoded->size());
  }
  state.SetItemsProcessed(state.iterations() * index.sync_elements().size());
}
BENCHMARK(BM_ScaledKeysOnlyDecode)->Arg(8)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_SeekViaSyncIndex(benchmark::State& state) {
  // Random access into interframe video: nearest key at or before the
  // target, then decode forward — the sync table's purpose.
  StoredClip clip = MakeClip(8);
  auto object = ValueOrDie(clip.interp.FindObject("clip"), "object");
  CompactElementIndex index = CompactElementIndex::Build(*object);
  int64_t target = 0;
  for (auto _ : state) {
    int64_t key = ValueOrDie(index.SyncBefore(target), "sync");
    benchmark::DoNotOptimize(key);
    target = (target + 7) % kFrames;
  }
}
BENCHMARK(BM_SeekViaSyncIndex);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintScalability();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Observability overhead bench: the tentpole acceptance check for the
// obs/ subsystem. Runs the ablation_derivation_cache fan-out workload
// (cold evaluations of a shared-source DAG — every node span, cache
// counter and codec timer fires) and reports:
//
//  - workload wall time with the tracer recording vs runtime-muted
//    (Tracer::set_enabled(false)), giving the *marginal* tracing cost;
//  - per-event micro costs of Counter::Add and ScopedSpan.
//
// The absolute instrumented-vs-compiled-out comparison needs two
// binaries: build once normally and once with -DTBM_OBS_DISABLED=ON,
// run each with `-o <file>`, and diff the workload numbers (the
// committed BENCH_obs_overhead.json at the repo root holds one such
// pair). In the disabled build every instrument is a no-op, so this
// bench also serves as the 0%-when-off proof.
//
// Prints a JSON object; `-o <file>` also writes it to a file.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/synthetic.h"
#include "derive/graph.h"
#include "derive/scheduler.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tbm {
namespace {

using bench::ValueOrDie;

VideoValue Clip(int64_t frames, uint32_t scene) {
  VideoValue video;
  video.frame_rate = Rational(25);
  video.frames = videogen::Clip(96, 64, frames, scene);
  return video;
}

/// The fan-out DAG from ablation_derivation_cache: one source feeding
/// `branches` independent edits joined by a concat chain.
struct FanOut {
  DerivationGraph graph;
  NodeId root = 0;
};

FanOut MakeFanOut(int branches) {
  FanOut f;
  NodeId source = f.graph.AddLeaf(Clip(48, 7), "source");
  std::vector<NodeId> tops;
  for (int i = 0; i < branches; ++i) {
    AttrMap cut;
    cut.SetInt("start frame", i % 16);
    cut.SetInt("frame count", 32);
    tops.push_back(ValueOrDie(
        f.graph.AddDerived("video edit", {source}, cut,
                           "edit" + std::to_string(i)),
        "edit"));
  }
  NodeId acc = tops[0];
  for (size_t i = 1; i < tops.size(); ++i) {
    acc = ValueOrDie(f.graph.AddDerived("video concat", {acc, tops[i]},
                                        AttrMap{},
                                        "cat" + std::to_string(i)),
                     "concat");
  }
  f.root = acc;
  return f;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Cold-evaluates the DAG `iters` times and returns mean ms/iteration.
double MeasureWorkloadMs(DerivationEngine* engine, NodeId root, int iters) {
  double start = NowMs();
  for (int i = 0; i < iters; ++i) {
    engine->InvalidateAll();  // Cold cache: every node re-expands.
    bench::CheckOk(engine->Evaluate(root).status(), "evaluate");
  }
  return (NowMs() - start) / iters;
}

/// ns per Counter::Add, measured over `n` adds.
double MeasureCounterNs(int n) {
  obs::Counter* counter =
      obs::Registry::Global().counter("bench.obs_overhead.counter");
  double start = NowMs();
  for (int i = 0; i < n; ++i) counter->Add();
  double elapsed_ms = NowMs() - start;
  // In TBM_OBS_DISABLED builds the loop is empty and elapsed ~ 0 —
  // exactly the point.
  return elapsed_ms * 1e6 / n;
}

/// ns per ScopedSpan construct+destruct pair, measured over `n` spans.
double MeasureSpanNs(int n) {
  double start = NowMs();
  for (int i = 0; i < n; ++i) {
    obs::ScopedSpan span("bench.obs_overhead.span");
  }
  double elapsed_ms = NowMs() - start;
  return elapsed_ms * 1e6 / n;
}

/// ns per Add on a *labeled* counter handle. The handle is fetched
/// once (the instrumentation-site contract), so this should match the
/// unlabeled cost — the label only exists at lookup time.
double MeasureLabeledCounterNs(int n) {
  obs::Counter* counter = obs::Registry::Global().counter(
      "bench.obs_overhead.labeled", "qos", "s1");
  double start = NowMs();
  for (int i = 0; i < n; ++i) counter->Add();
  double elapsed_ms = NowMs() - start;
  return elapsed_ms * 1e6 / n;
}

/// ns per FlightRecorder::Record (mutexed append, uncontended — the
/// session-thread steady state).
double MeasureFlightNs(int n) {
  obs::FlightRecorder recorder;
  double start = NowMs();
  for (int i = 0; i < n; ++i) {
    recorder.Record(obs::FlightEventType::kNote, "bench",
                    static_cast<uint64_t>(i));
  }
  double elapsed_ms = NowMs() - start;
  return elapsed_ms * 1e6 / n;
}

/// µs per Prometheus-text render of a snapshot shaped like a live
/// serving registry: `families` counter/gauge/histogram families, a
/// 5-way qos label split each. The scrape path — off the hot path but
/// it holds the registry lock while snapshotting, so it should stay
/// comfortably sub-millisecond.
double MeasurePromRenderUs(int families, int n) {
  obs::MetricsSnapshot snapshot;
  static const char* kQos[] = {"s1", "s2", "s4", "s8", "s16plus"};
  for (int f = 0; f < families; ++f) {
    std::string base = "bench.family_" + std::to_string(f);
    for (const char* qos : kQos) {
      std::string name = base + "{qos=" + qos + "}";
      snapshot.counters[name + ".count"] = 12345;
      snapshot.gauges[name + ".level"] = -7;
      obs::HistogramSnapshot h;
      h.count = 1000;
      h.sum = 50'000;
      h.min = 3;
      h.max = 900;
      for (int b = 0; b < 10; ++b) h.buckets[b] = 100;
      snapshot.histograms[name + ".us"] = h;
    }
  }
  double start = NowMs();
  size_t sink = 0;
  for (int i = 0; i < n; ++i) sink += obs::ToPrometheusText(snapshot).size();
  double elapsed_ms = NowMs() - start;
  if (sink == 0 && families > 0) std::fprintf(stderr, "render sank empty\n");
  return elapsed_ms * 1e3 / n;
}

int Run(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) out_path = argv[i + 1];
  }
#ifdef TBM_OBS_DISABLED
  const char* mode = "disabled";
#else
  const char* mode = "enabled";
#endif
  constexpr int kBranches = 8;
  // The engine has sped up since this bench was written (~60 µs per
  // cold evaluation); enough iterations per sample to keep the timing
  // window in milliseconds, or quantization noise swamps the delta.
  constexpr int kIters = 100;

  FanOut f = MakeFanOut(kBranches);
  EvalOptions options;
  options.threads = 1;  // Deterministic schedule: same work every run.
  DerivationEngine engine(&f.graph, options);
  // Warm-up: fault in code paths and the op registry.
  bench::CheckOk(engine.Evaluate(f.root).status(), "warm-up evaluate");

  // Interleave the two modes and keep each one's best run: the span
  // cost per iteration is microseconds against a ~10 ms workload, so
  // back-to-back minimums are the only way to see it over OS noise.
  constexpr int kRepetitions = 9;
  double traced_ms = 1e300, untraced_ms = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    obs::Tracer::Global().set_enabled(true);
    traced_ms =
        std::min(traced_ms, MeasureWorkloadMs(&engine, f.root, kIters));
    obs::Tracer::Global().set_enabled(false);
    untraced_ms =
        std::min(untraced_ms, MeasureWorkloadMs(&engine, f.root, kIters));
  }
  obs::Tracer::Global().set_enabled(true);
  double overhead_pct =
      untraced_ms > 0 ? 100.0 * (traced_ms - untraced_ms) / untraced_ms : 0.0;
  double counter_ns = MeasureCounterNs(10'000'000);
  double span_ns = MeasureSpanNs(1'000'000);
  double labeled_counter_ns = MeasureLabeledCounterNs(10'000'000);
  double flight_ns = MeasureFlightNs(1'000'000);
  double prom_render_us = MeasurePromRenderUs(/*families=*/8, /*n=*/200);

  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"obs_overhead\", \"mode\": \"%s\",\n"
      " \"workload\": \"derivation fan-out, %d branches, cold cache\",\n"
      " \"workload_traced_ms\": %.3f, \"workload_untraced_ms\": %.3f,\n"
      " \"tracing_overhead_pct\": %.2f,\n"
      " \"counter_add_ns\": %.2f, \"scoped_span_ns\": %.2f,\n"
      " \"labeled_counter_add_ns\": %.2f, \"flight_record_ns\": %.2f,\n"
      " \"prom_render_us\": %.2f}\n",
      mode, kBranches, traced_ms, untraced_ms, overhead_pct, counter_ns,
      span_ns, labeled_counter_ns, flight_ns, prom_render_us);
  std::printf("%s", json);
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) { return tbm::Run(argc, argv); }

#ifndef TBM_BENCH_BENCH_UTIL_H_
#define TBM_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "base/result.h"
#include "base/status.h"

namespace tbm::bench {

/// Aborts the bench with a message when a setup step fails — bench
/// binaries have no gtest harness, so failures must be loud.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace tbm::bench

#endif  // TBM_BENCH_BENCH_UTIL_H_

#ifndef TBM_BENCH_BENCH_UTIL_H_
#define TBM_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/result.h"
#include "base/status.h"
#include "obs/metrics.h"

namespace tbm::bench {

/// Aborts the bench with a message when a setup step fails — bench
/// binaries have no gtest harness, so failures must be loud.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void Header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Removes `flag` from argv if present and reports whether it was.
/// Call before benchmark::Initialize so google-benchmark never sees
/// flags it doesn't know.
inline bool ConsumeFlag(int* argc, char** argv, const char* flag) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return true;
    }
  }
  return false;
}

/// Dumps the process-wide obs registry — what `--stats` prints after
/// the benchmarks ran. Empty (and silent) in TBM_OBS_DISABLED builds.
inline void PrintRegistrySnapshot() {
  obs::MetricsSnapshot snapshot = obs::Registry::Global().Snapshot();
  if (snapshot.empty()) {
    std::printf("\n[obs registry is empty — built with TBM_OBS_DISABLED?]\n");
    return;
  }
  Header("obs registry snapshot");
  std::printf("%s", snapshot.ToString().c_str());
}

}  // namespace tbm::bench

#endif  // TBM_BENCH_BENCH_UTIL_H_

// Validates the §2.2 "Quality Factors" claim: descriptive quality
// names ("VHS quality", "broadcast quality") — not low-level codec
// parameters — control the rate/fidelity trade-off. Sweeps the named
// video qualities and the raw TJPEG quality knob, reporting bits/pixel
// and PSNR; the named ladder must be monotone in both.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/synthetic.h"
#include "codec/tjpeg.h"
#include "media/quality.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

void PrintQualityLadder() {
  bench::Header(
      "Claim (paper §2.2): quality factors — \"a particular video-valued\n"
      "attribute might be of 'broadcast quality' or 'VHS quality'\";\n"
      "the mapping to compression parameters is the library's job");

  std::printf("%-22s %9s %8s %9s %10s %8s\n", "named quality", "geometry",
              "knob", "bits/px", "target", "PSNR dB");
  for (const std::string& name : VideoQualityNames()) {
    VideoQuality q = ValueOrDie(LookupVideoQuality(name), "quality");
    Image frame = videogen::Still(static_cast<int32_t>(q.width),
                                  static_cast<int32_t>(q.height), 1994);
    Bytes encoded = ValueOrDie(TjpegEncode(frame, q.codec_quality), "encode");
    Image decoded = ValueOrDie(TjpegDecode(encoded), "decode");
    double bpp = TjpegBitsPerPixel(frame, encoded.size());
    double psnr = ValueOrDie(Psnr(frame, decoded), "psnr");
    char geometry[16];
    std::snprintf(geometry, sizeof(geometry), "%lldx%lld",
                  static_cast<long long>(q.width),
                  static_cast<long long>(q.height));
    std::printf("%-22s %9s %8d %9.2f %9.2f %8.1f\n", name.c_str(), geometry,
                q.codec_quality, bpp, q.target_bpp, psnr);
  }
  std::printf(
      "\nPaper anchor: DVI PLV / MPEG-I deliver \"VHS quality\" around\n"
      "0.5 bit/pixel; our VHS row should land in that neighbourhood and\n"
      "the ladder must be monotone in rate and fidelity.\n");

  std::printf("\nRaw TJPEG knob sweep (640x480 synthetic frame):\n");
  std::printf("%8s %10s %8s %12s\n", "quality", "bytes", "bits/px",
              "PSNR dB");
  Image frame = videogen::Still(640, 480, 1994);
  for (int quality : {5, 15, 30, 50, 70, 85, 95}) {
    Bytes encoded = ValueOrDie(TjpegEncode(frame, quality), "encode");
    Image decoded = ValueOrDie(TjpegDecode(encoded), "decode");
    std::printf("%8d %10zu %8.2f %12.1f\n", quality, encoded.size(),
                TjpegBitsPerPixel(frame, encoded.size()),
                ValueOrDie(Psnr(frame, decoded), "psnr"));
  }
}

// --- Benchmarks -------------------------------------------------------------

void BM_EncodeAtQuality(benchmark::State& state) {
  Image frame = videogen::Still(320, 240, 7);
  int quality = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto encoded = TjpegEncode(frame, quality);
    CheckOk(encoded.status(), "encode");
    benchmark::DoNotOptimize(encoded->size());
  }
  state.SetBytesProcessed(state.iterations() * frame.data.size());
}
BENCHMARK(BM_EncodeAtQuality)->Arg(10)->Arg(50)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_DecodeAtQuality(benchmark::State& state) {
  Image frame = videogen::Still(320, 240, 7);
  Bytes encoded = ValueOrDie(
      TjpegEncode(frame, static_cast<int>(state.range(0))), "encode");
  for (auto _ : state) {
    auto decoded = TjpegDecode(encoded);
    CheckOk(decoded.status(), "decode");
    benchmark::DoNotOptimize(decoded->data.data());
  }
  state.SetBytesProcessed(state.iterations() * frame.data.size());
}
BENCHMARK(BM_DecodeAtQuality)->Arg(10)->Arg(50)->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintQualityLadder();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

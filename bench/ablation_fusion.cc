// Derivation-fusion ablation: the acceptance check for the plan
// compiler (derive/plan.h). A deep chain of per-pixel content ops is
// evaluated two ways over a 640x480 RGB still:
//
//  - node-at-a-time:  EvalOptions{fuse = false}, the pre-compiler
//                     path — every op materializes (and caches) a full
//                     intermediate Image;
//  - fused:           the default path, where the compiler collapses
//                     the chain into one stage that streams 64 KiB
//                     tiles through the composed element kernels and
//                     materializes only the tail.
//
// The same comparison runs for an audio chain (gain/fade), and the
// per-kernel SIMD dispatch (base/simd.h) is measured in isolation as
// cycles per byte against a plain scalar loop.
//
// Outputs are compared byte-for-byte: fusion must be bit-exact, and
// the fused chain must be at least 2x faster. Prints a JSON object;
// `-o <file>` also writes it to a file (the committed
// BENCH_fusion.json at the repo root is one such run).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "base/simd.h"
#include "bench/bench_util.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "derive/graph.h"
#include "derive/scheduler.h"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace tbm {
namespace {

using bench::ValueOrDie;

constexpr int kWidth = 640;
constexpr int kHeight = 480;
constexpr int kImageChainOps = 8;
constexpr int64_t kAudioFrames = 1 << 20;  // ~24 s of 44.1 kHz stereo
constexpr int kAudioChainOps = 6;
constexpr int kRepetitions = 7;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t Cycles() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// Alternating invert / threshold chain: every link has an element
// kernel, so the whole chain compiles into one composed run.
NodeId BuildImageChain(DerivationGraph* graph) {
  NodeId node =
      graph->AddLeaf(MediaValue(videogen::Still(kWidth, kHeight, 11)), "src");
  for (int i = 0; i < kImageChainOps; ++i) {
    AttrMap params;
    if (i % 2 == 0) {
      params.SetString("kind", "invert");
    } else {
      params.SetString("kind", "threshold");
      params.SetInt("threshold", 90 + 10 * i);
    }
    node = ValueOrDie(graph->AddDerived("image filter", {node}, params),
                      "add image filter");
  }
  return node;
}

NodeId BuildAudioChain(DerivationGraph* graph) {
  AudioBuffer tone = audiogen::Sine(44100, 2, 440, 0.6,
                                    static_cast<double>(kAudioFrames) / 44100);
  NodeId node = graph->AddLeaf(MediaValue(std::move(tone)), "tone");
  for (int i = 0; i < kAudioChainOps; ++i) {
    AttrMap params;
    const char* op = "audio gain";
    if (i % 3 == 2) {
      op = "audio fade";
      params.SetInt("fade in frames", 4096);
      params.SetInt("fade out frames", 4096);
    } else {
      params.SetDouble("gain", i % 2 == 0 ? 0.8 : 1.2);
    }
    node = ValueOrDie(graph->AddDerived(op, {node}, params), "add audio op");
  }
  return node;
}

struct ChainResult {
  double ms = 0.0;
  ValueRef value;
  EvalStats stats;
};

ChainResult MeasureChain(NodeId (*build)(DerivationGraph*), bool fuse) {
  DerivationGraph graph;
  NodeId root = build(&graph);
  EvalOptions options;
  options.fuse = fuse;
  DerivationEngine engine(&graph, options);
  ChainResult result;
  result.ms = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    engine.InvalidateAll();  // every rep re-derives the whole chain
    double start = NowMs();
    result.value = ValueOrDie(engine.Evaluate(root), "evaluate chain");
    result.ms = std::min(result.ms, NowMs() - start);
  }
  result.stats = engine.stats();
  // The engine's counters are cumulative; report one evaluation's worth.
  result.stats.fused_nodes /= kRepetitions;
  result.stats.elided_bytes /= kRepetitions;
  return result;
}

bool BitIdentical(const ValueRef& a, const ValueRef& b) {
  if (const Image* ia = std::get_if<Image>(a.get())) {
    const Image& ib = std::get<Image>(*b);
    return ia->width == ib.width && ia->height == ib.height &&
           ia->model == ib.model && ia->data.size() == ib.data.size() &&
           std::memcmp(ia->data.data(), ib.data.data(), ib.data.size()) == 0;
  }
  const AudioBuffer& aa = std::get<AudioBuffer>(*a);
  const AudioBuffer& ab = std::get<AudioBuffer>(*b);
  return aa.sample_rate == ab.sample_rate && aa.channels == ab.channels &&
         aa.samples.size() == ab.samples.size() &&
         std::memcmp(aa.samples.data(), ab.samples.data(),
                     ab.samples.size() * sizeof(int16_t)) == 0;
}

// Cycles per byte of one pixel kernel, best of kRepetitions.
template <typename Fn>
double KernelCyclesPerByte(const Bytes& src, Bytes* dst, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    uint64_t t0 = Cycles();
    fn(src.data(), dst->data(), src.size());
    uint64_t t1 = Cycles();
    best = std::min(best, static_cast<double>(t1 - t0) / src.size());
  }
  return best;
}

int Run(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) out_path = argv[i + 1];
  }

  ChainResult image_unfused = MeasureChain(BuildImageChain, /*fuse=*/false);
  ChainResult image_fused = MeasureChain(BuildImageChain, /*fuse=*/true);
  ChainResult audio_unfused = MeasureChain(BuildAudioChain, /*fuse=*/false);
  ChainResult audio_fused = MeasureChain(BuildAudioChain, /*fuse=*/true);

  bool image_exact = BitIdentical(image_fused.value, image_unfused.value);
  bool audio_exact = BitIdentical(audio_fused.value, audio_unfused.value);
  double image_speedup =
      image_fused.ms > 0 ? image_unfused.ms / image_fused.ms : 0.0;
  double audio_speedup =
      audio_fused.ms > 0 ? audio_unfused.ms / audio_fused.ms : 0.0;

  // Isolated pixel-kernel dispatch: SIMD vs a plain scalar loop.
  Bytes src(static_cast<size_t>(kWidth) * kHeight * 3, 0);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i);
  Bytes dst(src.size(), 0);
  double invert_scalar = KernelCyclesPerByte(
      src, &dst, [](const uint8_t* in, uint8_t* out, size_t n) {
        for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(~in[i]);
      });
  double invert_simd = KernelCyclesPerByte(
      src, &dst, [](const uint8_t* in, uint8_t* out, size_t n) {
        simd::InvertBytes(in, out, n);
      });
  double threshold_scalar = KernelCyclesPerByte(
      src, &dst, [](const uint8_t* in, uint8_t* out, size_t n) {
        for (size_t i = 0; i < n; ++i) out[i] = in[i] >= 128 ? 255 : 0;
      });
  double threshold_simd = KernelCyclesPerByte(
      src, &dst, [](const uint8_t* in, uint8_t* out, size_t n) {
        simd::ThresholdBytes(in, out, n, 128);
      });

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"ablation_fusion\",\n"
      " \"image_workload\": \"%dx%d RGB, %d-op invert/threshold chain\",\n"
      " \"image_unfused_ms\": %.3f,\n"
      " \"image_fused_ms\": %.3f,\n"
      " \"image_speedup\": %.2f,\n"
      " \"image_bit_exact\": %s,\n"
      " \"image_fused_nodes\": %llu,\n"
      " \"image_elided_bytes\": %llu,\n"
      " \"audio_workload\": \"%lld frames 44.1kHz stereo, %d-op "
      "gain/fade chain\",\n"
      " \"audio_unfused_ms\": %.3f,\n"
      " \"audio_fused_ms\": %.3f,\n"
      " \"audio_speedup\": %.2f,\n"
      " \"audio_bit_exact\": %s,\n"
      " \"simd_isa\": \"%s\",\n"
      " \"invert_scalar_cycles_per_byte\": %.3f,\n"
      " \"invert_simd_cycles_per_byte\": %.3f,\n"
      " \"threshold_scalar_cycles_per_byte\": %.3f,\n"
      " \"threshold_simd_cycles_per_byte\": %.3f}\n",
      kWidth, kHeight, kImageChainOps, image_unfused.ms, image_fused.ms,
      image_speedup, image_exact ? "true" : "false",
      (unsigned long long)image_fused.stats.fused_nodes,
      (unsigned long long)image_fused.stats.elided_bytes,
      (long long)kAudioFrames, kAudioChainOps, audio_unfused.ms,
      audio_fused.ms, audio_speedup, audio_exact ? "true" : "false",
      simd::IsaName(), invert_scalar, invert_simd, threshold_scalar,
      threshold_simd);
  std::printf("%s", json);

  if (!image_exact || !audio_exact) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: fused output not bit-exact\n");
    return 1;
  }
  if (image_speedup < 2.0) {
    std::fprintf(stderr, "ACCEPTANCE FAILURE: image speedup %.2fx < 2x\n",
                 image_speedup);
    return 1;
  }
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json, f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) { return tbm::Run(argc, argv); }

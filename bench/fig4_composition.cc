// Reproduces Figure 4: the §4.3 composition example. Builds the full
// instance diagram — audio1/audio2 interleaved in one BLOB, video1/
// video2 in another, cut1/cut2/fade/concat derivation objects, video3,
// and the multimedia object m with temporal relationships c1..c3 —
// prints the relationship graph and the Figure 4b timeline, and
// benchmarks timeline evaluation against component count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "codec/pcm.h"
#include "codec/synthetic.h"
#include "db/database.h"
#include "interp/capture.h"

namespace tbm {
namespace {

using bench::CheckOk;
using bench::ValueOrDie;

constexpr int kW = 160, kH = 120;

struct Figure4Instance {
  std::unique_ptr<MediaDatabase> db;
  ObjectId audio1, audio2, video1, video2;
  ObjectId cut1, cut2, fade, video3, m;
};

Figure4Instance BuildInstance() {
  Figure4Instance out;
  out.db = MediaDatabase::CreateInMemory();
  MediaDatabase* db = out.db.get();

  // Audio BLOB: music (audio1) + narration (audio2), interleaved.
  {
    AudioBuffer music = audiogen::Sine(8000, 1, 330.0, 0.35, 130.0 / 25.0);
    AudioBuffer narration = audiogen::Narration(8000, 1, 70.0 / 25.0, 4);
    auto session = CaptureSession::Begin(db->blob_store());
    CheckOk(session.status(), "audio session");
    MediaDescriptor desc;
    desc.type_name = "audio/pcm-block";
    desc.kind = MediaKind::kAudio;
    desc.attrs.SetInt("sample rate", 8000);
    desc.attrs.SetInt("sample size", 16);
    desc.attrs.SetInt("number of channels", 1);
    desc.attrs.SetString("encoding", "PCM");
    size_t h1 = ValueOrDie(
        session->DeclareObject("audio1", desc, TimeSystem(8000)), "audio1");
    size_t h2 = ValueOrDie(
        session->DeclareObject("audio2", desc, TimeSystem(8000)), "audio2");
    auto push = [&](size_t handle, const AudioBuffer& buffer, int64_t from,
                    int64_t count) {
      Bytes bytes(count * 2);
      for (int64_t i = 0; i < count; ++i) {
        uint16_t u = static_cast<uint16_t>(buffer.samples[from + i]);
        bytes[2 * i] = static_cast<uint8_t>(u);
        bytes[2 * i + 1] = static_cast<uint8_t>(u >> 8);
      }
      CheckOk(session->CaptureContiguous(handle, bytes, count), "capture");
    };
    const int64_t block = 2000;
    for (int64_t f = 0; f + block <= music.FrameCount(); f += block) {
      push(h1, music, f, block);
      if (f + block <= narration.FrameCount()) push(h2, narration, f, block);
    }
    auto interp = ValueOrDie(session->Finish(), "audio interp");
    ObjectId interp_id = ValueOrDie(
        db->AddInterpretation("audio_blob", interp), "audio interp id");
    out.audio1 =
        ValueOrDie(db->AddMediaObject("audio1", interp_id, "audio1"), "a1");
    out.audio2 =
        ValueOrDie(db->AddMediaObject("audio2", interp_id, "audio2"), "a2");
  }

  // Video BLOB: two shots from one digitization.
  {
    auto session = CaptureSession::Begin(db->blob_store());
    CheckOk(session.status(), "video session");
    MediaDescriptor desc;
    desc.type_name = "video/raw";
    desc.kind = MediaKind::kVideo;
    desc.attrs.SetRational("frame rate", Rational(25));
    desc.attrs.SetInt("frame width", kW);
    desc.attrs.SetInt("frame height", kH);
    desc.attrs.SetInt("frame depth", 24);
    desc.attrs.SetString("color model", "RGB");
    size_t v1 = ValueOrDie(
        session->DeclareObject("video1", desc, TimeSystem(25)), "video1");
    size_t v2 = ValueOrDie(
        session->DeclareObject("video2", desc, TimeSystem(25)), "video2");
    for (int i = 0; i < 75; ++i) {
      CheckOk(session->CaptureContiguous(
                  v1, videogen::Frame(kW, kH, i, 100).data, 1),
              "v1 frame");
    }
    for (int i = 0; i < 75; ++i) {
      CheckOk(session->CaptureContiguous(
                  v2, videogen::Frame(kW, kH, i, 200).data, 1),
              "v2 frame");
    }
    auto interp = ValueOrDie(session->Finish(), "video interp");
    ObjectId interp_id = ValueOrDie(
        db->AddInterpretation("video_blob", interp), "video interp id");
    out.video1 =
        ValueOrDie(db->AddMediaObject("video1", interp_id, "video1"), "v1");
    out.video2 =
        ValueOrDie(db->AddMediaObject("video2", interp_id, "video2"), "v2");
  }

  // Derivation objects: cut1, cut2, fade (videoF), concat -> video3.
  // The 10-second fade of the paper becomes 10 frames here — same
  // structure, smaller substrate.
  AttrMap cut1_params;
  cut1_params.SetInt("start frame", 0);
  cut1_params.SetInt("frame count", 40);
  out.cut1 = ValueOrDie(
      out.db->AddDerivedObject("cut1", "video edit", {out.video1},
                               cut1_params),
      "cut1");
  AttrMap cut2_params;
  cut2_params.SetInt("start frame", 30);
  cut2_params.SetInt("frame count", 40);
  out.cut2 = ValueOrDie(
      out.db->AddDerivedObject("cut2", "video edit", {out.video2},
                               cut2_params),
      "cut2");
  AttrMap fade_params;
  fade_params.SetString("kind", "fade");
  fade_params.SetInt("duration frames", 10);
  out.fade = ValueOrDie(
      out.db->AddDerivedObject("fade", "video transition",
                               {out.cut1, out.cut2}, fade_params),
      "fade");
  // The fade output (head + blend + tail) IS video3 in this pipeline;
  // register an explicit alias derivation for the Figure 4 concat node.
  AttrMap concat_params;
  concat_params.SetInt("start frame", 0);
  concat_params.SetInt("frame count", 70);
  out.video3 = ValueOrDie(
      out.db->AddDerivedObject("video3", "video edit", {out.fade},
                               concat_params),
      "video3");

  // Temporal composition: m = {c1: audio1@0, c2: audio2@1, c3: video3@0}.
  std::vector<StoredComponent> components;
  components.push_back({"c1", out.audio1, Rational(0), std::nullopt});
  components.push_back({"c2", out.audio2, Rational(1), std::nullopt});
  components.push_back({"c3", out.video3, Rational(0), std::nullopt});
  out.m = ValueOrDie(out.db->AddMultimediaObject("m", components), "m");
  return out;
}

void PrintFigure4(Figure4Instance& instance) {
  bench::Header(
      "Figure 4 reproduction: instance diagram and timeline for the\n"
      "multimedia object m (audio1 music, audio2 narration, video3 =\n"
      "cut1 + 10-frame fade + cut2)");

  MediaDatabase* db = instance.db.get();
  std::printf("Catalog (instance diagram of Figure 4a):\n");
  for (ObjectId id : db->List()) {
    const CatalogEntry* entry = ValueOrDie(db->Get(id), "get");
    std::printf("  [%llu] %-12s %s", static_cast<unsigned long long>(id),
                entry->name.c_str(),
                std::string(CatalogKindToString(entry->kind)).c_str());
    if (entry->kind == CatalogKind::kDerivedObject) {
      std::printf("  <- %s(", entry->op.c_str());
      for (size_t i = 0; i < entry->inputs.size(); ++i) {
        if (i) std::printf(", ");
        std::printf("%s",
                    ValueOrDie(db->Get(entry->inputs[i]), "in")->name.c_str());
      }
      std::printf(")");
    }
    if (entry->kind == CatalogKind::kMultimediaObject) {
      std::printf("  components:");
      for (const StoredComponent& c : entry->components) {
        std::printf(" %s->%s@%ss", c.name.c_str(),
                    ValueOrDie(db->Get(c.media), "c")->name.c_str(),
                    c.start_seconds.ToString().c_str());
      }
    }
    std::printf("\n");
  }

  auto view = ValueOrDie(db->Compose(instance.m), "compose");
  std::printf("\nTimeline (Figure 4b):\n%s",
              ValueOrDie(view->object.RenderTimelineAscii(56), "ascii")
                  .c_str());

  auto duration = ValueOrDie(view->object.Duration(), "duration");
  std::printf("\nTotal duration: %.2f s\n", duration.ToDouble());

  uint64_t record = ValueOrDie(
      db->DerivationRecordBytes(instance.video3), "record");
  auto video3 = ValueOrDie(db->Materialize(instance.video3), "video3");
  std::printf(
      "video3 derivation records: %llu B vs expanded %s "
      "(%.0fx smaller)\n",
      static_cast<unsigned long long>(record),
      HumanBytes(ExpandedBytes(video3)).c_str(),
      static_cast<double>(ExpandedBytes(video3)) / record);
}

Figure4Instance& Instance() {
  static Figure4Instance* instance =
      new Figure4Instance(BuildInstance());
  return *instance;
}

// --- Benchmarks -------------------------------------------------------------

void BM_ComposeView(benchmark::State& state) {
  Figure4Instance& instance = Instance();
  for (auto _ : state) {
    auto view = instance.db->Compose(instance.m);
    CheckOk(view.status(), "compose");
    benchmark::DoNotOptimize((*view)->object.components().size());
  }
}
BENCHMARK(BM_ComposeView)->Unit(benchmark::kMillisecond);

void BM_TimelineEvaluation(benchmark::State& state) {
  Figure4Instance& instance = Instance();
  auto view = ValueOrDie(instance.db->Compose(instance.m), "compose");
  // First Timeline() call expands the components; iterate on the warm
  // graph to measure pure timeline evaluation.
  CheckOk(view->object.Timeline().status(), "warm");
  for (auto _ : state) {
    auto timeline = view->object.Timeline();
    CheckOk(timeline.status(), "timeline");
    benchmark::DoNotOptimize(timeline->size());
  }
}
BENCHMARK(BM_TimelineEvaluation);

void BM_TimelineVsComponentCount(benchmark::State& state) {
  // Synthetic multimedia object with N audio components.
  DerivationGraph graph;
  MultimediaObject mm("wide", &graph);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    NodeId leaf = graph.AddLeaf(
        audiogen::Sine(8000, 1, 220.0 + i, 0.1, 0.5), "a" + std::to_string(i));
    CheckOk(mm.AddComponent("c" + std::to_string(i), leaf, Rational(i, 4)),
            "component");
  }
  CheckOk(mm.Timeline().status(), "warm");
  for (auto _ : state) {
    auto timeline = mm.Timeline();
    CheckOk(timeline.status(), "timeline");
    benchmark::DoNotOptimize(timeline->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TimelineVsComponentCount)->Range(4, 256);

void BM_MixAudio(benchmark::State& state) {
  Figure4Instance& instance = Instance();
  auto view = ValueOrDie(instance.db->Compose(instance.m), "compose");
  for (auto _ : state) {
    auto mix = view->object.MixAudio(8000, 1);
    CheckOk(mix.status(), "mix");
    benchmark::DoNotOptimize(mix->samples.data());
  }
}
BENCHMARK(BM_MixAudio)->Unit(benchmark::kMillisecond);

void BM_RenderCompositeFrame(benchmark::State& state) {
  Figure4Instance& instance = Instance();
  auto view = ValueOrDie(instance.db->Compose(instance.m), "compose");
  double t = 0.0;
  for (auto _ : state) {
    auto frame = view->object.RenderFrameAt(t, kW, kH);
    CheckOk(frame.status(), "render");
    benchmark::DoNotOptimize(frame->data.data());
    t += 0.04;
    if (t > 2.5) t = 0.0;
  }
}
BENCHMARK(BM_RenderCompositeFrame)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tbm

int main(int argc, char** argv) {
  tbm::PrintFigure4(tbm::Instance());
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#include "anim/animation.h"

#include <algorithm>
#include <cmath>

#include "base/macros.h"

namespace tbm {

void MovementEvent::Serialize(BinaryWriter* writer) const {
  writer->WriteVarI64(start);
  writer->WriteVarI64(duration);
  writer->WriteI32(object_id);
  writer->WriteF64(to_x);
  writer->WriteF64(to_y);
}

Result<MovementEvent> MovementEvent::Deserialize(BinaryReader* reader) {
  MovementEvent m;
  TBM_ASSIGN_OR_RETURN(m.start, reader->ReadVarI64());
  TBM_ASSIGN_OR_RETURN(m.duration, reader->ReadVarI64());
  TBM_ASSIGN_OR_RETURN(m.object_id, reader->ReadI32());
  TBM_ASSIGN_OR_RETURN(m.to_x, reader->ReadF64());
  TBM_ASSIGN_OR_RETURN(m.to_y, reader->ReadF64());
  return m;
}

Status AnimationScene::AddObject(SceneObject object) {
  for (const SceneObject& existing : objects_) {
    if (existing.id == object.id) {
      return Status::AlreadyExists("object id " + std::to_string(object.id) +
                                   " already in scene");
    }
  }
  objects_.push_back(object);
  return Status::OK();
}

Status AnimationScene::AddMovement(MovementEvent movement) {
  if (movement.duration <= 0) {
    return Status::InvalidArgument("movement duration must be positive");
  }
  bool found = false;
  for (const SceneObject& object : objects_) {
    if (object.id == movement.object_id) {
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::NotFound("no scene object with id " +
                            std::to_string(movement.object_id));
  }
  // Per-object movements must be sequential in time.
  for (auto it = movements_.rbegin(); it != movements_.rend(); ++it) {
    if (it->object_id == movement.object_id) {
      if (movement.start < it->start + it->duration) {
        return Status::InvalidArgument(
            "movement overlaps a previous movement of object " +
            std::to_string(movement.object_id));
      }
      break;
    }
  }
  auto it = std::upper_bound(
      movements_.begin(), movements_.end(), movement.start,
      [](int64_t start, const MovementEvent& m) { return start < m.start; });
  movements_.insert(it, movement);
  return Status::OK();
}

int64_t AnimationScene::EndTick() const {
  int64_t end = 0;
  for (const MovementEvent& m : movements_) {
    end = std::max(end, m.start + m.duration);
  }
  return end;
}

Result<std::pair<double, double>> AnimationScene::PositionAt(
    int32_t object_id, int64_t tick) const {
  const SceneObject* object = nullptr;
  for (const SceneObject& o : objects_) {
    if (o.id == object_id) {
      object = &o;
      break;
    }
  }
  if (object == nullptr) {
    return Status::NotFound("no scene object with id " +
                            std::to_string(object_id));
  }
  double x = object->x, y = object->y;
  for (const MovementEvent& m : movements_) {
    if (m.object_id != object_id) continue;
    if (m.start > tick) break;
    if (tick >= m.start + m.duration) {
      x = m.to_x;
      y = m.to_y;
    } else {
      double f = static_cast<double>(tick - m.start) / m.duration;
      x = x + (m.to_x - x) * f;
      y = y + (m.to_y - y) * f;
      break;
    }
  }
  return std::make_pair(x, y);
}

Result<Image> AnimationScene::RenderFrame(int64_t tick) const {
  Image frame = Image::Zero(width_, height_, ColorModel::kRgb24);
  Bytes pixels_out(frame.data.size(), 0);
  for (size_t i = 0; i < pixels_out.size(); i += 3) {
    pixels_out[i] = bg_r_;
    pixels_out[i + 1] = bg_g_;
    pixels_out[i + 2] = bg_b_;
  }
  for (const SceneObject& object : objects_) {
    TBM_ASSIGN_OR_RETURN(auto pos, PositionAt(object.id, tick));
    const auto [cx, cy] = pos;
    const int32_t size = object.size;
    const int32_t x0 = std::max<int32_t>(0, static_cast<int32_t>(cx) - size);
    const int32_t x1 =
        std::min<int32_t>(width_ - 1, static_cast<int32_t>(cx) + size);
    const int32_t y0 = std::max<int32_t>(0, static_cast<int32_t>(cy) - size);
    const int32_t y1 =
        std::min<int32_t>(height_ - 1, static_cast<int32_t>(cy) + size);
    for (int32_t y = y0; y <= y1; ++y) {
      for (int32_t x = x0; x <= x1; ++x) {
        bool inside = object.shape == ShapeKind::kRectangle ||
                      std::hypot(x - cx, y - cy) <= size;
        if (!inside) continue;
        uint8_t* px =
            pixels_out.data() + 3 * (static_cast<size_t>(y) * width_ + x);
        px[0] = object.r;
        px[1] = object.g;
        px[2] = object.b;
      }
    }
  }
  frame.data = std::move(pixels_out);
  return frame;
}

Result<std::vector<Image>> AnimationScene::RenderClip(int64_t count) const {
  std::vector<Image> frames;
  frames.reserve(count);
  for (int64_t t = 0; t < count; ++t) {
    TBM_ASSIGN_OR_RETURN(Image frame, RenderFrame(t));
    frames.push_back(std::move(frame));
  }
  return frames;
}

Result<TimedStream> AnimationScene::ToTimedStream() const {
  MediaDescriptor desc;
  desc.type_name = "animation/scene";
  desc.kind = MediaKind::kAnimation;
  desc.attrs.SetRational("frame rate", frame_rate_);
  desc.attrs.SetInt("width", width_);
  desc.attrs.SetInt("height", height_);
  TimedStream stream(desc, TimeSystem(frame_rate_));
  for (const MovementEvent& m : movements_) {
    StreamElement element;
    BinaryWriter writer;
    m.Serialize(&writer);
    element.data = writer.TakeBuffer();
    element.start = m.start;
    element.duration = m.duration;
    element.descriptor.SetInt("object", m.object_id);
    TBM_RETURN_IF_ERROR(stream.Append(std::move(element)));
  }
  return stream;
}

Result<TimedStream> AnimationScene::ToSceneStream() const {
  MediaDescriptor desc;
  desc.type_name = "animation/scene";
  desc.kind = MediaKind::kAnimation;
  desc.attrs.SetRational("frame rate", frame_rate_);
  desc.attrs.SetInt("width", width_);
  desc.attrs.SetInt("height", height_);
  desc.attrs.SetString("encoding", "scene");
  TimedStream stream(desc, TimeSystem(frame_rate_));
  BinaryWriter writer;
  Serialize(&writer);
  TBM_RETURN_IF_ERROR(
      stream.AppendContiguous(writer.TakeBuffer(), EndTick() + 1));
  return stream;
}

Result<AnimationScene> AnimationScene::FromSceneStream(
    const TimedStream& stream) {
  if (stream.size() != 1) {
    return Status::InvalidArgument(
        "scene stream must hold exactly one serialized scene element");
  }
  BinaryReader reader(stream.at(0).data);
  return Deserialize(&reader);
}

void AnimationScene::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(width_);
  writer->WriteI32(height_);
  writer->WriteVarI64(frame_rate_.num());
  writer->WriteVarI64(frame_rate_.den());
  writer->WriteU8(bg_r_);
  writer->WriteU8(bg_g_);
  writer->WriteU8(bg_b_);
  writer->WriteVarU64(objects_.size());
  for (const SceneObject& o : objects_) {
    writer->WriteI32(o.id);
    writer->WriteU8(static_cast<uint8_t>(o.shape));
    writer->WriteU8(o.r);
    writer->WriteU8(o.g);
    writer->WriteU8(o.b);
    writer->WriteI32(o.size);
    writer->WriteF64(o.x);
    writer->WriteF64(o.y);
  }
  writer->WriteVarU64(movements_.size());
  for (const MovementEvent& m : movements_) m.Serialize(writer);
}

Result<AnimationScene> AnimationScene::Deserialize(BinaryReader* reader) {
  AnimationScene scene;
  TBM_ASSIGN_OR_RETURN(scene.width_, reader->ReadI32());
  TBM_ASSIGN_OR_RETURN(scene.height_, reader->ReadI32());
  TBM_ASSIGN_OR_RETURN(int64_t num, reader->ReadVarI64());
  TBM_ASSIGN_OR_RETURN(int64_t den, reader->ReadVarI64());
  if (num <= 0 || den <= 0) return Status::Corruption("bad frame rate");
  scene.frame_rate_ = Rational(num, den);
  TBM_ASSIGN_OR_RETURN(scene.bg_r_, reader->ReadU8());
  TBM_ASSIGN_OR_RETURN(scene.bg_g_, reader->ReadU8());
  TBM_ASSIGN_OR_RETURN(scene.bg_b_, reader->ReadU8());
  TBM_ASSIGN_OR_RETURN(uint64_t object_count, reader->ReadVarU64());
  for (uint64_t i = 0; i < object_count; ++i) {
    SceneObject o;
    TBM_ASSIGN_OR_RETURN(o.id, reader->ReadI32());
    TBM_ASSIGN_OR_RETURN(uint8_t shape, reader->ReadU8());
    if (shape > static_cast<uint8_t>(ShapeKind::kRectangle)) {
      return Status::Corruption("bad shape kind");
    }
    o.shape = static_cast<ShapeKind>(shape);
    TBM_ASSIGN_OR_RETURN(o.r, reader->ReadU8());
    TBM_ASSIGN_OR_RETURN(o.g, reader->ReadU8());
    TBM_ASSIGN_OR_RETURN(o.b, reader->ReadU8());
    TBM_ASSIGN_OR_RETURN(o.size, reader->ReadI32());
    TBM_ASSIGN_OR_RETURN(o.x, reader->ReadF64());
    TBM_ASSIGN_OR_RETURN(o.y, reader->ReadF64());
    TBM_RETURN_IF_ERROR(scene.AddObject(o));
  }
  TBM_ASSIGN_OR_RETURN(uint64_t movement_count, reader->ReadVarU64());
  for (uint64_t i = 0; i < movement_count; ++i) {
    TBM_ASSIGN_OR_RETURN(MovementEvent m, MovementEvent::Deserialize(reader));
    TBM_RETURN_IF_ERROR(scene.AddMovement(m));
  }
  return scene;
}

}  // namespace tbm

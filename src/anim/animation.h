#ifndef TBM_ANIM_ANIMATION_H_
#define TBM_ANIM_ANIMATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/io.h"
#include "codec/image.h"
#include "stream/timed_stream.h"

namespace tbm {

/// 2-D animation as *movement events* — the paper's example of a
/// non-continuous stream (§3.3: "consider animation represented by
/// sequences of elements specifying movement. At times when the
/// animated object is at rest there are no associated media
/// elements").
///
/// An AnimationScene holds a cast of shapes and a sparse sequence of
/// movement events; rendering it to video frames is the
/// animation → video *type-changing derivation* (§4.2, §6).

enum class ShapeKind : uint8_t {
  kCircle = 0,
  kRectangle = 1,
};

struct SceneObject {
  int32_t id = 0;
  ShapeKind shape = ShapeKind::kCircle;
  uint8_t r = 255, g = 255, b = 255;
  int32_t size = 20;      ///< Radius or half-side, pixels.
  double x = 0, y = 0;    ///< Initial position.
};

/// One movement: object `object_id` travels linearly from its position
/// at `start` to (to_x, to_y) over `duration` ticks. Gaps between a
/// movement's end and the next movement's start leave the object at
/// rest — no elements cover that span.
struct MovementEvent {
  int64_t start = 0;
  int64_t duration = 0;
  int32_t object_id = 0;
  double to_x = 0, to_y = 0;

  void Serialize(BinaryWriter* writer) const;
  static Result<MovementEvent> Deserialize(BinaryReader* reader);
};

class AnimationScene {
 public:
  AnimationScene() = default;
  AnimationScene(int32_t width, int32_t height, Rational frame_rate)
      : width_(width), height_(height), frame_rate_(frame_rate) {}

  int32_t width() const { return width_; }
  int32_t height() const { return height_; }
  const Rational& frame_rate() const { return frame_rate_; }
  void SetBackground(uint8_t r, uint8_t g, uint8_t b) {
    bg_r_ = r;
    bg_g_ = g;
    bg_b_ = b;
  }

  Status AddObject(SceneObject object);

  /// Adds a movement; movements of one object must not overlap in time
  /// and must be added in start order per object.
  Status AddMovement(MovementEvent movement);

  const std::vector<SceneObject>& objects() const { return objects_; }
  const std::vector<MovementEvent>& movements() const { return movements_; }

  /// Last tick covered by any movement.
  int64_t EndTick() const;

  /// Position of an object at a tick (resolving all movements).
  Result<std::pair<double, double>> PositionAt(int32_t object_id,
                                               int64_t tick) const;

  /// Rasterizes the scene at `tick` into an RGB frame — one step of the
  /// animation → video derivation.
  Result<Image> RenderFrame(int64_t tick) const;

  /// Renders frames [0, count).
  Result<std::vector<Image>> RenderClip(int64_t count) const;

  /// The scene as a timed stream of movement elements — non-continuous
  /// (gaps where everything is at rest; overlaps when multiple objects
  /// move at once).
  Result<TimedStream> ToTimedStream() const;

  /// The scene as a single-element storage stream: one element holding
  /// the fully serialized scene (cast + movements), spanning the
  /// scene's duration. This is the form the database stores; the
  /// movement-element stream above is the analytical view.
  Result<TimedStream> ToSceneStream() const;

  /// Rebuilds a scene from a ToSceneStream() stream.
  static Result<AnimationScene> FromSceneStream(const TimedStream& stream);

  void Serialize(BinaryWriter* writer) const;
  static Result<AnimationScene> Deserialize(BinaryReader* reader);

 private:
  int32_t width_ = 320;
  int32_t height_ = 240;
  Rational frame_rate_ = Rational(25);
  uint8_t bg_r_ = 16, bg_g_ = 24, bg_b_ = 40;
  std::vector<SceneObject> objects_;
  std::vector<MovementEvent> movements_;  ///< Sorted by start.
};

}  // namespace tbm

#endif  // TBM_ANIM_ANIMATION_H_

#ifndef TBM_TEXT_FONT_H_
#define TBM_TEXT_FONT_H_

#include <cstdint>
#include <string>

#include "codec/image.h"

namespace tbm {

/// A built-in 5×7 bitmap font covering printable ASCII (uppercase
/// letters, digits, punctuation; lowercase maps to uppercase). Used to
/// rasterize captions and labels without external font dependencies.
///
/// Glyphs are 5 columns × 7 rows; rendering adds one column of
/// inter-glyph spacing.
namespace font5x7 {

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;
inline constexpr int kAdvance = kGlyphWidth + 1;

/// Returns the 7 row-bitmasks (bit 4 = leftmost pixel) for `c`.
/// Unknown characters render as a filled box.
const uint8_t* Glyph(char c);

/// Pixel width of a rendered string at `scale`.
int32_t TextWidth(const std::string& text, int scale = 1);
/// Pixel height at `scale`.
int32_t TextHeight(int scale = 1);

/// Draws `text` onto `image` (RGB) at (x, y) top-left in the given
/// color, scaling each font pixel to scale×scale. Clips at the image
/// border.
Status DrawText(Image* image, const std::string& text, int32_t x, int32_t y,
                uint8_t r, uint8_t g, uint8_t b, int scale = 1);

}  // namespace font5x7

}  // namespace tbm

#endif  // TBM_TEXT_FONT_H_

#ifndef TBM_TEXT_CAPTIONS_H_
#define TBM_TEXT_CAPTIONS_H_

#include <string>
#include <vector>

#include "stream/timed_stream.h"

namespace tbm {

/// Timed text: captions/subtitles as a time-based medium.
///
/// Captions are a textbook non-continuous timed stream — elements
/// appear when someone speaks and there are gaps between them — and
/// they exercise the text member of the paper's media kinds. A caption
/// track converts to/from a "text/captions" timed stream (for storage
/// through interpretations like any other medium), and burning a track
/// into video is a two-argument content-changing derivation.
struct Caption {
  int64_t start = 0;     ///< Ticks in the track's time system.
  int64_t duration = 0;  ///< Ticks on screen.
  std::string text;

  friend bool operator==(const Caption&, const Caption&) = default;
};

class CaptionTrack {
 public:
  CaptionTrack() = default;
  explicit CaptionTrack(TimeSystem time_system) : time_system_(time_system) {}

  const TimeSystem& time_system() const { return time_system_; }
  const std::vector<Caption>& captions() const { return captions_; }

  /// Adds a caption; captions must be appended in start order and must
  /// not overlap the previous one (one caption on screen at a time).
  Status Add(int64_t start, int64_t duration, std::string text);

  /// The caption visible at `tick`, or NotFound during silence.
  Result<const Caption*> At(int64_t tick) const;

  /// As a "text/captions" timed stream (non-continuous; element data
  /// is the UTF-8 text).
  Result<TimedStream> ToTimedStream() const;

  static Result<CaptionTrack> FromTimedStream(const TimedStream& stream);

 private:
  TimeSystem time_system_ = TimeSystem(1000);
  std::vector<Caption> captions_;
};

}  // namespace tbm

#endif  // TBM_TEXT_CAPTIONS_H_

#include "text/captions.h"

#include "base/macros.h"

namespace tbm {

Status CaptionTrack::Add(int64_t start, int64_t duration, std::string text) {
  if (duration <= 0) {
    return Status::InvalidArgument("caption duration must be positive");
  }
  if (text.empty()) {
    return Status::InvalidArgument("caption text must not be empty");
  }
  if (!captions_.empty()) {
    const Caption& prev = captions_.back();
    if (start < prev.start + prev.duration) {
      return Status::InvalidArgument(
          "captions must not overlap (previous ends at " +
          std::to_string(prev.start + prev.duration) + ")");
    }
  }
  captions_.push_back(Caption{start, duration, std::move(text)});
  return Status::OK();
}

Result<const Caption*> CaptionTrack::At(int64_t tick) const {
  for (const Caption& caption : captions_) {
    if (tick >= caption.start && tick < caption.start + caption.duration) {
      return &caption;
    }
    if (caption.start > tick) break;
  }
  return Status::NotFound("no caption at tick " + std::to_string(tick));
}

Result<TimedStream> CaptionTrack::ToTimedStream() const {
  MediaDescriptor desc;
  desc.type_name = "text/captions";
  desc.kind = MediaKind::kText;
  desc.attrs.SetString("charset", "UTF-8");
  TimedStream stream(desc, time_system_);
  for (const Caption& caption : captions_) {
    StreamElement element;
    element.data = Bytes(caption.text.begin(), caption.text.end());
    element.start = caption.start;
    element.duration = caption.duration;
    TBM_RETURN_IF_ERROR(stream.Append(std::move(element)));
  }
  return stream;
}

Result<CaptionTrack> CaptionTrack::FromTimedStream(const TimedStream& stream) {
  if (stream.descriptor().type_name != "text/captions") {
    return Status::InvalidArgument("not a caption stream");
  }
  CaptionTrack track(stream.time_system());
  for (const StreamElement& element : stream) {
    TBM_RETURN_IF_ERROR(track.Add(
        element.start, element.duration,
        std::string(element.data.begin(), element.data.end())));
  }
  return track;
}

}  // namespace tbm

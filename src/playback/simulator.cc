#include "playback/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace {

/// Process-wide playout metrics: deadline misses are the paper's
/// quality-of-service failure signal, the lateness histogram captures
/// jitter across elements.
struct PlayoutMetrics {
  obs::Counter* simulations;
  obs::Counter* elements;
  obs::Counter* deadline_misses;
  obs::Histogram* lateness_us;

  static const PlayoutMetrics& Get() {
    static const PlayoutMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return PlayoutMetrics{registry.counter("playback.simulations"),
                            registry.counter("playback.elements"),
                            registry.counter("playback.deadline_misses"),
                            registry.histogram("playback.lateness_us")};
    }();
    return metrics;
  }
};

struct Job {
  double deadline_us;  ///< Ideal presentation instant (pre-buffer).
  double bytes;
  size_t stream;
  double presented_us = 0.0;
};

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

double Uniform(uint64_t* state) {
  return static_cast<double>(XorShift(state) >> 11) /
         static_cast<double>(1ull << 53);
}

}  // namespace

Result<PlaybackReport> SimulatePlayback(
    const std::vector<const TimedStream*>& streams,
    const PlaybackConfig& config) {
  obs::ScopedSpan span("playback.simulate");
  PlayoutMetrics::Get().simulations->Add();
  if (streams.empty()) {
    return Status::InvalidArgument("no streams to play");
  }
  if (config.seconds_per_megabyte < 0 || config.buffer_delay_ms < 0) {
    return Status::InvalidArgument("bad playback configuration");
  }

  // Collect jobs with deadlines on the shared master clock.
  std::vector<Job> jobs;
  for (size_t s = 0; s < streams.size(); ++s) {
    const TimedStream* stream = streams[s];
    if (stream == nullptr) {
      return Status::InvalidArgument("null stream");
    }
    for (const StreamElement& element : *stream) {
      Job job;
      job.deadline_us =
          stream->time_system().ToSecondsF(element.start) * 1e6;
      job.bytes = static_cast<double>(element.data.size());
      job.stream = s;
      jobs.push_back(job);
    }
  }
  if (jobs.empty()) {
    return Status::InvalidArgument("streams contain no elements");
  }
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.deadline_us < b.deadline_us;
  });

  // Single service pipeline in deadline order.
  const double buffer_us = config.buffer_delay_ms * 1000.0;
  uint64_t noise_state = config.seed ? config.seed : 1;
  double pipeline_free_us = 0.0;
  double busy_us = 0.0;
  for (Job& job : jobs) {
    double service_us = job.bytes / (1024.0 * 1024.0) *
                            config.seconds_per_megabyte * 1e6 +
                        config.per_element_overhead_us +
                        config.load_noise_us * Uniform(&noise_state);
    double ready_us = pipeline_free_us + service_us;
    pipeline_free_us = ready_us;
    busy_us += service_us;
    double shifted_deadline = job.deadline_us + buffer_us;
    job.presented_us = std::max(ready_us, shifted_deadline);
  }

  PlaybackReport report;
  report.streams.assign(streams.size(), StreamReport{});
  double total_lateness = 0.0;
  double span_end = 0.0;
  // Sync skew: group jobs by ideal deadline bucket (1 ms) and compare
  // presentation instants across streams.
  std::map<int64_t, std::pair<double, double>> skew_buckets;  // min,max.
  for (const Job& job : jobs) {
    StreamReport& sr = report.streams[job.stream];
    double lateness =
        std::max(0.0, job.presented_us - (job.deadline_us + buffer_us));
    ++sr.elements;
    ++report.total_elements;
    PlayoutMetrics::Get().elements->Add();
    PlayoutMetrics::Get().lateness_us->Record(
        static_cast<uint64_t>(lateness));
    sr.mean_lateness_us += lateness;
    total_lateness += lateness;
    sr.max_lateness_us = std::max(sr.max_lateness_us, lateness);
    report.max_lateness_us = std::max(report.max_lateness_us, lateness);
    if (lateness > config.miss_tolerance_us) {
      ++sr.deadline_misses;
      ++report.total_misses;
      PlayoutMetrics::Get().deadline_misses->Add();
    }
    span_end = std::max(span_end, job.presented_us);
    if (streams.size() > 1) {
      int64_t bucket = static_cast<int64_t>(job.deadline_us / 1000.0);
      auto [it, inserted] = skew_buckets.try_emplace(
          bucket, std::make_pair(job.presented_us, job.presented_us));
      if (!inserted) {
        it->second.first = std::min(it->second.first, job.presented_us);
        it->second.second = std::max(it->second.second, job.presented_us);
      }
    }
  }
  for (StreamReport& sr : report.streams) {
    if (sr.elements > 0) sr.mean_lateness_us /= sr.elements;
  }
  report.mean_lateness_us = total_lateness / report.total_elements;
  for (const auto& [bucket, min_max] : skew_buckets) {
    report.max_sync_skew_us =
        std::max(report.max_sync_skew_us, min_max.second - min_max.first);
  }
  report.utilization = span_end > 0 ? busy_us / span_end : 0.0;
  return report;
}

}  // namespace tbm

#ifndef TBM_PLAYBACK_ADMISSION_H_
#define TBM_PLAYBACK_ADMISSION_H_

#include <map>
#include <string>

#include "base/result.h"
#include "media/descriptor.h"
#include "stream/timed_stream.h"

namespace tbm {

/// Resource-allocation metadata the paper says belongs in media
/// descriptors (§4.1: "The descriptors should also contain information
/// that helps allocate resources for playback, this could include the
/// average data rate for each stream, a measure of data rate variation
/// (for non-uniform streams)...").
struct RateProfile {
  double average_bytes_per_second = 0.0;
  double peak_bytes_per_second = 0.0;  ///< Max over 1-second windows.

  double Burstiness() const {
    return average_bytes_per_second > 0
               ? peak_bytes_per_second / average_bytes_per_second
               : 0.0;
  }
};

/// Computes a stream's rate profile (peak measured over sliding
/// one-second windows of its time system).
RateProfile MeasureRateProfile(const TimedStream& stream);

/// Writes the profile into a media descriptor as the attributes
/// "average data rate" and "peak data rate" (bytes/second).
void AnnotateRateProfile(MediaDescriptor* descriptor,
                         const RateProfile& profile);

/// Reads a profile back from descriptor attributes; NotFound if the
/// descriptor was never annotated.
Result<RateProfile> RateProfileFromDescriptor(
    const MediaDescriptor& descriptor);

/// Admission control for a continuous-media server (paper §5 cites the
/// CM I/O server and continuous media player as precursors; §6 names
/// "resource allocation" as a required architecture change).
///
/// The server owns a fixed service bandwidth. Sessions are admitted by
/// *descriptor metadata alone* — no media bytes are touched — using
/// either average-rate booking (optimistic) or peak-rate booking
/// (conservative).
class AdmissionController {
 public:
  enum class Policy {
    kAverageRate,  ///< Book the average rate (allows oversubscription
                   ///< bursts).
    kPeakRate,     ///< Book the peak rate (guaranteed service).
  };

  AdmissionController(double capacity_bytes_per_second, Policy policy)
      : capacity_(capacity_bytes_per_second), policy_(policy) {}

  double capacity() const { return capacity_; }
  double booked() const { return booked_; }
  double available() const { return capacity_ - booked_; }

  /// Outcome of a degrading admission attempt. `stride` is the frame
  /// stride the session was admitted at: 1 means full fidelity, 2^k
  /// means serve every 2^k-th element, booking 1/2^k of the rate — the
  /// graceful-degradation lever a scalable-stream server pulls under
  /// pressure instead of denying service outright.
  struct AdmitDecision {
    int stride = 1;
    double booked_bytes_per_second = 0.0;
    bool degraded() const { return stride > 1; }
  };

  /// Attempts to admit a session playing a stream with the given
  /// descriptor. ResourceExhausted when the booking would exceed
  /// capacity; NotFound if the descriptor lacks rate annotations.
  Status Admit(const std::string& session, const MediaDescriptor& descriptor);

  /// Admits straight from a rate profile — the metadata-only path for
  /// callers that computed the profile from placements
  /// (MeasureRateProfileFromPlacements) rather than descriptor
  /// annotations.
  Status AdmitProfile(const std::string& session, const RateProfile& profile);

  /// Degrade-before-deny admission: tries full fidelity first, then
  /// doubles the stride (halving the booked rate) up to `max_stride`,
  /// and denies (ResourceExhausted) only when even the thinnest tier
  /// does not fit. `max_stride` is clamped to a power of two >= 1.
  Result<AdmitDecision> AdmitDegrading(const std::string& session,
                                       const RateProfile& profile,
                                       int max_stride);

  /// Re-prices an admitted session's booking (e.g. a mid-session
  /// degrade after the server detects pressure). Decreases always
  /// succeed; an increase that would exceed capacity fails
  /// ResourceExhausted and leaves the old booking intact.
  Status Rebook(const std::string& session, double new_bytes_per_second);

  /// Releases a session's booking.
  Status Release(const std::string& session);

  size_t session_count() const { return sessions_.size(); }

 private:
  double BookingFor(const RateProfile& profile) const {
    return policy_ == Policy::kPeakRate ? profile.peak_bytes_per_second
                                        : profile.average_bytes_per_second;
  }

  double capacity_;
  Policy policy_;
  double booked_ = 0.0;
  std::map<std::string, double> sessions_;
};

}  // namespace tbm

#endif  // TBM_PLAYBACK_ADMISSION_H_

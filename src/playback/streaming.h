#ifndef TBM_PLAYBACK_STREAMING_H_
#define TBM_PLAYBACK_STREAMING_H_

#include <string>
#include <vector>

#include "blob/blob_store.h"
#include "interp/streaming.h"
#include "playback/admission.h"
#include "playback/simulator.h"

namespace tbm {

/// Outcome of a streamed playback run: the simulator's report plus the
/// read-side counters that only exist on the streaming path.
struct StreamedPlaybackReport {
  PlaybackReport playback;

  /// One entry per played object, in argument order.
  std::vector<ElementStreamStats> read_stats;

  /// Wall time spent delivering elements from the store (the span the
  /// prefetcher can hide I/O inside).
  uint64_t fetch_wall_us = 0;

  /// Elements dropped because their read failed even after the
  /// ReadPolicy's retries. Playback continues without them — a missing
  /// frame is a glitch, not an abort (the paper's soft deadlines).
  uint64_t elements_skipped = 0;
};

/// Rate profile computed from an object's placement table alone — no
/// media bytes are read. This is the metadata-only path admission
/// control wants: element sizes and start times live in the
/// interpretation, so a server can book a session before touching the
/// BLOB.
RateProfile MeasureRateProfileFromPlacements(const InterpretedObject& object);

/// Plays the named objects through the discrete-event simulator,
/// fetching every element via an ElementStream (chunked reads with
/// asynchronous readahead per `read_options`). Element read failures
/// are skipped, not fatal; `elements_skipped` counts them.
Result<StreamedPlaybackReport> PlayStreamed(
    const BlobStore& store, const Interpretation& interpretation,
    const std::vector<std::string>& names, const PlaybackConfig& config = {},
    const StreamReadOptions& read_options = {});

/// Admission-controlled variant: books one session per object from
/// placement metadata (MeasureRateProfileFromPlacements), plays, and
/// releases the bookings whether or not playback succeeds.
/// ResourceExhausted — with nothing read — when the controller rejects
/// any object.
Result<StreamedPlaybackReport> PlayStreamedAdmitted(
    AdmissionController* controller, const std::string& session,
    const BlobStore& store, const Interpretation& interpretation,
    const std::vector<std::string>& names, const PlaybackConfig& config = {},
    const StreamReadOptions& read_options = {});

}  // namespace tbm

#endif  // TBM_PLAYBACK_STREAMING_H_

#include "playback/activity.h"

#include "base/macros.h"

namespace tbm {

Result<StreamElement> StreamSource::Next() {
  if (position_ >= stream_->size()) {
    return Status::NotFound("end of flow");
  }
  return stream_->at(position_++);
}

Result<StreamElement> TransformActivity::Next() {
  TBM_ASSIGN_OR_RETURN(StreamElement element, upstream_->Next());
  return fn_(std::move(element));
}

Result<StreamElement> SpanFilterActivity::Next() {
  while (true) {
    TBM_ASSIGN_OR_RETURN(StreamElement element, upstream_->Next());
    bool hit = element.duration == 0
                   ? span_.Contains(element.start)
                   : element.span().Overlaps(span_);
    if (hit) return element;
    if (element.start >= span_.end()) {
      return Status::NotFound("end of flow");  // Past the span: done.
    }
  }
}

Status MergeActivity::Fill() {
  if (!pending_a_.has_value() && !a_done_) {
    auto element = a_->Next();
    if (element.ok()) {
      pending_a_ = std::move(*element);
    } else if (element.status().IsNotFound()) {
      a_done_ = true;
    } else {
      return element.status();
    }
  }
  if (!pending_b_.has_value() && !b_done_) {
    auto element = b_->Next();
    if (element.ok()) {
      pending_b_ = std::move(*element);
    } else if (element.status().IsNotFound()) {
      b_done_ = true;
    } else {
      return element.status();
    }
  }
  return Status::OK();
}

Result<StreamElement> MergeActivity::Next() {
  if (!(a_->time_system() == b_->time_system())) {
    return Status::InvalidArgument(
        "merge requires flows in the same time system");
  }
  TBM_RETURN_IF_ERROR(Fill());
  if (!pending_a_.has_value() && !pending_b_.has_value()) {
    return Status::NotFound("end of flow");
  }
  bool take_a;
  if (!pending_a_.has_value()) {
    take_a = false;
  } else if (!pending_b_.has_value()) {
    take_a = true;
  } else {
    take_a = pending_a_->start <= pending_b_->start;
  }
  StreamElement out;
  if (take_a) {
    out = std::move(*pending_a_);
    pending_a_.reset();
  } else {
    out = std::move(*pending_b_);
    pending_b_.reset();
  }
  return out;
}

Result<TimedStream> RunToStream(Activity* activity, FlowStats* stats) {
  TimedStream stream(activity->descriptor(), activity->time_system());
  while (true) {
    auto element = activity->Next();
    if (!element.ok()) {
      if (element.status().IsNotFound()) break;
      return element.status();
    }
    if (stats != nullptr) {
      ++stats->elements;
      stats->bytes += element->data.size();
    }
    TBM_RETURN_IF_ERROR(stream.Append(std::move(*element)));
  }
  return stream;
}

Result<FlowStats> Drain(Activity* activity) {
  FlowStats stats;
  while (true) {
    auto element = activity->Next();
    if (!element.ok()) {
      if (element.status().IsNotFound()) break;
      return element.status();
    }
    ++stats.elements;
    stats.bytes += element->data.size();
  }
  return stats;
}

}  // namespace tbm

#include "playback/activity.h"

#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "base/macros.h"

namespace tbm {

Result<StreamElement> StreamSource::Next() {
  if (position_ >= stream_->size()) {
    return Status::NotFound("end of flow");
  }
  return stream_->at(position_++);
}

Result<StreamElement> TransformActivity::Next() {
  TBM_ASSIGN_OR_RETURN(StreamElement element, upstream_->Next());
  return fn_(std::move(element));
}

ParallelTransformActivity::ParallelTransformActivity(
    std::unique_ptr<Activity> upstream, TransformActivity::ElementFn fn,
    int threads, size_t window)
    : upstream_(std::move(upstream)),
      fn_(std::move(fn)),
      pool_(threads == 0 ? ThreadPool::DefaultThreads() : threads),
      window_(window == 0 ? 1 : window) {}

Status ParallelTransformActivity::FillWindow() {
  std::vector<StreamElement> batch;
  while (batch.size() < window_) {
    auto element = upstream_->Next();
    if (!element.ok()) {
      if (element.status().IsNotFound()) {
        upstream_done_ = true;
      } else {
        // Elements pulled before the failure are still transformed and
        // emitted, exactly as the serial TransformActivity would.
        failed_ = element.status();
        upstream_done_ = true;
      }
      break;
    }
    batch.push_back(std::move(*element));
  }
  if (batch.empty()) return Status::OK();

  // Transform the batch concurrently; slots keep the original order.
  std::vector<std::optional<Result<StreamElement>>> slots(batch.size());
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    pool_.Submit([this, &batch, &slots, &mu, &cv, &done, i] {
      Result<StreamElement> out = fn_(std::move(batch[i]));
      std::lock_guard<std::mutex> lock(mu);
      slots[i] = std::move(out);
      if (++done == slots.size()) cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == slots.size(); });
  }
  for (auto& slot : slots) {
    if (!slot->ok()) {
      // Results before the failing element have already been queued;
      // everything at or after it is discarded, like a serial pipeline
      // stopping at the first bad element.
      failed_ = slot->status();
      upstream_done_ = true;
      break;
    }
    ready_.push_back(std::move(**slot));
  }
  return Status::OK();
}

Result<StreamElement> ParallelTransformActivity::Next() {
  while (ready_.empty() && !upstream_done_) {
    TBM_RETURN_IF_ERROR(FillWindow());
  }
  if (!ready_.empty()) {
    StreamElement element = std::move(ready_.front());
    ready_.pop_front();
    return element;
  }
  if (!failed_.ok()) return failed_;
  return Status::NotFound("end of flow");
}

Result<StreamElement> SpanFilterActivity::Next() {
  while (true) {
    TBM_ASSIGN_OR_RETURN(StreamElement element, upstream_->Next());
    bool hit = element.duration == 0
                   ? span_.Contains(element.start)
                   : element.span().Overlaps(span_);
    if (hit) return element;
    if (element.start >= span_.end()) {
      return Status::NotFound("end of flow");  // Past the span: done.
    }
  }
}

Status MergeActivity::Fill() {
  if (!pending_a_.has_value() && !a_done_) {
    auto element = a_->Next();
    if (element.ok()) {
      pending_a_ = std::move(*element);
    } else if (element.status().IsNotFound()) {
      a_done_ = true;
    } else {
      return element.status();
    }
  }
  if (!pending_b_.has_value() && !b_done_) {
    auto element = b_->Next();
    if (element.ok()) {
      pending_b_ = std::move(*element);
    } else if (element.status().IsNotFound()) {
      b_done_ = true;
    } else {
      return element.status();
    }
  }
  return Status::OK();
}

Result<StreamElement> MergeActivity::Next() {
  if (!(a_->time_system() == b_->time_system())) {
    return Status::InvalidArgument(
        "merge requires flows in the same time system");
  }
  TBM_RETURN_IF_ERROR(Fill());
  if (!pending_a_.has_value() && !pending_b_.has_value()) {
    return Status::NotFound("end of flow");
  }
  bool take_a;
  if (!pending_a_.has_value()) {
    take_a = false;
  } else if (!pending_b_.has_value()) {
    take_a = true;
  } else {
    take_a = pending_a_->start <= pending_b_->start;
  }
  StreamElement out;
  if (take_a) {
    out = std::move(*pending_a_);
    pending_a_.reset();
  } else {
    out = std::move(*pending_b_);
    pending_b_.reset();
  }
  return out;
}

Result<TimedStream> RunToStream(Activity* activity, FlowStats* stats) {
  TimedStream stream(activity->descriptor(), activity->time_system());
  while (true) {
    auto element = activity->Next();
    if (!element.ok()) {
      if (element.status().IsNotFound()) break;
      return element.status();
    }
    if (stats != nullptr) {
      ++stats->elements;
      stats->bytes += element->data.size();
    }
    TBM_RETURN_IF_ERROR(stream.Append(std::move(*element)));
  }
  return stream;
}

Result<FlowStats> Drain(Activity* activity) {
  FlowStats stats;
  while (true) {
    auto element = activity->Next();
    if (!element.ok()) {
      if (element.status().IsNotFound()) break;
      return element.status();
    }
    ++stats.elements;
    stats.bytes += element->data.size();
  }
  return stats;
}

}  // namespace tbm

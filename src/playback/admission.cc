#include "playback/admission.h"

#include <algorithm>

#include "base/macros.h"
#include "obs/metrics.h"

namespace tbm {

namespace {

/// Process-wide admission-control metrics.
struct AdmissionMetrics {
  obs::Counter* admitted;
  obs::Counter* rejected;
  obs::Counter* released;
  obs::Counter* degraded;
  obs::Gauge* booked_bytes_per_second;

  static const AdmissionMetrics& Get() {
    static const AdmissionMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return AdmissionMetrics{
          registry.counter("admission.admitted"),
          registry.counter("admission.rejected"),
          registry.counter("admission.released"),
          registry.counter("admission.degraded"),
          registry.gauge("admission.booked_bytes_per_second")};
    }();
    return metrics;
  }
};

}  // namespace

RateProfile MeasureRateProfile(const TimedStream& stream) {
  RateProfile profile;
  double seconds = stream.DurationSeconds().ToDouble();
  if (stream.empty() || seconds <= 0.0) {
    // Degenerate streams (still images, events only): everything is a
    // burst; average over zero time is reported as the byte total.
    profile.average_bytes_per_second = static_cast<double>(stream.TotalBytes());
    profile.peak_bytes_per_second = profile.average_bytes_per_second;
    return profile;
  }
  profile.average_bytes_per_second = stream.MeanDataRate();

  // Peak over sliding 1-second windows: two-pointer sweep anchored at
  // each element's start.
  const int64_t window = stream.time_system().FromSeconds(Rational(1));
  uint64_t window_bytes = 0;
  size_t tail = 0;
  for (size_t head = 0; head < stream.size(); ++head) {
    window_bytes += stream.at(head).data.size();
    while (stream.at(tail).start + window <= stream.at(head).start) {
      window_bytes -= stream.at(tail).data.size();
      ++tail;
    }
    profile.peak_bytes_per_second =
        std::max(profile.peak_bytes_per_second,
                 static_cast<double>(window_bytes));
  }
  profile.peak_bytes_per_second =
      std::max(profile.peak_bytes_per_second,
               profile.average_bytes_per_second);
  return profile;
}

void AnnotateRateProfile(MediaDescriptor* descriptor,
                         const RateProfile& profile) {
  descriptor->attrs.SetDouble("average data rate",
                              profile.average_bytes_per_second);
  descriptor->attrs.SetDouble("peak data rate",
                              profile.peak_bytes_per_second);
}

Result<RateProfile> RateProfileFromDescriptor(
    const MediaDescriptor& descriptor) {
  RateProfile profile;
  TBM_ASSIGN_OR_RETURN(profile.average_bytes_per_second,
                       descriptor.attrs.GetDouble("average data rate"));
  TBM_ASSIGN_OR_RETURN(profile.peak_bytes_per_second,
                       descriptor.attrs.GetDouble("peak data rate"));
  return profile;
}

Status AdmissionController::Admit(const std::string& session,
                                  const MediaDescriptor& descriptor) {
  TBM_ASSIGN_OR_RETURN(RateProfile profile,
                       RateProfileFromDescriptor(descriptor));
  return AdmitProfile(session, profile);
}

Status AdmissionController::AdmitProfile(const std::string& session,
                                         const RateProfile& profile) {
  if (sessions_.count(session) > 0) {
    return Status::AlreadyExists("session \"" + session +
                                 "\" already admitted");
  }
  double booking = BookingFor(profile);
  if (booking <= 0.0) {
    return Status::InvalidArgument("descriptor has non-positive data rate");
  }
  if (booked_ + booking > capacity_) {
    AdmissionMetrics::Get().rejected->Add();
    return Status::ResourceExhausted(
        "admitting \"" + session + "\" needs " + HumanRate(booking) +
        " but only " + HumanRate(available()) + " of " +
        HumanRate(capacity_) + " remain");
  }
  booked_ += booking;
  sessions_.emplace(session, booking);
  AdmissionMetrics::Get().admitted->Add();
  AdmissionMetrics::Get().booked_bytes_per_second->Set(
      static_cast<int64_t>(booked_));
  return Status::OK();
}

Result<AdmissionController::AdmitDecision> AdmissionController::AdmitDegrading(
    const std::string& session, const RateProfile& profile, int max_stride) {
  if (sessions_.count(session) > 0) {
    return Status::AlreadyExists("session \"" + session +
                                 "\" already admitted");
  }
  double booking = BookingFor(profile);
  if (booking <= 0.0) {
    return Status::InvalidArgument("descriptor has non-positive data rate");
  }
  if (max_stride < 1) max_stride = 1;
  for (int stride = 1; stride <= max_stride; stride *= 2) {
    double tier = booking / stride;
    if (booked_ + tier > capacity_) continue;
    booked_ += tier;
    sessions_.emplace(session, tier);
    AdmissionMetrics::Get().admitted->Add();
    if (stride > 1) AdmissionMetrics::Get().degraded->Add();
    AdmissionMetrics::Get().booked_bytes_per_second->Set(
        static_cast<int64_t>(booked_));
    AdmitDecision decision;
    decision.stride = stride;
    decision.booked_bytes_per_second = tier;
    return decision;
  }
  AdmissionMetrics::Get().rejected->Add();
  return Status::ResourceExhausted(
      "admitting \"" + session + "\" needs " + HumanRate(booking) +
      " (" + HumanRate(booking / max_stride) + " at max stride " +
      std::to_string(max_stride) + ") but only " + HumanRate(available()) +
      " of " + HumanRate(capacity_) + " remain");
}

Status AdmissionController::Rebook(const std::string& session,
                                   double new_bytes_per_second) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no session \"" + session + "\"");
  }
  if (new_bytes_per_second <= 0.0) {
    return Status::InvalidArgument("non-positive booking");
  }
  double delta = new_bytes_per_second - it->second;
  if (delta > 0.0 && booked_ + delta > capacity_) {
    return Status::ResourceExhausted(
        "rebooking \"" + session + "\" to " + HumanRate(new_bytes_per_second) +
        " needs " + HumanRate(delta) + " more but only " +
        HumanRate(available()) + " remain");
  }
  booked_ += delta;
  it->second = new_bytes_per_second;
  AdmissionMetrics::Get().booked_bytes_per_second->Set(
      static_cast<int64_t>(booked_));
  return Status::OK();
}

Status AdmissionController::Release(const std::string& session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("no session \"" + session + "\"");
  }
  booked_ -= it->second;
  sessions_.erase(it);
  AdmissionMetrics::Get().released->Add();
  AdmissionMetrics::Get().booked_bytes_per_second->Set(
      static_cast<int64_t>(booked_));
  return Status::OK();
}

}  // namespace tbm

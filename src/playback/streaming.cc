#include "playback/streaming.h"

#include <algorithm>
#include <utility>

#include "base/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace {

struct StreamedMetrics {
  obs::Counter* plays;
  obs::Counter* elements;
  obs::Counter* skipped;
  obs::Histogram* fetch_us;

  static const StreamedMetrics& Get() {
    static const StreamedMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return StreamedMetrics{registry.counter("playback.streamed.plays"),
                             registry.counter("playback.streamed.elements"),
                             registry.counter("playback.streamed.skipped"),
                             registry.histogram("playback.streamed.fetch_us")};
    }();
    return metrics;
  }
};

}  // namespace

RateProfile MeasureRateProfileFromPlacements(const InterpretedObject& object) {
  RateProfile profile;
  uint64_t total_bytes = object.PayloadBytes();
  if (object.elements.empty()) return profile;
  const int64_t span_ticks = object.EndTime() - object.elements.front().start;
  const double seconds = object.time_system.ToSecondsF(span_ticks);
  if (seconds <= 0.0) {
    // Degenerate objects (still images, zero-duration events): report
    // the byte total as an instantaneous burst, like MeasureRateProfile.
    profile.average_bytes_per_second = static_cast<double>(total_bytes);
    profile.peak_bytes_per_second = profile.average_bytes_per_second;
    return profile;
  }
  profile.average_bytes_per_second = static_cast<double>(total_bytes) / seconds;

  // Peak over sliding 1-second windows anchored at element starts —
  // the same sweep MeasureRateProfile runs, but over placement lengths
  // instead of materialized element bytes.
  const int64_t window = object.time_system.FromSeconds(Rational(1));
  uint64_t window_bytes = 0;
  size_t tail = 0;
  for (size_t head = 0; head < object.elements.size(); ++head) {
    window_bytes += object.elements[head].placement.length;
    while (object.elements[tail].start + window <=
           object.elements[head].start) {
      window_bytes -= object.elements[tail].placement.length;
      ++tail;
    }
    profile.peak_bytes_per_second = std::max(
        profile.peak_bytes_per_second, static_cast<double>(window_bytes));
  }
  profile.peak_bytes_per_second = std::max(profile.peak_bytes_per_second,
                                           profile.average_bytes_per_second);
  return profile;
}

Result<StreamedPlaybackReport> PlayStreamed(
    const BlobStore& store, const Interpretation& interpretation,
    const std::vector<std::string>& names, const PlaybackConfig& config,
    const StreamReadOptions& read_options) {
  obs::ScopedSpan span("playback.play_streamed");
  const auto& metrics = StreamedMetrics::Get();
  metrics.plays->Add();

  StreamedPlaybackReport report;
  std::vector<TimedStream> assembled;
  assembled.reserve(names.size());

  const int64_t fetch_start_ns = obs::NowTicksNs();
  for (const std::string& name : names) {
    TBM_ASSIGN_OR_RETURN(
        std::unique_ptr<ElementStream> stream,
        ElementStream::Open(store, interpretation, name, read_options));
    TimedStream out(stream->descriptor(), stream->time_system());
    while (!stream->Done()) {
      Result<StreamElement> element = stream->Next();
      if (!element.ok()) {
        // A failed element is a presentation glitch, not an abort:
        // drop it and keep streaming (the deadlines are soft).
        ++report.elements_skipped;
        metrics.skipped->Add();
        continue;
      }
      metrics.elements->Add();
      TBM_RETURN_IF_ERROR(out.Append(std::move(element).value()));
    }
    report.read_stats.push_back(stream->stats());
    assembled.push_back(std::move(out));
  }
  report.fetch_wall_us = static_cast<uint64_t>(
      std::max<int64_t>(0, obs::NowTicksNs() - fetch_start_ns) / 1000);
  metrics.fetch_us->Record(report.fetch_wall_us);

  std::vector<const TimedStream*> pointers;
  pointers.reserve(assembled.size());
  for (const TimedStream& stream : assembled) pointers.push_back(&stream);
  TBM_ASSIGN_OR_RETURN(report.playback, SimulatePlayback(pointers, config));
  return report;
}

Result<StreamedPlaybackReport> PlayStreamedAdmitted(
    AdmissionController* controller, const std::string& session,
    const BlobStore& store, const Interpretation& interpretation,
    const std::vector<std::string>& names, const PlaybackConfig& config,
    const StreamReadOptions& read_options) {
  // Book every object from placement metadata before any byte is read;
  // roll back on rejection so a refused session leaves no residue.
  std::vector<std::string> booked;
  booked.reserve(names.size());
  for (const std::string& name : names) {
    auto object = interpretation.FindObject(name);
    if (!object.ok()) {
      for (const std::string& b : booked) controller->Release(b);
      return object.status();
    }
    MediaDescriptor descriptor = (*object)->descriptor;
    AnnotateRateProfile(&descriptor,
                        MeasureRateProfileFromPlacements(**object));
    std::string booking = session + "/" + name;
    Status admitted = controller->Admit(booking, descriptor);
    if (!admitted.ok()) {
      for (const std::string& b : booked) controller->Release(b);
      return admitted;
    }
    booked.push_back(std::move(booking));
  }

  Result<StreamedPlaybackReport> report =
      PlayStreamed(store, interpretation, names, config, read_options);
  for (const std::string& b : booked) controller->Release(b);
  return report;
}

}  // namespace tbm

#ifndef TBM_PLAYBACK_SIMULATOR_H_
#define TBM_PLAYBACK_SIMULATOR_H_

#include <vector>

#include "base/result.h"
#include "stream/timed_stream.h"

namespace tbm {

/// Discrete-event playback simulator.
///
/// The paper (§2.2 Timing, §5): media elements carry *scheduling*
/// information — a start time says when an element should be presented
/// relative to the others. Satisfying those deadlines is an
/// implementation concern; the deadlines are soft ("divergences ...
/// can be tolerated; for example playback 'jitter' can be removed by
/// the application just prior to presentation"). This simulator stands
/// in for presentation hardware: a single service pipeline fetches and
/// decodes elements in deadline order at a configurable rate with
/// deterministic pseudo-random load noise, and an application-side
/// start-delay buffer absorbs lateness. It quantifies exactly the
/// claims above: with timing information, "play" is meaningful, misses
/// appear when the data rate exceeds service capacity, and a modest
/// buffer removes jitter.
struct PlaybackConfig {
  /// Service cost: seconds of pipeline time per megabyte fetched+decoded.
  double seconds_per_megabyte = 0.001;
  /// Fixed per-element service overhead, microseconds.
  double per_element_overhead_us = 20.0;
  /// Peak magnitude of uniform load noise added per element, µs.
  double load_noise_us = 0.0;
  /// Deterministic noise seed.
  uint64_t seed = 42;
  /// Application start-delay buffer: presentation deadlines are shifted
  /// this many milliseconds later, letting the pipeline run ahead.
  double buffer_delay_ms = 0.0;
  /// Lateness tolerated before an element counts as a deadline miss, µs.
  double miss_tolerance_us = 0.0;
};

/// Per-stream simulation outcome.
struct StreamReport {
  int64_t elements = 0;
  int64_t deadline_misses = 0;
  double mean_lateness_us = 0.0;  ///< Mean presented-after-deadline (>= 0).
  double max_lateness_us = 0.0;
};

struct PlaybackReport {
  std::vector<StreamReport> streams;
  int64_t total_elements = 0;
  int64_t total_misses = 0;
  double mean_lateness_us = 0.0;
  double max_lateness_us = 0.0;
  /// Maximum presentation-time skew between any two streams' elements
  /// that share the same ideal presentation instant (audio/video sync).
  double max_sync_skew_us = 0.0;
  /// Pipeline utilization: busy time / simulated span.
  double utilization = 0.0;
};

/// Simulates synchronized playback of `streams` under `config`.
/// Element deadlines come from each stream's time system; all streams
/// share the master clock (t = 0 at their common start).
Result<PlaybackReport> SimulatePlayback(
    const std::vector<const TimedStream*>& streams,
    const PlaybackConfig& config);

}  // namespace tbm

#endif  // TBM_PLAYBACK_SIMULATOR_H_

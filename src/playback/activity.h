#ifndef TBM_PLAYBACK_ACTIVITY_H_
#define TBM_PLAYBACK_ACTIVITY_H_

#include <deque>
#include <functional>
#include <memory>

#include "base/thread_pool.h"
#include "stream/timed_stream.h"

namespace tbm {

/// Activity-based stream processing.
///
/// The paper's conclusion (§6): "The notion of timed streams ... leads
/// to a perspective where database operations are viewed as extended
/// activities that produce, consume and transform flows of data. A
/// database architecture based on activities and their possible
/// interconnection is explored in [5]." This module implements that
/// architecture in miniature: pull-based activities over element
/// flows, composable into pipelines, with flow statistics.

/// A node in an activity graph: each call to Next() yields the next
/// stream element of the flow, or NotFound when the flow ends.
class Activity {
 public:
  virtual ~Activity() = default;

  /// The next element, or NotFound at end of flow. Other errors abort
  /// the flow.
  virtual Result<StreamElement> Next() = 0;

  /// Descriptor of the flow this activity produces.
  virtual const MediaDescriptor& descriptor() const = 0;
  virtual const TimeSystem& time_system() const = 0;
};

/// Produces a flow from an existing timed stream (the database "read"
/// end; Materialize + StreamSource is the "play" producer).
class StreamSource : public Activity {
 public:
  /// Does not take ownership; the stream must outlive the source.
  explicit StreamSource(const TimedStream* stream) : stream_(stream) {}

  Result<StreamElement> Next() override;
  const MediaDescriptor& descriptor() const override {
    return stream_->descriptor();
  }
  const TimeSystem& time_system() const override {
    return stream_->time_system();
  }

 private:
  const TimedStream* stream_;
  size_t position_ = 0;
};

/// Transforms a flow element-by-element (the "transform" activity —
/// e.g. decode, re-quantize, watermark). The function may change data
/// and descriptor but not ordering.
class TransformActivity : public Activity {
 public:
  using ElementFn = std::function<Result<StreamElement>(StreamElement)>;

  TransformActivity(std::unique_ptr<Activity> upstream, ElementFn fn)
      : upstream_(std::move(upstream)), fn_(std::move(fn)) {}

  Result<StreamElement> Next() override;
  const MediaDescriptor& descriptor() const override {
    return upstream_->descriptor();
  }
  const TimeSystem& time_system() const override {
    return upstream_->time_system();
  }

 private:
  std::unique_ptr<Activity> upstream_;
  ElementFn fn_;
};

/// TransformActivity with the element function applied across worker
/// threads: pulls a window of elements from upstream, transforms them
/// concurrently, and emits results in the original order. Semantics
/// match TransformActivity exactly (same elements out for a pure `fn`;
/// the first failing element's error is reported, earlier results
/// first); only wall-clock changes. Useful when per-element work —
/// decode, filter, re-quantization — dominates the flow.
class ParallelTransformActivity : public Activity {
 public:
  /// `threads == 0` means "use the hardware". `window` bounds how many
  /// elements are in flight (and thus transformed-but-unconsumed
  /// memory).
  ParallelTransformActivity(std::unique_ptr<Activity> upstream,
                            TransformActivity::ElementFn fn, int threads = 0,
                            size_t window = 16);

  Result<StreamElement> Next() override;
  const MediaDescriptor& descriptor() const override {
    return upstream_->descriptor();
  }
  const TimeSystem& time_system() const override {
    return upstream_->time_system();
  }

 private:
  /// Pulls and transforms the next window; fills `ready_`.
  Status FillWindow();

  std::unique_ptr<Activity> upstream_;
  TransformActivity::ElementFn fn_;
  ThreadPool pool_;
  size_t window_;
  std::deque<StreamElement> ready_;
  Status failed_;  ///< Sticky error once a window fails.
  bool upstream_done_ = false;
};

/// Drops elements outside a time span (a streaming duration query).
class SpanFilterActivity : public Activity {
 public:
  SpanFilterActivity(std::unique_ptr<Activity> upstream, TickSpan span)
      : upstream_(std::move(upstream)), span_(span) {}

  Result<StreamElement> Next() override;
  const MediaDescriptor& descriptor() const override {
    return upstream_->descriptor();
  }
  const TimeSystem& time_system() const override {
    return upstream_->time_system();
  }

 private:
  std::unique_ptr<Activity> upstream_;
  TickSpan span_;
};

/// Interleaves two flows by start time (a streaming synchronizer —
/// the "combine" interconnection of [5]).
class MergeActivity : public Activity {
 public:
  /// Flows must share a time system; the merged descriptor is taken
  /// from `a`.
  MergeActivity(std::unique_ptr<Activity> a, std::unique_ptr<Activity> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  Result<StreamElement> Next() override;
  const MediaDescriptor& descriptor() const override {
    return a_->descriptor();
  }
  const TimeSystem& time_system() const override {
    return a_->time_system();
  }

 private:
  Status Fill();

  std::unique_ptr<Activity> a_;
  std::unique_ptr<Activity> b_;
  std::optional<StreamElement> pending_a_;
  std::optional<StreamElement> pending_b_;
  bool a_done_ = false;
  bool b_done_ = false;
};

/// Flow statistics accumulated by RunToStream / Drain.
struct FlowStats {
  int64_t elements = 0;
  uint64_t bytes = 0;
};

/// Consumes a flow into a new timed stream (the "record" end).
Result<TimedStream> RunToStream(Activity* activity, FlowStats* stats = nullptr);

/// Consumes and discards a flow, returning statistics.
Result<FlowStats> Drain(Activity* activity);

}  // namespace tbm

#endif  // TBM_PLAYBACK_ACTIVITY_H_

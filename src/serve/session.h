#ifndef TBM_SERVE_SESSION_H_
#define TBM_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "blob/blob_store.h"
#include "interp/interpretation.h"
#include "interp/streaming.h"
#include "obs/flight.h"
#include "serve/protocol.h"

namespace tbm::serve {

/// Per-client state machine of the media service:
///
///   OPEN -> ADMITTED -> STREAMING -> { DONE, DEGRADED, EVICTED }
///
/// A session is created only after admission control books its rate
/// (so OPEN -> ADMITTED happens at construction) and owns the read
/// machinery for one interpreted object:
///
/// - At full fidelity (stride 1) it streams through an ElementStream —
///   chunked reads with asynchronous readahead on the server's I/O
///   pool, the retry policy absorbing transient store faults.
/// - Degraded (stride 2^k) or after a SEEK it switches to direct
///   placement reads of just the elements it will deliver: a strided
///   session genuinely reads ~1/stride of the bytes, which is what
///   makes degradation a real capacity lever rather than an
///   accounting fiction.
///
/// An element read that still fails after retries is skipped, not
/// fatal — the session completes with `elements_skipped` > 0 and ends
/// DEGRADED instead of DONE. Sessions are driven by one server
/// handler at a time; only `state()`, `trace_id()` and the
/// mutex-guarded flight recorder are safe to use concurrently.
class Session {
 public:
  struct Config {
    uint32_t stride = 1;
    double booked_bytes_per_second = 0.0;
    /// Identity of the multiplexed stream this session serves: the
    /// server connection and the stream id within it. Flight-recorder
    /// labels and dumps are keyed by these, so an eviction post-mortem
    /// names the stream, not just the socket. 0/0 = standalone (tests
    /// that drive a Session directly).
    uint64_t connection_id = 0;
    uint64_t stream_id = 0;
    /// Byte cap per READ batch (bounds frame size and send latency).
    uint64_t response_byte_cap = 4ull << 20;
    /// Read options for the element stream / direct reads. `pool`
    /// should be the server's I/O pool (not its worker pool — handler
    /// tasks block on reads, so sharing one pool would deadlock).
    StreamReadOptions read_options;
    /// An element read slower than this lands in the flight recorder
    /// as a SLOW_READ event (0 disables the check).
    uint64_t slow_read_us = 10'000;
  };

  /// Opens a session on `interpretation`'s object `stream_name`.
  /// `store` must outlive the session; the placement table is copied.
  static Result<std::unique_ptr<Session>> Create(
      uint64_t id, std::string object_name, const BlobStore* store,
      const Interpretation& interpretation, const std::string& stream_name,
      Config config);

  uint64_t id() const { return id_; }
  uint64_t connection_id() const { return config_.connection_id; }
  uint64_t stream_id() const { return config_.stream_id; }
  const std::string& object_name() const { return object_name_; }
  SessionState state() const {
    return state_.load(std::memory_order_acquire);
  }
  uint32_t stride() const { return stride_; }
  bool degraded() const { return degraded_; }
  double booked_bytes_per_second() const { return booked_; }
  void set_booked_bytes_per_second(double rate) { booked_ = rate; }

  uint64_t element_count() const { return object_.elements.size(); }
  uint64_t payload_bytes() const { return object_.PayloadBytes(); }
  const InterpretedObject& object() const { return object_; }

  /// Adopts the client's trace id (from OPEN's trace context), so the
  /// session's flight-recorder dumps can name the trace to pull up in
  /// the merged timeline. 0 = no cross-boundary trace.
  void AdoptTrace(uint64_t trace_id);
  uint64_t trace_id() const { return trace_id_; }

  /// The session's flight recorder: recent state transitions, faults,
  /// degradations, slow reads. The server adds its own events (e.g.
  /// deadline misses) through this.
  obs::FlightRecorder* flight() { return &flight_; }

  /// Flight-recorder dump for this session, headed by its identity
  /// (id, object, state, stride, trace id) and `cause`.
  std::string DumpFlight(std::string_view cause) const;

  /// Delivers up to `max_elements` next elements (also bounded by the
  /// response byte cap), advancing the session by its stride. Sets
  /// `end_of_stream` — and moves the session to its terminal DONE /
  /// DEGRADED state — when the last element has been delivered.
  /// Returns FailedPrecondition once the session is terminal.
  Result<ReadBatch> ReadNext(uint64_t max_elements);

  /// Repositions to `element` (OutOfRange past the end) and switches
  /// to direct reads — a seek abandons the sequential chunk window.
  Result<uint64_t> SeekTo(uint64_t element);

  /// Halves the session's fidelity: doubles the stride and drops to
  /// direct reads. The caller re-books the admission ledger. The
  /// session will finish DEGRADED.
  void Degrade();

  /// Terminal transition for server-initiated removal (slow client,
  /// shutdown). Irreversible. `cause` must have static storage
  /// duration (a literal); it lands in the flight recorder.
  void MarkEvicted(const char* cause = "server-initiated eviction");

  /// Client closed before the stream ended: terminal DONE/DEGRADED at
  /// whatever position it reached. No-op if already terminal.
  void MarkClosed();

  SessionStatsWire StatsWire() const;

 private:
  Session(uint64_t id, std::string object_name, const BlobStore* store,
          BlobId blob, InterpretedObject object, Config config);

  bool Terminal() const {
    SessionState s = state();
    return s == SessionState::kDone || s == SessionState::kDegraded ||
           s == SessionState::kEvicted;
  }

  /// Reads element `index` bytes: from the element stream when it is
  /// aligned with the stream position, by direct placement read
  /// otherwise.
  Result<Bytes> ReadElementBytes(uint64_t index);

  /// Moves to the terminal completed state (DONE, or DEGRADED when
  /// fidelity was reduced or elements were skipped).
  void Finish();

  const uint64_t id_;
  const std::string object_name_;
  const BlobStore* store_;
  const BlobId blob_;
  const InterpretedObject object_;
  Config config_;

  std::atomic<SessionState> state_{SessionState::kAdmitted};
  uint32_t stride_;
  bool degraded_ = false;
  double booked_ = 0.0;
  uint64_t trace_id_ = 0;
  obs::FlightRecorder flight_;

  /// Sequential chunked reader; non-null only while the session is at
  /// stride 1 and has not sought.
  std::unique_ptr<ElementStream> stream_;

  uint64_t position_ = 0;  ///< Next element number to deliver.
  uint64_t delivered_ = 0;
  uint64_t skipped_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_SESSION_H_

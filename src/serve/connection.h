#ifndef TBM_SERVE_CONNECTION_H_
#define TBM_SERVE_CONNECTION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace tbm::serve {

class StreamHandle;

/// Client half of the multiplexed (v2) serve protocol: one connection
/// carries many concurrent streams, each opened with its own QoS
/// parameters and driven independently.
///
///   auto connection = Connect(std::move(transport));
///   auto stream = connection->OpenStream("concert", {.priority = 2});
///   while (auto batch = (*stream)->Read(8)) { ...; if (end) break; }
///   (*stream)->Close();
///
/// A background pump thread reads frames off the transport and demuxes
/// them to per-stream inboxes by stream id, so N threads can each
/// drive their own StreamHandle concurrently — the per-stream
/// discipline stays "one outstanding request", the connection-level
/// discipline does not. Writes are serialized internally.
///
/// Flow control: a stream opened with `StreamQos::window_bytes > 0`
/// grants the server that many bytes of READ payload in flight;
/// StreamHandle::Read replenishes the window automatically as batches
/// are consumed. A paused consumer therefore stalls only its own
/// stream — the server parks that stream's frames and keeps serving
/// the connection's other streams.
///
/// Every connection mints one trace id; each round trip records a
/// client-side span in that trace and ships the context to the
/// server, exactly as the single-stream client did.
///
/// Thread safety: OpenStream / Telemetry / ok() may be called from any
/// thread. A StreamHandle must not outlive its Connection.
class Connection {
 public:
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Opens a new multiplexed stream on the named catalog media object.
  /// The server's admission decision comes back in `info().stride`
  /// (> 1 = admitted degraded). Fails without disturbing other
  /// streams if the server denies admission.
  Result<std::unique_ptr<StreamHandle>> OpenStream(
      const std::string& object_name, StreamQos qos = {});

  /// Point-in-time copy of the server's metrics registry. Needs no
  /// open stream; serialized internally.
  Result<obs::MetricsSnapshot> Telemetry();

  /// OK while the transport and pump are healthy; the first transport
  /// error (or server hangup) sticks and fails every in-flight and
  /// future round trip with it.
  Status ok() const;

  /// The trace id this connection's round-trip spans record into
  /// (0 in TBM_OBS_DISABLED builds).
  uint64_t trace_id() const { return trace_id_; }

 private:
  friend class StreamHandle;
  friend std::unique_ptr<Connection> Connect(
      std::unique_ptr<Transport> transport);

  /// One stream's response mailbox. The pump pushes decoded-frame
  /// payloads; the stream's driver thread pops them.
  struct Inbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> payloads;
  };

  explicit Connection(std::unique_ptr<Transport> transport);

  void Pump();
  void Fail(Status status);

  /// Sends one encoded wire frame (serialized against other writers).
  Status SendWire(Bytes wire);

  /// Sends `request` on stream `stream_id` and waits for the response
  /// frame on its inbox, wrapped in a client-side span carrying this
  /// connection's trace context. `payload_bytes`, if non-null,
  /// receives the response frame's payload size — the quantity flow
  /// control is denominated in.
  Result<Response> RoundTrip(uint64_t stream_id, Request request,
                             size_t* payload_bytes = nullptr);

  /// Sends a fire-and-forget request (WINDOW) on `stream_id`.
  Status SendOneWay(uint64_t stream_id, const Request& request);

  std::shared_ptr<Inbox> InboxFor(uint64_t stream_id);
  void ForgetStream(uint64_t stream_id);

  std::unique_ptr<Transport> transport_;
  const uint64_t trace_id_;

  std::mutex write_mu_;      ///< Serializes frame writes.
  std::mutex telemetry_mu_;  ///< One outstanding TELEMETRY at a time.

  mutable std::mutex mu_;  ///< Guards inboxes_, next_stream_id_, status_.
  std::map<uint64_t, std::shared_ptr<Inbox>> inboxes_;
  uint64_t next_stream_id_ = 1;  ///< 0 is the control pseudo-stream.
  Status status_;

  std::thread pump_;
};

/// Establishes a multiplexed client connection over `transport` and
/// starts its demux pump.
std::unique_ptr<Connection> Connect(std::unique_ptr<Transport> transport);

/// One open stream on a Connection: the client-side handle for a
/// server session. Synchronous and single-driver by design — one
/// outstanding request per stream keeps the session an ordered
/// pipeline; concurrency comes from opening more streams.
class StreamHandle {
 public:
  /// Closes the stream on the server (best effort) if still open.
  ~StreamHandle();

  StreamHandle(const StreamHandle&) = delete;
  StreamHandle& operator=(const StreamHandle&) = delete;

  /// Fetches the next batch (at most `max_elements`; the server may
  /// send fewer). `end_of_stream` marks the final batch. Replenishes
  /// the flow-control window for the consumed batch when the stream
  /// was opened with one.
  Result<ReadBatch> Read(uint64_t max_elements);

  /// Repositions to `element`; returns the server-confirmed position.
  Result<uint64_t> Seek(uint64_t element);

  /// Session counters and state as the server sees them.
  Result<SessionStatsWire> Stats();

  /// Ends the stream. Idempotent; the connection and its other
  /// streams stay usable.
  Status Close();

  /// Grants the server `bytes` of additional flow-control window.
  /// Read() does this automatically; manual credit is for consumers
  /// that want to open the window ahead of demand.
  Status GrantWindow(uint64_t bytes);

  const OpenInfo& info() const { return info_; }
  uint64_t stream_id() const { return stream_id_; }
  uint64_t session_id() const { return info_.session_id; }
  const StreamQos& qos() const { return qos_; }

 private:
  friend class Connection;

  StreamHandle(Connection* connection, uint64_t stream_id, StreamQos qos,
               OpenInfo info)
      : connection_(connection),
        stream_id_(stream_id),
        qos_(qos),
        info_(info) {}

  Connection* connection_;
  const uint64_t stream_id_;
  const StreamQos qos_;
  const OpenInfo info_;
  bool closed_ = false;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_CONNECTION_H_

#include "serve/framing.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "base/macros.h"

namespace tbm::serve {

namespace {

uint32_t LoadU32LE(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void StoreU32LE(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

Bytes EncodeFrameBody(const FrameHeader& header, ByteSpan payload) {
  Bytes body;
  if (header.version == 1) {
    body.assign(payload.begin(), payload.end());
    return body;
  }
  body.resize(kFrameV2HeaderBytes + payload.size());
  body[0] = kFrameV2Marker;
  body[1] = header.flags;
  StoreU32LE(body.data() + 2, static_cast<uint32_t>(header.stream_id));
  if (!payload.empty()) {
    std::memcpy(body.data() + kFrameV2HeaderBytes, payload.data(),
                payload.size());
  }
  return body;
}

Bytes EncodeFrame(const FrameHeader& header, ByteSpan payload) {
  Bytes body = EncodeFrameBody(header, payload);
  Bytes wire(4 + body.size());
  StoreU32LE(wire.data(), static_cast<uint32_t>(body.size()));
  if (!body.empty()) std::memcpy(wire.data() + 4, body.data(), body.size());
  return wire;
}

Result<Frame> DecodeFrameBody(ByteSpan body) {
  if (body.empty()) {
    return Status::Corruption("empty frame body");
  }
  uint8_t first = body[0];
  Frame frame;
  if (first >= 1 && first <= kMaxV1TypeByte) {
    frame.header.version = 1;
    frame.header.flags = 0;
    frame.header.stream_id = 0;
    frame.payload.assign(body.begin(), body.end());
    return frame;
  }
  if (first != kFrameV2Marker) {
    return Status::InvalidArgument(
        "unknown frame version byte 0x" + [&] {
          static const char* hex = "0123456789abcdef";
          std::string s;
          s += hex[first >> 4];
          s += hex[first & 0xF];
          return s;
        }());
  }
  if (body.size() < kFrameV2HeaderBytes) {
    return Status::Corruption("truncated v2 frame header: " +
                              std::to_string(body.size()) + " of " +
                              std::to_string(kFrameV2HeaderBytes) + " bytes");
  }
  frame.header.version = 2;
  frame.header.flags = body[1];
  if (frame.header.flags != 0) {
    return Status::InvalidArgument(
        "reserved frame flags set: " + std::to_string(frame.header.flags));
  }
  frame.header.stream_id = LoadU32LE(body.data() + 2);
  frame.payload.assign(body.begin() + kFrameV2HeaderBytes, body.end());
  return frame;
}

FrameAssembler::FrameAssembler(uint32_t max_frame) : max_frame_(max_frame) {}

void FrameAssembler::Ingest(ByteSpan bytes) {
  // Compact lazily: only when the consumed prefix dominates the
  // buffer, so steady-state ingest is append-only.
  if (head_ > 4096 && head_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + head_);
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<Frame>> FrameAssembler::Next() {
  if (!poisoned_.ok()) return poisoned_;
  size_t available = buffer_.size() - head_;
  if (available < 4) return std::optional<Frame>(std::nullopt);
  uint32_t length = LoadU32LE(buffer_.data() + head_);
  if (length > max_frame_) {
    poisoned_ = Status::Corruption(
        "frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(max_frame_));
    return poisoned_;
  }
  if (available < 4 + static_cast<size_t>(length)) {
    return std::optional<Frame>(std::nullopt);
  }
  ByteSpan body(buffer_.data() + head_ + 4, length);
  auto frame = DecodeFrameBody(body);
  if (!frame.ok()) {
    poisoned_ = frame.status();
    return poisoned_;
  }
  head_ += 4 + length;
  return std::optional<Frame>(*std::move(frame));
}

void FrameWriter::Enqueue(Bytes wire, SentFn on_sent) {
  queued_bytes_ += wire.size();
  queue_.push_back(Pending{std::move(wire), 0, std::move(on_sent)});
}

Result<size_t> FrameWriter::Flush(Transport& transport) {
  size_t written = 0;
  while (!queue_.empty()) {
    Pending& front = queue_.front();
    while (front.offset < front.wire.size()) {
      TBM_ASSIGN_OR_RETURN(
          size_t n, transport.WriteSome(ByteSpan(
                        front.wire.data() + front.offset,
                        front.wire.size() - front.offset)));
      if (n == 0) return written;  // Would block; resume on next Flush.
      front.offset += n;
      written += n;
      queued_bytes_ -= n;
    }
    SentFn on_sent = std::move(front.on_sent);
    queue_.pop_front();
    if (on_sent) on_sent();
  }
  return written;
}

}  // namespace tbm::serve

#include "serve/session.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/macros.h"
#include "blob/read_policy.h"
#include "obs/metrics.h"

namespace tbm::serve {

Result<std::unique_ptr<Session>> Session::Create(
    uint64_t id, std::string object_name, const BlobStore* store,
    const Interpretation& interpretation, const std::string& stream_name,
    Config config) {
  TBM_ASSIGN_OR_RETURN(const InterpretedObject* object,
                       interpretation.FindObject(stream_name));
  if (config.stride == 0) {
    return Status::InvalidArgument("stride must be >= 1");
  }
  auto session = std::unique_ptr<Session>(
      new Session(id, std::move(object_name), store, interpretation.blob(),
                  *object, config));
  if (config.stride == 1) {
    // Full fidelity: sequential chunked streaming with readahead.
    TBM_ASSIGN_OR_RETURN(
        session->stream_,
        ElementStream::Open(*store, interpretation, stream_name,
                            config.read_options));
  }
  return session;
}

Session::Session(uint64_t id, std::string object_name, const BlobStore* store,
                 BlobId blob, InterpretedObject object, Config config)
    : id_(id),
      object_name_(std::move(object_name)),
      store_(store),
      blob_(blob),
      object_(std::move(object)),
      config_(config),
      stride_(config.stride),
      degraded_(config.stride > 1),
      booked_(config.booked_bytes_per_second) {
  if (config_.stream_id != 0 || config_.connection_id != 0) {
    flight_.set_label("conn " + std::to_string(config_.connection_id) +
                      " stream " + std::to_string(config_.stream_id) +
                      " session " + std::to_string(id_) + " " + object_name_);
  } else {
    flight_.set_label("session " + std::to_string(id_) + " " + object_name_);
  }
  flight_.Record(obs::FlightEventType::kAdmit,
                 degraded_ ? "admitted degraded" : "admitted", stride_,
                 static_cast<uint64_t>(booked_));
}

void Session::AdoptTrace(uint64_t trace_id) {
  if (trace_id == 0) return;
  trace_id_ = trace_id;
  flight_.Record(obs::FlightEventType::kNote, "adopted client trace",
                 trace_id);
}

Result<Bytes> Session::ReadElementBytes(uint64_t index) {
  // In TBM_OBS_DISABLED builds NowTicksNs() is inline 0 and Record()
  // a no-op, so this timing folds away entirely.
  int64_t start_ns = obs::NowTicksNs();
  auto finish_timing = [&](bool ok) {
    uint64_t elapsed_us =
        static_cast<uint64_t>(
            std::max<int64_t>(0, obs::NowTicksNs() - start_ns)) /
        1000;
    if (!ok) {
      flight_.Record(obs::FlightEventType::kFault,
                     "element read failed after retries", index, elapsed_us);
    } else if (config_.slow_read_us != 0 && elapsed_us > config_.slow_read_us) {
      flight_.Record(obs::FlightEventType::kSlowRead,
                     "element read over threshold", index, elapsed_us);
    }
  };
  // The element stream delivers strictly sequentially; use it while we
  // are aligned with it (stride-1 sessions that never sought).
  if (stream_ != nullptr && stream_->position() == index) {
    auto element = stream_->Next();
    finish_timing(element.ok());
    if (!element.ok()) return element.status();
    return Bytes(element->data.begin(), element->data.end());
  }
  const ElementPlacement& placement =
      object_.elements[static_cast<size_t>(index)];
  auto slice = ReadWithPolicy(*store_, blob_, placement.placement,
                              config_.read_options.policy);
  finish_timing(slice.ok());
  if (!slice.ok()) return slice.status();
  return Bytes(slice->begin(), slice->end());
}

Result<ReadBatch> Session::ReadNext(uint64_t max_elements) {
  if (Terminal()) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateToString(state())));
  }
  if (state() != SessionState::kStreaming) {
    flight_.Record(obs::FlightEventType::kState, "STREAMING", position_);
  }
  state_.store(SessionState::kStreaming, std::memory_order_release);

  ReadBatch batch;
  batch.stride = stride_;
  if (max_elements == 0) max_elements = 1;
  uint64_t batch_bytes = 0;
  while (batch.elements.size() < max_elements &&
         position_ < object_.elements.size()) {
    const ElementPlacement& placement =
        object_.elements[static_cast<size_t>(position_)];
    if (!batch.elements.empty() &&
        batch_bytes + placement.placement.length > config_.response_byte_cap) {
      break;  // Keep each response frame (and its send latency) bounded.
    }
    auto bytes = ReadElementBytes(position_);
    if (bytes.ok()) {
      WireElement element;
      element.element_number = static_cast<uint64_t>(placement.element_number);
      element.start = placement.start;
      element.duration = placement.duration;
      element.payload = std::move(*bytes);
      batch_bytes += element.payload.size();
      bytes_sent_ += element.payload.size();
      ++delivered_;
      batch.elements.push_back(std::move(element));
    } else {
      // A read that failed after every retry costs the element, not
      // the session: skip it and finish DEGRADED.
      ++skipped_;
      degraded_ = true;
    }
    position_ += stride_;
  }
  if (position_ >= object_.elements.size()) {
    batch.end_of_stream = true;
    Finish();
  }
  batch.stride = stride_;
  return batch;
}

Result<uint64_t> Session::SeekTo(uint64_t element) {
  if (Terminal()) {
    return Status::FailedPrecondition(
        "session is " + std::string(SessionStateToString(state())));
  }
  if (element >= object_.elements.size()) {
    return Status::OutOfRange(
        "seek to element " + std::to_string(element) + " of " +
        std::to_string(object_.elements.size()));
  }
  position_ = element;
  stream_.reset();  // The chunk window is sequential; a seek leaves it.
  flight_.Record(obs::FlightEventType::kSeek, "seek", element);
  state_.store(SessionState::kStreaming, std::memory_order_release);
  return position_;
}

void Session::Degrade() {
  if (Terminal()) return;
  uint64_t old_stride = stride_;
  stride_ *= 2;
  degraded_ = true;
  stream_.reset();  // Strided delivery reads placements directly.
  flight_.Record(obs::FlightEventType::kDegrade, "stride doubled", old_stride,
                 stride_);
}

void Session::MarkEvicted(const char* cause) {
  flight_.Record(obs::FlightEventType::kEvict,
                 cause != nullptr ? cause : "server-initiated eviction",
                 position_);
  state_.store(SessionState::kEvicted, std::memory_order_release);
}

void Session::MarkClosed() {
  if (Terminal()) return;
  flight_.Record(obs::FlightEventType::kNote, "client closed early",
                 position_);
  Finish();
}

void Session::Finish() {
  flight_.Record(obs::FlightEventType::kState,
                 degraded_ ? "DEGRADED" : "DONE", delivered_, skipped_);
  state_.store(degraded_ ? SessionState::kDegraded : SessionState::kDone,
               std::memory_order_release);
}

std::string Session::DumpFlight(std::string_view cause) const {
  char header[224];
  std::snprintf(header, sizeof(header),
                "session %llu conn=%llu stream=%llu object=%s state=%s "
                "stride=%u trace=0x%llx\n",
                (unsigned long long)id_,
                (unsigned long long)config_.connection_id,
                (unsigned long long)config_.stream_id, object_name_.c_str(),
                std::string(SessionStateToString(state())).c_str(), stride_,
                (unsigned long long)trace_id_);
  std::string dump = flight_.Dump(cause);
  if (dump.empty()) return dump;  // TBM_OBS_DISABLED: nothing recorded.
  return header + dump;
}

SessionStatsWire Session::StatsWire() const {
  SessionStatsWire stats;
  stats.state = state();
  stats.elements_delivered = delivered_;
  stats.elements_skipped = skipped_;
  stats.bytes_sent = bytes_sent_;
  stats.stride = stride_;
  return stats;
}

}  // namespace tbm::serve

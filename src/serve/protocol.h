#ifndef TBM_SERVE_PROTOCOL_H_
#define TBM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/bytes.h"
#include "base/io.h"
#include "base/result.h"
#include "base/status.h"
#include "obs/metrics.h"

namespace tbm::serve {

/// Wire protocol of the media service: length-prefixed binary frames
/// carrying one request or response each. A frame is
///
///   u32 payload length (little-endian) | payload
///
/// and the payload is a BinaryWriter encoding (LEB128 varints,
/// length-prefixed strings) of one of the message structs below. The
/// protocol is deliberately session-synchronous — one outstanding
/// request per connection — because a continuous-media session is a
/// pipeline, not an RPC fan-out: ordering is the contract.

/// Frames larger than this are rejected before allocation — the guard
/// against a malformed or hostile length prefix.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Request verbs.
enum class RequestType : uint8_t {
  kOpen = 1,   ///< Open a session on a named media object.
  kRead = 2,   ///< Deliver the next batch of elements.
  kSeek = 3,   ///< Reposition to an element number.
  kStats = 4,  ///< Session counters and state.
  kClose = 5,  ///< End the session.
  kTelemetry = 6,  ///< Server-wide metrics snapshot (no session needed).
  /// One-way flow-control credit (v2 multiplexed connections only):
  /// grants the server `window_delta` more bytes of READ data on this
  /// stream. The server never responds to WINDOW — it is pure credit,
  /// not an RPC — so it rides alongside the one-outstanding-request-
  /// per-stream discipline rather than inside it.
  kWindow = 7,
};

std::string_view RequestTypeToString(RequestType type);

/// Cross-boundary trace context carried on a request: the client's
/// trace id and the span the server-side work should parent into.
/// trace_id 0 means "absent" (e.g. the client was built with
/// TBM_OBS_DISABLED), so presence costs nothing on the wire.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;

  bool present() const { return trace_id != 0; }
};

/// Per-stream quality-of-service parameters, carried on OPEN as
/// extension tag 2. Everything here defaults to "server decides":
/// a v1 client that never heard of QoS gets priority 4, the server's
/// stride ladder, and no flow-control window (the v1 contract).
struct StreamQos {
  /// Write-scheduling priority, 0 (most urgent) .. 7 (background).
  /// The server's priority write scheduler drains all sendable frames
  /// of priority p before any of p+1, round-robin within a level.
  uint8_t priority = 4;
  /// Deepest stride the client will accept before it would rather be
  /// denied. 0 = server's configured ladder (ServeConfig::max_stride).
  uint32_t max_stride = 0;
  /// Initial flow-control window, bytes of READ payload the server
  /// may have in flight before it must wait for WINDOW credits.
  /// 0 = no flow control (v1 semantics).
  uint64_t window_bytes = 0;

  bool present() const {
    return priority != 4 || max_stride != 0 || window_bytes != 0;
  }
};

/// One client request. Only the fields for `type` are meaningful.
///
/// After the per-type fields, a request payload may carry an
/// *extension block*: repeated `u8 tag | length-prefixed body` pairs.
/// Decoders skip unknown tags (forward compatibility: an old server
/// ignores extensions a new client sends), and reject tag 0 and
/// truncated bodies as corruption. Tag 1 is the trace context, tag 2
/// the per-stream QoS parameters on OPEN.
struct Request {
  RequestType type = RequestType::kStats;
  uint64_t session_id = 0;   ///< 0 until OPEN assigns one.
  std::string object_name;   ///< kOpen: catalog name of the media object.
  uint64_t max_elements = 1; ///< kRead: batch size cap.
  uint64_t target_element = 0;  ///< kSeek: element number to resume at.
  uint64_t window_delta = 0;    ///< kWindow: flow-control credit, bytes.
  TraceContext trace;        ///< Extension tag 1; encoded only if present().
  StreamQos qos;             ///< Extension tag 2; encoded only if present().
};

/// Session lifecycle (the serve state machine). OPEN connections
/// advance ADMITTED -> STREAMING and end in exactly one terminal
/// state: DONE (every element delivered at admitted fidelity),
/// DEGRADED (completed, but at reduced fidelity — a coarser stride or
/// skipped elements), or EVICTED (removed by the server: the client
/// was too slow or vanished).
enum class SessionState : uint8_t {
  kOpen = 0,
  kAdmitted = 1,
  kStreaming = 2,
  kDone = 3,
  kDegraded = 4,
  kEvicted = 5,
};

std::string_view SessionStateToString(SessionState state);

/// One delivered element: its number, timing, and payload bytes.
struct WireElement {
  uint64_t element_number = 0;
  int64_t start = 0;     ///< Start time, ticks of the object's time system.
  int64_t duration = 0;  ///< Duration in ticks.
  Bytes payload;
};

/// OPEN response body.
struct OpenInfo {
  uint64_t session_id = 0;
  uint64_t element_count = 0;   ///< Elements in the object.
  uint64_t payload_bytes = 0;   ///< Total media bytes at full fidelity.
  uint32_t stride = 1;          ///< Admitted stride (1 = full fidelity).
  double booked_bytes_per_second = 0.0;
};

/// READ response body.
struct ReadBatch {
  std::vector<WireElement> elements;
  bool end_of_stream = false;
  uint32_t stride = 1;  ///< Stride in force (may coarsen mid-session).
};

/// STATS response body.
struct SessionStatsWire {
  SessionState state = SessionState::kOpen;
  uint64_t elements_delivered = 0;
  uint64_t elements_skipped = 0;  ///< Read failures skipped past.
  uint64_t bytes_sent = 0;
  uint32_t stride = 1;
};

/// One server response: the echoed request type, a status, and — when
/// the status is OK — the body for that request type.
struct Response {
  RequestType type = RequestType::kStats;
  Status status;
  OpenInfo open;
  ReadBatch read;
  uint64_t seek_position = 0;
  SessionStatsWire stats;
  /// kTelemetry: point-in-time copy of the server's metrics registry.
  /// MetricsSnapshot is plain data in both build modes, so a disabled
  /// client can still decode an enabled server's telemetry.
  obs::MetricsSnapshot telemetry;
};

/// Serializes a request / response into a frame *payload* (no length
/// prefix; the transport layer frames it).
Bytes EncodeRequest(const Request& request);
Bytes EncodeResponse(const Response& response);

/// Parses a frame payload. Corruption on truncated or over-long
/// input, InvalidArgument on unknown enum values — a malformed frame
/// never crashes the peer.
Result<Request> DecodeRequest(ByteSpan payload);
Result<Response> DecodeResponse(ByteSpan payload);

}  // namespace tbm::serve

#endif  // TBM_SERVE_PROTOCOL_H_

#ifndef TBM_SERVE_FRAMING_H_
#define TBM_SERVE_FRAMING_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace tbm::serve {

/// Versioned frame envelope for the multiplexed wire protocol.
///
/// Every frame on the wire is `u32 body length (LE) | body`. The body
/// is discriminated by its first byte:
///
///   v1 (single-stream, PR 5 wire format): the first byte is the
///   request/response type tag, a small enum in [0x01, 0x3F]. The
///   whole body is the protocol payload and the frame belongs to the
///   connection's implicit stream 0.
///
///   v2 (multiplexed): the first byte is kFrameV2Marker (0xF2 — a
///   value no v1 type tag can take), followed by
///
///     u8 marker (0xF2) | u8 flags | u32 stream id (LE) | payload
///
///   `flags` must currently be 0 (reserved; nonzero is rejected so
///   future bits can change semantics safely). The payload is the
///   same protocol encoding v1 uses.
///
/// Any other first byte is an unknown frame version and the
/// connection is unframeable — the decoder returns InvalidArgument
/// and the server drops the connection rather than guessing.

inline constexpr uint8_t kFrameV2Marker = 0xF2;
inline constexpr uint8_t kMaxV1TypeByte = 0x3F;
inline constexpr size_t kFrameV2HeaderBytes = 6;  // marker + flags + stream id

/// Decoded frame envelope.
struct FrameHeader {
  uint8_t version = 2;    ///< 1 or 2.
  uint8_t flags = 0;      ///< v2 only; always 0 today.
  uint64_t stream_id = 0; ///< 0 for v1 frames (the implicit stream).
};

/// One whole frame: envelope + protocol payload (request or response
/// encoding, no length prefix).
struct Frame {
  FrameHeader header;
  Bytes payload;
};

/// Encodes a frame *body* (no u32 length prefix). version 1 emits the
/// payload verbatim; version 2 prepends the marker/flags/stream-id
/// header.
Bytes EncodeFrameBody(const FrameHeader& header, ByteSpan payload);

/// Encodes a whole wire frame: u32 length prefix + body.
Bytes EncodeFrame(const FrameHeader& header, ByteSpan payload);

/// Splits a frame body into envelope + payload. InvalidArgument on an
/// unknown version byte or nonzero reserved flags; Corruption on a
/// body too short to hold the v2 header.
Result<Frame> DecodeFrameBody(ByteSpan body);

/// Incremental frame reassembly over an arbitrary-cut byte stream.
/// Feed bytes as they arrive with Ingest(), then drain complete
/// frames with Next(). Hostile input (oversized length prefix,
/// unknown version, bad flags, truncated v2 header) surfaces as an
/// error from Next(), after which the stream is poisoned — the only
/// safe recovery is dropping the connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_frame = kMaxFrameBytes);

  void Ingest(ByteSpan bytes);

  /// Extracts the next complete frame: a Frame when one is buffered,
  /// std::nullopt when more bytes are needed, an error when the byte
  /// stream is unframeable.
  Result<std::optional<Frame>> Next();

  size_t buffered_bytes() const { return buffer_.size() - head_; }

 private:
  const uint32_t max_frame_;
  std::vector<uint8_t> buffer_;
  size_t head_ = 0;
  Status poisoned_ = Status::OK();
};

/// Outbound frame queue with partial-write continuation: frames go in
/// whole, bytes go out as fast as the transport accepts them, and a
/// frame interrupted mid-write resumes exactly where it stopped on
/// the next Flush. This is what keeps frame boundaries atomic on a
/// non-blocking transport — once a frame's first byte is on the wire,
/// no other frame's bytes may interleave.
class FrameWriter {
 public:
  using SentFn = std::function<void()>;

  /// Queues one fully-encoded wire frame (length prefix included).
  /// `on_sent`, if set, fires from Flush() on the call that writes the
  /// frame's last byte — the hook SLO accounting uses to timestamp
  /// "response fully handed to the transport".
  void Enqueue(Bytes wire, SentFn on_sent = nullptr);

  /// Writes until the transport would block or the queue drains.
  /// Returns bytes written this call; transport errors pass through
  /// (the queue is left intact for the caller's teardown logic).
  Result<size_t> Flush(Transport& transport);

  bool empty() const { return queue_.empty(); }
  size_t queued_frames() const { return queue_.size(); }
  size_t queued_bytes() const { return queued_bytes_; }

 private:
  struct Pending {
    Bytes wire;
    size_t offset = 0;
    SentFn on_sent;
  };
  std::deque<Pending> queue_;
  size_t queued_bytes_ = 0;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_FRAMING_H_

#ifndef TBM_SERVE_REACTOR_H_
#define TBM_SERVE_REACTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <vector>

#include "serve/transport.h"

namespace tbm::serve {

/// Readiness-driven event loop: one thread multiplexing many
/// transports. fd-backed transports (fd() >= 0) are registered with
/// the kernel — epoll on Linux (the default, cmake option
/// TBM_SERVE_EPOLL), ::poll otherwise — level-triggered, so a handler
/// that does not drain is simply called again. In-process transports
/// (fd() < 0, the deterministic loopback) participate through their
/// waker: the reactor installs one that marks the entry ready and
/// wakes the loop via a pipe, which makes the same loop drive kernel
/// sockets and loopback tests identically.
///
/// Threading contract:
///  - Handlers run on the loop thread, never concurrently.
///  - Register / Post / PostDelayed / Stop: any thread.
///  - UpdateInterest / Deregister: loop thread only (or after Stop),
///    which is what makes "handler currently running" vs "handler
///    being destroyed" trivially race-free.
///  - A registered Transport/Handler must outlive its registration.
class Reactor {
 public:
  /// Readiness callbacks, invoked on the loop thread. A closed
  /// transport reports readable (and writable, if write-interested)
  /// so the handler discovers the IOError and tears down.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void OnReadable() = 0;
    virtual void OnWritable() = 0;
  };

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Which readiness backend this build uses: "epoll" or "poll".
  static const char* backend();

  /// Registers a transport; `interest` is a mask of
  /// kTransportReadable / kTransportWritable. Returns the
  /// registration id. The transport's waker slot is taken over for
  /// fd() < 0 transports.
  uint64_t Register(Transport* transport, Handler* handler,
                    uint32_t interest);

  /// Replaces the interest mask (loop thread only).
  void UpdateInterest(uint64_t id, uint32_t interest);

  /// Removes a registration (loop thread only, or after Stop). After
  /// return the handler will not be called again.
  void Deregister(uint64_t id);

  /// Runs `fn` on the loop thread, as soon as possible.
  void Post(std::function<void()> fn);

  /// Runs `fn` on the loop thread after at least `delay`.
  void PostDelayed(std::chrono::milliseconds delay, std::function<void()> fn);

  /// Stops the loop and joins the thread. Idempotent. Pending posted
  /// tasks and timers are discarded.
  void Stop();

  bool InLoop() const {
    return std::this_thread::get_id() == loop_thread_id_.load();
  }

 private:
  struct Entry {
    Transport* transport = nullptr;
    Handler* handler = nullptr;
    uint32_t interest = 0;
    int fd = -1;
  };

  struct Timer {
    std::chrono::steady_clock::time_point when;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  void Loop();
  void Wake();
  void MarkReady(uint64_t id);
  /// Waits for kernel/pipe events up to `timeout_ms` (-1 = forever)
  /// and appends ready registration ids to `out`.
  void WaitForEvents(int timeout_ms, std::vector<uint64_t>* out);
  void Dispatch(uint64_t id);
  int ComputeTimeoutMs();
  void RunExpired();

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
  std::set<uint64_t> pending_ready_;
  std::vector<std::function<void()>> posted_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  uint64_t next_id_ = 1;
  uint64_t next_timer_seq_ = 0;
  bool running_ = true;

  int wake_fds_[2] = {-1, -1};
  int epoll_fd_ = -1;

  std::thread loop_;
  std::atomic<std::thread::id> loop_thread_id_;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_REACTOR_H_

#include "serve/transport.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#ifdef __unix__
#include <poll.h>
#endif

#include "base/macros.h"

namespace tbm::serve {

namespace {

/// One direction of a loopback connection: a bounded byte FIFO.
/// All operations are non-blocking; callers learn about transitions
/// through the endpoint wakers the channel fires after every mutation.
class ByteQueue {
 public:
  explicit ByteQueue(size_t capacity)
      : capacity_(std::max<size_t>(capacity, 1)) {}

  /// Appends as much of `data` as fits. Returns bytes accepted, or
  /// IOError when closed.
  Result<size_t> TryPush(ByteSpan data) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::IOError("transport closed");
    size_t take = std::min(capacity_ - bytes_.size(), data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.begin() + take);
    return take;
  }

  /// Pops up to `n` bytes. Returns bytes transferred (0 = empty, try
  /// later), or IOError once closed *and* drained — buffered bytes
  /// written before the close are still delivered.
  Result<size_t> TryPop(uint8_t* out, size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (bytes_.empty()) {
      if (closed_) return Status::IOError("transport closed");
      return static_cast<size_t>(0);
    }
    size_t take = std::min(bytes_.size(), n);
    std::copy_n(bytes_.begin(), take, out);
    bytes_.erase(bytes_.begin(), bytes_.begin() + take);
    return take;
  }

  bool readable() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !bytes_.empty() || closed_;
  }

  bool writable() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !closed_ && bytes_.size() < capacity_;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<uint8_t> bytes_;
  bool closed_ = false;
};

/// Shared state of a loopback pair: one queue per direction plus the
/// two endpoint wakers. Both endpoints hold shared ownership, so
/// either side may outlive the other.
struct LoopbackChannel {
  explicit LoopbackChannel(size_t capacity)
      : a_to_b(capacity), b_to_a(capacity) {}

  ByteQueue a_to_b;
  ByteQueue b_to_a;

  std::mutex waker_mu;
  std::function<void()> waker_a;
  std::function<void()> waker_b;
  /// Parked WaitFor callers wait here; WakeBoth broadcasts. Any
  /// number of threads may park concurrently (e.g. a connection pump
  /// waiting readable while a writer waits writable), which is what
  /// the single waker slot cannot serve.
  std::condition_variable ready_cv;

  void SetWaker(bool endpoint_a, std::function<void()> waker) {
    std::lock_guard<std::mutex> lock(waker_mu);
    (endpoint_a ? waker_a : waker_b) = std::move(waker);
  }

  /// Fires both endpoint wakers. Any mutation may unblock either side
  /// (a push makes the peer readable, a pop makes the pusher writable,
  /// a close wakes everyone), and spurious wakes are allowed, so we
  /// don't try to be precise. Wakers are copied out and invoked
  /// without holding waker_mu — they may themselves take locks.
  void WakeBoth() {
    std::function<void()> a, b;
    {
      std::lock_guard<std::mutex> lock(waker_mu);
      a = waker_a;
      b = waker_b;
    }
    if (a) a();
    if (b) b();
    ready_cv.notify_all();
  }

  void CloseAll() {
    a_to_b.Close();
    b_to_a.Close();
    WakeBoth();
  }
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackChannel> channel, bool endpoint_a)
      : channel_(std::move(channel)), endpoint_a_(endpoint_a) {}

  ~LoopbackTransport() override {
    Close();
    // Drop our waker so the channel never calls into freed state.
    channel_->SetWaker(endpoint_a_, nullptr);
  }

  Result<size_t> ReadSome(uint8_t* out, size_t n) override {
    auto got = rx().TryPop(out, n);
    if (got.ok() && *got > 0) channel_->WakeBoth();
    return got;
  }

  Result<size_t> WriteSome(ByteSpan data) override {
    auto sent = tx().TryPush(data);
    if (sent.ok() && *sent > 0) channel_->WakeBoth();
    return sent;
  }

  uint32_t Poll() const override {
    uint32_t ready = 0;
    if (rx().readable()) ready |= kTransportReadable;
    if (tx().writable()) ready |= kTransportWritable;
    if (rx().closed() || tx().closed()) ready |= kTransportClosed;
    return ready;
  }

  void SetWaker(std::function<void()> waker) override {
    channel_->SetWaker(endpoint_a_, std::move(waker));
  }

  /// Parks on the channel's condition variable instead of the base
  /// class's sleep-poll loop: a thousand blocked clients cost a
  /// thousand parked threads, not a thousand spinning ones. Holding
  /// waker_mu across the not-ready Poll() and into the wait closes
  /// the missed-wakeup window — WakeBoth must acquire waker_mu (to
  /// copy the wakers) before it notifies, so any state change after
  /// our Poll() snapshot notifies after we are parked.
  bool WaitFor(uint32_t want, std::chrono::milliseconds timeout) override {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(channel_->waker_mu);
    for (;;) {
      uint32_t ready = Poll();
      if (ready & want) return true;
      if (ready & kTransportClosed) return (want & kTransportReadable) != 0;
      if (channel_->ready_cv.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        uint32_t last = Poll();
        if (last & want) return true;
        if (last & kTransportClosed) return (want & kTransportReadable) != 0;
        return false;
      }
    }
  }

  /// Dropping either endpoint tears down the whole connection — a
  /// half-open loopback has no useful semantics.
  void Close() override { channel_->CloseAll(); }

 private:
  ByteQueue& tx() { return endpoint_a_ ? channel_->a_to_b : channel_->b_to_a; }
  ByteQueue& rx() { return endpoint_a_ ? channel_->b_to_a : channel_->a_to_b; }
  const ByteQueue& tx() const {
    return endpoint_a_ ? channel_->a_to_b : channel_->b_to_a;
  }
  const ByteQueue& rx() const {
    return endpoint_a_ ? channel_->b_to_a : channel_->a_to_b;
  }

  std::shared_ptr<LoopbackChannel> channel_;
  const bool endpoint_a_;
};

}  // namespace

/// Base implementation: park fd-backed transports in ::poll; sleep in
/// short slices otherwise (bounded staleness is acceptable for a
/// transport with no native wait — the loopback overrides this with a
/// condition-variable park, and the hot paths use the Reactor's
/// wakers).
bool Transport::WaitFor(uint32_t want, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    uint32_t ready = Poll();
    if (ready & want) return true;
    if (ready & kTransportClosed) {
      // Closed counts as "ready" for reads (the reader must observe
      // the EOF error) but not for writes, which can never succeed.
      return (want & kTransportReadable) != 0;
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
#ifdef __unix__
    int poll_fd = fd();
    if (poll_fd >= 0) {
      struct pollfd pfd;
      pfd.fd = poll_fd;
      pfd.events = static_cast<short>(
          ((want & kTransportReadable) ? POLLIN : 0) |
          ((want & kTransportWritable) ? POLLOUT : 0));
      pfd.revents = 0;
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(
                          left.count(), 100)));
      continue;
    }
#endif
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateLoopbackPair(const LoopbackOptions& options) {
  auto channel = std::make_shared<LoopbackChannel>(options.buffer_bytes);
  auto a = std::make_unique<LoopbackTransport>(channel, /*endpoint_a=*/true);
  auto b = std::make_unique<LoopbackTransport>(channel, /*endpoint_a=*/false);
  return {std::move(a), std::move(b)};
}

bool WaitReadable(Transport& transport, std::chrono::milliseconds timeout) {
  return transport.WaitFor(kTransportReadable, timeout);
}

bool WaitWritable(Transport& transport, std::chrono::milliseconds timeout) {
  return transport.WaitFor(kTransportWritable, timeout);
}

Status BlockingSend(Transport& transport, ByteSpan data,
                    std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  size_t sent = 0;
  while (sent < data.size()) {
    TBM_ASSIGN_OR_RETURN(
        size_t n,
        transport.WriteSome(ByteSpan(data.data() + sent, data.size() - sent)));
    sent += n;
    if (sent == data.size()) break;
    if (n == 0) {
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline ||
          !WaitWritable(transport,
                        std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now))) {
        return Status::ResourceExhausted(
            "send timed out: peer buffer full — slow consumer");
      }
    }
  }
  return Status::OK();
}

Status BlockingRecv(Transport& transport, uint8_t* out, size_t n,
                    std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  size_t got = 0;
  while (got < n) {
    TBM_ASSIGN_OR_RETURN(size_t r, transport.ReadSome(out + got, n - got));
    got += r;
    if (got == n) break;
    if (r == 0) {
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline ||
          !WaitReadable(transport,
                        std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now))) {
        return Status::ResourceExhausted("recv timed out waiting for peer");
      }
    }
  }
  return Status::OK();
}

Status WriteFrame(Transport& transport, ByteSpan payload,
                  std::chrono::milliseconds timeout) {
  uint8_t prefix[4];
  uint32_t length = static_cast<uint32_t>(payload.size());
  prefix[0] = static_cast<uint8_t>(length);
  prefix[1] = static_cast<uint8_t>(length >> 8);
  prefix[2] = static_cast<uint8_t>(length >> 16);
  prefix[3] = static_cast<uint8_t>(length >> 24);
  TBM_RETURN_IF_ERROR(BlockingSend(transport, ByteSpan(prefix, 4), timeout));
  if (!payload.empty()) {
    TBM_RETURN_IF_ERROR(BlockingSend(transport, payload, timeout));
  }
  return Status::OK();
}

Result<Bytes> ReadFrame(Transport& transport, uint32_t max_frame,
                        std::chrono::milliseconds timeout) {
  uint8_t prefix[4];
  TBM_RETURN_IF_ERROR(BlockingRecv(transport, prefix, 4, timeout));
  uint32_t length = static_cast<uint32_t>(prefix[0]) |
                    (static_cast<uint32_t>(prefix[1]) << 8) |
                    (static_cast<uint32_t>(prefix[2]) << 16) |
                    (static_cast<uint32_t>(prefix[3]) << 24);
  if (length > max_frame) {
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds limit " + std::to_string(max_frame));
  }
  Bytes payload(length);
  if (length > 0) {
    TBM_RETURN_IF_ERROR(
        BlockingRecv(transport, payload.data(), length, timeout));
  }
  return payload;
}

}  // namespace tbm::serve

#include "serve/transport.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "base/macros.h"

namespace tbm::serve {

namespace {

/// One direction of a loopback connection: a bounded byte FIFO with
/// blocking producer/consumer semantics. Closing wakes both sides.
class ByteQueue {
 public:
  explicit ByteQueue(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

  Status Push(ByteSpan data, std::chrono::milliseconds timeout) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    size_t sent = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (sent < data.size()) {
      if (closed_) return Status::IOError("transport closed");
      size_t room = capacity_ - bytes_.size();
      if (room == 0) {
        if (not_full_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          return Status::ResourceExhausted(
              "send timed out: peer buffer full (" +
              std::to_string(capacity_) + " bytes) — slow consumer");
        }
        continue;
      }
      size_t take = std::min(room, data.size() - sent);
      bytes_.insert(bytes_.end(), data.begin() + sent,
                    data.begin() + sent + take);
      sent += take;
      not_empty_.notify_one();
    }
    return Status::OK();
  }

  Status Pop(uint8_t* out, size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t got = 0;
    while (got < n) {
      if (bytes_.empty()) {
        if (closed_) return Status::IOError("transport closed");
        not_empty_.wait(lock);
        continue;
      }
      size_t take = std::min(bytes_.size(), n - got);
      std::copy_n(bytes_.begin(), take, out + got);
      bytes_.erase(bytes_.begin(), bytes_.begin() + take);
      got += take;
      not_full_.notify_one();
    }
    return Status::OK();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<uint8_t> bytes_;
  bool closed_ = false;
};

/// Shared state of a loopback pair: one queue per direction. Both
/// endpoints hold shared ownership, so either side may outlive the
/// other.
struct LoopbackChannel {
  LoopbackChannel(size_t capacity, std::chrono::milliseconds timeout)
      : a_to_b(capacity), b_to_a(capacity), send_timeout(timeout) {}

  ByteQueue a_to_b;
  ByteQueue b_to_a;
  std::chrono::milliseconds send_timeout;

  void CloseAll() {
    a_to_b.Close();
    b_to_a.Close();
  }
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackChannel> channel, ByteQueue* tx,
                    ByteQueue* rx)
      : channel_(std::move(channel)), tx_(tx), rx_(rx) {}

  ~LoopbackTransport() override { Close(); }

  Status Send(ByteSpan data) override {
    return tx_->Push(data, channel_->send_timeout);
  }

  Status Recv(uint8_t* out, size_t n) override { return rx_->Pop(out, n); }

  /// Dropping either endpoint tears down the whole connection — a
  /// half-open loopback has no useful semantics.
  void Close() override { channel_->CloseAll(); }

 private:
  std::shared_ptr<LoopbackChannel> channel_;
  ByteQueue* tx_;
  ByteQueue* rx_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateLoopbackPair(const LoopbackOptions& options) {
  auto channel = std::make_shared<LoopbackChannel>(options.buffer_bytes,
                                                   options.send_timeout);
  auto a = std::make_unique<LoopbackTransport>(channel, &channel->a_to_b,
                                               &channel->b_to_a);
  auto b = std::make_unique<LoopbackTransport>(channel, &channel->b_to_a,
                                               &channel->a_to_b);
  return {std::move(a), std::move(b)};
}

Status WriteFrame(Transport& transport, ByteSpan payload) {
  uint8_t prefix[4];
  uint32_t length = static_cast<uint32_t>(payload.size());
  prefix[0] = static_cast<uint8_t>(length);
  prefix[1] = static_cast<uint8_t>(length >> 8);
  prefix[2] = static_cast<uint8_t>(length >> 16);
  prefix[3] = static_cast<uint8_t>(length >> 24);
  TBM_RETURN_IF_ERROR(transport.Send(ByteSpan(prefix, 4)));
  if (!payload.empty()) TBM_RETURN_IF_ERROR(transport.Send(payload));
  return Status::OK();
}

Result<Bytes> ReadFrame(Transport& transport, uint32_t max_frame) {
  uint8_t prefix[4];
  TBM_RETURN_IF_ERROR(transport.Recv(prefix, 4));
  uint32_t length = static_cast<uint32_t>(prefix[0]) |
                    (static_cast<uint32_t>(prefix[1]) << 8) |
                    (static_cast<uint32_t>(prefix[2]) << 16) |
                    (static_cast<uint32_t>(prefix[3]) << 24);
  if (length > max_frame) {
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds limit " + std::to_string(max_frame));
  }
  Bytes payload(length);
  if (length > 0) TBM_RETURN_IF_ERROR(transport.Recv(payload.data(), length));
  return payload;
}

}  // namespace tbm::serve

#include "serve/reactor.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#if defined(TBM_SERVE_EPOLL) && defined(__linux__)
#define TBM_REACTOR_EPOLL 1
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

namespace tbm::serve {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

const char* Reactor::backend() {
#ifdef TBM_REACTOR_EPOLL
  return "epoll";
#else
  return "poll";
#endif
}

Reactor::Reactor() {
  if (::pipe(wake_fds_) != 0) {
    wake_fds_[0] = wake_fds_[1] = -1;
  } else {
    SetNonBlocking(wake_fds_[0]);
    SetNonBlocking(wake_fds_[1]);
  }
#ifdef TBM_REACTOR_EPOLL
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ >= 0 && wake_fds_[0] >= 0) {
    struct epoll_event ev;
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // id 0 = the wake pipe.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);
  }
#endif
  loop_ = std::thread([this] { Loop(); });
  loop_thread_id_.store(loop_.get_id());
}

Reactor::~Reactor() { Stop(); }

void Reactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && !loop_.joinable()) return;
    running_ = false;
  }
  Wake();
  if (loop_.joinable()) loop_.join();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Reactor::Wake() {
  if (wake_fds_[1] >= 0) {
    uint8_t byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void Reactor::MarkReady(uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ready_.insert(id);
  }
  Wake();
}

uint64_t Reactor::Register(Transport* transport, Handler* handler,
                           uint32_t interest) {
  uint64_t id;
  int fd = transport->fd();
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    entries_[id] = Entry{transport, handler, interest, fd};
  }
  if (fd >= 0) {
#ifdef TBM_REACTOR_EPOLL
    struct epoll_event ev;
    ev.events = ((interest & kTransportReadable) ? EPOLLIN : 0u) |
                ((interest & kTransportWritable) ? EPOLLOUT : 0u);
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
#endif
    // poll backend rebuilds its fd set every iteration; nothing to do.
    Wake();
  } else {
    // In-process transport: readiness arrives via the waker. Seed one
    // evaluation so already-buffered bytes are noticed.
    transport->SetWaker([this, id] { MarkReady(id); });
    MarkReady(id);
  }
  return id;
}

void Reactor::UpdateInterest(uint64_t id, uint32_t interest) {
  int fd = -1;
  Transport* transport = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    it->second.interest = interest;
    fd = it->second.fd;
    transport = it->second.transport;
  }
  (void)transport;
  if (fd >= 0) {
#ifdef TBM_REACTOR_EPOLL
    struct epoll_event ev;
    ev.events = ((interest & kTransportReadable) ? EPOLLIN : 0u) |
                ((interest & kTransportWritable) ? EPOLLOUT : 0u);
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
#endif
  } else {
    // Re-evaluate under the new mask — the transport may already be
    // ready in a direction we just started caring about.
    MarkReady(id);
  }
}

void Reactor::Deregister(uint64_t id) {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    entry = it->second;
    entries_.erase(it);
    pending_ready_.erase(id);
  }
  if (entry.fd >= 0) {
#ifdef TBM_REACTOR_EPOLL
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, entry.fd, nullptr);
#endif
  } else if (entry.transport != nullptr) {
    entry.transport->SetWaker(nullptr);
  }
}

void Reactor::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void Reactor::PostDelayed(std::chrono::milliseconds delay,
                          std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    timers_.push(Timer{std::chrono::steady_clock::now() + delay,
                       next_timer_seq_++, std::move(fn)});
  }
  Wake();
}

int Reactor::ComputeTimeoutMs() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pending_ready_.empty() || !posted_.empty()) return 0;
  if (timers_.empty()) return -1;
  auto now = std::chrono::steady_clock::now();
  if (timers_.top().when <= now) return 0;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                timers_.top().when - now)
                .count();
  return static_cast<int>(std::min<int64_t>(ms + 1, 60000));
}

void Reactor::WaitForEvents(int timeout_ms, std::vector<uint64_t>* out) {
#ifdef TBM_REACTOR_EPOLL
  struct epoll_event events[64];
  int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    uint64_t id = events[i].data.u64;
    if (id == 0) continue;  // Wake pipe; drained below.
    out->push_back(id);
  }
#else
  std::vector<struct pollfd> fds;
  std::vector<uint64_t> ids;
  fds.push_back({wake_fds_[0], POLLIN, 0});
  ids.push_back(0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : entries_) {
      if (entry.fd < 0) continue;
      short events = static_cast<short>(
          ((entry.interest & kTransportReadable) ? POLLIN : 0) |
          ((entry.interest & kTransportWritable) ? POLLOUT : 0));
      fds.push_back({entry.fd, events, 0});
      ids.push_back(id);
    }
  }
  int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n > 0) {
    for (size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents != 0) out->push_back(ids[i]);
    }
  }
#endif
  // Drain the wake pipe regardless of which backend reported it.
  if (wake_fds_[0] >= 0) {
    uint8_t buf[256];
    while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
    }
  }
}

void Reactor::Dispatch(uint64_t id) {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;  // Deregistered mid-batch.
    entry = it->second;
  }
  uint32_t ready = entry.transport->Poll();
  // A closed transport is "ready" in every interested direction: the
  // handler must run its I/O to observe the error and tear down.
  if (ready & kTransportClosed) ready |= kTransportReadable | kTransportWritable;
  if ((ready & kTransportReadable) && (entry.interest & kTransportReadable)) {
    entry.handler->OnReadable();
  }
  // Re-check registration: OnReadable may have deregistered itself.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    entry = it->second;
  }
  if ((ready & (kTransportWritable | kTransportClosed)) &&
      (entry.interest & kTransportWritable)) {
    entry.handler->OnWritable();
  }
}

void Reactor::RunExpired() {
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (timers_.empty() ||
          timers_.top().when > std::chrono::steady_clock::now()) {
        break;
      }
      fn = timers_.top().fn;
      timers_.pop();
    }
    fn();
  }
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void Reactor::Loop() {
  std::vector<uint64_t> ready;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) return;
    }
    ready.clear();
    WaitForEvents(ComputeTimeoutMs(), &ready);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) return;
      // Fold in waker-marked (in-process) entries.
      for (uint64_t id : pending_ready_) ready.push_back(id);
      pending_ready_.clear();
    }
    std::sort(ready.begin(), ready.end());
    ready.erase(std::unique(ready.begin(), ready.end()), ready.end());
    for (uint64_t id : ready) Dispatch(id);
    RunExpired();
  }
}

}  // namespace tbm::serve

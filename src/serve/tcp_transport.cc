#include "serve/tcp_transport.h"

#ifdef TBM_SERVE_TCP

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace tbm::serve {

namespace {

Status Errno(const char* op) {
  return Status::IOError(std::string(op) + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override { Close(); }

  Result<size_t> ReadSome(uint8_t* out, size_t n) override {
    int fd = fd_.load();
    if (fd < 0) return Status::IOError("transport closed");
    for (;;) {
      ssize_t r = ::recv(fd, out, n, 0);
      if (r > 0) return static_cast<size_t>(r);
      if (r == 0) return Status::IOError("transport closed");
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
      return Errno("recv");
    }
  }

  Result<size_t> WriteSome(ByteSpan data) override {
    int fd = fd_.load();
    if (fd < 0) return Status::IOError("transport closed");
    if (data.empty()) return size_t{0};
    for (;;) {
      ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      if (n >= 0) return static_cast<size_t>(n);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
      return Errno("send");
    }
  }

  uint32_t Poll() const override {
    int fd = fd_.load();
    if (fd < 0) return kTransportClosed | kTransportReadable;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN | POLLOUT;
    int rc = ::poll(&pfd, 1, 0);
    if (rc < 0) return 0;
    uint32_t ready = 0;
    if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) ready |= kTransportReadable;
    if (pfd.revents & POLLOUT) ready |= kTransportWritable;
    if (pfd.revents & (POLLHUP | POLLERR)) ready |= kTransportClosed;
    return ready;
  }

  void SetWaker(std::function<void()> waker) override {
    // fd-backed: readiness comes from the kernel via fd(); the
    // reactor polls/epolls it and never needs the waker.
    (void)waker;
  }

  int fd() const override { return fd_.load(); }

  void Close() override {
    int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
};

}  // namespace

Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  // Connect while still blocking (simple), then flip to non-blocking
  // for the transport's readiness-driven I/O.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetNonBlocking(fd);
  return std::unique_ptr<Transport>(new TcpTransport(fd));
}

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 256) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      SetNonBlocking(fd);
      return std::unique_ptr<Transport>(new TcpTransport(fd));
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace tbm::serve

#endif  // TBM_SERVE_TCP

#include "serve/tcp_transport.h"

#ifdef TBM_SERVE_TCP

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace tbm::serve {

namespace {

Status Errno(const char* op) {
  return Status::IOError(std::string(op) + ": " + std::strerror(errno));
}

void SetSendTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override { Close(); }

  Status Send(ByteSpan data) override {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_.load(), data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::ResourceExhausted(
            "send timed out: socket buffer full — slow consumer");
      }
      return Errno("send");
    }
    return Status::OK();
  }

  Status Recv(uint8_t* out, size_t n) override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::recv(fd_.load(), out + got, n - got, 0);
      if (r > 0) {
        got += static_cast<size_t>(r);
        continue;
      }
      if (r == 0) return Status::IOError("transport closed");
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return Status::OK();
  }

  void Close() override {
    int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
};

}  // namespace

Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port,
                                              const TcpOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetSendTimeout(fd, options.send_timeout);
  return std::unique_ptr<Transport>(new TcpTransport(fd));
}

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    uint16_t port, const TcpOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port), options));
}

Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      SetSendTimeout(fd, options_.send_timeout);
      return std::unique_ptr<Transport>(new TcpTransport(fd));
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace tbm::serve

#endif  // TBM_SERVE_TCP

#include "serve/client.h"

#include <utility>

#include "base/macros.h"

namespace tbm::serve {

Result<Response> MediaClient::RoundTrip(const Request& request) {
  TBM_RETURN_IF_ERROR(WriteFrame(*transport_, EncodeRequest(request)));
  TBM_ASSIGN_OR_RETURN(Bytes frame, ReadFrame(*transport_, kMaxFrameBytes));
  TBM_ASSIGN_OR_RETURN(Response response, DecodeResponse(frame));
  if (!response.status.ok()) return response.status;
  if (response.type != request.type) {
    return Status::Corruption(
        "response type " +
        std::string(RequestTypeToString(response.type)) +
        " does not match request " +
        std::string(RequestTypeToString(request.type)));
  }
  return response;
}

Result<OpenInfo> MediaClient::Open(const std::string& object_name) {
  Request request;
  request.type = RequestType::kOpen;
  request.object_name = object_name;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  session_id_ = response.open.session_id;
  return response.open;
}

Result<ReadBatch> MediaClient::Read(uint64_t max_elements) {
  Request request;
  request.type = RequestType::kRead;
  request.session_id = session_id_;
  request.max_elements = max_elements;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return std::move(response.read);
}

Result<uint64_t> MediaClient::Seek(uint64_t element) {
  Request request;
  request.type = RequestType::kSeek;
  request.session_id = session_id_;
  request.target_element = element;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.seek_position;
}

Result<SessionStatsWire> MediaClient::Stats() {
  Request request;
  request.type = RequestType::kStats;
  request.session_id = session_id_;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.stats;
}

Status MediaClient::Close() {
  Request request;
  request.type = RequestType::kClose;
  request.session_id = session_id_;
  auto response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return Status::OK();
}

}  // namespace tbm::serve

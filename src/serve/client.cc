#include "serve/client.h"

#include <utility>

#include "base/macros.h"

namespace tbm::serve {

Result<OpenInfo> MediaClient::Open(const std::string& object_name) {
  if (stream_ != nullptr) {
    return Status::FailedPrecondition("client already has a session");
  }
  TBM_ASSIGN_OR_RETURN(stream_, connection_->OpenStream(object_name));
  return stream_->info();
}

Result<ReadBatch> MediaClient::Read(uint64_t max_elements) {
  if (stream_ == nullptr) {
    return Status::FailedPrecondition("no open session");
  }
  return stream_->Read(max_elements);
}

Result<uint64_t> MediaClient::Seek(uint64_t element) {
  if (stream_ == nullptr) {
    return Status::FailedPrecondition("no open session");
  }
  return stream_->Seek(element);
}

Result<SessionStatsWire> MediaClient::Stats() {
  if (stream_ == nullptr) {
    return Status::FailedPrecondition("no open session");
  }
  return stream_->Stats();
}

Status MediaClient::Close() {
  if (stream_ == nullptr) return Status::OK();  // Closing unopened: no-op.
  Status status = stream_->Close();
  stream_.reset();
  return status;
}

Result<obs::MetricsSnapshot> MediaClient::Telemetry() {
  return connection_->Telemetry();
}

}  // namespace tbm::serve

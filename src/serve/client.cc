#include "serve/client.h"

#include <utility>

#include "base/macros.h"

namespace tbm::serve {

namespace {

const char* ClientSpanName(RequestType type) {
  switch (type) {
    case RequestType::kOpen:
      return "client.open";
    case RequestType::kRead:
      return "client.read";
    case RequestType::kSeek:
      return "client.seek";
    case RequestType::kStats:
      return "client.stats";
    case RequestType::kClose:
      return "client.close";
    case RequestType::kTelemetry:
      return "client.telemetry";
  }
  return "client.request";
}

}  // namespace

Result<Response> MediaClient::RoundTrip(Request request) {
  // The round-trip span covers encode + wire + server work + decode —
  // the client's view of request latency. Its id rides along as the
  // server's parent, so the server span nests inside it on the merged
  // timeline. Capture the current span first: passing it explicitly
  // keeps the span a child of whatever client code is running, while
  // the trace id pins it to this client's trace.
  uint64_t enclosing = obs::Tracer::CurrentSpanId();
  obs::ScopedSpan span(ClientSpanName(request.type), trace_id_, enclosing);
  if (span.span_id() != 0 && trace_id_ != 0) {
    request.trace.trace_id = trace_id_;
    request.trace.parent_span_id = span.span_id();
  }
  TBM_RETURN_IF_ERROR(WriteFrame(*transport_, EncodeRequest(request)));
  TBM_ASSIGN_OR_RETURN(Bytes frame, ReadFrame(*transport_, kMaxFrameBytes));
  TBM_ASSIGN_OR_RETURN(Response response, DecodeResponse(frame));
  if (!response.status.ok()) return response.status;
  if (response.type != request.type) {
    return Status::Corruption(
        "response type " +
        std::string(RequestTypeToString(response.type)) +
        " does not match request " +
        std::string(RequestTypeToString(request.type)));
  }
  return response;
}

Result<OpenInfo> MediaClient::Open(const std::string& object_name) {
  Request request;
  request.type = RequestType::kOpen;
  request.object_name = object_name;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  session_id_ = response.open.session_id;
  return response.open;
}

Result<ReadBatch> MediaClient::Read(uint64_t max_elements) {
  Request request;
  request.type = RequestType::kRead;
  request.session_id = session_id_;
  request.max_elements = max_elements;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return std::move(response.read);
}

Result<uint64_t> MediaClient::Seek(uint64_t element) {
  Request request;
  request.type = RequestType::kSeek;
  request.session_id = session_id_;
  request.target_element = element;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.seek_position;
}

Result<SessionStatsWire> MediaClient::Stats() {
  Request request;
  request.type = RequestType::kStats;
  request.session_id = session_id_;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return response.stats;
}

Status MediaClient::Close() {
  Request request;
  request.type = RequestType::kClose;
  request.session_id = session_id_;
  auto response = RoundTrip(request);
  if (!response.ok()) return response.status();
  return Status::OK();
}

Result<obs::MetricsSnapshot> MediaClient::Telemetry() {
  Request request;
  request.type = RequestType::kTelemetry;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(request));
  return std::move(response.telemetry);
}

}  // namespace tbm::serve

#include "serve/connection.h"

#include <utility>

#include "base/macros.h"

namespace tbm::serve {

namespace {

constexpr std::chrono::milliseconds kSendTimeout{5000};
constexpr std::chrono::milliseconds kResponseTimeout{30000};

const char* ClientSpanName(RequestType type) {
  switch (type) {
    case RequestType::kOpen:
      return "client.open";
    case RequestType::kRead:
      return "client.read";
    case RequestType::kSeek:
      return "client.seek";
    case RequestType::kStats:
      return "client.stats";
    case RequestType::kClose:
      return "client.close";
    case RequestType::kTelemetry:
      return "client.telemetry";
    case RequestType::kWindow:
      return "client.window";
  }
  return "client.request";
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection

std::unique_ptr<Connection> Connect(std::unique_ptr<Transport> transport) {
  return std::unique_ptr<Connection>(new Connection(std::move(transport)));
}

Connection::Connection(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)), trace_id_(obs::NewTraceId()) {
  pump_ = std::thread([this] { Pump(); });
}

Connection::~Connection() {
  // Closing the transport fails the pump's next read, which runs
  // Fail() and wakes every waiter before the thread exits.
  transport_->Close();
  if (pump_.joinable()) pump_.join();
}

void Connection::Pump() {
  FrameAssembler assembler(kMaxFrameBytes);
  uint8_t buf[16384];
  for (;;) {
    auto n = transport_->ReadSome(buf, sizeof(buf));
    if (!n.ok()) {
      Fail(n.status());
      return;
    }
    if (*n == 0) {
      // Nothing buffered: park until the server sends (or the
      // transport closes, which reports readable).
      (void)WaitReadable(*transport_, std::chrono::milliseconds(100));
      continue;
    }
    assembler.Ingest(ByteSpan(buf, *n));
    for (;;) {
      auto next = assembler.Next();
      if (!next.ok()) {
        Fail(next.status());
        return;
      }
      if (!next->has_value()) break;
      Frame frame = std::move(**next);
      std::shared_ptr<Inbox> inbox;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = inboxes_.find(frame.header.stream_id);
        if (it != inboxes_.end()) inbox = it->second;
      }
      if (inbox == nullptr) continue;  // Stream already forgotten.
      {
        std::lock_guard<std::mutex> lock(inbox->mu);
        inbox->payloads.push_back(std::move(frame.payload));
      }
      inbox->cv.notify_all();
    }
  }
}

void Connection::Fail(Status status) {
  std::vector<std::shared_ptr<Inbox>> inboxes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) {
      status_ = status.ok() ? Status::IOError("connection closed") : status;
    }
    inboxes.reserve(inboxes_.size());
    for (auto& [id, inbox] : inboxes_) inboxes.push_back(inbox);
  }
  for (auto& inbox : inboxes) {
    // Lock before notifying: a waiter between its predicate check and
    // its sleep would otherwise miss the wakeup forever.
    std::lock_guard<std::mutex> lock(inbox->mu);
    inbox->cv.notify_all();
  }
}

Status Connection::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

Status Connection::SendWire(Bytes wire) {
  std::lock_guard<std::mutex> lock(write_mu_);
  return BlockingSend(*transport_, wire, kSendTimeout);
}

std::shared_ptr<Connection::Inbox> Connection::InboxFor(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = inboxes_[stream_id];
  if (slot == nullptr) slot = std::make_shared<Inbox>();
  return slot;
}

void Connection::ForgetStream(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(mu_);
  inboxes_.erase(stream_id);
}

Result<Response> Connection::RoundTrip(uint64_t stream_id, Request request,
                                       size_t* payload_bytes) {
  // The round-trip span covers encode + wire + server work + decode —
  // the client's view of request latency. Its id rides along as the
  // server's parent, so the server span nests inside it on the merged
  // timeline.
  uint64_t enclosing = obs::Tracer::CurrentSpanId();
  obs::ScopedSpan span(ClientSpanName(request.type), trace_id_, enclosing);
  if (span.span_id() != 0 && trace_id_ != 0) {
    request.trace.trace_id = trace_id_;
    request.trace.parent_span_id = span.span_id();
  }

  auto inbox = InboxFor(stream_id);
  FrameHeader header;
  header.version = 2;
  header.stream_id = stream_id;
  TBM_RETURN_IF_ERROR(SendWire(EncodeFrame(header, EncodeRequest(request))));

  Bytes payload;
  {
    std::unique_lock<std::mutex> lock(inbox->mu);
    bool got = inbox->cv.wait_for(lock, kResponseTimeout, [&] {
      if (!inbox->payloads.empty()) return true;
      std::lock_guard<std::mutex> state(mu_);
      return !status_.ok();
    });
    if (!inbox->payloads.empty()) {
      payload = std::move(inbox->payloads.front());
      inbox->payloads.pop_front();
    } else {
      if (got) {
        std::lock_guard<std::mutex> state(mu_);
        return status_;
      }
      return Status::ResourceExhausted(
          "timed out waiting for response on stream " +
          std::to_string(stream_id));
    }
  }
  if (payload_bytes != nullptr) *payload_bytes = payload.size();

  TBM_ASSIGN_OR_RETURN(Response response, DecodeResponse(payload));
  if (!response.status.ok()) return response.status;
  if (response.type != request.type) {
    return Status::Corruption(
        "response type " + std::string(RequestTypeToString(response.type)) +
        " does not match request " +
        std::string(RequestTypeToString(request.type)));
  }
  return response;
}

Status Connection::SendOneWay(uint64_t stream_id, const Request& request) {
  FrameHeader header;
  header.version = 2;
  header.stream_id = stream_id;
  return SendWire(EncodeFrame(header, EncodeRequest(request)));
}

Result<std::unique_ptr<StreamHandle>> Connection::OpenStream(
    const std::string& object_name, StreamQos qos) {
  TBM_RETURN_IF_ERROR(ok());
  uint64_t stream_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stream_id = next_stream_id_++;
  }
  Request request;
  request.type = RequestType::kOpen;
  request.object_name = object_name;
  request.qos = qos;
  auto response = RoundTrip(stream_id, std::move(request));
  if (!response.ok()) {
    ForgetStream(stream_id);
    return response.status();
  }
  return std::unique_ptr<StreamHandle>(
      new StreamHandle(this, stream_id, qos, response->open));
}

Result<obs::MetricsSnapshot> Connection::Telemetry() {
  TBM_RETURN_IF_ERROR(ok());
  // TELEMETRY rides the control pseudo-stream (id 0); serialize so
  // concurrent scrapes cannot steal each other's response.
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  Request request;
  request.type = RequestType::kTelemetry;
  TBM_ASSIGN_OR_RETURN(Response response, RoundTrip(0, std::move(request)));
  return std::move(response.telemetry);
}

// ---------------------------------------------------------------------------
// StreamHandle

StreamHandle::~StreamHandle() { (void)Close(); }

Result<ReadBatch> StreamHandle::Read(uint64_t max_elements) {
  if (closed_) return Status::FailedPrecondition("stream is closed");
  Request request;
  request.type = RequestType::kRead;
  request.session_id = info_.session_id;
  request.max_elements = max_elements;
  size_t payload_bytes = 0;
  TBM_ASSIGN_OR_RETURN(
      Response response,
      connection_->RoundTrip(stream_id_, std::move(request), &payload_bytes));
  if (qos_.window_bytes > 0) {
    // Replenish what this batch consumed: the server debited the
    // response frame's payload size from the window before sending.
    (void)GrantWindow(payload_bytes);
  }
  return std::move(response.read);
}

Result<uint64_t> StreamHandle::Seek(uint64_t element) {
  if (closed_) return Status::FailedPrecondition("stream is closed");
  Request request;
  request.type = RequestType::kSeek;
  request.session_id = info_.session_id;
  request.target_element = element;
  TBM_ASSIGN_OR_RETURN(Response response,
                       connection_->RoundTrip(stream_id_, std::move(request)));
  return response.seek_position;
}

Result<SessionStatsWire> StreamHandle::Stats() {
  if (closed_) return Status::FailedPrecondition("stream is closed");
  Request request;
  request.type = RequestType::kStats;
  request.session_id = info_.session_id;
  TBM_ASSIGN_OR_RETURN(Response response,
                       connection_->RoundTrip(stream_id_, std::move(request)));
  return response.stats;
}

Status StreamHandle::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  Request request;
  request.type = RequestType::kClose;
  request.session_id = info_.session_id;
  auto response = connection_->RoundTrip(stream_id_, std::move(request));
  connection_->ForgetStream(stream_id_);
  if (!response.ok()) return response.status();
  return Status::OK();
}

Status StreamHandle::GrantWindow(uint64_t bytes) {
  if (closed_) return Status::FailedPrecondition("stream is closed");
  if (bytes == 0) return Status::OK();
  Request request;
  request.type = RequestType::kWindow;
  request.session_id = info_.session_id;
  request.window_delta = bytes;
  return connection_->SendOneWay(stream_id_, request);
}

}  // namespace tbm::serve

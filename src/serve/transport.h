#ifndef TBM_SERVE_TRANSPORT_H_
#define TBM_SERVE_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm::serve {

/// A bidirectional, ordered, reliable byte channel — the substrate the
/// wire protocol frames run over. Implementations: the deterministic
/// in-process loopback below (tests, benches, `tbmctl serve`) and a
/// TCP socket (serve/tcp_transport.h, behind TBM_SERVE_TCP).
///
/// Send/Recv are blocking. A bounded peer buffer makes Send the
/// backpressure point: a slow consumer fills it, and Send fails with
/// ResourceExhausted once the send timeout elapses — the signal the
/// server uses to detect (and eventually evict) slow clients, rather
/// than buffering unboundedly. A closed channel fails with IOError.
///
/// One sender and one receiver per direction: concurrent Send *or*
/// concurrent Recv on the same endpoint race application-level frame
/// boundaries by design (each endpoint is owned by one session).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends all of `data`, blocking while the peer's buffer is full.
  /// ResourceExhausted when the configured send timeout expires first
  /// (the stream position is then indeterminate — callers should
  /// treat the connection as lost); IOError when closed.
  virtual Status Send(ByteSpan data) = 0;

  /// Receives exactly `n` bytes into `out`, blocking until they
  /// arrive. IOError on close/EOF (clean or mid-read).
  virtual Status Recv(uint8_t* out, size_t n) = 0;

  /// Closes both directions; concurrent blocked Send/Recv calls (and
  /// all future ones) fail. Idempotent, callable from any thread —
  /// this is how a server unblocks a handler parked in Recv.
  virtual void Close() = 0;
};

/// Tuning of an in-process loopback pair.
struct LoopbackOptions {
  /// Per-direction buffer capacity, bytes. The smaller this is, the
  /// earlier a slow consumer backpressures its producer.
  size_t buffer_bytes = 1 << 20;

  /// How long Send waits for buffer space before giving up.
  std::chrono::milliseconds send_timeout{1000};
};

/// Creates a connected pair of in-process endpoints: bytes sent on one
/// arrive on the other, each direction buffered to
/// `options.buffer_bytes`. Deterministic and dependency-free — the
/// transport tests, the concurrency tests, and the serve bench all run
/// on this.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateLoopbackPair(const LoopbackOptions& options = {});

/// Writes one protocol frame: u32 length prefix + payload.
Status WriteFrame(Transport& transport, ByteSpan payload);

/// Reads one protocol frame payload. Corruption when the length
/// prefix exceeds `max_frame` (the peer is malformed or hostile);
/// transport errors pass through.
Result<Bytes> ReadFrame(Transport& transport,
                        uint32_t max_frame = 64u << 20);

}  // namespace tbm::serve

#endif  // TBM_SERVE_TRANSPORT_H_

#ifndef TBM_SERVE_TRANSPORT_H_
#define TBM_SERVE_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm::serve {

/// Readiness bits reported by Transport::Poll().
enum TransportReady : uint32_t {
  /// Bytes are available to read — or the channel reached EOF/close,
  /// in which case ReadSome reports IOError. Either way a reader that
  /// sees this bit can make progress (data or a definitive error).
  kTransportReadable = 1u << 0,
  /// At least one byte of buffer space is available to write.
  kTransportWritable = 1u << 1,
  /// The channel is closed (locally or by the peer). Usually reported
  /// together with kTransportReadable so readers discover the EOF.
  kTransportClosed = 1u << 2,
};

/// A bidirectional, ordered, reliable byte channel — the substrate the
/// wire protocol frames run over. Implementations: the deterministic
/// in-process loopback below (tests, benches, `tbmctl serve`) and a
/// non-blocking TCP socket (serve/tcp_transport.h, behind
/// TBM_SERVE_TCP).
///
/// The interface is readiness-driven and never blocks: ReadSome /
/// WriteSome transfer what they can *right now* and return 0 when
/// they would block. Callers discover when to retry either by
/// polling (Poll / WaitReadable / WaitWritable) or by registering
/// with a serve::Reactor, which multiplexes many transports on one
/// loop — via epoll for fd-backed transports (fd() >= 0) and via the
/// waker for in-process ones (fd() < 0).
///
/// One reader and one writer per endpoint at a time: concurrent
/// ReadSome *or* concurrent WriteSome on the same endpoint race byte
/// order by design (each endpoint is owned by one connection pump).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads up to `n` bytes into `out`. Returns the count transferred;
  /// 0 means "would block — no bytes available yet". IOError once the
  /// channel is closed and all buffered bytes have been drained.
  virtual Result<size_t> ReadSome(uint8_t* out, size_t n) = 0;

  /// Writes a prefix of `data`. Returns the count accepted; 0 means
  /// "would block — peer buffer full". IOError when closed. Partial
  /// writes are expected: callers keep the unwritten suffix and
  /// continue when the transport becomes writable again (see
  /// framing::FrameWriter).
  virtual Result<size_t> WriteSome(ByteSpan data) = 0;

  /// Current readiness, a bitmask of TransportReady. A snapshot —
  /// readiness may change the instant this returns — but transitions
  /// from not-ready to ready always fire the waker, so
  /// "Poll, then sleep until woken" cannot miss an edge.
  virtual uint32_t Poll() const = 0;

  /// Installs the single waker callback, replacing any previous one
  /// (nullptr clears it). The waker fires on every state change that
  /// could make progress possible: bytes arriving, buffer space
  /// freeing, or close — from whichever thread caused the change, and
  /// never while an internal transport lock is held. Spurious wakes
  /// are allowed; wakers must be cheap and must not call back into
  /// the transport. fd-backed transports may ignore the waker
  /// (readiness comes from the kernel via poll/epoll on fd()).
  virtual void SetWaker(std::function<void()> waker) = 0;

  /// Kernel file descriptor for epoll/poll registration, or -1 for
  /// in-process transports (which signal readiness via the waker).
  virtual int fd() const { return -1; }

  /// Blocks the calling thread until Poll() reports one of the `want`
  /// readiness bits (or the channel closes), or `timeout` elapses.
  /// Returns true when a wanted bit is up; close counts as ready for
  /// reads (the reader must observe the EOF error) but not writes.
  /// The base implementation parks fd-backed transports in ::poll and
  /// sleep-polls in short slices otherwise; implementations with a
  /// cheaper native wait (the loopback parks on a condition variable)
  /// override it. Only the blocking helpers below and client pumps
  /// call this — the server never blocks, it uses the Reactor.
  virtual bool WaitFor(uint32_t want, std::chrono::milliseconds timeout);

  /// Closes both directions; in-flight and future ReadSome/WriteSome
  /// observe IOError once drained. Idempotent, callable from any
  /// thread — this is how a server unsticks a stalled connection.
  virtual void Close() = 0;
};

/// Tuning of an in-process loopback pair.
struct LoopbackOptions {
  /// Per-direction buffer capacity, bytes. The smaller this is, the
  /// earlier a slow consumer backpressures its producer (WriteSome
  /// returns 0, the flow-control window drains, and the server's
  /// stall timer starts ticking).
  size_t buffer_bytes = 1 << 20;
};

/// Creates a connected pair of in-process endpoints: bytes sent on one
/// arrive on the other, each direction buffered to
/// `options.buffer_bytes`. Deterministic and dependency-free — the
/// transport tests, the multiplex tests, and the reactor bench all
/// run on this.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateLoopbackPair(const LoopbackOptions& options = {});

/// Blocks until Poll() reports readable (or closed), or `timeout`
/// elapses. Returns true when readable. Convenience wrapper over
/// Transport::WaitFor — fd-backed transports park in ::poll, the
/// loopback parks on its channel's condition variable.
/// Test/tool helper — the server never blocks, it uses the Reactor.
bool WaitReadable(Transport& transport, std::chrono::milliseconds timeout);

/// Blocks until Poll() reports writable (or closed), or `timeout`
/// elapses. Returns true when writable.
bool WaitWritable(Transport& transport, std::chrono::milliseconds timeout);

/// Blocking helpers over the non-blocking interface, for tests,
/// tools, and the v1 single-stream compat path. `timeout` bounds the
/// *total* wait; ResourceExhausted when it elapses with the transfer
/// incomplete (the stream position is then indeterminate — callers
/// should treat the connection as lost).
Status BlockingSend(Transport& transport, ByteSpan data,
                    std::chrono::milliseconds timeout);
Status BlockingRecv(Transport& transport, uint8_t* out, size_t n,
                    std::chrono::milliseconds timeout);

/// Writes one v1 protocol frame: u32 length prefix + payload.
Status WriteFrame(Transport& transport, ByteSpan payload,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(5000));

/// Reads one protocol frame payload (the raw body — v1 callers decode
/// it directly; v2-aware callers hand it to framing::DecodeFrameBody).
/// Corruption when the length prefix exceeds `max_frame` (the peer is
/// malformed or hostile); transport errors pass through.
Result<Bytes> ReadFrame(Transport& transport, uint32_t max_frame = 64u << 20,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(30000));

}  // namespace tbm::serve

#endif  // TBM_SERVE_TRANSPORT_H_

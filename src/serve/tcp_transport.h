#ifndef TBM_SERVE_TCP_TRANSPORT_H_
#define TBM_SERVE_TCP_TRANSPORT_H_

/// TCP transport for the serve protocol, compiled only when the
/// TBM_SERVE_TCP cmake option is ON (the default). Everything in the
/// serve layer — protocol, sessions, server, reactor — is
/// transport-agnostic; this file is the only place that touches
/// sockets, so platforms without POSIX networking just switch the
/// option off and keep the loopback transport.
///
/// Sockets are non-blocking (O_NONBLOCK): ReadSome/WriteSome map
/// EAGAIN to "would block" (0), readiness comes from the kernel via
/// fd() — the reactor registers it with epoll/poll — and the blocking
/// helpers in serve/transport.h layer timeouts on top for tools and
/// tests. There are no socket-level send timeouts anymore; slow-client
/// detection is the server's stall timer.

#ifdef TBM_SERVE_TCP

#include <cstdint>
#include <memory>
#include <string>

#include "base/result.h"
#include "serve/transport.h"

namespace tbm::serve {

/// Connects to `host:port` (IPv4 dotted quad). The returned transport
/// is non-blocking.
Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port);

/// A listening IPv4 socket on 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens. `port` 0 picks an ephemeral port (see port()).
  static Result<std::unique_ptr<TcpListener>> Listen(uint16_t port);

  ~TcpListener();

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Blocks for the next connection; the accepted transport is
  /// non-blocking. IOError once Close()d.
  Result<std::unique_ptr<Transport>> Accept();

  /// Closes the listening socket, unblocking Accept.
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_TCP
#endif  // TBM_SERVE_TCP_TRANSPORT_H_

#ifndef TBM_SERVE_TCP_TRANSPORT_H_
#define TBM_SERVE_TCP_TRANSPORT_H_

/// TCP transport for the serve protocol, compiled only when the
/// TBM_SERVE_TCP cmake option is ON (the default). Everything in the
/// serve layer — protocol, sessions, server — is transport-agnostic;
/// this file is the only place that touches sockets, so platforms
/// without POSIX networking just switch the option off and keep the
/// loopback transport.

#ifdef TBM_SERVE_TCP

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "base/result.h"
#include "serve/transport.h"

namespace tbm::serve {

struct TcpOptions {
  /// SO_SNDTIMEO: how long a send may block on a full socket buffer
  /// before failing ResourceExhausted (the slow-client signal).
  std::chrono::milliseconds send_timeout{1000};
};

/// Connects to `host:port`. Blocking sockets with a send timeout.
Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              uint16_t port,
                                              const TcpOptions& options = {});

/// A listening IPv4 socket on 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens. `port` 0 picks an ephemeral port (see port()).
  static Result<std::unique_ptr<TcpListener>> Listen(
      uint16_t port, const TcpOptions& options = {});

  ~TcpListener();

  /// The bound port.
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. IOError once Close()d.
  Result<std::unique_ptr<Transport>> Accept();

  /// Closes the listening socket, unblocking Accept.
  void Close();

 private:
  TcpListener(int fd, uint16_t port, TcpOptions options)
      : fd_(fd), port_(port), options_(options) {}

  int fd_;
  uint16_t port_;
  TcpOptions options_;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_TCP
#endif  // TBM_SERVE_TCP_TRANSPORT_H_

#include "serve/server.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "base/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "playback/streaming.h"

namespace tbm::serve {

namespace {

/// Process-wide serve metrics.
struct ServeMetrics {
  obs::Gauge* sessions;     ///< Open streams (one session each).
  obs::Gauge* connections;  ///< Adopted transports.
  obs::Counter* admitted;
  obs::Counter* denied;
  obs::Counter* degraded;
  obs::Counter* evicted;
  obs::Histogram* request_us;
  /// Requests queued behind a stream's outstanding worker task at the
  /// moment they arrive — the per-stream backlog, the multiplexed
  /// successor of the old per-connection queue-depth signal.
  obs::Histogram* stream_queue_depth;

  static const ServeMetrics& Get() {
    static const ServeMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return ServeMetrics{registry.gauge("serve.sessions"),
                          registry.gauge("serve.connections"),
                          registry.counter("serve.admitted"),
                          registry.counter("serve.denied"),
                          registry.counter("serve.degraded"),
                          registry.counter("serve.evicted"),
                          registry.histogram("serve.request_us"),
                          registry.histogram("serve.stream_queue_depth")};
    }();
    return metrics;
  }
};

/// Per-QoS-class SLO instruments, labeled `{qos=<class>}` in the
/// registry. A class is the stream's stride tier: s1 is full
/// fidelity, s2/s4/s8 the degradation ladder, s16plus anything
/// coarser — so a dashboard shows whether degraded streams still
/// meet their (reduced) contracts, not just a blended average.
struct QosSlice {
  obs::Counter* admitted;
  obs::Counter* degraded;
  obs::Counter* evicted;
  obs::Counter* deadline_miss;
  obs::Counter* read_bytes;
  obs::Histogram* read_us;  ///< READ receipt -> response sent, µs.
};

const QosSlice& QosForStride(uint32_t stride) {
  static constexpr const char* kClasses[] = {"s1", "s2", "s4", "s8",
                                             "s16plus"};
  static const std::array<QosSlice, 5> slices = [] {
    auto& registry = obs::Registry::Global();
    std::array<QosSlice, 5> out;
    for (size_t i = 0; i < out.size(); ++i) {
      const char* qos = kClasses[i];
      out[i] = QosSlice{registry.counter("serve.admitted", "qos", qos),
                        registry.counter("serve.degraded", "qos", qos),
                        registry.counter("serve.evicted", "qos", qos),
                        registry.counter("serve.deadline_miss", "qos", qos),
                        registry.counter("serve.read_bytes", "qos", qos),
                        registry.histogram("serve.read_us", "qos", qos)};
    }
    return out;
  }();
  if (stride <= 1) return slices[0];
  if (stride == 2) return slices[1];
  if (stride <= 4) return slices[2];
  if (stride <= 8) return slices[3];
  return slices[4];
}

const char* ServerSpanName(RequestType type) {
  switch (type) {
    case RequestType::kOpen:
      return "serve.open";
    case RequestType::kRead:
      return "serve.read";
    case RequestType::kSeek:
      return "serve.seek";
    case RequestType::kStats:
      return "serve.stats";
    case RequestType::kClose:
      return "serve.close";
    case RequestType::kTelemetry:
      return "serve.telemetry";
    case RequestType::kWindow:
      return "serve.window";
  }
  return "serve.request";
}

uint64_t ElapsedUsSince(int64_t start_ns) {
  return static_cast<uint64_t>(
             std::max<int64_t>(0, obs::NowTicksNs() - start_ns)) /
         1000;
}

}  // namespace

// ---------------------------------------------------------------------------
// ByteBudget

ByteBudget::ByteBudget(double rate, uint64_t burst)
    : rate_(rate),
      burst_(static_cast<double>(burst)),
      tokens_(static_cast<double>(burst)),
      last_(std::chrono::steady_clock::now()) {}

void ByteBudget::Refill() {
  auto now = std::chrono::steady_clock::now();
  double elapsed = std::chrono::duration<double>(now - last_).count();
  last_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
}

bool ByteBudget::TryAcquire(uint64_t bytes) {
  if (rate_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Refill();
  double cost = static_cast<double>(bytes);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

bool ByteBudget::AcquireWithin(uint64_t bytes,
                               std::chrono::milliseconds timeout) {
  if (rate_ <= 0) return true;
  auto deadline = std::chrono::steady_clock::now() + timeout;
  double cost = static_cast<double>(bytes);
  for (;;) {
    std::chrono::milliseconds nap{1};
    {
      std::lock_guard<std::mutex> lock(mu_);
      Refill();
      if (tokens_ >= cost) {
        tokens_ -= cost;
        return true;
      }
      // Sleep roughly until the deficit refills (bounded below).
      double deficit = cost - tokens_;
      nap = std::chrono::milliseconds(std::max<int64_t>(
          1, static_cast<int64_t>(1000.0 * deficit / std::max(rate_, 1.0))));
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    std::this_thread::sleep_for(
        std::min<std::chrono::nanoseconds>(nap, deadline - now));
  }
}

void ByteBudget::ForceAcquire(uint64_t bytes) {
  if (rate_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Refill();
  tokens_ -= static_cast<double>(bytes);
}

// ---------------------------------------------------------------------------
// MediaServer::Connection

/// One adopted connection: the transport, inbound frame assembly, the
/// outbound writer, and the stream table. Everything here is owned by
/// the reactor loop thread; the struct doubles as the reactor handler
/// for its transport.
struct MediaServer::Connection final : Reactor::Handler {
  MediaServer* server = nullptr;
  uint64_t id = 0;          ///< Key in connections_.
  uint64_t reactor_id = 0;  ///< Registration with the reactor.
  std::shared_ptr<Transport> transport;
  FrameAssembler assembler;
  FrameWriter writer;
  std::map<uint64_t, std::unique_ptr<Stream>> streams;
  /// Priority round-robin of streams with queued data frames. Entries
  /// are stream ids and may be stale (stream removed since enqueue);
  /// the scheduler validates on pop.
  std::array<std::deque<uint64_t>, 8> rr;
  uint32_t interest = kTransportReadable;
  bool pace_timer_armed = false;
  /// Write-progress tracking for slow-client detection: bytes the
  /// writer has handed to the transport, and the last sweep's marker.
  uint64_t total_flushed = 0;
  uint64_t progress_marker = 0;
  std::chrono::steady_clock::time_point progress_stamp{};

  void OnReadable() override { server->OnConnReadable(this); }
  void OnWritable() override { server->OnConnWritable(this); }
};

// ---------------------------------------------------------------------------
// MediaServer

MediaServer::MediaServer(const MediaDatabase* db, ServeConfig config)
    : db_(db),
      config_(config),
      admission_(config.capacity_bytes_per_second, config.admission_policy),
      budget_(config.capacity_bytes_per_second,
              static_cast<uint64_t>(
                  std::max(1.0, config.capacity_bytes_per_second / 4))),
      worker_pool_(std::max(1, config.worker_threads)),
      io_pool_(std::max(1, config.io_threads)) {
  config_.read_options.pool = &io_pool_;
  // The stall sweep re-arms itself for the server's lifetime; it is
  // the slow-client detector (the reactor never blocks on a send).
  auto sweep = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(10), config_.stall_timeout / 4);
  reactor_.PostDelayed(sweep, [this] { CheckStalls(); });
}

MediaServer::~MediaServer() { Stop(); }

Status MediaServer::Serve(std::unique_ptr<Transport> transport) {
  if (stopping_.load(std::memory_order_acquire)) {
    transport->Close();
    return Status::FailedPrecondition("server is stopping");
  }
  size_t cap = config_.max_connections != 0 ? config_.max_connections
                                            : config_.max_sessions;
  if (active_connections_.fetch_add(1) >= cap) {
    active_connections_.fetch_sub(1);
    transport->Close();
    return Status::ResourceExhausted("connection table full (" +
                                     std::to_string(cap) + ")");
  }
  // The transport crosses to the loop thread in a shared_ptr because
  // std::function requires copyable captures; Connection takes it over.
  std::shared_ptr<Transport> shared(std::move(transport));
  reactor_.Post([this, shared] {
    if (stopping_.load(std::memory_order_acquire)) {
      shared->Close();
      active_connections_.fetch_sub(1);
      return;
    }
    auto conn = std::make_unique<Connection>();
    conn->server = this;
    conn->id = next_conn_id_.fetch_add(1);
    conn->transport = shared;
    Connection* raw = conn.get();
    connections_[raw->id] = std::move(conn);
    ServeMetrics::Get().connections->Add(1);
    raw->reactor_id =
        reactor_.Register(raw->transport.get(), raw, raw->interest);
  });
  return Status::OK();
}

void MediaServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    reactor_.Stop();
    return;
  }
  // Tear every connection down on the loop, then stop the loop.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto latch = std::make_shared<Latch>();
  reactor_.Post([this, latch] {
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it != connections_.end()) {
        TeardownConnection(it->second.get(), "server stopping");
      }
    }
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->done = true;
    }
    latch->cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->done; });
  }
  reactor_.Stop();
}

// ---------------------------------------------------------------------------
// Inbound path (loop thread)

void MediaServer::OnConnReadable(Connection* conn) {
  uint8_t buf[16384];
  for (;;) {
    auto n = conn->transport->ReadSome(buf, sizeof(buf));
    if (!n.ok()) {
      // EOF or connection error: streams still open did not finish.
      TeardownConnection(conn, "connection lost before end of stream");
      return;
    }
    if (*n == 0) break;  // Drained for now.
    conn->assembler.Ingest(ByteSpan(buf, *n));
    for (;;) {
      auto next = conn->assembler.Next();
      if (!next.ok()) {
        // Unframeable byte stream (hostile or corrupt input): there
        // is no frame boundary to resynchronize on. Drop the client.
        TeardownConnection(conn, "unframeable input");
        return;
      }
      if (!next->has_value()) break;
      if (!ProcessFrame(conn, std::move(**next))) return;
    }
  }
  PumpWrites(conn);
}

void MediaServer::OnConnWritable(Connection* conn) { PumpWrites(conn); }

bool MediaServer::ProcessFrame(Connection* conn, Frame frame) {
  stat_requests_.fetch_add(1);
  int64_t received_ns = obs::NowTicksNs();
  const uint8_t version = frame.header.version;
  const uint64_t sid = frame.header.stream_id;

  auto decoded = DecodeRequest(frame.payload);
  if (!decoded.ok()) {
    // Malformed payload on an intact frame boundary: report on the
    // stream, keep the connection.
    Response response;
    response.status = decoded.status();
    EnqueueControl(conn, version, sid, response, received_ns);
    return true;
  }
  Request request = std::move(*decoded);

  switch (request.type) {
    case RequestType::kWindow: {
      // One-way flow-control credit: never queued behind a busy
      // stream, never answered. Unknown or uncontrolled streams
      // ignore it (the client may credit a stream the server already
      // closed — that is a race, not an error).
      auto it = conn->streams.find(sid);
      if (it != conn->streams.end() && it->second->flow_controlled) {
        Stream* stream = it->second.get();
        int64_t delta = request.window_delta >
                                static_cast<uint64_t>(
                                    std::numeric_limits<int64_t>::max())
                            ? std::numeric_limits<int64_t>::max()
                            : static_cast<int64_t>(request.window_delta);
        if (stream->window > std::numeric_limits<int64_t>::max() - delta) {
          stream->window = std::numeric_limits<int64_t>::max();
        } else {
          stream->window += delta;
        }
        stream->stall_since = {};
        if (!stream->data_frames.empty()) EnterRoundRobin(conn, stream);
      }
      return true;
    }
    case RequestType::kTelemetry: {
      // Needs no stream: a scraper connects, asks, and hangs up.
      const TraceContext& trace = request.trace;
      obs::ScopedSpan span(ServerSpanName(request.type), trace.trace_id,
                           trace.present() ? trace.parent_span_id : 0);
      Response response;
      response.type = RequestType::kTelemetry;
      response.telemetry = obs::Registry::Global().Snapshot();
      EnqueueControl(conn, version, sid, response, received_ns);
      return true;
    }
    case RequestType::kOpen: {
      Response response;
      response.type = RequestType::kOpen;
      if (conn->streams.count(sid) != 0) {
        // v1 has exactly one implicit stream, so a second OPEN keeps
        // the PR 5 wording; v2 chose a stream id already in use.
        response.status =
            version == 1
                ? Status::FailedPrecondition(
                      "connection already has a session")
                : Status::InvalidArgument("duplicate stream id " +
                                          std::to_string(sid));
        EnqueueControl(conn, version, sid, response, received_ns);
        return true;
      }
      if (conn->streams.size() >= config_.max_streams_per_connection) {
        response.status = Status::ResourceExhausted(
            "stream table full (" +
            std::to_string(config_.max_streams_per_connection) +
            " per connection)");
        EnqueueControl(conn, version, sid, response, received_ns);
        return true;
      }
      if (active_streams_.load() >= config_.max_sessions) {
        stat_denied_.fetch_add(1);
        ServeMetrics::Get().denied->Add();
        response.status = Status::ResourceExhausted(
            "session table full (" + std::to_string(config_.max_sessions) +
            ")");
        EnqueueControl(conn, version, sid, response, received_ns);
        return true;
      }
      auto stream = std::make_unique<Stream>();
      stream->id = sid;
      stream->version = version;
      stream->priority = std::min<uint8_t>(request.qos.priority, 7);
      stream->flow_controlled = version == 2 && request.qos.window_bytes > 0;
      stream->window = static_cast<int64_t>(
          std::min<uint64_t>(request.qos.window_bytes,
                             std::numeric_limits<int64_t>::max()));
      stream->busy = true;  // The OPEN worker task is the first driver.
      conn->streams[sid] = std::move(stream);
      active_streams_.fetch_add(1);
      uint64_t conn_id = conn->id;
      worker_pool_.Submit([this, conn_id, sid, request = std::move(request),
                           received_ns]() mutable {
        RunOpen(conn_id, sid, std::move(request), received_ns);
      });
      return true;
    }
    default: {
      auto it = conn->streams.find(sid);
      if (it == conn->streams.end()) {
        Response response;
        response.type = request.type;
        if (request.type != RequestType::kClose) {
          response.status = Status::FailedPrecondition("no open session");
        }  // Closing an unopened stream is a no-op, like PR 5's CLOSE.
        EnqueueControl(conn, version, sid, response, received_ns);
        return true;
      }
      ExecuteOrQueue(conn, it->second.get(), std::move(request), received_ns);
      return true;
    }
  }
}

void MediaServer::ExecuteOrQueue(Connection* conn, Stream* stream,
                                 Request request, int64_t received_ns) {
  if (stream->busy) {
    // Sessions are single-driver: one outstanding worker task per
    // stream. Later requests wait their turn here.
    stream->pending.emplace_back(std::move(request), received_ns);
    ServeMetrics::Get().stream_queue_depth->Record(stream->pending.size());
    return;
  }
  Execute(conn, stream, request, received_ns);
}

void MediaServer::Execute(Connection* conn, Stream* stream,
                          const Request& request, int64_t received_ns) {
  Response response;
  response.type = request.type;
  Session* session = stream->session.get();

  // Every post-OPEN verb must address the session on this stream.
  if (session != nullptr && request.session_id != 0 &&
      request.session_id != session->id()) {
    response.status = Status::InvalidArgument(
        "session id " + std::to_string(request.session_id) +
        " does not match this connection's session " +
        std::to_string(session->id()));
    EnqueueControl(conn, stream->version, stream->id, response, received_ns);
    return;
  }

  const TraceContext& trace = request.trace;
  switch (request.type) {
    case RequestType::kRead: {
      if (session == nullptr) {
        response.status = Status::FailedPrecondition("no open session");
        EnqueueControl(conn, stream->version, stream->id, response,
                       received_ns);
        return;
      }
      uint64_t max_elements =
          std::min<uint64_t>(std::max<uint64_t>(request.max_elements, 1),
                             std::max<uint64_t>(config_.read_batch_cap, 1));
      stream->busy = true;
      worker_pool_.Submit([this, conn_id = conn->id, sid = stream->id,
                           session = stream->session, max_elements, trace,
                           received_ns] {
        RunRead(conn_id, sid, session, max_elements, trace, received_ns);
      });
      return;
    }
    case RequestType::kSeek: {
      obs::ScopedSpan span(ServerSpanName(request.type), trace.trace_id,
                           trace.present() ? trace.parent_span_id : 0);
      if (session == nullptr) {
        response.status = Status::FailedPrecondition("no open session");
      } else {
        auto position = session->SeekTo(request.target_element);
        if (!position.ok()) {
          response.status = position.status();
        } else {
          response.seek_position = *position;
        }
      }
      EnqueueControl(conn, stream->version, stream->id, response, received_ns);
      return;
    }
    case RequestType::kStats: {
      obs::ScopedSpan span(ServerSpanName(request.type), trace.trace_id,
                           trace.present() ? trace.parent_span_id : 0);
      if (session == nullptr) {
        response.status = Status::FailedPrecondition("no open session");
      } else {
        response.stats = session->StatsWire();
      }
      EnqueueControl(conn, stream->version, stream->id, response, received_ns);
      return;
    }
    case RequestType::kClose: {
      obs::ScopedSpan span(ServerSpanName(request.type), trace.trace_id,
                           trace.present() ? trace.parent_span_id : 0);
      if (session != nullptr) {
        session->MarkClosed();
      }
      // The OK lands on the wire before the stream entry (and any
      // still-queued data frames) is dropped.
      EnqueueControl(conn, stream->version, stream->id, response, received_ns);
      RemoveStream(conn, stream->id, "client closed", /*evict=*/false);
      return;  // `stream` is gone.
    }
    default: {
      // OPEN never reaches Execute (handled at ProcessFrame); WINDOW
      // and TELEMETRY are never queued.
      response.status = Status::Internal("unhandled request type");
      EnqueueControl(conn, stream->version, stream->id, response, received_ns);
      return;
    }
  }
}

void MediaServer::DrainPending(Connection* conn, Stream* stream) {
  uint64_t sid = stream->id;
  for (;;) {
    auto it = conn->streams.find(sid);
    if (it == conn->streams.end()) return;  // A pending CLOSE removed it.
    Stream* s = it->second.get();
    if (s->busy || s->pending.empty()) return;
    auto [request, received_ns] = std::move(s->pending.front());
    s->pending.pop_front();
    Execute(conn, s, request, received_ns);
  }
}

// ---------------------------------------------------------------------------
// Worker tasks

void MediaServer::RunOpen(uint64_t conn_id, uint64_t stream_id,
                          Request request, int64_t received_ns) {
  // The server-side span adopts the client's trace context when
  // present, so a merged collection shows server work nested inside
  // client wait.
  const TraceContext& trace = request.trace;
  obs::ScopedSpan span(ServerSpanName(RequestType::kOpen), trace.trace_id,
                       trace.present() ? trace.parent_span_id : 0);
  obs::ScopedTimerUs timer(ServeMetrics::Get().request_us);

  Response response;
  response.type = RequestType::kOpen;
  std::shared_ptr<Session> session;
  std::string admission_key;

  do {
    // Resolve the catalog name to an interpreted object.
    auto object_id = db_->FindByName(request.object_name);
    if (!object_id.ok()) {
      response.status = object_id.status();
      break;
    }
    auto entry = db_->Get(*object_id);
    if (!entry.ok()) {
      response.status = entry.status();
      break;
    }
    if ((*entry)->kind != CatalogKind::kMediaObject) {
      response.status = Status::InvalidArgument(
          "\"" + request.object_name + "\" is a " +
          std::string(CatalogKindToString((*entry)->kind)) +
          ", not a media object");
      break;
    }
    auto interp_entry = db_->Get((*entry)->interpretation_ref);
    if (!interp_entry.ok()) {
      response.status = interp_entry.status();
      break;
    }
    const Interpretation& interpretation = (*interp_entry)->interpretation;
    auto object = interpretation.FindObject((*entry)->stream_name);
    if (!object.ok()) {
      response.status = object.status();
      break;
    }

    // Metadata-only admission: the rate profile comes from the
    // placement table; no media bytes are read to decide.
    RateProfile profile = MeasureRateProfileFromPlacements(**object);

    // Pressure-aware ladder: when the worker queue is backed up, new
    // streams start pre-degraded so existing ones keep their fidelity.
    int base_stride = 1;
    if (worker_pool_.queue_depth() > config_.queue_high_watermark) {
      base_stride = 2;
    }
    // The stream's QoS caps how deep the ladder may go: a stream that
    // asked for at most stride 2 is denied rather than opened at 4.
    int max_stride = std::max(1, config_.max_stride);
    if (request.qos.max_stride != 0) {
      max_stride = std::min<int>(
          max_stride, static_cast<int>(std::max<uint64_t>(
                          1, request.qos.max_stride)));
    }
    RateProfile ladder = profile;
    ladder.average_bytes_per_second /= base_stride;
    ladder.peak_bytes_per_second /= base_stride;

    uint64_t session_id = next_session_id_.fetch_add(1);
    std::string key = "s" + std::to_string(session_id);
    AdmissionController::AdmitDecision decision;
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      auto admitted = admission_.AdmitDegrading(
          key, ladder, std::max(1, max_stride / base_stride));
      if (!admitted.ok()) {
        stat_denied_.fetch_add(1);
        ServeMetrics::Get().denied->Add();
        response.status = admitted.status();
        break;
      }
      decision = *admitted;
    }
    uint32_t stride = static_cast<uint32_t>(decision.stride * base_stride);

    Session::Config session_config;
    session_config.stride = stride;
    session_config.booked_bytes_per_second = decision.booked_bytes_per_second;
    session_config.connection_id = conn_id;
    session_config.stream_id = stream_id;
    session_config.response_byte_cap = config_.response_byte_cap;
    session_config.read_options = config_.read_options;
    session_config.slow_read_us = config_.slow_read_us;
    auto created =
        Session::Create(session_id, request.object_name, db_->blob_store(),
                        interpretation, (*entry)->stream_name, session_config);
    if (!created.ok()) {
      std::lock_guard<std::mutex> lock(admission_mu_);
      (void)admission_.Release(key);
      response.status = created.status();
      break;
    }
    session = std::shared_ptr<Session>(std::move(*created));
    admission_key = std::move(key);
    // The session remembers which client trace it serves, so its
    // flight-recorder dumps can name the timeline to pull up.
    session->AdoptTrace(request.trace.trace_id);

    stat_admitted_.fetch_add(1);
    ServeMetrics::Get().admitted->Add();
    ServeMetrics::Get().sessions->Add(1);
    QosForStride(stride).admitted->Add();
    if (stride > 1) {
      stat_degraded_.fetch_add(1);
      ServeMetrics::Get().degraded->Add();
      QosForStride(stride).degraded->Add();
    }

    response.open.session_id = session_id;
    response.open.element_count = session->element_count();
    response.open.payload_bytes = session->payload_bytes();
    response.open.stride = stride;
    response.open.booked_bytes_per_second = decision.booked_bytes_per_second;
  } while (false);

  reactor_.Post([this, conn_id, stream_id, response = std::move(response),
                 session = std::move(session),
                 admission_key = std::move(admission_key), received_ns] {
    FinishOpen(conn_id, stream_id, response, session, admission_key,
               received_ns);
  });
}

void MediaServer::RunRead(uint64_t conn_id, uint64_t stream_id,
                          std::shared_ptr<Session> session,
                          uint64_t max_elements, TraceContext trace,
                          int64_t received_ns) {
  obs::ScopedSpan span(ServerSpanName(RequestType::kRead), trace.trace_id,
                       trace.present() ? trace.parent_span_id : 0);
  obs::ScopedTimerUs timer(ServeMetrics::Get().request_us);
  Response response;
  response.type = RequestType::kRead;
  {
    obs::ScopedSpan read_span("serve.read_next");
    auto batch = session->ReadNext(max_elements);
    if (!batch.ok()) {
      response.status = batch.status();
    } else {
      response.read = std::move(*batch);
    }
  }
  reactor_.Post(
      [this, conn_id, stream_id, response = std::move(response), received_ns] {
        FinishRead(conn_id, stream_id, response, received_ns);
      });
}

// ---------------------------------------------------------------------------
// Worker completions (loop thread)

void MediaServer::FinishOpen(uint64_t conn_id, uint64_t stream_id,
                             Response response,
                             std::shared_ptr<Session> session,
                             std::string admission_key, int64_t received_ns) {
  auto conn_it = connections_.find(conn_id);
  Connection* conn =
      conn_it != connections_.end() ? conn_it->second.get() : nullptr;
  Stream* stream = nullptr;
  if (conn != nullptr) {
    auto it = conn->streams.find(stream_id);
    if (it != conn->streams.end()) stream = it->second.get();
  }
  if (stream == nullptr) {
    // The connection (or stream) died while the OPEN ran: unwind the
    // booking the worker made; the accounting for the eviction already
    // happened at removal.
    if (session != nullptr && !admission_key.empty()) {
      std::lock_guard<std::mutex> lock(admission_mu_);
      (void)admission_.Release(admission_key);
      ServeMetrics::Get().sessions->Add(-1);
    }
    return;
  }

  stream->busy = false;
  if (!response.status.ok()) {
    // Denied or failed OPEN: answer, then drop the provisional entry.
    EnqueueControl(conn, stream->version, stream->id, response, received_ns);
    RemoveStream(conn, stream_id, nullptr, /*evict=*/false);
    PumpWrites(conn);
    return;
  }

  stream->session = std::move(session);
  stream->admission_key = std::move(admission_key);
  stream->booked = true;
  EnqueueControl(conn, stream->version, stream->id, response, received_ns);
  DrainPending(conn, stream);
  PumpWrites(conn);
}

void MediaServer::FinishRead(uint64_t conn_id, uint64_t stream_id,
                             Response response, int64_t received_ns) {
  auto conn_it = connections_.find(conn_id);
  if (conn_it == connections_.end()) return;
  Connection* conn = conn_it->second.get();
  auto it = conn->streams.find(stream_id);
  if (it == conn->streams.end()) return;  // Evicted while the read ran.
  Stream* stream = it->second.get();

  stream->busy = false;
  if (stream->degrade_pending) {
    // Pacing wanted a degrade while the worker held the session;
    // apply it now that the stream is quiescent.
    stream->degrade_pending = false;
    DegradeStream(stream);
  }
  if (!response.status.ok()) {
    EnqueueControl(conn, stream->version, stream->id, response, received_ns);
  } else {
    EnqueueData(conn, stream, response, received_ns);
  }
  DrainPending(conn, stream);
  PumpWrites(conn);
}

// ---------------------------------------------------------------------------
// Outbound path (loop thread)

void MediaServer::EnqueueControl(Connection* conn, uint8_t version,
                                 uint64_t stream_id, const Response& response,
                                 int64_t received_ns) {
  Bytes payload = EncodeResponse(response);
  FrameHeader header;
  header.version = version;
  header.stream_id = version == 2 ? stream_id : 0;
  size_t payload_bytes = payload.size();
  // Control frames bypass the data scheduler: they are small, carry
  // no media bytes (no pacing), and answering promptly is what keeps
  // a multiplexed client responsive while big READs drain.
  conn->writer.Enqueue(EncodeFrame(header, payload), [this, payload_bytes] {
    stat_response_bytes_.fetch_add(payload_bytes);
  });
  ServeMetrics::Get().request_us->Record(ElapsedUsSince(received_ns));
}

void MediaServer::EnqueueData(Connection* conn, Stream* stream,
                              const Response& response, int64_t received_ns) {
  Bytes payload = EncodeResponse(response);
  FrameHeader header;
  header.version = stream->version;
  header.stream_id = stream->version == 2 ? stream->id : 0;
  OutFrame frame;
  frame.payload_bytes = payload.size();
  frame.wire = EncodeFrame(header, payload);
  frame.received_ns = received_ns;
  frame.stride = response.read.stride;
  frame.end_of_stream = response.read.end_of_stream;
  stream->data_frames.push_back(std::move(frame));
  EnterRoundRobin(conn, stream);
  ServeMetrics::Get().request_us->Record(ElapsedUsSince(received_ns));
}

void MediaServer::EnterRoundRobin(Connection* conn, Stream* stream) {
  if (stream->in_rr) return;
  stream->in_rr = true;
  conn->rr[std::min<uint8_t>(stream->priority, 7)].push_back(stream->id);
}

bool MediaServer::TrySendData(Connection* conn, Stream* stream) {
  OutFrame& frame = stream->data_frames.front();

  // Flow control: the client must have granted window for the payload.
  if (stream->flow_controlled &&
      stream->window < static_cast<int64_t>(frame.payload_bytes)) {
    if (stream->stall_since == std::chrono::steady_clock::time_point{}) {
      stream->stall_since = std::chrono::steady_clock::now();
    }
    return false;
  }

  // Global pacing: the byte budget is the server's real aggregate
  // capacity. A dry bucket degrades the stream once (halving its
  // future demand), then defers the frame — but never past
  // budget_wait: past the grace deadline it force-acquires, and the
  // negative balance slows everyone a little instead of one stream a
  // lot.
  if (!budget_.TryAcquire(frame.payload_bytes)) {
    if (!frame.pace_degraded) {
      frame.pace_degraded = true;
      if (stream->busy) {
        stream->degrade_pending = true;  // Session held by a worker.
      } else {
        DegradeStream(stream);
      }
    }
    auto now = std::chrono::steady_clock::now();
    if (frame.pace_deadline == std::chrono::steady_clock::time_point{}) {
      frame.pace_deadline = now + config_.budget_wait;
    }
    if (now < frame.pace_deadline) {
      ArmPaceTimer(conn);
      return false;
    }
    budget_.ForceAcquire(frame.payload_bytes);
  }

  if (stream->flow_controlled) {
    stream->window -= static_cast<int64_t>(frame.payload_bytes);
  }
  stream->stall_since = {};

  // SLO accounting fires when the frame's last byte reaches the
  // transport: latency the client actually observes, labeled by the
  // QoS class in force for the batch. The callback runs inside
  // Flush() on the loop thread — accounting only, no teardown.
  auto on_sent = [this, conn_id = conn->id, sid = stream->id,
                  payload_bytes = frame.payload_bytes,
                  received_ns = frame.received_ns, stride = frame.stride,
                  end_of_stream = frame.end_of_stream,
                  session = stream->session] {
    stat_response_bytes_.fetch_add(payload_bytes);
    const QosSlice& qos = QosForStride(stride);
    uint64_t elapsed_us = ElapsedUsSince(received_ns);
    qos.read_us->Record(elapsed_us);
    qos.read_bytes->Add(payload_bytes);
    uint64_t deadline_us = config_.read_deadline_us;
    if (deadline_us == 0 && session != nullptr &&
        session->booked_bytes_per_second() > 0) {
      deadline_us =
          static_cast<uint64_t>(1e6 * static_cast<double>(payload_bytes) /
                                session->booked_bytes_per_second());
    }
    if (deadline_us != 0 && elapsed_us > deadline_us) {
      qos.deadline_miss->Add();
      if (session != nullptr) {
        session->flight()->Record(obs::FlightEventType::kNote,
                                  "read deadline missed", elapsed_us,
                                  deadline_us);
      }
    }
    if (end_of_stream) {
      // The stream completed: release capacity the moment the last
      // frame is handed off rather than holding it until CLOSE.
      auto conn_it = connections_.find(conn_id);
      if (conn_it != connections_.end()) {
        auto stream_it = conn_it->second->streams.find(sid);
        if (stream_it != conn_it->second->streams.end()) {
          ReleaseBooking(stream_it->second.get());
        }
      }
    }
  };
  conn->writer.Enqueue(std::move(frame.wire), std::move(on_sent));
  stream->data_frames.pop_front();
  return true;
}

MediaServer::Stream* MediaServer::PickNextDataStream(Connection* conn) {
  for (auto& level : conn->rr) {
    // One full rotation of the level; streams that cannot send right
    // now (window empty, paced) keep their place for the next pump.
    for (size_t remaining = level.size(); remaining > 0; --remaining) {
      uint64_t sid = level.front();
      level.pop_front();
      auto it = conn->streams.find(sid);
      if (it == conn->streams.end()) continue;  // Stale: stream removed.
      Stream* stream = it->second.get();
      if (stream->data_frames.empty()) {
        stream->in_rr = false;
        continue;
      }
      if (TrySendData(conn, stream)) {
        if (stream->data_frames.empty()) {
          stream->in_rr = false;
        } else {
          level.push_back(sid);  // Round-robin: go to the back.
        }
        return stream;
      }
      level.push_back(sid);  // Blocked; stays in rotation.
    }
  }
  return nullptr;
}

void MediaServer::PumpWrites(Connection* conn) {
  for (;;) {
    auto flushed = conn->writer.Flush(*conn->transport);
    if (!flushed.ok()) {
      TeardownConnection(conn, "send failed (connection lost)");
      return;
    }
    conn->total_flushed += *flushed;
    if (!conn->writer.empty()) break;  // Transport would block.
    // Writer drained: schedule the next data frame, best priority
    // first, round-robin within a level. Control frames never wait
    // here — they go straight into the writer at enqueue time.
    if (PickNextDataStream(conn) == nullptr) break;
  }
  UpdateConnInterest(conn);
}

void MediaServer::ArmPaceTimer(Connection* conn) {
  if (conn->pace_timer_armed) return;
  conn->pace_timer_armed = true;
  // Re-check the budget on refill granularity, not budget_wait: the
  // bucket may refill enough for the frame long before the grace
  // deadline.
  auto delay = std::min<std::chrono::milliseconds>(
      std::chrono::milliseconds(20), std::max<std::chrono::milliseconds>(
                                         std::chrono::milliseconds(1),
                                         config_.budget_wait));
  reactor_.PostDelayed(delay, [this, conn_id = conn->id] {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    it->second->pace_timer_armed = false;
    PumpWrites(it->second.get());
  });
}

void MediaServer::UpdateConnInterest(Connection* conn) {
  uint32_t want = kTransportReadable;
  if (!conn->writer.empty()) want |= kTransportWritable;
  if (want != conn->interest) {
    conn->interest = want;
    reactor_.UpdateInterest(conn->reactor_id, want);
  }
}

// ---------------------------------------------------------------------------
// Teardown (loop thread)

void MediaServer::RemoveStream(Connection* conn, uint64_t stream_id,
                               const char* cause, bool evict) {
  auto it = conn->streams.find(stream_id);
  if (it == conn->streams.end()) return;
  Stream* stream = it->second.get();

  if (stream->session != nullptr) {
    Session* session = stream->session.get();
    SessionState state = session->state();
    bool terminal = state == SessionState::kDone ||
                    state == SessionState::kDegraded ||
                    state == SessionState::kEvicted;
    if (evict && !terminal) {
      const char* why = cause != nullptr ? cause : "server-initiated eviction";
      session->MarkEvicted(why);
      stat_evicted_.fetch_add(1);
      ServeMetrics::Get().evicted->Add();
      QosForStride(session->stride()).evicted->Add();
      StoreFlightDump(session->DumpFlight(why));
    } else if (session->StatsWire().elements_skipped > 0) {
      // Completed, but lossily: keep the post-mortem even though
      // nothing was evicted.
      StoreFlightDump(session->DumpFlight("completed with skipped elements"));
    }
    ServeMetrics::Get().sessions->Add(-1);
  }
  ReleaseBooking(stream);
  active_streams_.fetch_sub(1);
  conn->streams.erase(it);
  // Round-robin entries for this id go stale and are skipped on pop.
}

void MediaServer::TeardownConnection(Connection* conn, const char* cause) {
  std::vector<uint64_t> ids;
  ids.reserve(conn->streams.size());
  for (const auto& [sid, stream] : conn->streams) ids.push_back(sid);
  for (uint64_t sid : ids) RemoveStream(conn, sid, cause, /*evict=*/true);

  reactor_.Deregister(conn->reactor_id);
  conn->transport->Close();
  active_connections_.fetch_sub(1);
  ServeMetrics::Get().connections->Add(-1);
  connections_.erase(conn->id);  // Destroys `conn`.
}

void MediaServer::CheckStalls() {
  if (stopping_.load(std::memory_order_acquire)) return;
  auto now = std::chrono::steady_clock::now();

  std::vector<uint64_t> dead_conns;
  for (auto& [conn_id, conn] : connections_) {
    // Connection-level: the transport has accepted nothing for a full
    // stall_timeout while we had bytes to give it.
    if (!conn->writer.empty()) {
      if (conn->progress_stamp == std::chrono::steady_clock::time_point{} ||
          conn->total_flushed != conn->progress_marker) {
        conn->progress_marker = conn->total_flushed;
        conn->progress_stamp = now;
      } else if (now - conn->progress_stamp >= config_.stall_timeout) {
        dead_conns.push_back(conn_id);
        continue;
      }
    } else {
      conn->progress_stamp = {};
    }
    // Stream-level: data queued but the client has granted no window.
    std::vector<uint64_t> dead_streams;
    for (const auto& [sid, stream] : conn->streams) {
      if (stream->stall_since != std::chrono::steady_clock::time_point{} &&
          now - stream->stall_since >= config_.stall_timeout) {
        dead_streams.push_back(sid);
      }
    }
    for (uint64_t sid : dead_streams) {
      RemoveStream(conn.get(), sid,
                   "flow-control window stalled (slow client)",
                   /*evict=*/true);
    }
  }
  for (uint64_t conn_id : dead_conns) {
    auto it = connections_.find(conn_id);
    if (it != connections_.end()) {
      TeardownConnection(it->second.get(),
                         "send stalled past timeout (slow client)");
    }
  }

  auto sweep = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(10), config_.stall_timeout / 4);
  reactor_.PostDelayed(sweep, [this] { CheckStalls(); });
}

// ---------------------------------------------------------------------------
// Shared helpers

void MediaServer::DegradeStream(Stream* stream) {
  Session* session = stream->session.get();
  if (session == nullptr) return;
  if (session->stride() >=
      static_cast<uint32_t>(std::max(1, config_.max_stride))) {
    return;  // Already at the thinnest tier.
  }
  session->Degrade();
  double new_rate = session->booked_bytes_per_second() / 2.0;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (admission_.Rebook(stream->admission_key, new_rate).ok()) {
      session->set_booked_bytes_per_second(new_rate);
    }
  }
  stat_degraded_.fetch_add(1);
  ServeMetrics::Get().degraded->Add();
  QosForStride(session->stride()).degraded->Add();
}

void MediaServer::ReleaseBooking(Stream* stream) {
  if (!stream->booked) return;
  std::lock_guard<std::mutex> lock(admission_mu_);
  (void)admission_.Release(stream->admission_key);
  stream->booked = false;
}

ServerStatsSnapshot MediaServer::stats() const {
  ServerStatsSnapshot snapshot;
  snapshot.sessions_admitted = stat_admitted_.load();
  snapshot.sessions_degraded = stat_degraded_.load();
  snapshot.sessions_denied = stat_denied_.load();
  snapshot.sessions_evicted = stat_evicted_.load();
  snapshot.requests = stat_requests_.load();
  snapshot.response_bytes = stat_response_bytes_.load();
  snapshot.active_sessions = active_streams_.load();
  snapshot.active_connections = active_connections_.load();
  return snapshot;
}

std::vector<std::string> MediaServer::flight_dumps() const {
  std::lock_guard<std::mutex> lock(flight_mu_);
  return flight_dumps_;
}

void MediaServer::StoreFlightDump(std::string dump) {
  if (dump.empty()) return;  // TBM_OBS_DISABLED: recorders are empty.
  std::lock_guard<std::mutex> lock(flight_mu_);
  if (flight_dumps_.size() >= std::max<size_t>(1, config_.flight_dump_cap)) {
    flight_dumps_.erase(flight_dumps_.begin());
  }
  flight_dumps_.push_back(std::move(dump));
}

}  // namespace tbm::serve

#include "serve/server.h"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <utility>

#include "base/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "playback/streaming.h"

namespace tbm::serve {

namespace {

/// Process-wide serve metrics.
struct ServeMetrics {
  obs::Gauge* sessions;
  obs::Counter* admitted;
  obs::Counter* denied;
  obs::Counter* degraded;
  obs::Counter* evicted;
  obs::Histogram* request_us;

  static const ServeMetrics& Get() {
    static const ServeMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return ServeMetrics{registry.gauge("serve.sessions"),
                          registry.counter("serve.admitted"),
                          registry.counter("serve.denied"),
                          registry.counter("serve.degraded"),
                          registry.counter("serve.evicted"),
                          registry.histogram("serve.request_us")};
    }();
    return metrics;
  }
};

/// Per-QoS-class SLO instruments, labeled `{qos=<class>}` in the
/// registry. A class is the session's stride tier: s1 is full
/// fidelity, s2/s4/s8 the degradation ladder, s16plus anything
/// coarser — so a dashboard shows whether degraded sessions still
/// meet their (reduced) contracts, not just a blended average.
struct QosSlice {
  obs::Counter* admitted;
  obs::Counter* degraded;
  obs::Counter* evicted;
  obs::Counter* deadline_miss;
  obs::Counter* read_bytes;
  obs::Histogram* read_us;  ///< READ receipt -> response sent, µs.
};

const QosSlice& QosForStride(uint32_t stride) {
  static constexpr const char* kClasses[] = {"s1", "s2", "s4", "s8",
                                             "s16plus"};
  static const std::array<QosSlice, 5> slices = [] {
    auto& registry = obs::Registry::Global();
    std::array<QosSlice, 5> out;
    for (size_t i = 0; i < out.size(); ++i) {
      const char* qos = kClasses[i];
      out[i] = QosSlice{registry.counter("serve.admitted", "qos", qos),
                        registry.counter("serve.degraded", "qos", qos),
                        registry.counter("serve.evicted", "qos", qos),
                        registry.counter("serve.deadline_miss", "qos", qos),
                        registry.counter("serve.read_bytes", "qos", qos),
                        registry.histogram("serve.read_us", "qos", qos)};
    }
    return out;
  }();
  if (stride <= 1) return slices[0];
  if (stride == 2) return slices[1];
  if (stride <= 4) return slices[2];
  if (stride <= 8) return slices[3];
  return slices[4];
}

const char* ServerSpanName(RequestType type) {
  switch (type) {
    case RequestType::kOpen:
      return "serve.open";
    case RequestType::kRead:
      return "serve.read";
    case RequestType::kSeek:
      return "serve.seek";
    case RequestType::kStats:
      return "serve.stats";
    case RequestType::kClose:
      return "serve.close";
    case RequestType::kTelemetry:
      return "serve.telemetry";
  }
  return "serve.request";
}

}  // namespace

// ---------------------------------------------------------------------------
// ByteBudget

ByteBudget::ByteBudget(double rate, uint64_t burst)
    : rate_(rate),
      burst_(static_cast<double>(burst)),
      tokens_(static_cast<double>(burst)),
      last_(std::chrono::steady_clock::now()) {}

void ByteBudget::Refill() {
  auto now = std::chrono::steady_clock::now();
  double elapsed = std::chrono::duration<double>(now - last_).count();
  last_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
}

bool ByteBudget::TryAcquire(uint64_t bytes) {
  if (rate_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Refill();
  double cost = static_cast<double>(bytes);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

bool ByteBudget::AcquireWithin(uint64_t bytes,
                               std::chrono::milliseconds timeout) {
  if (rate_ <= 0) return true;
  auto deadline = std::chrono::steady_clock::now() + timeout;
  double cost = static_cast<double>(bytes);
  for (;;) {
    std::chrono::milliseconds nap{1};
    {
      std::lock_guard<std::mutex> lock(mu_);
      Refill();
      if (tokens_ >= cost) {
        tokens_ -= cost;
        return true;
      }
      // Sleep roughly until the deficit refills (bounded below).
      double deficit = cost - tokens_;
      nap = std::chrono::milliseconds(std::max<int64_t>(
          1, static_cast<int64_t>(1000.0 * deficit / std::max(rate_, 1.0))));
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    std::this_thread::sleep_for(std::min<std::chrono::nanoseconds>(
        nap, deadline - now));
  }
}

void ByteBudget::ForceAcquire(uint64_t bytes) {
  if (rate_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Refill();
  tokens_ -= static_cast<double>(bytes);
}

// ---------------------------------------------------------------------------
// MediaServer

/// One adopted connection: its transport, handler thread, and (after
/// OPEN) session + admission booking. Owned by connections_; `session`
/// and the booking fields are touched only by the handler thread.
struct MediaServer::Connection {
  std::unique_ptr<Transport> transport;
  std::thread handler;
  std::unique_ptr<Session> session;
  std::string admission_key;
  bool booked = false;
  std::atomic<bool> finished{false};
};

MediaServer::MediaServer(const MediaDatabase* db, ServeConfig config)
    : db_(db),
      config_(config),
      admission_(config.capacity_bytes_per_second, config.admission_policy),
      budget_(config.capacity_bytes_per_second,
              static_cast<uint64_t>(
                  std::max(1.0, config.capacity_bytes_per_second / 4))),
      worker_pool_(std::max(1, config.worker_threads)),
      io_pool_(std::max(1, config.io_threads)) {
  config_.read_options.pool = &io_pool_;
}

MediaServer::~MediaServer() { Stop(); }

Status MediaServer::Serve(std::unique_ptr<Transport> transport) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    transport->Close();
    return Status::FailedPrecondition("server is stopping");
  }
  ReapFinished();
  if (connections_.size() >= config_.max_sessions) {
    transport->Close();
    return Status::ResourceExhausted(
        "session table full (" + std::to_string(config_.max_sessions) + ")");
  }
  auto connection = std::make_unique<Connection>();
  connection->transport = std::move(transport);
  Connection* raw = connection.get();
  connections_.push_back(std::move(connection));
  raw->handler = std::thread([this, raw] { HandleConnection(raw); });
  return Status::OK();
}

void MediaServer::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  // Closing every transport unblocks handlers parked in Recv/Send;
  // they tear their sessions down and exit.
  for (auto& connection : connections_) {
    if (connection->transport != nullptr) connection->transport->Close();
  }
  for (auto& connection : connections_) {
    if (connection->handler.joinable()) connection->handler.join();
  }
  connections_.clear();
}

void MediaServer::ReapFinished() {
  // Caller holds mu_.
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->handler.joinable()) (*it)->handler.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

ServerStatsSnapshot MediaServer::stats() const {
  ServerStatsSnapshot snapshot;
  snapshot.sessions_admitted = stat_admitted_.load();
  snapshot.sessions_degraded = stat_degraded_.load();
  snapshot.sessions_denied = stat_denied_.load();
  snapshot.sessions_evicted = stat_evicted_.load();
  snapshot.requests = stat_requests_.load();
  snapshot.response_bytes = stat_response_bytes_.load();
  snapshot.active_sessions = active_sessions_.load();
  return snapshot;
}

void MediaServer::RunOnPool(std::function<void()> work) {
  // The completion state is shared-owned: the waiter may wake and
  // return the moment `done` flips, so stack ownership would destroy
  // the condition variable under the worker's notify_one.
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto completion = std::make_shared<Completion>();
  worker_pool_.Submit([completion, work = std::move(work)] {
    work();
    {
      std::lock_guard<std::mutex> lock(completion->mu);
      completion->done = true;
    }
    completion->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(completion->mu);
  completion->cv.wait(lock, [&] { return completion->done; });
}

void MediaServer::DegradeSession(Session* session) {
  if (session->stride() >= static_cast<uint32_t>(
                               std::max(1, config_.max_stride))) {
    return;  // Already at the thinnest tier.
  }
  session->Degrade();
  double new_rate = session->booked_bytes_per_second() / 2.0;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (admission_.Rebook("s" + std::to_string(session->id()), new_rate)
            .ok()) {
      session->set_booked_bytes_per_second(new_rate);
    }
  }
  stat_degraded_.fetch_add(1);
  ServeMetrics::Get().degraded->Add();
  QosForStride(session->stride()).degraded->Add();
}

void MediaServer::ReleaseBooking(Connection* connection) {
  if (!connection->booked) return;
  std::lock_guard<std::mutex> lock(admission_mu_);
  (void)admission_.Release(connection->admission_key);
  connection->booked = false;
}

void MediaServer::HandleConnection(Connection* connection) {
  obs::ScopedSpan span("serve.session");
  bool send_failed = false;
  for (;;) {
    auto frame = ReadFrame(*connection->transport, kMaxFrameBytes);
    if (!frame.ok()) break;  // EOF, close, or unframeable input.
    stat_requests_.fetch_add(1);

    Response response;
    int64_t received_ns = obs::NowTicksNs();
    {
      obs::ScopedTimerUs timer(ServeMetrics::Get().request_us);
      auto request = DecodeRequest(*frame);
      if (!request.ok()) {
        // Malformed payload: report it, keep the connection — framing
        // is still intact.
        response.status = request.status();
      } else {
        // The server-side span adopts the client's trace context when
        // present: it parents into the client's round-trip span, so a
        // merged collection shows server work nested inside client
        // wait. Without context it nests locally under serve.session.
        const TraceContext& trace = request->trace;
        obs::ScopedSpan request_span(
            ServerSpanName(request->type), trace.trace_id,
            trace.present() ? trace.parent_span_id
                            : obs::Tracer::CurrentSpanId());
        response = HandleRequest(connection, *request);
      }
    }

    Bytes payload = EncodeResponse(response);
    PaceResponse(connection, payload.size());
    Status sent = WriteFrame(*connection->transport, payload);
    if (!sent.ok()) {
      // A failed or timed-out send leaves the frame stream
      // indeterminate: this client is gone or too slow. Evict.
      send_failed = true;
      break;
    }
    stat_response_bytes_.fetch_add(payload.size());

    // READ SLO accounting, through the send: latency a client actually
    // observed, labeled by the QoS class in force for the batch.
    if (response.type == RequestType::kRead && response.status.ok()) {
      Session* session = connection->session.get();
      const QosSlice& qos = QosForStride(response.read.stride);
      uint64_t elapsed_us =
          static_cast<uint64_t>(
              std::max<int64_t>(0, obs::NowTicksNs() - received_ns)) /
          1000;
      qos.read_us->Record(elapsed_us);
      qos.read_bytes->Add(payload.size());
      uint64_t deadline_us = config_.read_deadline_us;
      if (deadline_us == 0 && session != nullptr &&
          session->booked_bytes_per_second() > 0) {
        deadline_us = static_cast<uint64_t>(
            1e6 * static_cast<double>(payload.size()) /
            session->booked_bytes_per_second());
      }
      if (deadline_us != 0 && elapsed_us > deadline_us) {
        qos.deadline_miss->Add();
        if (session != nullptr) {
          session->flight()->Record(obs::FlightEventType::kNote,
                                    "read deadline missed", elapsed_us,
                                    deadline_us);
        }
      }
    }
    if (response.type == RequestType::kClose && response.status.ok()) break;
  }

  if (connection->session != nullptr) {
    Session* session = connection->session.get();
    SessionState state = session->state();
    bool terminal = state == SessionState::kDone ||
                    state == SessionState::kDegraded ||
                    state == SessionState::kEvicted;
    if (!terminal || send_failed) {
      // The client vanished or stalled mid-stream.
      const char* cause = send_failed
                              ? "send stalled past timeout (slow client)"
                              : "connection lost before end of stream";
      session->MarkEvicted(cause);
      stat_evicted_.fetch_add(1);
      ServeMetrics::Get().evicted->Add();
      QosForStride(session->stride()).evicted->Add();
      StoreFlightDump(session->DumpFlight(cause));
    } else if (session->StatsWire().elements_skipped > 0) {
      // Completed, but lossily: keep the post-mortem even though
      // nothing was evicted.
      StoreFlightDump(
          session->DumpFlight("completed with skipped elements"));
    }
    active_sessions_.fetch_sub(1);
    ServeMetrics::Get().sessions->Add(-1);
  }
  ReleaseBooking(connection);
  connection->transport->Close();
  connection->finished.store(true, std::memory_order_release);
}

std::vector<std::string> MediaServer::flight_dumps() const {
  std::lock_guard<std::mutex> lock(flight_mu_);
  return flight_dumps_;
}

void MediaServer::StoreFlightDump(std::string dump) {
  if (dump.empty()) return;  // TBM_OBS_DISABLED: recorders are empty.
  std::lock_guard<std::mutex> lock(flight_mu_);
  if (flight_dumps_.size() >= std::max<size_t>(1, config_.flight_dump_cap)) {
    flight_dumps_.erase(flight_dumps_.begin());
  }
  flight_dumps_.push_back(std::move(dump));
}

void MediaServer::PaceResponse(Connection* connection, uint64_t bytes) {
  if (budget_.TryAcquire(bytes)) return;
  // The budget ran dry: the server is oversubscribed in practice.
  // Degrade this session (halving its future demand) before waiting,
  // and never stall past the grace period — a negative balance slows
  // everyone a little instead of one session a lot.
  if (connection->session != nullptr) {
    DegradeSession(connection->session.get());
  }
  if (!budget_.AcquireWithin(bytes, config_.budget_wait)) {
    budget_.ForceAcquire(bytes);
  }
}

Response MediaServer::HandleRequest(Connection* connection,
                                    const Request& request) {
  Response response;
  response.type = request.type;
  Session* session = connection->session.get();

  // Every post-OPEN verb must address the session on this connection.
  if (request.type != RequestType::kOpen && session != nullptr &&
      request.session_id != 0 && request.session_id != session->id()) {
    response.status = Status::InvalidArgument(
        "session id " + std::to_string(request.session_id) +
        " does not match this connection's session " +
        std::to_string(session->id()));
    return response;
  }

  switch (request.type) {
    case RequestType::kOpen:
      return DoOpen(connection, request);
    case RequestType::kRead:
      return DoRead(connection, request);
    case RequestType::kSeek: {
      if (session == nullptr) {
        response.status = Status::FailedPrecondition("no open session");
        return response;
      }
      auto position = session->SeekTo(request.target_element);
      if (!position.ok()) {
        response.status = position.status();
      } else {
        response.seek_position = *position;
      }
      return response;
    }
    case RequestType::kStats: {
      if (session == nullptr) {
        response.status = Status::FailedPrecondition("no open session");
        return response;
      }
      response.stats = session->StatsWire();
      return response;
    }
    case RequestType::kClose: {
      if (session != nullptr) {
        session->MarkClosed();
        ReleaseBooking(connection);
      }
      return response;  // OK — closing an unopened connection is a no-op.
    }
    case RequestType::kTelemetry: {
      // Needs no session: a scraper connects, asks, and hangs up.
      response.telemetry = obs::Registry::Global().Snapshot();
      return response;
    }
  }
  response.status = Status::Internal("unhandled request type");
  return response;
}

Response MediaServer::DoOpen(Connection* connection, const Request& request) {
  Response response;
  response.type = RequestType::kOpen;
  if (connection->session != nullptr) {
    response.status =
        Status::FailedPrecondition("connection already has a session");
    return response;
  }

  // Resolve the catalog name to an interpreted object.
  auto object_id = db_->FindByName(request.object_name);
  if (!object_id.ok()) {
    response.status = object_id.status();
    return response;
  }
  auto entry = db_->Get(*object_id);
  if (!entry.ok()) {
    response.status = entry.status();
    return response;
  }
  if ((*entry)->kind != CatalogKind::kMediaObject) {
    response.status = Status::InvalidArgument(
        "\"" + request.object_name + "\" is a " +
        std::string(CatalogKindToString((*entry)->kind)) +
        ", not a media object");
    return response;
  }
  auto interp_entry = db_->Get((*entry)->interpretation_ref);
  if (!interp_entry.ok()) {
    response.status = interp_entry.status();
    return response;
  }
  const Interpretation& interpretation = (*interp_entry)->interpretation;
  auto object = interpretation.FindObject((*entry)->stream_name);
  if (!object.ok()) {
    response.status = object.status();
    return response;
  }

  // Metadata-only admission: the rate profile comes from the placement
  // table; no media bytes are read to decide.
  RateProfile profile = MeasureRateProfileFromPlacements(**object);

  // Pressure-aware ladder: when the worker queue is backed up, new
  // sessions start pre-degraded so existing ones keep their fidelity.
  int base_stride = 1;
  if (worker_pool_.queue_depth() > config_.queue_high_watermark) {
    base_stride = 2;
  }
  int max_stride = std::max(1, config_.max_stride);
  RateProfile ladder = profile;
  ladder.average_bytes_per_second /= base_stride;
  ladder.peak_bytes_per_second /= base_stride;

  uint64_t session_id = next_session_id_.fetch_add(1);
  std::string key = "s" + std::to_string(session_id);
  AdmissionController::AdmitDecision decision;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    auto admitted = admission_.AdmitDegrading(
        key, ladder, std::max(1, max_stride / base_stride));
    if (!admitted.ok()) {
      stat_denied_.fetch_add(1);
      ServeMetrics::Get().denied->Add();
      response.status = admitted.status();
      return response;
    }
    decision = *admitted;
  }
  uint32_t stride = static_cast<uint32_t>(decision.stride * base_stride);

  Session::Config session_config;
  session_config.stride = stride;
  session_config.booked_bytes_per_second = decision.booked_bytes_per_second;
  session_config.response_byte_cap = config_.response_byte_cap;
  session_config.read_options = config_.read_options;
  session_config.slow_read_us = config_.slow_read_us;
  auto session =
      Session::Create(session_id, request.object_name, db_->blob_store(),
                      interpretation, (*entry)->stream_name, session_config);
  if (!session.ok()) {
    std::lock_guard<std::mutex> lock(admission_mu_);
    (void)admission_.Release(key);
    response.status = session.status();
    return response;
  }
  connection->session = std::move(*session);
  connection->admission_key = std::move(key);
  connection->booked = true;
  // The session remembers which client trace it serves, so its
  // flight-recorder dumps can name the timeline to pull up.
  connection->session->AdoptTrace(request.trace.trace_id);

  active_sessions_.fetch_add(1);
  stat_admitted_.fetch_add(1);
  ServeMetrics::Get().admitted->Add();
  ServeMetrics::Get().sessions->Add(1);
  QosForStride(stride).admitted->Add();
  if (stride > 1) {
    stat_degraded_.fetch_add(1);
    ServeMetrics::Get().degraded->Add();
    QosForStride(stride).degraded->Add();
  }

  response.open.session_id = session_id;
  response.open.element_count = connection->session->element_count();
  response.open.payload_bytes = connection->session->payload_bytes();
  response.open.stride = stride;
  response.open.booked_bytes_per_second = decision.booked_bytes_per_second;
  return response;
}

Response MediaServer::DoRead(Connection* connection, const Request& request) {
  Response response;
  response.type = RequestType::kRead;
  Session* session = connection->session.get();
  if (session == nullptr) {
    response.status = Status::FailedPrecondition("no open session");
    return response;
  }
  uint64_t max_elements =
      std::min<uint64_t>(std::max<uint64_t>(request.max_elements, 1),
                         std::max<uint64_t>(config_.read_batch_cap, 1));

  // The fetch runs as one task on the shared worker pool: its FIFO
  // queue interleaves batches across sessions — that queue *is* the
  // fair-share scheduler. The span context is captured here and
  // re-established inside the task: thread-locals don't cross the
  // pool hop, explicit (trace, parent) ids do.
  uint64_t parent_span = obs::Tracer::CurrentSpanId();
  uint64_t trace = obs::Tracer::CurrentTraceId();
  Result<ReadBatch> batch = Status::Internal("read task did not run");
  RunOnPool([&] {
    obs::ScopedSpan read_span("serve.read_next", trace, parent_span);
    batch = session->ReadNext(max_elements);
  });
  if (!batch.ok()) {
    response.status = batch.status();
    return response;
  }
  if (batch->end_of_stream) {
    // The stream completed: release capacity immediately rather than
    // holding it until the client disconnects.
    ReleaseBooking(connection);
  }
  response.read = std::move(*batch);
  return response;
}

}  // namespace tbm::serve

#ifndef TBM_SERVE_CLIENT_H_
#define TBM_SERVE_CLIENT_H_

#include <memory>
#include <string>

#include "serve/protocol.h"
#include "serve/transport.h"

namespace tbm::serve {

/// Client half of the serve protocol: encodes requests, frames them
/// over a Transport, and decodes the matching responses. Synchronous
/// and single-threaded by design — a media session is an ordered
/// pipeline, and one outstanding request per connection keeps it so.
class MediaClient {
 public:
  explicit MediaClient(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)) {}

  /// Opens a session on the named catalog media object. The server's
  /// admission decision comes back in `OpenInfo::stride` (> 1 means
  /// the session was admitted degraded).
  Result<OpenInfo> Open(const std::string& object_name);

  /// Fetches the next batch (at most `max_elements`; the server may
  /// send fewer). `end_of_stream` marks the final batch.
  Result<ReadBatch> Read(uint64_t max_elements);

  /// Repositions to `element`; returns the server-confirmed position.
  Result<uint64_t> Seek(uint64_t element);

  /// Session counters and state as the server sees them.
  Result<SessionStatsWire> Stats();

  /// Ends the session. The transport stays usable for nothing — the
  /// server hangs up after acknowledging.
  Status Close();

  uint64_t session_id() const { return session_id_; }
  Transport* transport() { return transport_.get(); }

 private:
  /// Sends `request` and receives its response, checking the echoed
  /// type and wire status.
  Result<Response> RoundTrip(const Request& request);

  std::unique_ptr<Transport> transport_;
  uint64_t session_id_ = 0;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_CLIENT_H_

#ifndef TBM_SERVE_CLIENT_H_
#define TBM_SERVE_CLIENT_H_

#include <memory>
#include <string>

#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace tbm::serve {

/// Client half of the serve protocol: encodes requests, frames them
/// over a Transport, and decodes the matching responses. Synchronous
/// and single-threaded by design — a media session is an ordered
/// pipeline, and one outstanding request per connection keeps it so.
///
/// Every client mints one trace id at construction; each round trip
/// records a client-side span in that trace and ships the (trace id,
/// span id) pair as request trace context, so server-side spans
/// parent into the client's timeline. In TBM_OBS_DISABLED builds the
/// trace id is 0 and no context goes on the wire.
class MediaClient {
 public:
  explicit MediaClient(std::unique_ptr<Transport> transport)
      : transport_(std::move(transport)), trace_id_(obs::NewTraceId()) {}

  /// Opens a session on the named catalog media object. The server's
  /// admission decision comes back in `OpenInfo::stride` (> 1 means
  /// the session was admitted degraded).
  Result<OpenInfo> Open(const std::string& object_name);

  /// Fetches the next batch (at most `max_elements`; the server may
  /// send fewer). `end_of_stream` marks the final batch.
  Result<ReadBatch> Read(uint64_t max_elements);

  /// Repositions to `element`; returns the server-confirmed position.
  Result<uint64_t> Seek(uint64_t element);

  /// Session counters and state as the server sees them.
  Result<SessionStatsWire> Stats();

  /// Ends the session. The transport stays usable for nothing — the
  /// server hangs up after acknowledging.
  Status Close();

  /// Point-in-time copy of the server's metrics registry (counters,
  /// gauges, histograms — including the per-QoS SLO families). Needs
  /// no open session.
  Result<obs::MetricsSnapshot> Telemetry();

  uint64_t session_id() const { return session_id_; }
  /// The trace id this client's round-trip spans record into (0 in
  /// TBM_OBS_DISABLED builds).
  uint64_t trace_id() const { return trace_id_; }
  Transport* transport() { return transport_.get(); }

 private:
  /// Sends `request` and receives its response, checking the echoed
  /// type and wire status. Wraps the round trip in a client-side span
  /// and attaches trace context to the outbound request.
  Result<Response> RoundTrip(Request request);

  std::unique_ptr<Transport> transport_;
  uint64_t session_id_ = 0;
  uint64_t trace_id_ = 0;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_CLIENT_H_

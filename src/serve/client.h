#ifndef TBM_SERVE_CLIENT_H_
#define TBM_SERVE_CLIENT_H_

#include <memory>
#include <string>

#include "obs/trace.h"
#include "serve/connection.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace tbm::serve {

/// Single-stream compatibility shim over the multiplexed client.
///
/// DEPRECATED: new code should use Connect() + Connection::OpenStream
/// (serve/connection.h), which multiplexes many streams over one
/// connection with per-stream QoS and flow control. This wrapper
/// keeps the PR 5 one-session-per-connection surface for callers that
/// want exactly one stream: it opens a Connection, drives a single
/// StreamHandle, and forwards every call.
class MediaClient {
 public:
  explicit MediaClient(std::unique_ptr<Transport> transport)
      : connection_(Connect(std::move(transport))) {}

  /// Opens a session on the named catalog media object. The server's
  /// admission decision comes back in `OpenInfo::stride` (> 1 means
  /// the session was admitted degraded).
  Result<OpenInfo> Open(const std::string& object_name);

  /// Fetches the next batch (at most `max_elements`; the server may
  /// send fewer). `end_of_stream` marks the final batch.
  Result<ReadBatch> Read(uint64_t max_elements);

  /// Repositions to `element`; returns the server-confirmed position.
  Result<uint64_t> Seek(uint64_t element);

  /// Session counters and state as the server sees them.
  Result<SessionStatsWire> Stats();

  /// Ends the session.
  Status Close();

  /// Point-in-time copy of the server's metrics registry (counters,
  /// gauges, histograms — including the per-QoS SLO families). Needs
  /// no open session.
  Result<obs::MetricsSnapshot> Telemetry();

  uint64_t session_id() const {
    return stream_ != nullptr ? stream_->session_id() : 0;
  }
  /// The trace id this client's round-trip spans record into (0 in
  /// TBM_OBS_DISABLED builds).
  uint64_t trace_id() const { return connection_->trace_id(); }
  /// The underlying multiplexed connection (shared with any streams
  /// this shim opened).
  Connection* connection() { return connection_.get(); }

 private:
  std::unique_ptr<Connection> connection_;
  std::unique_ptr<StreamHandle> stream_;
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_CLIENT_H_

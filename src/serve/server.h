#ifndef TBM_SERVE_SERVER_H_
#define TBM_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "db/database.h"
#include "playback/admission.h"
#include "serve/framing.h"
#include "serve/reactor.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace tbm::serve {

/// Tuning of a MediaServer.
struct ServeConfig {
  /// Hard cap on concurrently open streams (sessions) server-wide.
  size_t max_sessions = 128;

  /// Hard cap on adopted connections. 0 = same as max_sessions.
  size_t max_connections = 0;

  /// Cap on concurrently open streams multiplexed on one connection.
  size_t max_streams_per_connection = 64;

  /// Aggregate service bandwidth admission control books against.
  double capacity_bytes_per_second = 64.0 * 1024 * 1024;
  AdmissionController::Policy admission_policy =
      AdmissionController::Policy::kAverageRate;

  /// Deepest degradation tier admission may fall back to (power of
  /// two; stride 8 books 1/8 of the full rate).
  int max_stride = 8;

  /// Threads executing request work (element fetch + encode). Kept
  /// separate from `io_threads`: request tasks block on prefetched
  /// chunks, so sharing one pool with the prefetcher would deadlock.
  int worker_threads = 4;

  /// Threads running chunk readahead for full-fidelity sessions.
  int io_threads = 2;

  /// Server-side cap on elements per READ response.
  uint64_t read_batch_cap = 64;

  /// Byte cap per READ response frame.
  uint64_t response_byte_cap = 4ull << 20;

  /// Worker-queue depth beyond which the server is "under pressure":
  /// new streams are admitted pre-degraded (stride >= 2) and
  /// streaming sessions are degraded instead of stalling on the byte
  /// budget.
  int queue_high_watermark = 32;

  /// How long a READ data frame may wait on the global byte budget
  /// after the pressure degrade was applied. Past it the send
  /// proceeds anyway (the budget goes negative and pays itself back),
  /// keeping the server live under transient oversubscription.
  std::chrono::milliseconds budget_wait{250};

  /// How long a stream may sit with data queued but unsendable — its
  /// flow-control window empty, or the connection's transport buffer
  /// full — before the server evicts it as a slow client. The reactor
  /// never blocks on a send, so this timer *is* the slow-client
  /// detector that blocking send timeouts used to be.
  std::chrono::milliseconds stall_timeout{1000};

  /// Read options for session element streams; `pool` is overridden
  /// with the server's I/O pool.
  StreamReadOptions read_options;

  /// SLO deadline for a READ request (request receipt through response
  /// send), in microseconds. 0 derives the deadline from the session's
  /// booked rate: a batch of B bytes on a session booked at R bytes/s
  /// must leave within B/R seconds, or the session is falling behind
  /// real time. Misses increment the per-QoS deadline-miss counter and
  /// land in the session's flight recorder.
  uint64_t read_deadline_us = 0;

  /// Element reads slower than this are flight-recorded (see
  /// Session::Config::slow_read_us). 0 disables.
  uint64_t slow_read_us = 10'000;

  /// Most recent flight-recorder dumps the server retains (from
  /// evicted streams and streams that completed with skips).
  size_t flight_dump_cap = 32;
};

/// Aggregate counters of a server's lifetime.
struct ServerStatsSnapshot {
  uint64_t sessions_admitted = 0;
  uint64_t sessions_degraded = 0;  ///< Admitted below full fidelity or
                                   ///< degraded mid-session.
  uint64_t sessions_denied = 0;
  uint64_t sessions_evicted = 0;
  uint64_t requests = 0;
  uint64_t response_bytes = 0;
  size_t active_sessions = 0;    ///< Open streams, server-wide.
  size_t active_connections = 0;
};

/// Global byte-rate budget: a token bucket shared by every stream's
/// response path. Senders acquire tokens for each data frame; when
/// the bucket runs dry the server is oversubscribed in practice (not
/// just on paper) and the write scheduler degrades streams rather
/// than queueing unboundedly. Thread-safe.
class ByteBudget {
 public:
  /// `rate` tokens (bytes) per second, accumulating up to `burst`.
  /// rate <= 0 disables the budget (TryAcquire always succeeds).
  ByteBudget(double rate, uint64_t burst);

  /// Claims `bytes` if available now.
  bool TryAcquire(uint64_t bytes);

  /// Claims `bytes`, sleeping for refills up to `timeout`. False when
  /// the deadline passes first. (Blocking — test/tool use only; the
  /// reactor path defers via a timer instead.)
  bool AcquireWithin(uint64_t bytes, std::chrono::milliseconds timeout);

  /// Claims `bytes` unconditionally; the balance may go negative and
  /// is paid back by future refills (later acquires wait longer).
  /// Keeps the send path live when the budget is persistently starved.
  void ForceAcquire(uint64_t bytes);

 private:
  void Refill();

  const double rate_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

/// The event-driven media service: one reactor loop multiplexes every
/// adopted connection, each connection multiplexes many streams, and
/// all request *work* (element fetch + encode) runs as tasks on the
/// shared worker pool whose FIFO queue is the fair-share scheduler.
/// Chunk readahead runs on the separate I/O pool.
///
/// Concurrency model: connection and stream state lives on the
/// reactor loop thread — frames are parsed there, responses are
/// scheduled there, and nothing ever blocks there. A worker task gets
/// a shared_ptr<Session> (sessions are single-driver: at most one
/// outstanding worker task per stream) and posts its completion back
/// to the loop, which encodes and schedules the response.
///
/// Write scheduling per connection: control frames (OPEN/SEEK/STATS/
/// CLOSE/TELEMETRY/errors) first, then READ data frames by QoS
/// priority (0 before 7), round-robin within a level. A data frame is
/// sendable only when its stream's flow-control window covers it and
/// the global byte budget grants it.
///
/// Overload policy, in order: (1) admission books each stream's rate
/// against `capacity_bytes_per_second`, degrading new streams
/// (coarser stride) before denying; (2) the byte budget paces data
/// frames, degrading streams that outrun it and never stalling past
/// `budget_wait`; (3) slow clients — streams whose window stays empty
/// or connections whose transport stays unwritable past
/// `stall_timeout` — are evicted, so one stalled consumer cannot hold
/// tokens, table slots, and buffers forever.
class MediaServer {
 public:
  MediaServer(const MediaDatabase* db, ServeConfig config = {});
  ~MediaServer();

  MediaServer(const MediaServer&) = delete;
  MediaServer& operator=(const MediaServer&) = delete;

  /// Adopts a connection and serves it until EOF, teardown, or
  /// eviction. One connection carries up to
  /// `max_streams_per_connection` concurrent streams (v2 framing); v1
  /// single-stream clients get the implicit stream 0.
  /// ResourceExhausted when the connection table is full,
  /// FailedPrecondition when the server is stopping (either way the
  /// transport is closed and dropped).
  Status Serve(std::unique_ptr<Transport> transport);

  /// Tears down every connection and stops the reactor loop.
  /// Idempotent; called by the destructor.
  void Stop();

  ServerStatsSnapshot stats() const;
  const ServeConfig& config() const { return config_; }

  /// Flight-recorder dumps of streams that ended badly (evicted, or
  /// completed with skipped elements), newest last, capped at
  /// `flight_dump_cap`. Empty in TBM_OBS_DISABLED builds.
  std::vector<std::string> flight_dumps() const;

 private:
  /// One encoded response frame waiting on the per-stream data queue:
  /// it still owes flow-control window and byte-budget tokens before
  /// it may move to the connection's FrameWriter.
  struct OutFrame {
    Bytes wire;               ///< Whole wire frame (length prefix included).
    uint64_t payload_bytes = 0;  ///< Flow-control debit (response payload).
    int64_t received_ns = 0;  ///< Request receipt, for SLO latency.
    uint32_t stride = 1;      ///< QoS class of the batch.
    bool end_of_stream = false;
    /// Budget grace deadline; zero until the frame first finds the
    /// bucket dry. Once past, the frame force-acquires and goes.
    std::chrono::steady_clock::time_point pace_deadline{};
    bool pace_degraded = false;  ///< Pacing already degraded the stream once.
  };

  /// One multiplexed stream on a connection. Loop-thread state.
  struct Stream {
    uint64_t id = 0;
    uint8_t version = 2;   ///< Frame version its client speaks (1 or 2).
    uint8_t priority = 4;  ///< QoS write priority, 0..7.
    std::shared_ptr<Session> session;  ///< Null until OPEN completes.
    std::string admission_key;
    bool booked = false;
    bool flow_controlled = false;
    int64_t window = 0;  ///< Remaining flow-control credit, bytes.
    std::deque<OutFrame> data_frames;
    /// Requests queued behind the one outstanding worker task
    /// (sessions are single-driver), with their receipt timestamps.
    std::deque<std::pair<Request, int64_t>> pending;
    bool busy = false;   ///< A worker task is in flight for this stream.
    bool in_rr = false;  ///< Enqueued in the priority round-robin.
    /// Pacing asked for a degrade while a worker held the session;
    /// applied on the loop once the stream is quiescent again.
    bool degrade_pending = false;
    /// When the stream first became unsendable (window empty with data
    /// queued). Zero = not stalled. Feeds slow-client eviction.
    std::chrono::steady_clock::time_point stall_since{};
  };

  struct Connection;

  // --- Reactor-loop methods (never block). ---
  void OnConnReadable(Connection* conn);
  void OnConnWritable(Connection* conn);
  /// True when the connection survived frame processing.
  bool ProcessFrame(Connection* conn, Frame frame);
  void ExecuteOrQueue(Connection* conn, Stream* stream, Request request,
                      int64_t received_ns);
  void Execute(Connection* conn, Stream* stream, const Request& request,
               int64_t received_ns);
  void DrainPending(Connection* conn, Stream* stream);
  void FinishOpen(uint64_t conn_id, uint64_t stream_id, Response response,
                  std::shared_ptr<Session> session, std::string admission_key,
                  int64_t received_ns);
  void FinishRead(uint64_t conn_id, uint64_t stream_id, Response response,
                  int64_t received_ns);
  void EnqueueControl(Connection* conn, uint8_t version, uint64_t stream_id,
                      const Response& response, int64_t received_ns);
  void EnqueueData(Connection* conn, Stream* stream, const Response& response,
                   int64_t received_ns);
  /// Moves the stream's front data frame into the writer if window
  /// and budget allow. True when a frame moved.
  bool TrySendData(Connection* conn, Stream* stream);
  Stream* PickNextDataStream(Connection* conn);
  void PumpWrites(Connection* conn);
  void ArmPaceTimer(Connection* conn);
  void UpdateConnInterest(Connection* conn);
  void EnterRoundRobin(Connection* conn, Stream* stream);
  void RemoveStream(Connection* conn, uint64_t stream_id, const char* cause,
                    bool evict);
  void TeardownConnection(Connection* conn, const char* cause);
  void CheckStalls();

  // --- Worker-pool methods (may block on reads). ---
  void RunOpen(uint64_t conn_id, uint64_t stream_id, Request request,
               int64_t received_ns);
  void RunRead(uint64_t conn_id, uint64_t stream_id,
               std::shared_ptr<Session> session, uint64_t max_elements,
               TraceContext trace, int64_t received_ns);

  /// Retains `dump` (dropping the oldest past the cap); empty dumps —
  /// the TBM_OBS_DISABLED case — are ignored.
  void StoreFlightDump(std::string dump);

  /// Halves the stream's fidelity and re-books its admission ledger
  /// entry at the reduced rate. Loop thread.
  void DegradeStream(Stream* stream);

  /// Releases the stream's admission booking if still held.
  void ReleaseBooking(Stream* stream);

  const MediaDatabase* db_;
  ServeConfig config_;
  std::mutex admission_mu_;  ///< AdmissionController is not thread-safe.
  AdmissionController admission_;
  ByteBudget budget_;
  Reactor reactor_;  ///< Declared before the pools: worker completions
                     ///< Post() here while the pools drain.
  ThreadPool worker_pool_;
  ThreadPool io_pool_;

  /// Loop-thread only.
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;

  std::atomic<bool> stopping_{false};

  mutable std::mutex flight_mu_;  ///< Guards flight_dumps_.
  std::vector<std::string> flight_dumps_;

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> stat_admitted_{0};
  std::atomic<uint64_t> stat_degraded_{0};
  std::atomic<uint64_t> stat_denied_{0};
  std::atomic<uint64_t> stat_evicted_{0};
  std::atomic<uint64_t> stat_requests_{0};
  std::atomic<uint64_t> stat_response_bytes_{0};
  std::atomic<size_t> active_streams_{0};
  std::atomic<size_t> active_connections_{0};
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_SERVER_H_

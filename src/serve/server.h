#ifndef TBM_SERVE_SERVER_H_
#define TBM_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "db/database.h"
#include "playback/admission.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace tbm::serve {

/// Tuning of a MediaServer.
struct ServeConfig {
  /// Hard cap on concurrently connected sessions.
  size_t max_sessions = 128;

  /// Aggregate service bandwidth admission control books against.
  double capacity_bytes_per_second = 64.0 * 1024 * 1024;
  AdmissionController::Policy admission_policy =
      AdmissionController::Policy::kAverageRate;

  /// Deepest degradation tier admission may fall back to (power of
  /// two; stride 8 books 1/8 of the full rate).
  int max_stride = 8;

  /// Threads executing request work (element fetch + encode). Kept
  /// separate from `io_threads`: request tasks block on prefetched
  /// chunks, so sharing one pool with the prefetcher would deadlock.
  int worker_threads = 4;

  /// Threads running chunk readahead for full-fidelity sessions.
  int io_threads = 2;

  /// Server-side cap on elements per READ response.
  uint64_t read_batch_cap = 64;

  /// Byte cap per READ response frame.
  uint64_t response_byte_cap = 4ull << 20;

  /// Worker-queue depth beyond which the server is "under pressure":
  /// new sessions are admitted pre-degraded (stride >= 2) and
  /// streaming sessions are degraded instead of stalling on the byte
  /// budget.
  int queue_high_watermark = 32;

  /// How long a response may wait on the global byte budget after the
  /// pressure degrade was applied. Past it the send proceeds anyway
  /// (the budget goes negative and pays itself back), keeping the
  /// server live under transient oversubscription.
  std::chrono::milliseconds budget_wait{250};

  /// Read options for session element streams; `pool` is overridden
  /// with the server's I/O pool.
  StreamReadOptions read_options;

  /// SLO deadline for a READ request (request receipt through response
  /// send), in microseconds. 0 derives the deadline from the session's
  /// booked rate: a batch of B bytes on a session booked at R bytes/s
  /// must leave within B/R seconds, or the session is falling behind
  /// real time. Misses increment the per-QoS deadline-miss counter and
  /// land in the session's flight recorder.
  uint64_t read_deadline_us = 0;

  /// Element reads slower than this are flight-recorded (see
  /// Session::Config::slow_read_us). 0 disables.
  uint64_t slow_read_us = 10'000;

  /// Most recent flight-recorder dumps the server retains (from
  /// evicted sessions and sessions that completed with skips).
  size_t flight_dump_cap = 32;
};

/// Aggregate counters of a server's lifetime.
struct ServerStatsSnapshot {
  uint64_t sessions_admitted = 0;
  uint64_t sessions_degraded = 0;  ///< Admitted below full fidelity or
                                   ///< degraded mid-session.
  uint64_t sessions_denied = 0;
  uint64_t sessions_evicted = 0;
  uint64_t requests = 0;
  uint64_t response_bytes = 0;
  size_t active_sessions = 0;
};

/// Global byte-rate budget: a token bucket shared by every session's
/// response path. Senders acquire tokens for each response; when the
/// bucket runs dry the server is oversubscribed in practice (not just
/// on paper) and the caller degrades sessions rather than queueing
/// unboundedly. Thread-safe.
class ByteBudget {
 public:
  /// `rate` tokens (bytes) per second, accumulating up to `burst`.
  /// rate <= 0 disables the budget (TryAcquire always succeeds).
  ByteBudget(double rate, uint64_t burst);

  /// Claims `bytes` if available now.
  bool TryAcquire(uint64_t bytes);

  /// Claims `bytes`, sleeping for refills up to `timeout`. False when
  /// the deadline passes first.
  bool AcquireWithin(uint64_t bytes, std::chrono::milliseconds timeout);

  /// Claims `bytes` unconditionally; the balance may go negative and
  /// is paid back by future refills (later acquires wait longer).
  /// Keeps the send path live when the budget is persistently starved.
  void ForceAcquire(uint64_t bytes);

 private:
  void Refill();

  const double rate_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

/// The session-oriented media service: accepts transports, speaks the
/// serve wire protocol, and multiplexes admitted sessions over shared
/// worker/I/O pools with a global byte-rate budget.
///
/// Concurrency model: each connection gets a lightweight handler
/// thread that parses frames and waits for replies, but all request
/// *work* (element fetch, encode) runs as tasks on the shared worker
/// pool — its FIFO queue is the fair-share scheduler, interleaving
/// batches from every session. Chunk readahead runs on the separate
/// I/O pool.
///
/// Overload policy, in order: (1) admission books each session's rate
/// against `capacity_bytes_per_second`, degrading new sessions
/// (coarser stride) before denying; (2) the byte budget paces
/// responses, degrading streaming sessions that outrun it; (3) slow
/// clients — transports whose buffer stays full past the send timeout
/// — are evicted immediately (a timed-out send leaves the frame
/// stream indeterminate), so one stalled consumer cannot hold tokens,
/// table slots, and buffers forever.
class MediaServer {
 public:
  MediaServer(const MediaDatabase* db, ServeConfig config = {});
  ~MediaServer();

  MediaServer(const MediaServer&) = delete;
  MediaServer& operator=(const MediaServer&) = delete;

  /// Adopts a connection and serves it until CLOSE, EOF, or eviction.
  /// ResourceExhausted when the session table is full or the server is
  /// stopping (the transport is closed and dropped).
  Status Serve(std::unique_ptr<Transport> transport);

  /// Closes every connection and joins all handlers. Idempotent;
  /// called by the destructor.
  void Stop();

  ServerStatsSnapshot stats() const;
  const ServeConfig& config() const { return config_; }

  /// Flight-recorder dumps of sessions that ended badly (evicted, or
  /// completed with skipped elements), newest last, capped at
  /// `flight_dump_cap`. Empty in TBM_OBS_DISABLED builds.
  std::vector<std::string> flight_dumps() const;

 private:
  struct Connection;

  void HandleConnection(Connection* connection);
  Response HandleRequest(Connection* connection, const Request& request);
  Response DoOpen(Connection* connection, const Request& request);
  Response DoRead(Connection* connection, const Request& request);

  /// Retains `dump` (dropping the oldest past the cap); empty dumps —
  /// the TBM_OBS_DISABLED case — are ignored.
  void StoreFlightDump(std::string dump);

  /// Paces `bytes` through the byte budget, degrading the session
  /// under pressure rather than stalling indefinitely.
  void PaceResponse(Connection* connection, uint64_t bytes);

  /// Runs `work` on the worker pool and waits for it — the fair-share
  /// funnel every expensive request passes through.
  void RunOnPool(std::function<void()> work);

  /// Halves `session`'s fidelity and re-books its admission ledger
  /// entry at the reduced rate.
  void DegradeSession(Session* session);

  /// Releases the session's booking if still held.
  void ReleaseBooking(Connection* connection);

  void ReapFinished();

  const MediaDatabase* db_;
  ServeConfig config_;
  std::mutex admission_mu_;  ///< AdmissionController is not thread-safe.
  AdmissionController admission_;
  ByteBudget budget_;
  ThreadPool worker_pool_;
  ThreadPool io_pool_;

  mutable std::mutex mu_;  ///< Guards connections_ and stopping_.
  std::vector<std::unique_ptr<Connection>> connections_;
  bool stopping_ = false;

  mutable std::mutex flight_mu_;  ///< Guards flight_dumps_.
  std::vector<std::string> flight_dumps_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> stat_admitted_{0};
  std::atomic<uint64_t> stat_degraded_{0};
  std::atomic<uint64_t> stat_denied_{0};
  std::atomic<uint64_t> stat_evicted_{0};
  std::atomic<uint64_t> stat_requests_{0};
  std::atomic<uint64_t> stat_response_bytes_{0};
  std::atomic<size_t> active_sessions_{0};
};

}  // namespace tbm::serve

#endif  // TBM_SERVE_SERVER_H_

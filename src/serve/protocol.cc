#include "serve/protocol.h"

#include <utility>

#include "base/macros.h"

namespace tbm::serve {

namespace {

constexpr uint8_t kMaxRequestType =
    static_cast<uint8_t>(RequestType::kWindow);
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kInternal);
constexpr uint8_t kMaxSessionState =
    static_cast<uint8_t>(SessionState::kEvicted);

/// Request extension-block tags (see Request doc comment).
constexpr uint8_t kExtTagTrace = 1;
constexpr uint8_t kExtTagQos = 2;

constexpr uint8_t kMaxQosPriority = 7;

/// A hostile TELEMETRY frame could claim an absurd per-histogram
/// bucket count; anything past this is corrupt, not just future.
constexpr uint64_t kMaxWireHistogramBuckets = 4096;

Status TrailingBytes(size_t n) {
  return Status::Corruption("frame has " + std::to_string(n) +
                            " trailing bytes");
}

/// Writes the request extension block: nothing when no extension is
/// present, else repeated (tag, length-prefixed body) pairs.
void EncodeRequestExtensions(BinaryWriter* writer, const Request& request) {
  if (request.trace.present()) {
    BinaryWriter body;
    body.WriteVarU64(request.trace.trace_id);
    body.WriteVarU64(request.trace.parent_span_id);
    writer->WriteU8(kExtTagTrace);
    writer->WriteBytes(body.buffer());
  }
  if (request.type == RequestType::kOpen && request.qos.present()) {
    BinaryWriter body;
    body.WriteU8(request.qos.priority);
    body.WriteVarU64(request.qos.max_stride);
    body.WriteVarU64(request.qos.window_bytes);
    writer->WriteU8(kExtTagQos);
    writer->WriteBytes(body.buffer());
  }
}

/// Consumes the rest of the payload as an extension block. Unknown
/// tags are skipped whole (their length prefix tells us how much);
/// known tags must parse exactly.
Status DecodeRequestExtensions(BinaryReader* reader, Request* request) {
  while (!reader->AtEnd()) {
    TBM_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
    if (tag == 0) return Status::Corruption("zero extension tag");
    TBM_ASSIGN_OR_RETURN(Bytes body, reader->ReadBytes());
    if (tag == kExtTagTrace) {
      BinaryReader body_reader(body);
      TBM_ASSIGN_OR_RETURN(request->trace.trace_id, body_reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(request->trace.parent_span_id,
                           body_reader.ReadVarU64());
      if (!body_reader.AtEnd()) {
        return Status::Corruption("trace extension has " +
                                  std::to_string(body_reader.remaining()) +
                                  " trailing bytes");
      }
    } else if (tag == kExtTagQos) {
      BinaryReader body_reader(body);
      TBM_ASSIGN_OR_RETURN(request->qos.priority, body_reader.ReadU8());
      if (request->qos.priority > kMaxQosPriority) {
        return Status::InvalidArgument(
            "qos priority " + std::to_string(request->qos.priority) +
            " out of range");
      }
      TBM_ASSIGN_OR_RETURN(uint64_t max_stride, body_reader.ReadVarU64());
      if (max_stride > UINT32_MAX) {
        return Status::Corruption("qos max_stride overflows u32");
      }
      request->qos.max_stride = static_cast<uint32_t>(max_stride);
      TBM_ASSIGN_OR_RETURN(request->qos.window_bytes,
                           body_reader.ReadVarU64());
      if (!body_reader.AtEnd()) {
        return Status::Corruption("qos extension has " +
                                  std::to_string(body_reader.remaining()) +
                                  " trailing bytes");
      }
    }
    // Unknown tags: body already consumed; skip (forward compat).
  }
  return Status::OK();
}

void EncodeTelemetry(BinaryWriter* writer,
                     const obs::MetricsSnapshot& snapshot) {
  writer->WriteVarU64(snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    writer->WriteString(name);
    writer->WriteVarU64(value);
  }
  writer->WriteVarU64(snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    writer->WriteString(name);
    writer->WriteVarI64(value);
  }
  writer->WriteVarU64(snapshot.histograms.size());
  for (const auto& [name, h] : snapshot.histograms) {
    writer->WriteString(name);
    writer->WriteVarU64(h.count);
    writer->WriteVarU64(h.sum);
    writer->WriteVarU64(h.min);
    writer->WriteVarU64(h.max);
    writer->WriteVarU64(h.buckets.size());
    for (uint64_t bucket : h.buckets) writer->WriteVarU64(bucket);
  }
}

Status DecodeTelemetry(BinaryReader* reader, obs::MetricsSnapshot* snapshot) {
  TBM_ASSIGN_OR_RETURN(uint64_t counter_count, reader->ReadVarU64());
  if (counter_count > reader->remaining()) {
    // Every entry costs at least two bytes (name length + value), so a
    // count beyond the remaining payload is corrupt — reject before
    // looping over it.
    return Status::Corruption("counter count " +
                              std::to_string(counter_count) +
                              " exceeds frame size");
  }
  for (uint64_t i = 0; i < counter_count; ++i) {
    TBM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    TBM_ASSIGN_OR_RETURN(uint64_t value, reader->ReadVarU64());
    snapshot->counters.emplace(std::move(name), value);
  }
  TBM_ASSIGN_OR_RETURN(uint64_t gauge_count, reader->ReadVarU64());
  if (gauge_count > reader->remaining()) {
    return Status::Corruption("gauge count " + std::to_string(gauge_count) +
                              " exceeds frame size");
  }
  for (uint64_t i = 0; i < gauge_count; ++i) {
    TBM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    TBM_ASSIGN_OR_RETURN(int64_t value, reader->ReadVarI64());
    snapshot->gauges.emplace(std::move(name), value);
  }
  TBM_ASSIGN_OR_RETURN(uint64_t histogram_count, reader->ReadVarU64());
  if (histogram_count > reader->remaining()) {
    return Status::Corruption("histogram count " +
                              std::to_string(histogram_count) +
                              " exceeds frame size");
  }
  for (uint64_t i = 0; i < histogram_count; ++i) {
    TBM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    obs::HistogramSnapshot h;
    TBM_ASSIGN_OR_RETURN(h.count, reader->ReadVarU64());
    TBM_ASSIGN_OR_RETURN(h.sum, reader->ReadVarU64());
    TBM_ASSIGN_OR_RETURN(h.min, reader->ReadVarU64());
    TBM_ASSIGN_OR_RETURN(h.max, reader->ReadVarU64());
    TBM_ASSIGN_OR_RETURN(uint64_t bucket_count, reader->ReadVarU64());
    if (bucket_count > kMaxWireHistogramBuckets) {
      return Status::Corruption("histogram bucket count " +
                                std::to_string(bucket_count) +
                                " exceeds limit");
    }
    // A peer with a different bucket layout stays decodable: take what
    // fits, drain the rest.
    for (uint64_t b = 0; b < bucket_count; ++b) {
      TBM_ASSIGN_OR_RETURN(uint64_t bucket, reader->ReadVarU64());
      if (b < h.buckets.size()) h.buckets[b] = bucket;
    }
    snapshot->histograms.emplace(std::move(name), h);
  }
  return Status::OK();
}

}  // namespace

std::string_view RequestTypeToString(RequestType type) {
  switch (type) {
    case RequestType::kOpen:
      return "OPEN";
    case RequestType::kRead:
      return "READ";
    case RequestType::kSeek:
      return "SEEK";
    case RequestType::kStats:
      return "STATS";
    case RequestType::kClose:
      return "CLOSE";
    case RequestType::kTelemetry:
      return "TELEMETRY";
    case RequestType::kWindow:
      return "WINDOW";
  }
  return "?";
}

std::string_view SessionStateToString(SessionState state) {
  switch (state) {
    case SessionState::kOpen:
      return "OPEN";
    case SessionState::kAdmitted:
      return "ADMITTED";
    case SessionState::kStreaming:
      return "STREAMING";
    case SessionState::kDone:
      return "DONE";
    case SessionState::kDegraded:
      return "DEGRADED";
    case SessionState::kEvicted:
      return "EVICTED";
  }
  return "?";
}

Bytes EncodeRequest(const Request& request) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(request.type));
  writer.WriteVarU64(request.session_id);
  switch (request.type) {
    case RequestType::kOpen:
      writer.WriteString(request.object_name);
      break;
    case RequestType::kRead:
      writer.WriteVarU64(request.max_elements);
      break;
    case RequestType::kSeek:
      writer.WriteVarU64(request.target_element);
      break;
    case RequestType::kWindow:
      writer.WriteVarU64(request.window_delta);
      break;
    case RequestType::kStats:
    case RequestType::kClose:
    case RequestType::kTelemetry:
      break;
  }
  EncodeRequestExtensions(&writer, request);
  return writer.TakeBuffer();
}

Result<Request> DecodeRequest(ByteSpan payload) {
  BinaryReader reader(payload);
  Request request;
  TBM_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  if (type == 0 || type > kMaxRequestType) {
    return Status::InvalidArgument("unknown request type " +
                                   std::to_string(type));
  }
  request.type = static_cast<RequestType>(type);
  TBM_ASSIGN_OR_RETURN(request.session_id, reader.ReadVarU64());
  switch (request.type) {
    case RequestType::kOpen: {
      TBM_ASSIGN_OR_RETURN(request.object_name, reader.ReadString());
      break;
    }
    case RequestType::kRead: {
      TBM_ASSIGN_OR_RETURN(request.max_elements, reader.ReadVarU64());
      break;
    }
    case RequestType::kSeek: {
      TBM_ASSIGN_OR_RETURN(request.target_element, reader.ReadVarU64());
      break;
    }
    case RequestType::kWindow: {
      TBM_ASSIGN_OR_RETURN(request.window_delta, reader.ReadVarU64());
      break;
    }
    case RequestType::kStats:
    case RequestType::kClose:
    case RequestType::kTelemetry:
      break;
  }
  TBM_RETURN_IF_ERROR(DecodeRequestExtensions(&reader, &request));
  return request;
}

Bytes EncodeResponse(const Response& response) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(response.type));
  writer.WriteU8(static_cast<uint8_t>(response.status.code()));
  writer.WriteString(response.status.ok() ? std::string_view()
                                          : response.status.message());
  if (!response.status.ok()) return writer.TakeBuffer();
  switch (response.type) {
    case RequestType::kOpen:
      writer.WriteVarU64(response.open.session_id);
      writer.WriteVarU64(response.open.element_count);
      writer.WriteVarU64(response.open.payload_bytes);
      writer.WriteU32(response.open.stride);
      writer.WriteF64(response.open.booked_bytes_per_second);
      break;
    case RequestType::kRead:
      writer.WriteU8(response.read.end_of_stream ? 1 : 0);
      writer.WriteU32(response.read.stride);
      writer.WriteVarU64(response.read.elements.size());
      for (const WireElement& element : response.read.elements) {
        writer.WriteVarU64(element.element_number);
        writer.WriteVarI64(element.start);
        writer.WriteVarI64(element.duration);
        writer.WriteBytes(element.payload);
      }
      break;
    case RequestType::kSeek:
      writer.WriteVarU64(response.seek_position);
      break;
    case RequestType::kStats:
      writer.WriteU8(static_cast<uint8_t>(response.stats.state));
      writer.WriteVarU64(response.stats.elements_delivered);
      writer.WriteVarU64(response.stats.elements_skipped);
      writer.WriteVarU64(response.stats.bytes_sent);
      writer.WriteU32(response.stats.stride);
      break;
    case RequestType::kClose:
    case RequestType::kWindow:  // WINDOW has no response; empty body.
      break;
    case RequestType::kTelemetry:
      EncodeTelemetry(&writer, response.telemetry);
      break;
  }
  return writer.TakeBuffer();
}

Result<Response> DecodeResponse(ByteSpan payload) {
  BinaryReader reader(payload);
  Response response;
  TBM_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  if (type == 0 || type > kMaxRequestType) {
    return Status::InvalidArgument("unknown response type " +
                                   std::to_string(type));
  }
  response.type = static_cast<RequestType>(type);
  TBM_ASSIGN_OR_RETURN(uint8_t code, reader.ReadU8());
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  TBM_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  if (code != 0) {
    response.status = Status(static_cast<StatusCode>(code), std::move(message));
    if (!reader.AtEnd()) return TrailingBytes(reader.remaining());
    return response;
  }
  switch (response.type) {
    case RequestType::kOpen: {
      TBM_ASSIGN_OR_RETURN(response.open.session_id, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.open.element_count, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.open.payload_bytes, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.open.stride, reader.ReadU32());
      TBM_ASSIGN_OR_RETURN(response.open.booked_bytes_per_second,
                           reader.ReadF64());
      break;
    }
    case RequestType::kRead: {
      TBM_ASSIGN_OR_RETURN(uint8_t end, reader.ReadU8());
      response.read.end_of_stream = end != 0;
      TBM_ASSIGN_OR_RETURN(response.read.stride, reader.ReadU32());
      TBM_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarU64());
      if (count > reader.remaining()) {
        // Every element costs at least one byte on the wire, so a count
        // beyond the remaining payload is corrupt — reject before
        // reserving memory for it.
        return Status::Corruption("element count " + std::to_string(count) +
                                  " exceeds frame size");
      }
      response.read.elements.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        WireElement element;
        TBM_ASSIGN_OR_RETURN(element.element_number, reader.ReadVarU64());
        TBM_ASSIGN_OR_RETURN(element.start, reader.ReadVarI64());
        TBM_ASSIGN_OR_RETURN(element.duration, reader.ReadVarI64());
        TBM_ASSIGN_OR_RETURN(element.payload, reader.ReadBytes());
        response.read.elements.push_back(std::move(element));
      }
      break;
    }
    case RequestType::kSeek: {
      TBM_ASSIGN_OR_RETURN(response.seek_position, reader.ReadVarU64());
      break;
    }
    case RequestType::kStats: {
      TBM_ASSIGN_OR_RETURN(uint8_t state, reader.ReadU8());
      if (state > kMaxSessionState) {
        return Status::InvalidArgument("unknown session state " +
                                       std::to_string(state));
      }
      response.stats.state = static_cast<SessionState>(state);
      TBM_ASSIGN_OR_RETURN(response.stats.elements_delivered,
                           reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.stats.elements_skipped,
                           reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.stats.bytes_sent, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.stats.stride, reader.ReadU32());
      break;
    }
    case RequestType::kClose:
    case RequestType::kWindow:
      break;
    case RequestType::kTelemetry: {
      TBM_RETURN_IF_ERROR(DecodeTelemetry(&reader, &response.telemetry));
      break;
    }
  }
  if (!reader.AtEnd()) return TrailingBytes(reader.remaining());
  return response;
}

}  // namespace tbm::serve

#include "serve/protocol.h"

#include <utility>

#include "base/macros.h"

namespace tbm::serve {

namespace {

constexpr uint8_t kMaxRequestType = static_cast<uint8_t>(RequestType::kClose);
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kInternal);
constexpr uint8_t kMaxSessionState =
    static_cast<uint8_t>(SessionState::kEvicted);

Status TrailingBytes(size_t n) {
  return Status::Corruption("frame has " + std::to_string(n) +
                            " trailing bytes");
}

}  // namespace

std::string_view RequestTypeToString(RequestType type) {
  switch (type) {
    case RequestType::kOpen:
      return "OPEN";
    case RequestType::kRead:
      return "READ";
    case RequestType::kSeek:
      return "SEEK";
    case RequestType::kStats:
      return "STATS";
    case RequestType::kClose:
      return "CLOSE";
  }
  return "?";
}

std::string_view SessionStateToString(SessionState state) {
  switch (state) {
    case SessionState::kOpen:
      return "OPEN";
    case SessionState::kAdmitted:
      return "ADMITTED";
    case SessionState::kStreaming:
      return "STREAMING";
    case SessionState::kDone:
      return "DONE";
    case SessionState::kDegraded:
      return "DEGRADED";
    case SessionState::kEvicted:
      return "EVICTED";
  }
  return "?";
}

Bytes EncodeRequest(const Request& request) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(request.type));
  writer.WriteVarU64(request.session_id);
  switch (request.type) {
    case RequestType::kOpen:
      writer.WriteString(request.object_name);
      break;
    case RequestType::kRead:
      writer.WriteVarU64(request.max_elements);
      break;
    case RequestType::kSeek:
      writer.WriteVarU64(request.target_element);
      break;
    case RequestType::kStats:
    case RequestType::kClose:
      break;
  }
  return writer.TakeBuffer();
}

Result<Request> DecodeRequest(ByteSpan payload) {
  BinaryReader reader(payload);
  Request request;
  TBM_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  if (type == 0 || type > kMaxRequestType) {
    return Status::InvalidArgument("unknown request type " +
                                   std::to_string(type));
  }
  request.type = static_cast<RequestType>(type);
  TBM_ASSIGN_OR_RETURN(request.session_id, reader.ReadVarU64());
  switch (request.type) {
    case RequestType::kOpen: {
      TBM_ASSIGN_OR_RETURN(request.object_name, reader.ReadString());
      break;
    }
    case RequestType::kRead: {
      TBM_ASSIGN_OR_RETURN(request.max_elements, reader.ReadVarU64());
      break;
    }
    case RequestType::kSeek: {
      TBM_ASSIGN_OR_RETURN(request.target_element, reader.ReadVarU64());
      break;
    }
    case RequestType::kStats:
    case RequestType::kClose:
      break;
  }
  if (!reader.AtEnd()) return TrailingBytes(reader.remaining());
  return request;
}

Bytes EncodeResponse(const Response& response) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(response.type));
  writer.WriteU8(static_cast<uint8_t>(response.status.code()));
  writer.WriteString(response.status.ok() ? std::string_view()
                                          : response.status.message());
  if (!response.status.ok()) return writer.TakeBuffer();
  switch (response.type) {
    case RequestType::kOpen:
      writer.WriteVarU64(response.open.session_id);
      writer.WriteVarU64(response.open.element_count);
      writer.WriteVarU64(response.open.payload_bytes);
      writer.WriteU32(response.open.stride);
      writer.WriteF64(response.open.booked_bytes_per_second);
      break;
    case RequestType::kRead:
      writer.WriteU8(response.read.end_of_stream ? 1 : 0);
      writer.WriteU32(response.read.stride);
      writer.WriteVarU64(response.read.elements.size());
      for (const WireElement& element : response.read.elements) {
        writer.WriteVarU64(element.element_number);
        writer.WriteVarI64(element.start);
        writer.WriteVarI64(element.duration);
        writer.WriteBytes(element.payload);
      }
      break;
    case RequestType::kSeek:
      writer.WriteVarU64(response.seek_position);
      break;
    case RequestType::kStats:
      writer.WriteU8(static_cast<uint8_t>(response.stats.state));
      writer.WriteVarU64(response.stats.elements_delivered);
      writer.WriteVarU64(response.stats.elements_skipped);
      writer.WriteVarU64(response.stats.bytes_sent);
      writer.WriteU32(response.stats.stride);
      break;
    case RequestType::kClose:
      break;
  }
  return writer.TakeBuffer();
}

Result<Response> DecodeResponse(ByteSpan payload) {
  BinaryReader reader(payload);
  Response response;
  TBM_ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  if (type == 0 || type > kMaxRequestType) {
    return Status::InvalidArgument("unknown response type " +
                                   std::to_string(type));
  }
  response.type = static_cast<RequestType>(type);
  TBM_ASSIGN_OR_RETURN(uint8_t code, reader.ReadU8());
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  TBM_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  if (code != 0) {
    response.status = Status(static_cast<StatusCode>(code), std::move(message));
    if (!reader.AtEnd()) return TrailingBytes(reader.remaining());
    return response;
  }
  switch (response.type) {
    case RequestType::kOpen: {
      TBM_ASSIGN_OR_RETURN(response.open.session_id, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.open.element_count, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.open.payload_bytes, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.open.stride, reader.ReadU32());
      TBM_ASSIGN_OR_RETURN(response.open.booked_bytes_per_second,
                           reader.ReadF64());
      break;
    }
    case RequestType::kRead: {
      TBM_ASSIGN_OR_RETURN(uint8_t end, reader.ReadU8());
      response.read.end_of_stream = end != 0;
      TBM_ASSIGN_OR_RETURN(response.read.stride, reader.ReadU32());
      TBM_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarU64());
      if (count > reader.remaining()) {
        // Every element costs at least one byte on the wire, so a count
        // beyond the remaining payload is corrupt — reject before
        // reserving memory for it.
        return Status::Corruption("element count " + std::to_string(count) +
                                  " exceeds frame size");
      }
      response.read.elements.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        WireElement element;
        TBM_ASSIGN_OR_RETURN(element.element_number, reader.ReadVarU64());
        TBM_ASSIGN_OR_RETURN(element.start, reader.ReadVarI64());
        TBM_ASSIGN_OR_RETURN(element.duration, reader.ReadVarI64());
        TBM_ASSIGN_OR_RETURN(element.payload, reader.ReadBytes());
        response.read.elements.push_back(std::move(element));
      }
      break;
    }
    case RequestType::kSeek: {
      TBM_ASSIGN_OR_RETURN(response.seek_position, reader.ReadVarU64());
      break;
    }
    case RequestType::kStats: {
      TBM_ASSIGN_OR_RETURN(uint8_t state, reader.ReadU8());
      if (state > kMaxSessionState) {
        return Status::InvalidArgument("unknown session state " +
                                       std::to_string(state));
      }
      response.stats.state = static_cast<SessionState>(state);
      TBM_ASSIGN_OR_RETURN(response.stats.elements_delivered,
                           reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.stats.elements_skipped,
                           reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.stats.bytes_sent, reader.ReadVarU64());
      TBM_ASSIGN_OR_RETURN(response.stats.stride, reader.ReadU32());
      break;
    }
    case RequestType::kClose:
      break;
  }
  if (!reader.AtEnd()) return TrailingBytes(reader.remaining());
  return response;
}

}  // namespace tbm::serve

#include "codec/rle.h"

namespace tbm {

Bytes RleEncode(ByteSpan data) {
  Bytes out;
  size_t i = 0;
  while (i < data.size()) {
    // Measure the run at i.
    size_t run = 1;
    while (i + run < data.size() && data[i + run] == data[i] && run < 130) {
      ++run;
    }
    if (run >= 3) {
      out.push_back(static_cast<uint8_t>(run + 125));  // 128..255
      out.push_back(data[i]);
      i += run;
      continue;
    }
    // Gather literals until the next run of >= 3 or 128 literals.
    size_t lit_start = i;
    size_t lit_len = 0;
    while (i < data.size() && lit_len < 128) {
      size_t r = 1;
      while (i + r < data.size() && data[i + r] == data[i] && r < 3) ++r;
      if (r >= 3) break;
      i += r;
      lit_len += r;
    }
    // Literal runs may overshoot 128 by one byte pair; clamp.
    if (lit_len > 128) {
      i -= lit_len - 128;
      lit_len = 128;
    }
    out.push_back(static_cast<uint8_t>(lit_len - 1));  // 0..127
    out.insert(out.end(), data.begin() + lit_start,
               data.begin() + lit_start + lit_len);
  }
  return out;
}

Result<Bytes> RleDecode(ByteSpan data) {
  Bytes out;
  size_t i = 0;
  while (i < data.size()) {
    uint8_t control = data[i++];
    if (control < 128) {
      size_t count = static_cast<size_t>(control) + 1;
      if (i + count > data.size()) {
        return Status::Corruption("RLE: truncated literal block");
      }
      out.insert(out.end(), data.begin() + i, data.begin() + i + count);
      i += count;
    } else {
      if (i >= data.size()) {
        return Status::Corruption("RLE: truncated run block");
      }
      size_t count = static_cast<size_t>(control) - 125;
      out.insert(out.end(), count, data[i++]);
    }
  }
  return out;
}

}  // namespace tbm

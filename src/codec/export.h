#ifndef TBM_CODEC_EXPORT_H_
#define TBM_CODEC_EXPORT_H_

#include <string>

#include "codec/image.h"
#include "codec/pcm.h"

namespace tbm {

/// Interchange exporters/importers: standard uncompressed container
/// formats so media produced by the library can be inspected with any
/// external viewer/player, and external material can be brought in.

/// Writes an RGB or grayscale image as binary PPM (P6) / PGM (P5).
Status WritePnm(const Image& image, const std::string& path);

/// Reads a binary PPM (P6) or PGM (P5) file.
Result<Image> ReadPnm(const std::string& path);

/// Writes PCM audio as a canonical 16-bit little-endian WAV file.
Status WriteWav(const AudioBuffer& audio, const std::string& path);

/// Reads a 16-bit PCM WAV file.
Result<AudioBuffer> ReadWav(const std::string& path);

}  // namespace tbm

#endif  // TBM_CODEC_EXPORT_H_

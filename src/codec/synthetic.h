#ifndef TBM_CODEC_SYNTHETIC_H_
#define TBM_CODEC_SYNTHETIC_H_

#include <vector>

#include "codec/image.h"

namespace tbm {

/// Deterministic synthetic "capture hardware".
///
/// The paper's examples digitize PAL tape; we have no tape or capture
/// card, so scenes are generated procedurally: a smoothly drifting
/// gradient background with moving discs, palette and motion keyed off
/// `scene_id`. Frames are temporally coherent (so interframe coding
/// compresses realistically) and fully reproducible (so tests and
/// benches are deterministic). See DESIGN.md "Substitutions".
namespace videogen {

/// Frame `frame_index` of synthetic scene `scene_id` as RGB.
Image Frame(int32_t width, int32_t height, int64_t frame_index,
            uint32_t scene_id);

/// A whole clip: `count` consecutive frames.
std::vector<Image> Clip(int32_t width, int32_t height, int64_t count,
                        uint32_t scene_id);

/// A deterministic still image (frame 0 of the scene).
Image Still(int32_t width, int32_t height, uint32_t scene_id);

}  // namespace videogen

}  // namespace tbm

#endif  // TBM_CODEC_SYNTHETIC_H_

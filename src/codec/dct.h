#ifndef TBM_CODEC_DCT_H_
#define TBM_CODEC_DCT_H_

#include <array>
#include <cstdint>

namespace tbm {

/// 8×8 type-II DCT and its inverse, the transform core of the TJPEG
/// codec (the library's stand-in for the JPEG compression the paper's
/// Figure 2 example applies to PAL frames).

/// Forward 2-D DCT of an 8×8 block (row-major), orthonormal scaling.
void ForwardDct8x8(const float in[64], float out[64]);

/// Inverse 2-D DCT of an 8×8 block.
void InverseDct8x8(const float in[64], float out[64]);

/// Standard JPEG Annex K luminance quantization table (row-major).
extern const std::array<uint16_t, 64> kLumaQuantBase;

/// Standard JPEG Annex K chrominance quantization table.
extern const std::array<uint16_t, 64> kChromaQuantBase;

/// Scales a base table for a quality setting 1..100 using the libjpeg
/// convention (50 = base table; higher = finer quantization).
std::array<uint16_t, 64> ScaleQuantTable(const std::array<uint16_t, 64>& base,
                                         int quality);

/// Zigzag scan order: kZigzag[i] is the row-major index of the i-th
/// coefficient in zigzag order.
extern const std::array<uint8_t, 64> kZigzag;

}  // namespace tbm

#endif  // TBM_CODEC_DCT_H_

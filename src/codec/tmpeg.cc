#include "codec/tmpeg.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "base/io.h"
#include "base/macros.h"
#include "codec/codec_metrics.h"
#include "codec/color.h"
#include "obs/trace.h"
#include "codec/dct.h"
#include "codec/tjpeg.h"

namespace tbm {

std::string_view FrameKindToString(FrameKind kind) {
  switch (kind) {
    case FrameKind::kKey: return "key";
    case FrameKind::kDelta: return "delta";
    case FrameKind::kBidirectional: return "bidirectional";
  }
  return "unknown";
}

namespace {

constexpr uint32_t kTmpegMagic = 0x4745'504Du;  // 'MPEG'-ish tag.

// Working representation of a frame: three int16 YUV 4:2:0 planes.
struct Planes {
  int32_t w = 0, h = 0;    // Luma geometry.
  int32_t cw = 0, ch = 0;  // Chroma geometry.
  std::vector<int16_t> y, u, v;
};

Result<Planes> ToPlanes(const Image& rgb) {
  TBM_ASSIGN_OR_RETURN(Image yuv, RgbToYuv(rgb, ColorModel::kYuv420));
  Planes p;
  p.w = yuv.width;
  p.h = yuv.height;
  p.cw = yuv.ChromaWidth();
  p.ch = yuv.ChromaHeight();
  const size_t luma = static_cast<size_t>(p.w) * p.h;
  const size_t chroma = static_cast<size_t>(p.cw) * p.ch;
  p.y.resize(luma);
  p.u.resize(chroma);
  p.v.resize(chroma);
  for (size_t i = 0; i < luma; ++i) p.y[i] = yuv.data[i];
  for (size_t i = 0; i < chroma; ++i) p.u[i] = yuv.data[luma + i];
  for (size_t i = 0; i < chroma; ++i) p.v[i] = yuv.data[luma + chroma + i];
  return p;
}

Result<Image> FromPlanes(const Planes& p) {
  Image yuv = Image::Zero(p.w, p.h, ColorModel::kYuv420);
  const size_t luma = static_cast<size_t>(p.w) * p.h;
  const size_t chroma = static_cast<size_t>(p.cw) * p.ch;
  Bytes pixels_out(yuv.data.size(), 0);
  for (size_t i = 0; i < luma; ++i) {
    pixels_out[i] = static_cast<uint8_t>(std::clamp<int>(p.y[i], 0, 255));
  }
  for (size_t i = 0; i < chroma; ++i) {
    pixels_out[luma + i] = static_cast<uint8_t>(std::clamp<int>(p.u[i], 0, 255));
  }
  for (size_t i = 0; i < chroma; ++i) {
    pixels_out[luma + chroma + i] =
        static_cast<uint8_t>(std::clamp<int>(p.v[i], 0, 255));
  }
  yuv.data = std::move(pixels_out);
  return YuvToRgb(yuv);
}

// Encodes the difference (cur - pred) of each plane; pass pred=nullptr
// for intra coding (level shift by 128 instead).
void EncodePlanes(const Planes& cur, const Planes* pred, int quality,
                  BinaryWriter* writer) {
  auto luma_q = ScaleQuantTable(kLumaQuantBase, quality);
  auto chroma_q = ScaleQuantTable(kChromaQuantBase, quality);
  auto encode_one = [&](const std::vector<int16_t>& plane,
                        const std::vector<int16_t>* ref, int32_t w, int32_t h,
                        const std::array<uint16_t, 64>& q) {
    std::vector<int16_t> residual(plane.size());
    for (size_t i = 0; i < plane.size(); ++i) {
      residual[i] =
          static_cast<int16_t>(plane[i] - (ref ? (*ref)[i] : 128));
    }
    tjpeg_internal::EncodePlane(residual.data(), w, h, q, writer);
  };
  encode_one(cur.y, pred ? &pred->y : nullptr, cur.w, cur.h, luma_q);
  encode_one(cur.u, pred ? &pred->u : nullptr, cur.cw, cur.ch, chroma_q);
  encode_one(cur.v, pred ? &pred->v : nullptr, cur.cw, cur.ch, chroma_q);
}

Status DecodePlanes(BinaryReader* reader, const Planes* pred, int quality,
                    Planes* out) {
  auto luma_q = ScaleQuantTable(kLumaQuantBase, quality);
  auto chroma_q = ScaleQuantTable(kChromaQuantBase, quality);
  auto decode_one = [&](std::vector<int16_t>* plane,
                        const std::vector<int16_t>* ref, int32_t w, int32_t h,
                        const std::array<uint16_t, 64>& q) -> Status {
    std::vector<int16_t> residual(static_cast<size_t>(w) * h);
    TBM_RETURN_IF_ERROR(
        tjpeg_internal::DecodePlane(reader, w, h, q, residual.data()));
    plane->resize(residual.size());
    for (size_t i = 0; i < residual.size(); ++i) {
      (*plane)[i] = static_cast<int16_t>(
          std::clamp<int>(residual[i] + (ref ? (*ref)[i] : 128), 0, 255));
    }
    return Status::OK();
  };
  TBM_RETURN_IF_ERROR(
      decode_one(&out->y, pred ? &pred->y : nullptr, out->w, out->h, luma_q));
  TBM_RETURN_IF_ERROR(decode_one(&out->u, pred ? &pred->u : nullptr, out->cw,
                                 out->ch, chroma_q));
  TBM_RETURN_IF_ERROR(decode_one(&out->v, pred ? &pred->v : nullptr, out->cw,
                                 out->ch, chroma_q));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Block motion compensation

struct MotionVector {
  int8_t dx = 0;
  int8_t dy = 0;
};

constexpr int kMcBlock = 16;      // Luma block edge.
constexpr int kMcSearch = 4;      // Search window radius, pixels.

int BlocksAcross(int32_t extent) {
  return static_cast<int>((extent + kMcBlock - 1) / kMcBlock);
}

// Sum of absolute differences between a cur block and a prev block
// shifted by (dx, dy); out-of-frame prev samples clamp to the edge.
int64_t BlockSad(const Planes& cur, const Planes& prev, int32_t bx,
                 int32_t by, int dx, int dy) {
  int64_t sad = 0;
  for (int32_t y = by; y < std::min<int32_t>(by + kMcBlock, cur.h); ++y) {
    int32_t sy = std::clamp<int32_t>(y + dy, 0, prev.h - 1);
    for (int32_t x = bx; x < std::min<int32_t>(bx + kMcBlock, cur.w); ++x) {
      int32_t sx = std::clamp<int32_t>(x + dx, 0, prev.w - 1);
      sad += std::abs(static_cast<int>(cur.y[y * cur.w + x]) -
                      prev.y[sy * prev.w + sx]);
    }
  }
  return sad;
}

// Full search over the window, row-major block order.
std::vector<MotionVector> EstimateMotion(const Planes& cur,
                                         const Planes& prev) {
  std::vector<MotionVector> mvs;
  mvs.reserve(static_cast<size_t>(BlocksAcross(cur.w)) * BlocksAcross(cur.h));
  for (int32_t by = 0; by < cur.h; by += kMcBlock) {
    for (int32_t bx = 0; bx < cur.w; bx += kMcBlock) {
      MotionVector best;
      int64_t best_sad = BlockSad(cur, prev, bx, by, 0, 0);
      for (int dy = -kMcSearch; dy <= kMcSearch; ++dy) {
        for (int dx = -kMcSearch; dx <= kMcSearch; ++dx) {
          if (dx == 0 && dy == 0) continue;
          int64_t sad = BlockSad(cur, prev, bx, by, dx, dy);
          if (sad < best_sad) {
            best_sad = sad;
            best.dx = static_cast<int8_t>(dx);
            best.dy = static_cast<int8_t>(dy);
          }
        }
      }
      mvs.push_back(best);
    }
  }
  return mvs;
}

// Builds the motion-compensated prediction: each luma block copied from
// prev at its vector; chroma uses half-pel-truncated vectors on the
// subsampled planes.
Planes MotionPredict(const Planes& prev,
                     const std::vector<MotionVector>& mvs) {
  Planes out = prev;  // Geometry template; planes overwritten below.
  const int blocks_across = BlocksAcross(prev.w);
  auto shift_plane = [&](const std::vector<int16_t>& src,
                         std::vector<int16_t>* dst, int32_t w, int32_t h,
                         int mv_shift) {
    for (int32_t y = 0; y < h; ++y) {
      for (int32_t x = 0; x < w; ++x) {
        int block_index =
            (y * (1 << mv_shift) / kMcBlock) * blocks_across +
            (x * (1 << mv_shift) / kMcBlock);
        const MotionVector& mv = mvs[block_index];
        int32_t sx = std::clamp<int32_t>(x + (mv.dx >> mv_shift), 0, w - 1);
        int32_t sy = std::clamp<int32_t>(y + (mv.dy >> mv_shift), 0, h - 1);
        (*dst)[y * w + x] = src[sy * w + sx];
      }
    }
  };
  shift_plane(prev.y, &out.y, prev.w, prev.h, 0);
  shift_plane(prev.u, &out.u, prev.cw, prev.ch, 1);
  shift_plane(prev.v, &out.v, prev.cw, prev.ch, 1);
  return out;
}

void WriteMotionVectors(const std::vector<MotionVector>& mvs,
                        BinaryWriter* writer) {
  writer->WriteVarU64(mvs.size());
  for (const MotionVector& mv : mvs) {
    writer->WriteU8(static_cast<uint8_t>(mv.dx));
    writer->WriteU8(static_cast<uint8_t>(mv.dy));
  }
}

Result<std::vector<MotionVector>> ReadMotionVectors(BinaryReader* reader) {
  TBM_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarU64());
  if (count > (1u << 22)) {
    return Status::Corruption("implausible motion-vector count");
  }
  std::vector<MotionVector> mvs(count);
  for (uint64_t i = 0; i < count; ++i) {
    TBM_ASSIGN_OR_RETURN(uint8_t dx, reader->ReadU8());
    TBM_ASSIGN_OR_RETURN(uint8_t dy, reader->ReadU8());
    mvs[i].dx = static_cast<int8_t>(dx);
    mvs[i].dy = static_cast<int8_t>(dy);
  }
  return mvs;
}

// Linear interpolation of two reference frames: the prediction for a
// bidirectional frame at position p between keys at a < p < b.
Planes Interpolate(const Planes& before, const Planes& after, double weight) {
  Planes out = before;
  auto mix = [&](const std::vector<int16_t>& a, const std::vector<int16_t>& b,
                 std::vector<int16_t>* o) {
    for (size_t i = 0; i < a.size(); ++i) {
      (*o)[i] = static_cast<int16_t>(
          std::lround((1.0 - weight) * a[i] + weight * b[i]));
    }
  };
  mix(before.y, after.y, &out.y);
  mix(before.u, after.u, &out.u);
  mix(before.v, after.v, &out.v);
  return out;
}

void WriteFrameHeader(BinaryWriter* writer, FrameKind kind, int32_t w,
                      int32_t h, int quality, int64_t presentation,
                      int64_t ref_before, int64_t ref_after,
                      bool motion_compensated = false) {
  writer->WriteU32(kTmpegMagic);
  writer->WriteU8(static_cast<uint8_t>(kind));
  writer->WriteU8(static_cast<uint8_t>(quality));
  writer->WriteVarU64(static_cast<uint64_t>(w));
  writer->WriteVarU64(static_cast<uint64_t>(h));
  writer->WriteVarI64(presentation);
  writer->WriteVarI64(ref_before);
  writer->WriteVarI64(ref_after);
  writer->WriteU8(motion_compensated ? 1 : 0);
}

struct FrameHeader {
  FrameKind kind;
  int quality;
  int32_t w, h;
  int64_t presentation;
  int64_t ref_before, ref_after;
  bool motion_compensated = false;
};

Result<FrameHeader> ReadFrameHeader(BinaryReader* reader) {
  FrameHeader hdr;
  TBM_ASSIGN_OR_RETURN(uint32_t magic, reader->ReadU32());
  if (magic != kTmpegMagic) return Status::Corruption("not a TMPEG frame");
  TBM_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadU8());
  if (kind > static_cast<uint8_t>(FrameKind::kBidirectional)) {
    return Status::Corruption("bad TMPEG frame kind");
  }
  hdr.kind = static_cast<FrameKind>(kind);
  TBM_ASSIGN_OR_RETURN(uint8_t quality, reader->ReadU8());
  if (quality < 1 || quality > 100) {
    return Status::Corruption("bad TMPEG quality");
  }
  hdr.quality = quality;
  TBM_ASSIGN_OR_RETURN(uint64_t w, reader->ReadVarU64());
  TBM_ASSIGN_OR_RETURN(uint64_t h, reader->ReadVarU64());
  if (w == 0 || h == 0 || w > (1u << 20) || h > (1u << 20)) {
    return Status::Corruption("implausible TMPEG geometry");
  }
  hdr.w = static_cast<int32_t>(w);
  hdr.h = static_cast<int32_t>(h);
  TBM_ASSIGN_OR_RETURN(hdr.presentation, reader->ReadVarI64());
  TBM_ASSIGN_OR_RETURN(hdr.ref_before, reader->ReadVarI64());
  TBM_ASSIGN_OR_RETURN(hdr.ref_after, reader->ReadVarI64());
  TBM_ASSIGN_OR_RETURN(uint8_t mc, reader->ReadU8());
  hdr.motion_compensated = mc != 0;
  return hdr;
}

}  // namespace

Result<std::vector<TmpegFrame>> TmpegEncodeSequence(
    const std::vector<Image>& frames, const TmpegConfig& config) {
  obs::ScopedSpan span("codec.tmpeg.encode");
  const auto& metrics = codec_internal::CodecMetrics::Get();
  obs::ScopedTimerUs timer(metrics.encode_us);
  metrics.encodes->Add();
  if (frames.empty()) {
    return Status::InvalidArgument("cannot encode an empty sequence");
  }
  if (config.quality < 1 || config.quality > 100) {
    return Status::InvalidArgument("TMPEG quality must be 1..100");
  }
  if (config.key_interval < 1) {
    return Status::InvalidArgument("key interval must be >= 1");
  }
  for (const Image& f : frames) {
    TBM_RETURN_IF_ERROR(f.Validate());
    if (f.model != ColorModel::kRgb24) {
      return Status::InvalidArgument("TMPEG encodes RGB frames");
    }
    if (f.width != frames.front().width ||
        f.height != frames.front().height) {
      return Status::InvalidArgument("all frames must share geometry");
    }
  }

  std::vector<TmpegFrame> out;
  const int64_t n = static_cast<int64_t>(frames.size());

  auto encode_key = [&](int64_t i) -> Result<Planes> {
    TBM_ASSIGN_OR_RETURN(Planes cur, ToPlanes(frames[i]));
    BinaryWriter writer;
    WriteFrameHeader(&writer, FrameKind::kKey, cur.w, cur.h, config.quality,
                     i, -1, -1);
    EncodePlanes(cur, nullptr, config.quality, &writer);
    TmpegFrame frame;
    frame.data = writer.TakeBuffer();
    frame.kind = FrameKind::kKey;
    frame.presentation_index = i;
    out.push_back(std::move(frame));
    // Closed loop: reconstruct exactly as the decoder will.
    BinaryReader reader(out.back().data);
    TBM_ASSIGN_OR_RETURN(FrameHeader hdr, ReadFrameHeader(&reader));
    Planes recon = cur;  // Geometry only; planes overwritten below.
    TBM_RETURN_IF_ERROR(DecodePlanes(&reader, nullptr, hdr.quality, &recon));
    return recon;
  };

  if (!config.bidirectional) {
    // Forward-delta mode: key, then deltas from the previous
    // reconstruction; storage order equals presentation order.
    Planes prev;
    for (int64_t i = 0; i < n; ++i) {
      if (i % config.key_interval == 0) {
        TBM_ASSIGN_OR_RETURN(prev, encode_key(i));
        continue;
      }
      TBM_ASSIGN_OR_RETURN(Planes cur, ToPlanes(frames[i]));
      BinaryWriter writer;
      WriteFrameHeader(&writer, FrameKind::kDelta, cur.w, cur.h,
                       config.quality, i, i - 1, -1,
                       config.motion_compensation);
      Planes mc_pred;
      const Planes* pred = &prev;
      if (config.motion_compensation) {
        std::vector<MotionVector> mvs = EstimateMotion(cur, prev);
        WriteMotionVectors(mvs, &writer);
        mc_pred = MotionPredict(prev, mvs);
        pred = &mc_pred;
      }
      EncodePlanes(cur, pred, config.quality, &writer);
      TmpegFrame frame;
      frame.data = writer.TakeBuffer();
      frame.kind = FrameKind::kDelta;
      frame.presentation_index = i;
      frame.ref_before = i - 1;
      out.push_back(std::move(frame));
      // Closed loop: reconstruct exactly as the decoder will.
      BinaryReader reader(out.back().data);
      TBM_ASSIGN_OR_RETURN(FrameHeader hdr, ReadFrameHeader(&reader));
      if (hdr.motion_compensated) {
        TBM_RETURN_IF_ERROR(ReadMotionVectors(&reader).status());
      }
      Planes recon = cur;
      TBM_RETURN_IF_ERROR(DecodePlanes(&reader, pred, hdr.quality, &recon));
      prev = std::move(recon);
    }
    return out;
  }

  // Bidirectional mode: keys at multiples of key_interval (and the last
  // frame); intermediates predicted from the bracketing keys. Storage
  // order places both keys before their intermediates — the paper's
  // "1,4,2,3" placement.
  std::map<int64_t, Planes> key_recon;
  std::vector<int64_t> key_positions;
  for (int64_t i = 0; i < n; i += config.key_interval) {
    key_positions.push_back(i);
  }
  if (key_positions.back() != n - 1) key_positions.push_back(n - 1);

  for (int64_t pos : key_positions) {
    TBM_ASSIGN_OR_RETURN(Planes recon, encode_key(pos));
    key_recon.emplace(pos, std::move(recon));
  }
  for (size_t k = 0; k + 1 < key_positions.size(); ++k) {
    const int64_t a = key_positions[k];
    const int64_t b = key_positions[k + 1];
    for (int64_t i = a + 1; i < b; ++i) {
      TBM_ASSIGN_OR_RETURN(Planes cur, ToPlanes(frames[i]));
      double weight = static_cast<double>(i - a) / static_cast<double>(b - a);
      Planes pred = Interpolate(key_recon.at(a), key_recon.at(b), weight);
      BinaryWriter writer;
      WriteFrameHeader(&writer, FrameKind::kBidirectional, cur.w, cur.h,
                       config.quality, i, a, b);
      EncodePlanes(cur, &pred, config.quality, &writer);
      TmpegFrame frame;
      frame.data = writer.TakeBuffer();
      frame.kind = FrameKind::kBidirectional;
      frame.presentation_index = i;
      frame.ref_before = a;
      frame.ref_after = b;
      out.push_back(std::move(frame));
    }
  }
  return out;
}

Result<std::vector<Image>> TmpegDecodeSequence(
    const std::vector<TmpegFrame>& frames) {
  obs::ScopedSpan span("codec.tmpeg.decode");
  const auto& metrics = codec_internal::CodecMetrics::Get();
  obs::ScopedTimerUs timer(metrics.decode_us);
  metrics.decodes->Add();
  if (frames.empty()) {
    return Status::InvalidArgument("cannot decode an empty sequence");
  }
  std::map<int64_t, Planes> decoded;  // presentation index -> planes.
  for (const TmpegFrame& frame : frames) {
    BinaryReader reader(frame.data);
    TBM_ASSIGN_OR_RETURN(FrameHeader hdr, ReadFrameHeader(&reader));
    Planes out;
    out.w = hdr.w;
    out.h = hdr.h;
    out.cw = (hdr.w + 1) / 2;
    out.ch = (hdr.h + 1) / 2;
    switch (hdr.kind) {
      case FrameKind::kKey: {
        TBM_RETURN_IF_ERROR(DecodePlanes(&reader, nullptr, hdr.quality, &out));
        break;
      }
      case FrameKind::kDelta: {
        auto ref = decoded.find(hdr.ref_before);
        if (ref == decoded.end()) {
          return Status::FailedPrecondition(
              "delta frame " + std::to_string(hdr.presentation) +
              " arrived before its reference " +
              std::to_string(hdr.ref_before));
        }
        Planes mc_pred;
        const Planes* pred = &ref->second;
        if (hdr.motion_compensated) {
          TBM_ASSIGN_OR_RETURN(std::vector<MotionVector> mvs,
                               ReadMotionVectors(&reader));
          const size_t expected =
              static_cast<size_t>(BlocksAcross(hdr.w)) * BlocksAcross(hdr.h);
          if (mvs.size() != expected) {
            return Status::Corruption("motion-vector count mismatch");
          }
          mc_pred = MotionPredict(ref->second, mvs);
          pred = &mc_pred;
        }
        TBM_RETURN_IF_ERROR(DecodePlanes(&reader, pred, hdr.quality, &out));
        break;
      }
      case FrameKind::kBidirectional: {
        auto before = decoded.find(hdr.ref_before);
        auto after = decoded.find(hdr.ref_after);
        if (before == decoded.end() || after == decoded.end()) {
          return Status::FailedPrecondition(
              "bidirectional frame " + std::to_string(hdr.presentation) +
              " arrived before its reference keys");
        }
        double weight =
            static_cast<double>(hdr.presentation - hdr.ref_before) /
            static_cast<double>(hdr.ref_after - hdr.ref_before);
        Planes pred = Interpolate(before->second, after->second, weight);
        TBM_RETURN_IF_ERROR(DecodePlanes(&reader, &pred, hdr.quality, &out));
        break;
      }
    }
    decoded.emplace(hdr.presentation, std::move(out));
  }
  std::vector<Image> out;
  out.reserve(decoded.size());
  int64_t expected = 0;
  for (const auto& [presentation, planes] : decoded) {
    if (presentation != expected++) {
      return Status::Corruption("missing frame " +
                                std::to_string(expected - 1));
    }
    TBM_ASSIGN_OR_RETURN(Image rgb, FromPlanes(planes));
    out.push_back(std::move(rgb));
  }
  return out;
}

Result<TmpegFrame> TmpegParseFrame(BufferSlice data) {
  BinaryReader reader(data);
  TBM_ASSIGN_OR_RETURN(FrameHeader hdr, ReadFrameHeader(&reader));
  TmpegFrame frame;
  frame.data = std::move(data);
  frame.kind = hdr.kind;
  frame.presentation_index = hdr.presentation;
  frame.ref_before = hdr.ref_before;
  frame.ref_after = hdr.ref_after;
  return frame;
}

Result<std::vector<std::pair<int64_t, Image>>> TmpegDecodeKeysOnly(
    const std::vector<TmpegFrame>& frames) {
  obs::ScopedSpan span("codec.tmpeg.decode_keys");
  const auto& metrics = codec_internal::CodecMetrics::Get();
  obs::ScopedTimerUs timer(metrics.decode_us);
  metrics.decodes->Add();
  std::vector<std::pair<int64_t, Image>> out;
  for (const TmpegFrame& frame : frames) {
    if (frame.kind != FrameKind::kKey) continue;
    BinaryReader reader(frame.data);
    TBM_ASSIGN_OR_RETURN(FrameHeader hdr, ReadFrameHeader(&reader));
    Planes planes;
    planes.w = hdr.w;
    planes.h = hdr.h;
    planes.cw = (hdr.w + 1) / 2;
    planes.ch = (hdr.h + 1) / 2;
    TBM_RETURN_IF_ERROR(DecodePlanes(&reader, nullptr, hdr.quality, &planes));
    TBM_ASSIGN_OR_RETURN(Image rgb, FromPlanes(planes));
    out.emplace_back(hdr.presentation, std::move(rgb));
  }
  return out;
}

}  // namespace tbm

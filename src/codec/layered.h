#ifndef TBM_CODEC_LAYERED_H_
#define TBM_CODEC_LAYERED_H_

#include "codec/image.h"

namespace tbm {

/// Layered (scalable) image coding.
///
/// The paper's §2.2 scalability point, citing Lippman's "Feature Sets
/// for Interactive Images" [10]: representations should allow
/// "presentation at different levels of detail ... bandwidth can be
/// saved and processing reduced if the video sequence is 'scaled' to a
/// lower resolution by ignoring parts of the storage unit."
///
/// A layered encoding splits an image into:
///  - a *base layer*: the image downscaled 2× per pyramid level and
///    TJPEG-coded — small, decodable alone at reduced resolution;
///  - an *enhancement layer* per level: the residual against the
///    upscaled lower level, TJPEG-coded at higher quality.
///
/// A reader wanting a preview fetches only the base layer's byte
/// range; full fidelity reads everything. The two byte ranges are what
/// an interpretation exposes as separately addressable parts of the
/// element.
struct LayeredImage {
  Bytes base;         ///< Self-contained low-resolution layer.
  Bytes enhancement;  ///< Residual layer (needs `base`).
  int32_t full_width = 0;
  int32_t full_height = 0;
};

struct LayeredConfig {
  int base_quality = 60;         ///< TJPEG quality of the base layer.
  int enhancement_quality = 85;  ///< Quality of the residual layer.
};

/// Encodes an RGB image into base + enhancement layers. The base layer
/// is the half-resolution image; the enhancement layer carries the
/// residual to full resolution.
Result<LayeredImage> LayeredEncode(const Image& image,
                                   const LayeredConfig& config = {});

/// Decodes only the base layer: a half-resolution preview, upscaled to
/// full geometry so callers get a drop-in (blurrier) image.
Result<Image> LayeredDecodeBase(const LayeredImage& layered);

/// Decodes base + enhancement to the full-fidelity image.
Result<Image> LayeredDecodeFull(const LayeredImage& layered);

}  // namespace tbm

#endif  // TBM_CODEC_LAYERED_H_

#include "codec/tjpeg.h"

#include <algorithm>
#include <cmath>

#include "base/macros.h"
#include "base/simd.h"
#include "codec/codec_metrics.h"
#include "codec/color.h"
#include "obs/trace.h"
#include "codec/dct.h"

namespace tbm {

namespace tjpeg_internal {

namespace {

constexpr uint64_t kEobMarker = 64;  // Zero-run value signalling end of block.

// Extracts an 8×8 block at (bx,by) with edge replication.
void ExtractBlock(const int16_t* plane, int32_t w, int32_t h, int32_t bx,
                  int32_t by, float out[64]) {
  for (int y = 0; y < 8; ++y) {
    int32_t sy = std::min<int32_t>(by + y, h - 1);
    for (int x = 0; x < 8; ++x) {
      int32_t sx = std::min<int32_t>(bx + x, w - 1);
      out[y * 8 + x] = static_cast<float>(plane[sy * w + sx]);
    }
  }
}

void StoreBlock(const float in[64], int32_t w, int32_t h, int32_t bx,
                int32_t by, int16_t* plane) {
  for (int y = 0; y < 8 && by + y < h; ++y) {
    for (int x = 0; x < 8 && bx + x < w; ++x) {
      plane[(by + y) * w + bx + x] = static_cast<int16_t>(
          std::lround(std::clamp(in[y * 8 + x], -32768.0f, 32767.0f)));
    }
  }
}

}  // namespace

void EncodePlane(const int16_t* plane, int32_t w, int32_t h,
                 const std::array<uint16_t, 64>& quant, BinaryWriter* writer) {
  float block[64], coeffs[64];
  float qf[64];
  for (int i = 0; i < 64; ++i) qf[i] = static_cast<float>(quant[i]);
  int32_t prev_dc = 0;
  for (int32_t by = 0; by < h; by += 8) {
    for (int32_t bx = 0; bx < w; bx += 8) {
      ExtractBlock(plane, w, h, bx, by, block);
      ForwardDct8x8(block, coeffs);
      // Quantize four coefficients per step; rounds to nearest even on
      // every backend.
      int32_t q[64];
      for (int i = 0; i < 64; i += 4) {
        (simd::F32x4::Load(&coeffs[i]) / simd::F32x4::Load(&qf[i]))
            .RoundStoreI32(&q[i]);
      }
      // DC: delta from previous block.
      writer->WriteVarI64(q[0] - prev_dc);
      prev_dc = q[0];
      // AC: zigzag runs of zeros before each nonzero value.
      uint64_t run = 0;
      for (int k = 1; k < 64; ++k) {
        int32_t v = q[kZigzag[k]];
        if (v == 0) {
          ++run;
        } else {
          writer->WriteVarU64(run);
          writer->WriteVarI64(v);
          run = 0;
        }
      }
      writer->WriteVarU64(kEobMarker);
    }
  }
}

Status DecodePlane(BinaryReader* reader, int32_t w, int32_t h,
                   const std::array<uint16_t, 64>& quant, int16_t* plane) {
  float coeffs[64], block[64];
  float qf[64];
  for (int i = 0; i < 64; ++i) qf[i] = static_cast<float>(quant[i]);
  int32_t prev_dc = 0;
  for (int32_t by = 0; by < h; by += 8) {
    for (int32_t bx = 0; bx < w; bx += 8) {
      int32_t q[64] = {0};
      TBM_ASSIGN_OR_RETURN(int64_t dc_delta, reader->ReadVarI64());
      prev_dc += static_cast<int32_t>(dc_delta);
      q[0] = prev_dc;
      int k = 1;
      while (k < 64) {
        TBM_ASSIGN_OR_RETURN(uint64_t run, reader->ReadVarU64());
        if (run == kEobMarker) break;
        k += static_cast<int>(run);
        if (k >= 64) return Status::Corruption("TJPEG: AC run overflow");
        TBM_ASSIGN_OR_RETURN(int64_t v, reader->ReadVarI64());
        q[kZigzag[k]] = static_cast<int32_t>(v);
        ++k;
      }
      if (k >= 64) {
        // Block filled exactly; consume its EOB marker.
        TBM_ASSIGN_OR_RETURN(uint64_t eob, reader->ReadVarU64());
        if (eob != kEobMarker) {
          return Status::Corruption("TJPEG: missing end-of-block");
        }
      }
      for (int i = 0; i < 64; i += 4) {
        (simd::F32x4::FromI32(&q[i]) * simd::F32x4::Load(&qf[i]))
            .Store(&coeffs[i]);
      }
      InverseDct8x8(coeffs, block);
      StoreBlock(block, w, h, bx, by, plane);
    }
  }
  return Status::OK();
}

}  // namespace tjpeg_internal

namespace {

constexpr uint32_t kTjpegMagic = 0x4745'504Au;  // "JPEG" reversed-ish tag.

std::vector<int16_t> LevelShift(const uint8_t* plane, size_t n) {
  std::vector<int16_t> out(n);
  simd::LevelShiftBytes(plane, out.data(), n);
  return out;
}

void LevelUnshift(const std::vector<int16_t>& plane, uint8_t* out) {
  simd::LevelUnshiftBytes(plane.data(), out, plane.size());
}

}  // namespace

Result<Bytes> TjpegEncode(const Image& image, int quality) {
  obs::ScopedSpan span("codec.tjpeg.encode");
  const auto& metrics = codec_internal::CodecMetrics::Get();
  obs::ScopedTimerUs timer(metrics.encode_us);
  metrics.encodes->Add();
  TBM_RETURN_IF_ERROR(image.Validate());
  if (quality < 1 || quality > 100) {
    return Status::InvalidArgument("TJPEG quality must be 1..100");
  }

  Image yuv;
  bool gray = false;
  if (image.model == ColorModel::kRgb24) {
    TBM_ASSIGN_OR_RETURN(yuv, RgbToYuv(image, ColorModel::kYuv420));
  } else if (image.model == ColorModel::kGray8) {
    yuv = image;
    gray = true;
  } else if (image.model == ColorModel::kYuv420) {
    yuv = image;
  } else {
    return Status::Unsupported("TJPEG encodes RGB, GRAY or YUV 4:2:0 input");
  }

  BinaryWriter writer;
  writer.WriteU32(kTjpegMagic);
  writer.WriteU8(gray ? 1 : 0);
  writer.WriteU8(static_cast<uint8_t>(image.model));
  writer.WriteU8(static_cast<uint8_t>(quality));
  writer.WriteVarU64(static_cast<uint64_t>(image.width));
  writer.WriteVarU64(static_cast<uint64_t>(image.height));

  auto luma_q = ScaleQuantTable(kLumaQuantBase, quality);
  const int32_t w = yuv.width, h = yuv.height;
  {
    auto plane = LevelShift(yuv.data.data(), static_cast<size_t>(w) * h);
    tjpeg_internal::EncodePlane(plane.data(), w, h, luma_q, &writer);
  }
  if (!gray) {
    auto chroma_q = ScaleQuantTable(kChromaQuantBase, quality);
    const int32_t cw = yuv.ChromaWidth(), ch = yuv.ChromaHeight();
    const uint8_t* u = yuv.data.data() + static_cast<size_t>(w) * h;
    const uint8_t* v = u + static_cast<size_t>(cw) * ch;
    auto u_plane = LevelShift(u, static_cast<size_t>(cw) * ch);
    tjpeg_internal::EncodePlane(u_plane.data(), cw, ch, chroma_q, &writer);
    auto v_plane = LevelShift(v, static_cast<size_t>(cw) * ch);
    tjpeg_internal::EncodePlane(v_plane.data(), cw, ch, chroma_q, &writer);
  }
  return writer.TakeBuffer();
}

Result<Image> TjpegDecode(ByteSpan bytes) {
  obs::ScopedSpan span("codec.tjpeg.decode");
  const auto& metrics = codec_internal::CodecMetrics::Get();
  obs::ScopedTimerUs timer(metrics.decode_us);
  metrics.decodes->Add();
  BinaryReader reader(bytes);
  TBM_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kTjpegMagic) {
    return Status::Corruption("not a TJPEG payload");
  }
  TBM_ASSIGN_OR_RETURN(uint8_t gray, reader.ReadU8());
  TBM_ASSIGN_OR_RETURN(uint8_t source_model, reader.ReadU8());
  TBM_ASSIGN_OR_RETURN(uint8_t quality, reader.ReadU8());
  TBM_ASSIGN_OR_RETURN(uint64_t w64, reader.ReadVarU64());
  TBM_ASSIGN_OR_RETURN(uint64_t h64, reader.ReadVarU64());
  if (w64 == 0 || h64 == 0 || w64 > (1u << 20) || h64 > (1u << 20)) {
    return Status::Corruption("TJPEG: implausible geometry");
  }
  const int32_t w = static_cast<int32_t>(w64);
  const int32_t h = static_cast<int32_t>(h64);
  if (quality < 1 || quality > 100) {
    return Status::Corruption("TJPEG: bad quality byte");
  }

  auto luma_q = ScaleQuantTable(kLumaQuantBase, quality);
  if (gray) {
    Image out = Image::Zero(w, h, ColorModel::kGray8);
    Bytes pixels_out(out.data.size(), 0);
    std::vector<int16_t> plane(static_cast<size_t>(w) * h);
    TBM_RETURN_IF_ERROR(
        tjpeg_internal::DecodePlane(&reader, w, h, luma_q, plane.data()));
    LevelUnshift(plane, pixels_out.data());
    out.data = std::move(pixels_out);
    return out;
  }

  Image yuv = Image::Zero(w, h, ColorModel::kYuv420);
  const int32_t cw = yuv.ChromaWidth(), ch = yuv.ChromaHeight();
  auto chroma_q = ScaleQuantTable(kChromaQuantBase, quality);
  Bytes pixels_out(yuv.data.size(), 0);
  {
    std::vector<int16_t> plane(static_cast<size_t>(w) * h);
    TBM_RETURN_IF_ERROR(
        tjpeg_internal::DecodePlane(&reader, w, h, luma_q, plane.data()));
    LevelUnshift(plane, pixels_out.data());
  }
  uint8_t* u = pixels_out.data() + static_cast<size_t>(w) * h;
  uint8_t* v = u + static_cast<size_t>(cw) * ch;
  {
    std::vector<int16_t> plane(static_cast<size_t>(cw) * ch);
    TBM_RETURN_IF_ERROR(
        tjpeg_internal::DecodePlane(&reader, cw, ch, chroma_q, plane.data()));
    LevelUnshift(plane, u);
  }
  {
    std::vector<int16_t> plane(static_cast<size_t>(cw) * ch);
    TBM_RETURN_IF_ERROR(
        tjpeg_internal::DecodePlane(&reader, cw, ch, chroma_q, plane.data()));
    LevelUnshift(plane, v);
  }
  yuv.data = std::move(pixels_out);
  if (static_cast<ColorModel>(source_model) == ColorModel::kYuv420) {
    return yuv;
  }
  return YuvToRgb(yuv);
}

double TjpegBitsPerPixel(const Image& image, size_t encoded_bytes) {
  if (image.PixelCount() == 0) return 0.0;
  return 8.0 * static_cast<double>(encoded_bytes) /
         static_cast<double>(image.PixelCount());
}

}  // namespace tbm

#include "codec/export.h"

#include <cstdio>
#include <cstring>

#include "base/io.h"
#include "base/macros.h"

namespace tbm {

Status WritePnm(const Image& image, const std::string& path) {
  TBM_RETURN_IF_ERROR(image.Validate());
  const char* magic;
  if (image.model == ColorModel::kRgb24) {
    magic = "P6";
  } else if (image.model == ColorModel::kGray8) {
    magic = "P5";
  } else {
    return Status::Unsupported("PNM export supports RGB and GRAY images");
  }
  char header[64];
  int header_len = std::snprintf(header, sizeof(header), "%s\n%d %d\n255\n",
                                 magic, image.width, image.height);
  Bytes file;
  file.reserve(header_len + image.data.size());
  file.insert(file.end(), header, header + header_len);
  file.insert(file.end(), image.data.begin(), image.data.end());
  return WriteFile(path, file);
}

Result<Image> ReadPnm(const std::string& path) {
  TBM_ASSIGN_OR_RETURN(Bytes file, ReadFileBytes(path));
  // Parse "P6\nW H\n255\n" allowing arbitrary whitespace.
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < file.size() &&
           (file[pos] == ' ' || file[pos] == '\n' || file[pos] == '\t' ||
            file[pos] == '\r')) {
      ++pos;
    }
    // Comments.
    while (pos < file.size() && file[pos] == '#') {
      while (pos < file.size() && file[pos] != '\n') ++pos;
      while (pos < file.size() &&
             (file[pos] == ' ' || file[pos] == '\n' || file[pos] == '\t' ||
              file[pos] == '\r')) {
        ++pos;
      }
    }
  };
  auto read_int = [&]() -> Result<int> {
    skip_space();
    int value = 0;
    bool any = false;
    while (pos < file.size() && file[pos] >= '0' && file[pos] <= '9') {
      value = value * 10 + (file[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) return Status::Corruption("PNM: expected integer");
    return value;
  };

  if (file.size() < 2 || file[0] != 'P' ||
      (file[1] != '5' && file[1] != '6')) {
    return Status::Corruption("not a binary PNM file");
  }
  bool gray = file[1] == '5';
  pos = 2;
  TBM_ASSIGN_OR_RETURN(int width, read_int());
  TBM_ASSIGN_OR_RETURN(int height, read_int());
  TBM_ASSIGN_OR_RETURN(int maxval, read_int());
  if (maxval != 255) return Status::Unsupported("PNM maxval must be 255");
  ++pos;  // Single whitespace after maxval.
  Image image;
  image.width = width;
  image.height = height;
  image.model = gray ? ColorModel::kGray8 : ColorModel::kRgb24;
  size_t expected = Image::ExpectedBytes(width, height, image.model);
  if (file.size() - pos < expected) {
    return Status::Corruption("PNM: truncated pixel data");
  }
  image.data = Bytes(file.begin() + pos, file.begin() + pos + expected);
  TBM_RETURN_IF_ERROR(image.Validate());
  return image;
}

Status WriteWav(const AudioBuffer& audio, const std::string& path) {
  TBM_RETURN_IF_ERROR(audio.Validate());
  BinaryWriter writer;
  const uint32_t data_bytes =
      static_cast<uint32_t>(audio.samples.size() * 2);
  const uint32_t byte_rate =
      static_cast<uint32_t>(audio.sample_rate * audio.channels * 2);
  writer.WriteRaw(ByteSpan(reinterpret_cast<const uint8_t*>("RIFF"), 4));
  writer.WriteU32(36 + data_bytes);
  writer.WriteRaw(ByteSpan(reinterpret_cast<const uint8_t*>("WAVE"), 4));
  writer.WriteRaw(ByteSpan(reinterpret_cast<const uint8_t*>("fmt "), 4));
  writer.WriteU32(16);                 // PCM fmt chunk size.
  writer.WriteU16(1);                  // PCM.
  writer.WriteU16(static_cast<uint16_t>(audio.channels));
  writer.WriteU32(static_cast<uint32_t>(audio.sample_rate));
  writer.WriteU32(byte_rate);
  writer.WriteU16(static_cast<uint16_t>(audio.channels * 2));  // Block align.
  writer.WriteU16(16);                 // Bits per sample.
  writer.WriteRaw(ByteSpan(reinterpret_cast<const uint8_t*>("data"), 4));
  writer.WriteU32(data_bytes);
  writer.WriteRaw(audio.ToBytes());
  return WriteFile(path, writer.buffer());
}

Result<AudioBuffer> ReadWav(const std::string& path) {
  TBM_ASSIGN_OR_RETURN(Bytes file, ReadFileBytes(path));
  BinaryReader reader(file);
  TBM_ASSIGN_OR_RETURN(Bytes riff, reader.ReadRaw(4));
  if (std::memcmp(riff.data(), "RIFF", 4) != 0) {
    return Status::Corruption("not a RIFF file");
  }
  TBM_RETURN_IF_ERROR(reader.ReadU32().status());  // Chunk size.
  TBM_ASSIGN_OR_RETURN(Bytes wave, reader.ReadRaw(4));
  if (std::memcmp(wave.data(), "WAVE", 4) != 0) {
    return Status::Corruption("not a WAVE file");
  }
  int64_t sample_rate = 0;
  int32_t channels = 0;
  uint16_t bits = 0;
  // Walk chunks until "data".
  while (reader.remaining() >= 8) {
    TBM_ASSIGN_OR_RETURN(Bytes tag, reader.ReadRaw(4));
    TBM_ASSIGN_OR_RETURN(uint32_t size, reader.ReadU32());
    if (std::memcmp(tag.data(), "fmt ", 4) == 0) {
      TBM_ASSIGN_OR_RETURN(uint16_t format, reader.ReadU16());
      if (format != 1) return Status::Unsupported("only PCM WAV supported");
      TBM_ASSIGN_OR_RETURN(uint16_t ch, reader.ReadU16());
      channels = ch;
      TBM_ASSIGN_OR_RETURN(uint32_t rate, reader.ReadU32());
      sample_rate = rate;
      TBM_RETURN_IF_ERROR(reader.ReadU32().status());  // Byte rate.
      TBM_RETURN_IF_ERROR(reader.ReadU16().status());  // Block align.
      TBM_ASSIGN_OR_RETURN(bits, reader.ReadU16());
      if (size > 16) {
        TBM_RETURN_IF_ERROR(reader.ReadRaw(size - 16).status());
      }
    } else if (std::memcmp(tag.data(), "data", 4) == 0) {
      if (sample_rate == 0 || channels == 0) {
        return Status::Corruption("WAV data before fmt chunk");
      }
      if (bits != 16) return Status::Unsupported("only 16-bit WAV supported");
      TBM_ASSIGN_OR_RETURN(Bytes data, reader.ReadRaw(size));
      return AudioBuffer::FromBytes(data, sample_rate, channels);
    } else {
      TBM_RETURN_IF_ERROR(reader.ReadRaw(size).status());  // Skip chunk.
    }
  }
  return Status::Corruption("WAV file has no data chunk");
}

}  // namespace tbm

#include "codec/dct.h"

#include <algorithm>
#include <cmath>

namespace tbm {

namespace {

// Precomputed cosine basis: kCos[u][x] = c(u) * cos((2x+1)uπ/16) where
// c(0) = sqrt(1/8), c(u>0) = sqrt(2/8).
struct Basis {
  float cos_table[8][8];
  Basis() {
    for (int u = 0; u < 8; ++u) {
      float c = (u == 0) ? std::sqrt(1.0f / 8.0f) : std::sqrt(2.0f / 8.0f);
      for (int x = 0; x < 8; ++x) {
        cos_table[u][x] =
            c * std::cos((2.0f * x + 1.0f) * u * static_cast<float>(M_PI) /
                         16.0f);
      }
    }
  }
};

const Basis& GetBasis() {
  static const Basis kBasis;
  return kBasis;
}

}  // namespace

void ForwardDct8x8(const float in[64], float out[64]) {
  const auto& b = GetBasis().cos_table;
  float tmp[64];
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float acc = 0.0f;
      for (int x = 0; x < 8; ++x) acc += in[y * 8 + x] * b[u][x];
      tmp[y * 8 + u] = acc;
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float acc = 0.0f;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * b[v][y];
      out[v * 8 + u] = acc;
    }
  }
}

void InverseDct8x8(const float in[64], float out[64]) {
  const auto& b = GetBasis().cos_table;
  float tmp[64];
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      float acc = 0.0f;
      for (int v = 0; v < 8; ++v) acc += in[v * 8 + u] * b[v][y];
      tmp[y * 8 + u] = acc;
    }
  }
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      float acc = 0.0f;
      for (int u = 0; u < 8; ++u) acc += tmp[y * 8 + u] * b[u][x];
      out[y * 8 + x] = acc;
    }
  }
}

const std::array<uint16_t, 64> kLumaQuantBase = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

const std::array<uint16_t, 64> kChromaQuantBase = {
    17, 18, 24, 47, 99, 99, 99, 99,  //
    18, 21, 26, 66, 99, 99, 99, 99,  //
    24, 26, 56, 99, 99, 99, 99, 99,  //
    47, 66, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99};

std::array<uint16_t, 64> ScaleQuantTable(const std::array<uint16_t, 64>& base,
                                         int quality) {
  quality = std::clamp(quality, 1, 100);
  int scale = (quality < 50) ? 5000 / quality : 200 - 2 * quality;
  std::array<uint16_t, 64> out;
  for (int i = 0; i < 64; ++i) {
    int q = (base[i] * scale + 50) / 100;
    out[i] = static_cast<uint16_t>(std::clamp(q, 1, 255));
  }
  return out;
}

const std::array<uint8_t, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10,  //
    17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34,  //
    27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36,  //
    29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46,  //
    53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace tbm

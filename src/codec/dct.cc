#include "codec/dct.h"

#include <algorithm>
#include <cmath>

#include "base/simd.h"

namespace tbm {

namespace {

// Precomputed cosine basis: kCos[u][x] = c(u) * cos((2x+1)uπ/16) where
// c(0) = sqrt(1/8), c(u>0) = sqrt(2/8). cos_t is the transpose
// (cos_t[x][u] = cos_table[u][x]) so the vector passes can load four
// consecutive outputs' coefficients at once.
struct Basis {
  float cos_table[8][8];
  float cos_t[8][8];
  Basis() {
    for (int u = 0; u < 8; ++u) {
      float c = (u == 0) ? std::sqrt(1.0f / 8.0f) : std::sqrt(2.0f / 8.0f);
      for (int x = 0; x < 8; ++x) {
        cos_table[u][x] =
            c * std::cos((2.0f * x + 1.0f) * u * static_cast<float>(M_PI) /
                         16.0f);
      }
    }
    for (int u = 0; u < 8; ++u) {
      for (int x = 0; x < 8; ++x) cos_t[x][u] = cos_table[u][x];
    }
  }
};

const Basis& GetBasis() {
  static const Basis kBasis;
  return kBasis;
}

}  // namespace

// Both passes accumulate four outputs per vector register while keeping
// the exact per-output summation order of the scalar reference (operands
// added in ascending index order, no FMA), so vector and scalar builds
// are bit-identical.

void ForwardDct8x8(const float in[64], float out[64]) {
  using simd::F32x4;
  const auto& basis = GetBasis();
  const auto& b = basis.cos_table;
  const auto& bt = basis.cos_t;
  float tmp[64];
  // Rows: tmp[y*8+u] = Σ_x in[y*8+x] * b[u][x], four u at a time.
  for (int y = 0; y < 8; ++y) {
    for (int u0 = 0; u0 < 8; u0 += 4) {
      F32x4 acc = F32x4::Zero();
      for (int x = 0; x < 8; ++x) {
        acc = acc + F32x4::Splat(in[y * 8 + x]) * F32x4::Load(&bt[x][u0]);
      }
      acc.Store(&tmp[y * 8 + u0]);
    }
  }
  // Columns: out[v*8+u] = Σ_y tmp[y*8+u] * b[v][y], four u at a time.
  for (int v = 0; v < 8; ++v) {
    for (int u0 = 0; u0 < 8; u0 += 4) {
      F32x4 acc = F32x4::Zero();
      for (int y = 0; y < 8; ++y) {
        acc = acc + F32x4::Load(&tmp[y * 8 + u0]) * F32x4::Splat(b[v][y]);
      }
      acc.Store(&out[v * 8 + u0]);
    }
  }
}

void InverseDct8x8(const float in[64], float out[64]) {
  using simd::F32x4;
  const auto& b = GetBasis().cos_table;
  float tmp[64];
  // Columns: tmp[y*8+u] = Σ_v in[v*8+u] * b[v][y], four u at a time.
  for (int y = 0; y < 8; ++y) {
    for (int u0 = 0; u0 < 8; u0 += 4) {
      F32x4 acc = F32x4::Zero();
      for (int v = 0; v < 8; ++v) {
        acc = acc + F32x4::Load(&in[v * 8 + u0]) * F32x4::Splat(b[v][y]);
      }
      acc.Store(&tmp[y * 8 + u0]);
    }
  }
  // Rows: out[y*8+x] = Σ_u tmp[y*8+u] * b[u][x], four x at a time.
  for (int y = 0; y < 8; ++y) {
    for (int x0 = 0; x0 < 8; x0 += 4) {
      F32x4 acc = F32x4::Zero();
      for (int u = 0; u < 8; ++u) {
        acc = acc + F32x4::Splat(tmp[y * 8 + u]) * F32x4::Load(&b[u][x0]);
      }
      acc.Store(&out[y * 8 + x0]);
    }
  }
}

const std::array<uint16_t, 64> kLumaQuantBase = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

const std::array<uint16_t, 64> kChromaQuantBase = {
    17, 18, 24, 47, 99, 99, 99, 99,  //
    18, 21, 26, 66, 99, 99, 99, 99,  //
    24, 26, 56, 99, 99, 99, 99, 99,  //
    47, 66, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99};

std::array<uint16_t, 64> ScaleQuantTable(const std::array<uint16_t, 64>& base,
                                         int quality) {
  quality = std::clamp(quality, 1, 100);
  int scale = (quality < 50) ? 5000 / quality : 200 - 2 * quality;
  std::array<uint16_t, 64> out;
  for (int i = 0; i < 64; ++i) {
    int q = (base[i] * scale + 50) / 100;
    out[i] = static_cast<uint16_t>(std::clamp(q, 1, 255));
  }
  return out;
}

const std::array<uint8_t, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10,  //
    17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34,  //
    27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36,  //
    29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46,  //
    53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace tbm

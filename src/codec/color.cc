#include "codec/color.h"

#include <algorithm>
#include <cmath>

#include "base/macros.h"

namespace tbm {

namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
}

// BT.601 full-range luma/chroma.
void RgbPixelToYuv(uint8_t r, uint8_t g, uint8_t b, double* y, double* u,
                   double* v) {
  *y = 0.299 * r + 0.587 * g + 0.114 * b;
  *u = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0;
  *v = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0;
}

void YuvPixelToRgb(double y, double u, double v, uint8_t* r, uint8_t* g,
                   uint8_t* b) {
  u -= 128.0;
  v -= 128.0;
  *r = ClampByte(y + 1.402 * v);
  *g = ClampByte(y - 0.344136 * u - 0.714136 * v);
  *b = ClampByte(y + 1.772 * u);
}

}  // namespace

Result<Image> RgbToYuv(const Image& rgb, ColorModel target) {
  TBM_RETURN_IF_ERROR(rgb.Validate());
  if (rgb.model != ColorModel::kRgb24) {
    return Status::InvalidArgument("RgbToYuv expects an RGB image");
  }
  if (target != ColorModel::kYuv444 && target != ColorModel::kYuv422 &&
      target != ColorModel::kYuv420) {
    return Status::InvalidArgument("RgbToYuv target must be a YUV model");
  }
  const int32_t w = rgb.width;
  const int32_t h = rgb.height;
  Image out = Image::Zero(w, h, target);
  const int32_t cw = out.ChromaWidth();
  const int32_t ch = out.ChromaHeight();
  Bytes pixels_out(out.data.size(), 0);
  uint8_t* y_plane = pixels_out.data();
  uint8_t* u_plane = y_plane + static_cast<size_t>(w) * h;
  uint8_t* v_plane = u_plane + static_cast<size_t>(cw) * ch;

  // Accumulators for chroma averaging over each subsampling cell.
  std::vector<double> u_acc(static_cast<size_t>(cw) * ch, 0.0);
  std::vector<double> v_acc(static_cast<size_t>(cw) * ch, 0.0);
  std::vector<int> count(static_cast<size_t>(cw) * ch, 0);
  const int x_shift = (target == ColorModel::kYuv444) ? 0 : 1;
  const int y_shift = (target == ColorModel::kYuv420) ? 1 : 0;

  for (int32_t row = 0; row < h; ++row) {
    for (int32_t col = 0; col < w; ++col) {
      const uint8_t* px = rgb.data.data() + 3 * (static_cast<size_t>(row) * w + col);
      double y, u, v;
      RgbPixelToYuv(px[0], px[1], px[2], &y, &u, &v);
      y_plane[static_cast<size_t>(row) * w + col] = ClampByte(y);
      size_t ci = static_cast<size_t>(row >> y_shift) * cw + (col >> x_shift);
      u_acc[ci] += u;
      v_acc[ci] += v;
      ++count[ci];
    }
  }
  for (size_t i = 0; i < u_acc.size(); ++i) {
    u_plane[i] = ClampByte(u_acc[i] / count[i]);
    v_plane[i] = ClampByte(v_acc[i] / count[i]);
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> YuvToRgb(const Image& yuv) {
  TBM_RETURN_IF_ERROR(yuv.Validate());
  if (yuv.model != ColorModel::kYuv444 && yuv.model != ColorModel::kYuv422 &&
      yuv.model != ColorModel::kYuv420) {
    return Status::InvalidArgument("YuvToRgb expects a YUV image");
  }
  const int32_t w = yuv.width;
  const int32_t h = yuv.height;
  const int32_t cw = yuv.ChromaWidth();
  const uint8_t* y_plane = yuv.data.data();
  const uint8_t* u_plane = y_plane + static_cast<size_t>(w) * h;
  const uint8_t* v_plane =
      u_plane + static_cast<size_t>(cw) * yuv.ChromaHeight();
  const int x_shift = (yuv.model == ColorModel::kYuv444) ? 0 : 1;
  const int y_shift = (yuv.model == ColorModel::kYuv420) ? 1 : 0;

  Image out = Image::Zero(w, h, ColorModel::kRgb24);
  Bytes pixels_out(out.data.size(), 0);
  for (int32_t row = 0; row < h; ++row) {
    for (int32_t col = 0; col < w; ++col) {
      size_t ci = static_cast<size_t>(row >> y_shift) * cw + (col >> x_shift);
      uint8_t* px = pixels_out.data() + 3 * (static_cast<size_t>(row) * w + col);
      YuvPixelToRgb(y_plane[static_cast<size_t>(row) * w + col], u_plane[ci],
                    v_plane[ci], &px[0], &px[1], &px[2]);
    }
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> RgbToCmyk(const Image& rgb, const SeparationParams& params) {
  TBM_RETURN_IF_ERROR(rgb.Validate());
  if (rgb.model != ColorModel::kRgb24) {
    return Status::InvalidArgument("RgbToCmyk expects an RGB image");
  }
  if (params.black_generation < 0.0 || params.black_generation > 1.0 ||
      params.under_color_removal < 0.0 || params.under_color_removal > 1.0) {
    return Status::InvalidArgument("separation parameters must be in [0,1]");
  }
  Image out = Image::Zero(rgb.width, rgb.height, ColorModel::kCmyk32);
  Bytes pixels_out(out.data.size(), 0);
  const size_t pixels = rgb.PixelCount();
  for (size_t i = 0; i < pixels; ++i) {
    double c = 1.0 - rgb.data[3 * i + 0] / 255.0;
    double m = 1.0 - rgb.data[3 * i + 1] / 255.0;
    double y = 1.0 - rgb.data[3 * i + 2] / 255.0;
    double gray = std::min({c, m, y});
    double k = params.black_generation * gray;
    double removal = params.under_color_removal * k;
    c -= removal;
    m -= removal;
    y -= removal;
    pixels_out[4 * i + 0] = ClampByte(c * 255.0);
    pixels_out[4 * i + 1] = ClampByte(m * 255.0);
    pixels_out[4 * i + 2] = ClampByte(y * 255.0);
    pixels_out[4 * i + 3] = ClampByte(k * 255.0);
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> CmykToRgb(const Image& cmyk) {
  TBM_RETURN_IF_ERROR(cmyk.Validate());
  if (cmyk.model != ColorModel::kCmyk32) {
    return Status::InvalidArgument("CmykToRgb expects a CMYK image");
  }
  Image out = Image::Zero(cmyk.width, cmyk.height, ColorModel::kRgb24);
  Bytes pixels_out(out.data.size(), 0);
  const size_t pixels = cmyk.PixelCount();
  for (size_t i = 0; i < pixels; ++i) {
    double c = cmyk.data[4 * i + 0] / 255.0;
    double m = cmyk.data[4 * i + 1] / 255.0;
    double y = cmyk.data[4 * i + 2] / 255.0;
    double k = cmyk.data[4 * i + 3] / 255.0;
    pixels_out[3 * i + 0] = ClampByte((1.0 - std::min(1.0, c + k)) * 255.0);
    pixels_out[3 * i + 1] = ClampByte((1.0 - std::min(1.0, m + k)) * 255.0);
    pixels_out[3 * i + 2] = ClampByte((1.0 - std::min(1.0, y + k)) * 255.0);
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> CmykPlate(const Image& cmyk, int channel) {
  TBM_RETURN_IF_ERROR(cmyk.Validate());
  if (cmyk.model != ColorModel::kCmyk32) {
    return Status::InvalidArgument("CmykPlate expects a CMYK image");
  }
  if (channel < 0 || channel > 3) {
    return Status::InvalidArgument("CMYK channel must be 0..3");
  }
  Image out = Image::Zero(cmyk.width, cmyk.height, ColorModel::kGray8);
  Bytes pixels_out(out.data.size(), 0);
  const size_t pixels = cmyk.PixelCount();
  for (size_t i = 0; i < pixels; ++i) {
    pixels_out[i] = cmyk.data[4 * i + channel];
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> RgbToGray(const Image& rgb) {
  TBM_RETURN_IF_ERROR(rgb.Validate());
  if (rgb.model != ColorModel::kRgb24) {
    return Status::InvalidArgument("RgbToGray expects an RGB image");
  }
  Image out = Image::Zero(rgb.width, rgb.height, ColorModel::kGray8);
  Bytes pixels_out(out.data.size(), 0);
  const size_t pixels = rgb.PixelCount();
  for (size_t i = 0; i < pixels; ++i) {
    pixels_out[i] = ClampByte(0.299 * rgb.data[3 * i] +
                              0.587 * rgb.data[3 * i + 1] +
                              0.114 * rgb.data[3 * i + 2]);
  }
  out.data = std::move(pixels_out);
  return out;
}

}  // namespace tbm

#include "codec/color.h"

#include <algorithm>
#include <cmath>

#include "base/macros.h"
#include "base/simd.h"

namespace tbm {

namespace {

uint8_t ClampByte(double v) {
  return static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
}

// Scalar companion to the vector clamp+round below: identical
// semantics (clamp to [0,255], round to nearest even) so per-cell
// chroma averaging matches the per-pixel vector path's rounding rule.
uint8_t ClampRoundByteF(float v) {
  v = std::min(255.0f, std::max(0.0f, v));
  return static_cast<uint8_t>(std::nearbyintf(v));
}

// BT.601 full-range luma/chroma for a group of up to four pixels.
// Interleaved RGB is gathered into float lanes (padding lanes are
// zero and ignored by the caller); Y is clamped and rounded to
// nearest-even, U/V are returned unclamped for chroma-cell averaging.
// All arithmetic runs through simd::F32x4 in a fixed order, so every
// backend (SSE2/NEON/scalar) produces identical bytes.
void RgbGroupToYuv(const uint8_t* px, int n, int32_t y_out[4], float u_out[4],
                   float v_out[4]) {
  using simd::F32x4;
  float rf[4] = {0, 0, 0, 0}, gf[4] = {0, 0, 0, 0}, bf[4] = {0, 0, 0, 0};
  for (int i = 0; i < n; ++i) {
    rf[i] = px[3 * i + 0];
    gf[i] = px[3 * i + 1];
    bf[i] = px[3 * i + 2];
  }
  F32x4 r = F32x4::Load(rf), g = F32x4::Load(gf), b = F32x4::Load(bf);
  F32x4 y = F32x4::Splat(0.299f) * r + F32x4::Splat(0.587f) * g +
            F32x4::Splat(0.114f) * b;
  F32x4 u = F32x4::Splat(128.0f) - F32x4::Splat(0.168736f) * r -
            F32x4::Splat(0.331264f) * g + F32x4::Splat(0.5f) * b;
  F32x4 v = F32x4::Splat(128.0f) + F32x4::Splat(0.5f) * r -
            F32x4::Splat(0.418688f) * g - F32x4::Splat(0.081312f) * b;
  F32x4::Min(F32x4::Splat(255.0f), F32x4::Max(F32x4::Zero(), y))
      .RoundStoreI32(y_out);
  u.Store(u_out);
  v.Store(v_out);
}

// Inverse transform for a group of up to four pixels; Y/U/V lanes in,
// clamped rounded RGB int lanes out.
void YuvGroupToRgb(const float yf[4], const float uf[4], const float vf[4],
                   int32_t r_out[4], int32_t g_out[4], int32_t b_out[4]) {
  using simd::F32x4;
  F32x4 y = F32x4::Load(yf);
  F32x4 u = F32x4::Load(uf) - F32x4::Splat(128.0f);
  F32x4 v = F32x4::Load(vf) - F32x4::Splat(128.0f);
  F32x4 r = y + F32x4::Splat(1.402f) * v;
  F32x4 g = y - F32x4::Splat(0.344136f) * u - F32x4::Splat(0.714136f) * v;
  F32x4 b = y + F32x4::Splat(1.772f) * u;
  const F32x4 lo = F32x4::Zero(), hi = F32x4::Splat(255.0f);
  F32x4::Min(hi, F32x4::Max(lo, r)).RoundStoreI32(r_out);
  F32x4::Min(hi, F32x4::Max(lo, g)).RoundStoreI32(g_out);
  F32x4::Min(hi, F32x4::Max(lo, b)).RoundStoreI32(b_out);
}

}  // namespace

Result<Image> RgbToYuv(const Image& rgb, ColorModel target) {
  TBM_RETURN_IF_ERROR(rgb.Validate());
  if (rgb.model != ColorModel::kRgb24) {
    return Status::InvalidArgument("RgbToYuv expects an RGB image");
  }
  if (target != ColorModel::kYuv444 && target != ColorModel::kYuv422 &&
      target != ColorModel::kYuv420) {
    return Status::InvalidArgument("RgbToYuv target must be a YUV model");
  }
  const int32_t w = rgb.width;
  const int32_t h = rgb.height;
  Image out = Image::Zero(w, h, target);
  const int32_t cw = out.ChromaWidth();
  const int32_t ch = out.ChromaHeight();
  Bytes pixels_out(out.data.size(), 0);
  uint8_t* y_plane = pixels_out.data();
  uint8_t* u_plane = y_plane + static_cast<size_t>(w) * h;
  uint8_t* v_plane = u_plane + static_cast<size_t>(cw) * ch;

  // Accumulators for chroma averaging over each subsampling cell.
  std::vector<float> u_acc(static_cast<size_t>(cw) * ch, 0.0f);
  std::vector<float> v_acc(static_cast<size_t>(cw) * ch, 0.0f);
  std::vector<int> count(static_cast<size_t>(cw) * ch, 0);
  const int x_shift = (target == ColorModel::kYuv444) ? 0 : 1;
  const int y_shift = (target == ColorModel::kYuv420) ? 1 : 0;

  for (int32_t row = 0; row < h; ++row) {
    for (int32_t col = 0; col < w; col += 4) {
      const int n = std::min<int32_t>(4, w - col);
      const uint8_t* px =
          rgb.data.data() + 3 * (static_cast<size_t>(row) * w + col);
      int32_t y4[4];
      float u4[4], v4[4];
      RgbGroupToYuv(px, n, y4, u4, v4);
      for (int i = 0; i < n; ++i) {
        y_plane[static_cast<size_t>(row) * w + col + i] =
            static_cast<uint8_t>(y4[i]);
        size_t ci =
            static_cast<size_t>(row >> y_shift) * cw + ((col + i) >> x_shift);
        u_acc[ci] += u4[i];
        v_acc[ci] += v4[i];
        ++count[ci];
      }
    }
  }
  for (size_t i = 0; i < u_acc.size(); ++i) {
    u_plane[i] = ClampRoundByteF(u_acc[i] / static_cast<float>(count[i]));
    v_plane[i] = ClampRoundByteF(v_acc[i] / static_cast<float>(count[i]));
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> YuvToRgb(const Image& yuv) {
  TBM_RETURN_IF_ERROR(yuv.Validate());
  if (yuv.model != ColorModel::kYuv444 && yuv.model != ColorModel::kYuv422 &&
      yuv.model != ColorModel::kYuv420) {
    return Status::InvalidArgument("YuvToRgb expects a YUV image");
  }
  const int32_t w = yuv.width;
  const int32_t h = yuv.height;
  const int32_t cw = yuv.ChromaWidth();
  const uint8_t* y_plane = yuv.data.data();
  const uint8_t* u_plane = y_plane + static_cast<size_t>(w) * h;
  const uint8_t* v_plane =
      u_plane + static_cast<size_t>(cw) * yuv.ChromaHeight();
  const int x_shift = (yuv.model == ColorModel::kYuv444) ? 0 : 1;
  const int y_shift = (yuv.model == ColorModel::kYuv420) ? 1 : 0;

  Image out = Image::Zero(w, h, ColorModel::kRgb24);
  Bytes pixels_out(out.data.size(), 0);
  for (int32_t row = 0; row < h; ++row) {
    for (int32_t col = 0; col < w; col += 4) {
      const int n = std::min<int32_t>(4, w - col);
      float y4[4] = {0, 0, 0, 0}, u4[4] = {0, 0, 0, 0}, v4[4] = {0, 0, 0, 0};
      for (int i = 0; i < n; ++i) {
        size_t ci = static_cast<size_t>(row >> y_shift) * cw +
                    ((col + i) >> x_shift);
        y4[i] = y_plane[static_cast<size_t>(row) * w + col + i];
        u4[i] = u_plane[ci];
        v4[i] = v_plane[ci];
      }
      int32_t r4[4], g4[4], b4[4];
      YuvGroupToRgb(y4, u4, v4, r4, g4, b4);
      for (int i = 0; i < n; ++i) {
        uint8_t* px =
            pixels_out.data() + 3 * (static_cast<size_t>(row) * w + col + i);
        px[0] = static_cast<uint8_t>(r4[i]);
        px[1] = static_cast<uint8_t>(g4[i]);
        px[2] = static_cast<uint8_t>(b4[i]);
      }
    }
  }
  out.data = std::move(pixels_out);
  return out;
}

void RgbToCmykPixels(const uint8_t* rgb, uint8_t* cmyk, size_t n,
                     const SeparationParams& params) {
  for (size_t i = 0; i < n; ++i) {
    double c = 1.0 - rgb[3 * i + 0] / 255.0;
    double m = 1.0 - rgb[3 * i + 1] / 255.0;
    double y = 1.0 - rgb[3 * i + 2] / 255.0;
    double gray = std::min({c, m, y});
    double k = params.black_generation * gray;
    double removal = params.under_color_removal * k;
    c -= removal;
    m -= removal;
    y -= removal;
    cmyk[4 * i + 0] = ClampByte(c * 255.0);
    cmyk[4 * i + 1] = ClampByte(m * 255.0);
    cmyk[4 * i + 2] = ClampByte(y * 255.0);
    cmyk[4 * i + 3] = ClampByte(k * 255.0);
  }
}

Result<Image> RgbToCmyk(const Image& rgb, const SeparationParams& params) {
  TBM_RETURN_IF_ERROR(rgb.Validate());
  if (rgb.model != ColorModel::kRgb24) {
    return Status::InvalidArgument("RgbToCmyk expects an RGB image");
  }
  if (params.black_generation < 0.0 || params.black_generation > 1.0 ||
      params.under_color_removal < 0.0 || params.under_color_removal > 1.0) {
    return Status::InvalidArgument("separation parameters must be in [0,1]");
  }
  Image out = Image::Zero(rgb.width, rgb.height, ColorModel::kCmyk32);
  Bytes pixels_out(out.data.size(), 0);
  RgbToCmykPixels(rgb.data.data(), pixels_out.data(), rgb.PixelCount(),
                  params);
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> CmykToRgb(const Image& cmyk) {
  TBM_RETURN_IF_ERROR(cmyk.Validate());
  if (cmyk.model != ColorModel::kCmyk32) {
    return Status::InvalidArgument("CmykToRgb expects a CMYK image");
  }
  Image out = Image::Zero(cmyk.width, cmyk.height, ColorModel::kRgb24);
  Bytes pixels_out(out.data.size(), 0);
  const size_t pixels = cmyk.PixelCount();
  for (size_t i = 0; i < pixels; ++i) {
    double c = cmyk.data[4 * i + 0] / 255.0;
    double m = cmyk.data[4 * i + 1] / 255.0;
    double y = cmyk.data[4 * i + 2] / 255.0;
    double k = cmyk.data[4 * i + 3] / 255.0;
    pixels_out[3 * i + 0] = ClampByte((1.0 - std::min(1.0, c + k)) * 255.0);
    pixels_out[3 * i + 1] = ClampByte((1.0 - std::min(1.0, m + k)) * 255.0);
    pixels_out[3 * i + 2] = ClampByte((1.0 - std::min(1.0, y + k)) * 255.0);
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> CmykPlate(const Image& cmyk, int channel) {
  TBM_RETURN_IF_ERROR(cmyk.Validate());
  if (cmyk.model != ColorModel::kCmyk32) {
    return Status::InvalidArgument("CmykPlate expects a CMYK image");
  }
  if (channel < 0 || channel > 3) {
    return Status::InvalidArgument("CMYK channel must be 0..3");
  }
  Image out = Image::Zero(cmyk.width, cmyk.height, ColorModel::kGray8);
  Bytes pixels_out(out.data.size(), 0);
  const size_t pixels = cmyk.PixelCount();
  for (size_t i = 0; i < pixels; ++i) {
    pixels_out[i] = cmyk.data[4 * i + channel];
  }
  out.data = std::move(pixels_out);
  return out;
}

Result<Image> RgbToGray(const Image& rgb) {
  TBM_RETURN_IF_ERROR(rgb.Validate());
  if (rgb.model != ColorModel::kRgb24) {
    return Status::InvalidArgument("RgbToGray expects an RGB image");
  }
  Image out = Image::Zero(rgb.width, rgb.height, ColorModel::kGray8);
  Bytes pixels_out(out.data.size(), 0);
  const size_t pixels = rgb.PixelCount();
  for (size_t i = 0; i < pixels; ++i) {
    pixels_out[i] = ClampByte(0.299 * rgb.data[3 * i] +
                              0.587 * rgb.data[3 * i + 1] +
                              0.114 * rgb.data[3 * i + 2]);
  }
  out.data = std::move(pixels_out);
  return out;
}

}  // namespace tbm

#ifndef TBM_CODEC_CODEC_METRICS_H_
#define TBM_CODEC_CODEC_METRICS_H_

#include "obs/metrics.h"

namespace tbm::codec_internal {

/// Process-wide codec metrics, shared across coded representations
/// (TJPEG, TMPEG, ADPCM). Per-codec breakdown comes from the tracer's
/// spans ("codec.tjpeg.encode", ...), not from separate counters.
struct CodecMetrics {
  obs::Counter* encodes;
  obs::Counter* decodes;
  obs::Histogram* encode_us;
  obs::Histogram* decode_us;

  static const CodecMetrics& Get() {
    static const CodecMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return CodecMetrics{registry.counter("codec.encodes"),
                          registry.counter("codec.decodes"),
                          registry.histogram("codec.encode_us"),
                          registry.histogram("codec.decode_us")};
    }();
    return metrics;
  }
};

}  // namespace tbm::codec_internal

#endif  // TBM_CODEC_CODEC_METRICS_H_

#include "codec/image.h"

#include <cmath>

namespace tbm {

std::string_view ColorModelToString(ColorModel model) {
  switch (model) {
    case ColorModel::kGray8: return "GRAY";
    case ColorModel::kRgb24: return "RGB";
    case ColorModel::kYuv444: return "YUV 4:4:4";
    case ColorModel::kYuv422: return "YUV 4:2:2";
    case ColorModel::kYuv420: return "YUV 4:2:0";
    case ColorModel::kCmyk32: return "CMYK";
  }
  return "unknown";
}

int BitsPerPixel(ColorModel model) {
  switch (model) {
    case ColorModel::kGray8: return 8;
    case ColorModel::kRgb24: return 24;
    case ColorModel::kYuv444: return 24;
    case ColorModel::kYuv422: return 16;
    case ColorModel::kYuv420: return 12;
    case ColorModel::kCmyk32: return 32;
  }
  return 0;
}

namespace {
int32_t HalfUp(int32_t v) { return (v + 1) / 2; }
}  // namespace

uint64_t Image::ExpectedBytes(int32_t width, int32_t height,
                              ColorModel model) {
  uint64_t pixels = static_cast<uint64_t>(width) * height;
  switch (model) {
    case ColorModel::kGray8:
      return pixels;
    case ColorModel::kRgb24:
    case ColorModel::kYuv444:
      return pixels * 3;
    case ColorModel::kYuv422:
      return pixels + 2ull * HalfUp(width) * height;
    case ColorModel::kYuv420:
      return pixels + 2ull * HalfUp(width) * HalfUp(height);
    case ColorModel::kCmyk32:
      return pixels * 4;
  }
  return 0;
}

Image Image::Zero(int32_t width, int32_t height, ColorModel model) {
  Image img;
  img.width = width;
  img.height = height;
  img.model = model;
  img.data = Bytes(ExpectedBytes(width, height, model), 0);
  return img;
}

Status Image::Validate() const {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("non-positive image dimensions");
  }
  uint64_t expected = ExpectedBytes(width, height, model);
  if (data.size() != expected) {
    return Status::InvalidArgument(
        "image data size " + std::to_string(data.size()) + " != expected " +
        std::to_string(expected) + " for " + std::to_string(width) + "x" +
        std::to_string(height) + " " +
        std::string(ColorModelToString(model)));
  }
  return Status::OK();
}

int32_t Image::ChromaWidth() const {
  switch (model) {
    case ColorModel::kYuv422:
    case ColorModel::kYuv420:
      return HalfUp(width);
    default:
      return width;
  }
}

int32_t Image::ChromaHeight() const {
  switch (model) {
    case ColorModel::kYuv420:
      return HalfUp(height);
    default:
      return height;
  }
}

Result<double> Psnr(const Image& a, const Image& b) {
  if (a.width != b.width || a.height != b.height || a.model != b.model) {
    return Status::InvalidArgument("PSNR requires same-geometry images");
  }
  if (a.data.size() != b.data.size()) {
    return Status::InvalidArgument("PSNR: byte size mismatch");
  }
  if (a.data.empty()) return Status::InvalidArgument("PSNR of empty images");
  double sse = 0.0;
  for (size_t i = 0; i < a.data.size(); ++i) {
    double d = static_cast<double>(a.data[i]) - b.data[i];
    sse += d * d;
  }
  if (sse == 0.0) return 99.0;
  double mse = sse / static_cast<double>(a.data.size());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace tbm

#include "codec/adpcm.h"

#include <algorithm>

#include "base/macros.h"
#include "codec/codec_metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace {

// Standard IMA ADPCM tables.
constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                 -1, -1, -1, -1, 2, 4, 6, 8};

struct CoderState {
  int predictor = 0;   // Current predicted sample.
  int step_index = 0;  // Index into kStepTable.
};

uint8_t EncodeSample(CoderState* state, int16_t sample) {
  int step = kStepTable[state->step_index];
  int diff = sample - state->predictor;
  uint8_t code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  // Quantize diff against step/4, step/2, step.
  int temp = step;
  if (diff >= temp) {
    code |= 4;
    diff -= temp;
  }
  temp >>= 1;
  if (diff >= temp) {
    code |= 2;
    diff -= temp;
  }
  temp >>= 1;
  if (diff >= temp) {
    code |= 1;
  }
  // Reconstruct exactly as the decoder will.
  int diffq = step >> 3;
  if (code & 4) diffq += step;
  if (code & 2) diffq += step >> 1;
  if (code & 1) diffq += step >> 2;
  if (code & 8) {
    state->predictor -= diffq;
  } else {
    state->predictor += diffq;
  }
  state->predictor = std::clamp(state->predictor, -32768, 32767);
  state->step_index =
      std::clamp(state->step_index + kIndexTable[code], 0, 88);
  return code;
}

int16_t DecodeSample(CoderState* state, uint8_t code) {
  int step = kStepTable[state->step_index];
  int diffq = step >> 3;
  if (code & 4) diffq += step;
  if (code & 2) diffq += step >> 1;
  if (code & 1) diffq += step >> 2;
  if (code & 8) {
    state->predictor -= diffq;
  } else {
    state->predictor += diffq;
  }
  state->predictor = std::clamp(state->predictor, -32768, 32767);
  state->step_index =
      std::clamp(state->step_index + kIndexTable[code], 0, 88);
  return static_cast<int16_t>(state->predictor);
}

}  // namespace

Result<std::vector<AdpcmBlock>> AdpcmEncode(const AudioBuffer& audio,
                                            int64_t frames_per_block) {
  obs::ScopedSpan span("codec.adpcm.encode");
  const auto& metrics = codec_internal::CodecMetrics::Get();
  obs::ScopedTimerUs timer(metrics.encode_us);
  metrics.encodes->Add();
  TBM_RETURN_IF_ERROR(audio.Validate());
  if (frames_per_block <= 0) {
    return Status::InvalidArgument("frames_per_block must be positive");
  }
  const int32_t ch = audio.channels;
  std::vector<CoderState> state(ch);
  std::vector<AdpcmBlock> blocks;
  const int64_t total_frames = audio.FrameCount();

  for (int64_t block_start = 0; block_start < total_frames;
       block_start += frames_per_block) {
    const int64_t frames =
        std::min<int64_t>(frames_per_block, total_frames - block_start);
    AdpcmBlock block;
    block.frames = frames;
    for (int32_t c = 0; c < ch; ++c) {
      block.predictor.push_back(static_cast<int16_t>(
          std::clamp(state[c].predictor, -32768, 32767)));
      block.step_index.push_back(static_cast<uint8_t>(state[c].step_index));
    }
    // Channel-planar nibble layout: all of channel 0, then channel 1...
    const int64_t nibbles_per_channel = frames;
    Bytes codes((nibbles_per_channel * ch + 1) / 2, 0);
    int64_t nibble_pos = 0;
    for (int32_t c = 0; c < ch; ++c) {
      for (int64_t f = 0; f < frames; ++f) {
        int16_t sample = audio.samples[(block_start + f) * ch + c];
        uint8_t code = EncodeSample(&state[c], sample);
        if (nibble_pos % 2 == 0) {
          codes[nibble_pos / 2] = code;
        } else {
          codes[nibble_pos / 2] |= static_cast<uint8_t>(code << 4);
        }
        ++nibble_pos;
      }
    }
    block.data = std::move(codes);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

Result<AudioBuffer> AdpcmDecodeBlock(const AdpcmBlock& block,
                                     int64_t sample_rate, int32_t channels) {
  if (channels <= 0) {
    return Status::InvalidArgument("non-positive channel count");
  }
  if (block.predictor.size() != static_cast<size_t>(channels) ||
      block.step_index.size() != static_cast<size_t>(channels)) {
    return Status::InvalidArgument("ADPCM block state/channel mismatch");
  }
  const int64_t expected_nibbles = block.frames * channels;
  if (block.data.size() !=
      static_cast<size_t>((expected_nibbles + 1) / 2)) {
    return Status::Corruption("ADPCM block size mismatch");
  }
  for (uint8_t si : block.step_index) {
    if (si > 88) return Status::Corruption("ADPCM step index out of range");
  }
  AudioBuffer out;
  out.sample_rate = sample_rate;
  out.channels = channels;
  std::vector<int16_t> samples(block.frames * channels);
  int64_t nibble_pos = 0;
  for (int32_t c = 0; c < channels; ++c) {
    CoderState state;
    state.predictor = block.predictor[c];
    state.step_index = block.step_index[c];
    for (int64_t f = 0; f < block.frames; ++f) {
      uint8_t byte = block.data[nibble_pos / 2];
      uint8_t code = (nibble_pos % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
      samples[f * channels + c] = DecodeSample(&state, code);
      ++nibble_pos;
    }
  }
  out.samples = std::move(samples);
  return out;
}

Result<AudioBuffer> AdpcmDecode(const std::vector<AdpcmBlock>& blocks,
                                int64_t sample_rate, int32_t channels) {
  obs::ScopedSpan span("codec.adpcm.decode");
  const auto& metrics = codec_internal::CodecMetrics::Get();
  obs::ScopedTimerUs timer(metrics.decode_us);
  metrics.decodes->Add();
  AudioBuffer out;
  out.sample_rate = sample_rate;
  out.channels = channels;
  std::vector<int16_t> samples;
  for (const AdpcmBlock& block : blocks) {
    TBM_ASSIGN_OR_RETURN(AudioBuffer decoded,
                         AdpcmDecodeBlock(block, sample_rate, channels));
    samples.insert(samples.end(), decoded.samples.begin(),
                   decoded.samples.end());
  }
  out.samples = std::move(samples);
  TBM_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace tbm

#include "codec/layered.h"

#include <algorithm>
#include <cmath>

#include "base/macros.h"
#include "codec/tjpeg.h"

namespace tbm {

namespace {

int32_t HalfUp(int32_t v) { return (v + 1) / 2; }

// 2x box downscale of an RGB image.
Image Downscale2x(const Image& image) {
  const int32_t w = HalfUp(image.width);
  const int32_t h = HalfUp(image.height);
  Image out = Image::Zero(w, h, ColorModel::kRgb24);
  Bytes pixels_out(out.data.size(), 0);
  for (int32_t y = 0; y < h; ++y) {
    for (int32_t x = 0; x < w; ++x) {
      for (int c = 0; c < 3; ++c) {
        int sum = 0, count = 0;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            int32_t sx = 2 * x + dx, sy = 2 * y + dy;
            if (sx >= image.width || sy >= image.height) continue;
            sum += image.data[3 * (static_cast<size_t>(sy) * image.width +
                                   sx) + c];
            ++count;
          }
        }
        pixels_out[3 * (static_cast<size_t>(y) * w + x) + c] =
            static_cast<uint8_t>(sum / count);
      }
    }
  }
  out.data = std::move(pixels_out);
  return out;
}

// Bilinear upscale to an explicit geometry.
Image UpscaleTo(const Image& image, int32_t width, int32_t height) {
  Image out = Image::Zero(width, height, ColorModel::kRgb24);
  Bytes pixels_out(out.data.size(), 0);
  for (int32_t oy = 0; oy < height; ++oy) {
    double sy = (oy + 0.5) * image.height / height - 0.5;
    int32_t y0 = std::clamp<int32_t>(static_cast<int32_t>(std::floor(sy)), 0,
                                     image.height - 1);
    int32_t y1 = std::min(y0 + 1, image.height - 1);
    double fy = std::clamp(sy - y0, 0.0, 1.0);
    for (int32_t ox = 0; ox < width; ++ox) {
      double sx = (ox + 0.5) * image.width / width - 0.5;
      int32_t x0 = std::clamp<int32_t>(static_cast<int32_t>(std::floor(sx)),
                                       0, image.width - 1);
      int32_t x1 = std::min(x0 + 1, image.width - 1);
      double fx = std::clamp(sx - x0, 0.0, 1.0);
      for (int c = 0; c < 3; ++c) {
        auto px = [&](int32_t x, int32_t y) {
          return static_cast<double>(
              image.data[3 * (static_cast<size_t>(y) * image.width + x) + c]);
        };
        double v = (1 - fy) * ((1 - fx) * px(x0, y0) + fx * px(x1, y0)) +
                   fy * ((1 - fx) * px(x0, y1) + fx * px(x1, y1));
        pixels_out[3 * (static_cast<size_t>(oy) * width + ox) + c] =
            static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
      }
    }
  }
  out.data = std::move(pixels_out);
  return out;
}

}  // namespace

Result<LayeredImage> LayeredEncode(const Image& image,
                                   const LayeredConfig& config) {
  TBM_RETURN_IF_ERROR(image.Validate());
  if (image.model != ColorModel::kRgb24) {
    return Status::InvalidArgument("layered coding expects RGB input");
  }
  if (image.width < 2 || image.height < 2) {
    return Status::InvalidArgument("image too small to layer");
  }
  LayeredImage layered;
  layered.full_width = image.width;
  layered.full_height = image.height;

  Image base_image = Downscale2x(image);
  TBM_ASSIGN_OR_RETURN(layered.base,
                       TjpegEncode(base_image, config.base_quality));

  // Residual against the *decoded* base, mirroring the decoder.
  TBM_ASSIGN_OR_RETURN(Image base_decoded, TjpegDecode(layered.base));
  Image prediction = UpscaleTo(base_decoded, image.width, image.height);
  Image residual = Image::Zero(image.width, image.height, ColorModel::kRgb24);
  Bytes residual_out(residual.data.size(), 0);
  for (size_t i = 0; i < residual_out.size(); ++i) {
    // Residuals span [-255, 255]; store at half precision around 128.
    int diff = static_cast<int>(image.data[i]) - prediction.data[i];
    residual_out[i] =
        static_cast<uint8_t>(std::clamp(diff / 2 + 128, 0, 255));
  }
  residual.data = std::move(residual_out);
  TBM_ASSIGN_OR_RETURN(layered.enhancement,
                       TjpegEncode(residual, config.enhancement_quality));
  return layered;
}

Result<Image> LayeredDecodeBase(const LayeredImage& layered) {
  TBM_ASSIGN_OR_RETURN(Image base, TjpegDecode(layered.base));
  return UpscaleTo(base, layered.full_width, layered.full_height);
}

Result<Image> LayeredDecodeFull(const LayeredImage& layered) {
  TBM_ASSIGN_OR_RETURN(Image prediction, LayeredDecodeBase(layered));
  TBM_ASSIGN_OR_RETURN(Image residual, TjpegDecode(layered.enhancement));
  if (residual.width != prediction.width ||
      residual.height != prediction.height) {
    return Status::Corruption("enhancement layer geometry mismatch");
  }
  Image out = prediction;
  Bytes pixels_out = prediction.data.MutableCopy();
  for (size_t i = 0; i < pixels_out.size(); ++i) {
    int diff = (static_cast<int>(residual.data[i]) - 128) * 2;
    pixels_out[i] = static_cast<uint8_t>(
        std::clamp(static_cast<int>(prediction.data[i]) + diff, 0, 255));
  }
  out.data = std::move(pixels_out);
  return out;
}

}  // namespace tbm

#ifndef TBM_CODEC_ADPCM_H_
#define TBM_CODEC_ADPCM_H_

#include <vector>

#include "codec/pcm.h"

namespace tbm {

/// IMA ADPCM: 4-bit adaptive differential PCM, 4:1 compression.
///
/// The paper (§3.3) uses ADPCM as its canonical *heterogeneous* stream:
/// "some versions of this compression technique involve a set of
/// encoding parameters that vary over an audio sequence. These
/// parameters would be part of element descriptors." Here each encoded
/// block carries the coder state (predictor and step index per channel)
/// it starts from; those two values become the element descriptor of
/// the block's stream element, so any block can be decoded
/// independently — the basis of random access into compressed audio.
struct AdpcmBlock {
  /// 4-bit codes, one nibble per sample, channel-planar — a zero-copy
  /// view (blocks rehydrated from a BLOB alias the stored bytes).
  BufferSlice data;
  std::vector<int16_t> predictor;   ///< Per-channel predictor at block start.
  std::vector<uint8_t> step_index;  ///< Per-channel step index (0..88).
  int64_t frames = 0;               ///< Frames encoded in this block.
};

/// Encodes `audio` into blocks of `frames_per_block` frames (the last
/// block may be shorter). 4 bits/sample: a stereo 44.1 kHz stream drops
/// from 176.4 kB/s to 44.1 kB/s.
Result<std::vector<AdpcmBlock>> AdpcmEncode(const AudioBuffer& audio,
                                            int64_t frames_per_block);

/// Decodes one block independently using its carried state.
Result<AudioBuffer> AdpcmDecodeBlock(const AdpcmBlock& block,
                                     int64_t sample_rate, int32_t channels);

/// Decodes a block sequence back to PCM.
Result<AudioBuffer> AdpcmDecode(const std::vector<AdpcmBlock>& blocks,
                                int64_t sample_rate, int32_t channels);

}  // namespace tbm

#endif  // TBM_CODEC_ADPCM_H_

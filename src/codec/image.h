#ifndef TBM_CODEC_IMAGE_H_
#define TBM_CODEC_IMAGE_H_

#include <cstdint>
#include <string>

#include "base/buffer.h"
#include "base/bytes.h"
#include "base/result.h"

namespace tbm {

/// Pixel layouts understood by the codec substrate.
///
/// The paper's Figure 2 pipeline is RGB capture → YUV conversion →
/// chroma subsampling → DCT compression; CMYK appears in the Table 1
/// color-separation derivation.
enum class ColorModel : uint8_t {
  kGray8 = 0,    ///< 1 byte/pixel luminance.
  kRgb24 = 1,    ///< Interleaved R,G,B, 3 bytes/pixel.
  kYuv444 = 2,   ///< Planar Y, U, V, full resolution each.
  kYuv422 = 3,   ///< Planar Y full-res; U,V horizontally halved.
  kYuv420 = 4,   ///< Planar Y full-res; U,V halved both ways.
  kCmyk32 = 5,   ///< Interleaved C,M,Y,K, 4 bytes/pixel.
};

std::string_view ColorModelToString(ColorModel model);

/// Bits per pixel of a color model (e.g. kYuv422 = 16: the paper's
/// "8:2:2" example arrives at 12 bpp by further subsampling; we use the
/// standard planar layouts).
int BitsPerPixel(ColorModel model);

/// A raster image: width × height pixels laid out per `model`.
///
/// Planar YUV layouts store the full Y plane first, then U, then V at
/// their subsampled resolutions (chroma dimensions round up).
struct Image {
  int32_t width = 0;
  int32_t height = 0;
  ColorModel model = ColorModel::kRgb24;

  /// Pixels as a zero-copy view of shared storage. Copying an Image is
  /// O(1) and aliases the same buffer — timing-only video derivations
  /// (edit lists, reverse, repeat) rely on this to share frames
  /// structurally. Pixel-writing code takes `data.MutableCopy()`,
  /// mutates the owned copy, and assigns it back.
  BufferSlice data;

  /// Expected byte size for the given geometry and model.
  static uint64_t ExpectedBytes(int32_t width, int32_t height,
                                ColorModel model);

  /// An all-zero image of the given geometry.
  static Image Zero(int32_t width, int32_t height, ColorModel model);

  /// Checks data.size() == ExpectedBytes and positive dimensions.
  Status Validate() const;

  uint64_t PixelCount() const {
    return static_cast<uint64_t>(width) * height;
  }

  /// Chroma plane dimensions for planar models (full size otherwise).
  int32_t ChromaWidth() const;
  int32_t ChromaHeight() const;
};

/// Peak signal-to-noise ratio between two same-geometry images, in dB.
/// Infinity (as a large sentinel, 99.0) for identical images.
Result<double> Psnr(const Image& a, const Image& b);

}  // namespace tbm

#endif  // TBM_CODEC_IMAGE_H_

#ifndef TBM_CODEC_TJPEG_H_
#define TBM_CODEC_TJPEG_H_

#include <vector>

#include "base/io.h"
#include "codec/image.h"

namespace tbm {

/// TJPEG — the library's from-scratch intraframe image codec.
///
/// It is the working substitute for the JPEG compression the paper's
/// Figure 2 example applies to video frames: RGB → YUV 4:2:0 → per-
/// plane 8×8 DCT → quality-scaled quantization → zigzag + run-length
/// entropy coding. Like JPEG it is lossy, its rate is controlled by a
/// single quality knob (1..100), and — because every frame is coded
/// independently — TJPEG video can be cut, reordered and played in
/// reverse without reference chains (paper §2.1 on JPEG video).
///
/// Quality-factor policy (paper §2.2): applications should specify the
/// *named* quality factor on a media descriptor; the quality integer
/// here is the low-level parameter the library derives from it.

/// Encodes an RGB or grayscale image. Internally converts RGB to
/// YUV 4:2:0. Returns the compressed byte form (self-describing:
/// carries geometry and quality in its header).
Result<Bytes> TjpegEncode(const Image& image, int quality);

/// Decodes TJPEG bytes back to an RGB (or grayscale) image.
Result<Image> TjpegDecode(ByteSpan bytes);

/// Achieved bits per pixel of an encoding.
double TjpegBitsPerPixel(const Image& image, size_t encoded_bytes);

/// Plane-level primitives, shared with the TMPEG interframe codec.
/// Values are int16 samples (pixels are level-shifted by -128 before
/// calling; interframe residuals are used as-is).
namespace tjpeg_internal {

/// Encodes a w×h int16 plane with the given quantization table into
/// `writer`. `w` and `h` need not be multiples of 8 (edge blocks are
/// replicated).
void EncodePlane(const int16_t* plane, int32_t w, int32_t h,
                 const std::array<uint16_t, 64>& quant, BinaryWriter* writer);

/// Decodes a plane written by EncodePlane.
Status DecodePlane(BinaryReader* reader, int32_t w, int32_t h,
                   const std::array<uint16_t, 64>& quant, int16_t* plane);

}  // namespace tjpeg_internal

}  // namespace tbm

#endif  // TBM_CODEC_TJPEG_H_

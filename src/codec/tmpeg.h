#ifndef TBM_CODEC_TMPEG_H_
#define TBM_CODEC_TMPEG_H_

#include <vector>

#include "codec/image.h"

namespace tbm {

/// TMPEG — the library's from-scratch interframe video codec, standing
/// in for MPEG in the paper's examples. It exhibits the stream-shape
/// properties the data model must handle:
///
///  - "key" elements (intra-coded, TJPEG-style) from which
///    "intermediate" elements are predicted (paper §2.2, interpretation
///    / out-of-order elements);
///  - in bidirectional mode, intermediate frames are interpolated from
///    the two *bracketing* keys, so keys must be stored *before* the
///    intermediates they support: a four-frame group with keys at both
///    ends is stored in the order 1,4,2,3 — the paper's exact example;
///  - variable-size elements whose descriptors carry a per-frame
///    "frame kind" (heterogeneous stream).

/// Role of an encoded frame.
enum class FrameKind : uint8_t {
  kKey = 0,            ///< Intra-coded; decodable alone.
  kDelta = 1,          ///< Predicted from the previous frame.
  kBidirectional = 2,  ///< Interpolated from two bracketing keys.
};

std::string_view FrameKindToString(FrameKind kind);

/// One encoded frame with its presentation position. A sequence of
/// TmpegFrames is in *storage* order; `presentation_index` recovers
/// display order.
struct TmpegFrame {
  /// Encoded bytes as a zero-copy view (frames rehydrated from a BLOB
  /// alias the stored bytes).
  BufferSlice data;
  FrameKind kind = FrameKind::kKey;
  int64_t presentation_index = 0;
  /// For kBidirectional: presentation indexes of the two reference keys.
  int64_t ref_before = -1;
  int64_t ref_after = -1;
};

struct TmpegConfig {
  int quality = 50;        ///< TJPEG-style quality knob, 1..100.
  int key_interval = 12;   ///< Presentation frames per key frame.
  bool bidirectional = false;  ///< Interpolated group coding (out-of-order
                               ///< storage) instead of forward deltas.
  /// Block motion compensation for forward delta frames: 16×16 luma
  /// blocks, full search in a ±4 pixel window against the previous
  /// reconstruction. Shrinks residuals on panning/translating content
  /// at the cost of encoder search time.
  bool motion_compensation = false;
};

/// Encodes an RGB frame sequence. The returned vector is in storage
/// order: identical to presentation order in forward-delta mode;
/// keys-before-intermediates in bidirectional mode.
Result<std::vector<TmpegFrame>> TmpegEncodeSequence(
    const std::vector<Image>& frames, const TmpegConfig& config);

/// Decodes a storage-order frame sequence back to RGB frames in
/// presentation order.
Result<std::vector<Image>> TmpegDecodeSequence(
    const std::vector<TmpegFrame>& frames);

/// Parses one encoded frame's self-describing header, recovering its
/// kind, presentation index and references. Used when frames are
/// rehydrated from BLOB storage.
Result<TmpegFrame> TmpegParseFrame(BufferSlice data);

/// Decodes only the key frames of a sequence — the cheap low-fidelity
/// "scaled" read (paper §2.2, scalability): a fraction of the bytes
/// yields a reduced-rate preview. Returned pairs are (presentation
/// index, frame).
Result<std::vector<std::pair<int64_t, Image>>> TmpegDecodeKeysOnly(
    const std::vector<TmpegFrame>& frames);

}  // namespace tbm

#endif  // TBM_CODEC_TMPEG_H_

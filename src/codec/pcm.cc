#include "codec/pcm.h"

#include <algorithm>
#include <cmath>

namespace tbm {

Status AudioBuffer::Validate() const {
  if (sample_rate <= 0) {
    return Status::InvalidArgument("non-positive sample rate");
  }
  if (channels <= 0) {
    return Status::InvalidArgument("non-positive channel count");
  }
  if (samples.size() % channels != 0) {
    return Status::InvalidArgument(
        "sample count " + std::to_string(samples.size()) +
        " not divisible by channel count " + std::to_string(channels));
  }
  return Status::OK();
}

Bytes AudioBuffer::ToBytes() const {
  Bytes out(samples.size() * 2);
  for (size_t i = 0; i < samples.size(); ++i) {
    uint16_t u = static_cast<uint16_t>(samples[i]);
    out[2 * i] = static_cast<uint8_t>(u);
    out[2 * i + 1] = static_cast<uint8_t>(u >> 8);
  }
  return out;
}

Result<AudioBuffer> AudioBuffer::FromBytes(ByteSpan bytes,
                                           int64_t sample_rate,
                                           int32_t channels) {
  if (bytes.size() % 2 != 0) {
    return Status::InvalidArgument("PCM byte length must be even");
  }
  AudioBuffer buf;
  buf.sample_rate = sample_rate;
  buf.channels = channels;
  std::vector<int16_t> samples(bytes.size() / 2);
  for (size_t i = 0; i < samples.size(); ++i) {
    uint16_t u = static_cast<uint16_t>(bytes[2 * i]) |
                 static_cast<uint16_t>(bytes[2 * i + 1]) << 8;
    samples[i] = static_cast<int16_t>(u);
  }
  buf.samples = std::move(samples);
  if (auto s = buf.Validate(); !s.ok()) return s;
  return buf;
}

int16_t PeakAmplitude(const AudioBuffer& audio) {
  int32_t peak = 0;
  for (int16_t s : audio.samples) {
    peak = std::max(peak, std::abs(static_cast<int32_t>(s)));
  }
  return static_cast<int16_t>(std::min(peak, 32767));
}

double RmsAmplitude(const AudioBuffer& audio) {
  if (audio.samples.empty()) return 0.0;
  double sum = 0.0;
  for (int16_t s : audio.samples) {
    sum += static_cast<double>(s) * s;
  }
  return std::sqrt(sum / static_cast<double>(audio.samples.size()));
}

namespace audiogen {

namespace {
int16_t ToSample(double v) {
  return static_cast<int16_t>(
      std::lround(std::clamp(v, -1.0, 1.0) * 32767.0));
}

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}
}  // namespace

AudioBuffer Sine(int64_t sample_rate, int32_t channels, double frequency_hz,
                 double amplitude, double seconds) {
  AudioBuffer buf;
  buf.sample_rate = sample_rate;
  buf.channels = channels;
  int64_t frames = static_cast<int64_t>(seconds * sample_rate);
  std::vector<int16_t> samples(frames * channels);
  const double w = 2.0 * M_PI * frequency_hz / sample_rate;
  for (int64_t f = 0; f < frames; ++f) {
    int16_t s = ToSample(amplitude * std::sin(w * f));
    for (int32_t c = 0; c < channels; ++c) {
      samples[f * channels + c] = s;
    }
  }
  buf.samples = std::move(samples);
  return buf;
}

AudioBuffer Silence(int64_t sample_rate, int32_t channels, double seconds) {
  AudioBuffer buf;
  buf.sample_rate = sample_rate;
  buf.channels = channels;
  buf.samples = std::vector<int16_t>(
      static_cast<size_t>(seconds * sample_rate) * channels, 0);
  return buf;
}

AudioBuffer Noise(int64_t sample_rate, int32_t channels, double amplitude,
                  double seconds, uint64_t seed) {
  AudioBuffer buf;
  buf.sample_rate = sample_rate;
  buf.channels = channels;
  int64_t frames = static_cast<int64_t>(seconds * sample_rate);
  std::vector<int16_t> samples(frames * channels);
  uint64_t state = seed ? seed : 1;
  for (auto& s : samples) {
    double r = (static_cast<double>(XorShift(&state) >> 11) /
                static_cast<double>(1ull << 53)) * 2.0 - 1.0;
    s = ToSample(amplitude * r);
  }
  buf.samples = std::move(samples);
  return buf;
}

AudioBuffer Narration(int64_t sample_rate, int32_t channels, double seconds,
                      uint64_t seed) {
  AudioBuffer buf;
  buf.sample_rate = sample_rate;
  buf.channels = channels;
  int64_t frames = static_cast<int64_t>(seconds * sample_rate);
  std::vector<int16_t> samples(frames * channels);
  uint64_t state = seed ? seed : 7;
  // Syllable-like bursts: ~4 Hz envelope, fundamental wandering around
  // 120-220 Hz, occasional pauses.
  double fundamental = 150.0;
  double phase = 0.0;
  for (int64_t f = 0; f < frames; ++f) {
    double t = static_cast<double>(f) / sample_rate;
    if (f % (sample_rate / 4) == 0) {
      fundamental = 120.0 + static_cast<double>(XorShift(&state) % 100);
    }
    double envelope = 0.5 * (1.0 + std::sin(2.0 * M_PI * 4.0 * t));
    bool pause = (static_cast<int64_t>(t * 2.0) % 5) == 4;
    phase += 2.0 * M_PI * fundamental / sample_rate;
    double v = pause ? 0.0
                     : envelope * 0.4 *
                           (std::sin(phase) + 0.5 * std::sin(2.0 * phase) +
                            0.25 * std::sin(3.0 * phase));
    int16_t s = ToSample(v);
    for (int32_t c = 0; c < channels; ++c) {
      samples[f * channels + c] = s;
    }
  }
  buf.samples = std::move(samples);
  return buf;
}

}  // namespace audiogen

Result<double> AudioSnr(const AudioBuffer& original,
                        const AudioBuffer& decoded) {
  if (original.samples.size() != decoded.samples.size()) {
    return Status::InvalidArgument("SNR requires equal-length buffers");
  }
  if (original.samples.empty()) {
    return Status::InvalidArgument("SNR of empty buffers");
  }
  double signal = 0.0, noise = 0.0;
  for (size_t i = 0; i < original.samples.size(); ++i) {
    double s = original.samples[i];
    double d = s - decoded.samples[i];
    signal += s * s;
    noise += d * d;
  }
  if (noise == 0.0) return 99.0;
  if (signal == 0.0) return 0.0;
  return 10.0 * std::log10(signal / noise);
}

}  // namespace tbm

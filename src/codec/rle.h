#ifndef TBM_CODEC_RLE_H_
#define TBM_CODEC_RLE_H_

#include "base/bytes.h"
#include "base/result.h"

namespace tbm {

/// Byte-oriented run-length coding.
///
/// Used for lossless compression of synthetic animation cels and as
/// the simplest member of the codec family in sweeps. Format: pairs of
/// (count, byte) for runs >= 3 or literals escaped; concretely a
/// control byte c: c < 128 → copy c+1 literal bytes; c >= 128 → repeat
/// next byte c-125 times (runs of 3..130).
Bytes RleEncode(ByteSpan data);

/// Inverse of RleEncode; Corruption on malformed input.
Result<Bytes> RleDecode(ByteSpan data);

}  // namespace tbm

#endif  // TBM_CODEC_RLE_H_

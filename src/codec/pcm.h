#ifndef TBM_CODEC_PCM_H_
#define TBM_CODEC_PCM_H_

#include <cstdint>
#include <vector>

#include "base/buffer.h"
#include "base/bytes.h"
#include "base/result.h"

namespace tbm {

/// In-memory PCM audio: interleaved signed 16-bit samples.
///
/// One *frame* is one sample per channel at one instant; a stereo
/// buffer of n frames has 2n int16 samples. PCM ("a simple encoding
/// scheme for sample data", paper §3.3) is the working representation
/// for all audio processing; the 16-bit, interleaved little-endian
/// byte form matches the paper's CD-audio example (sample size 16,
/// 2 channels, 1764 sample pairs per PAL frame).
struct AudioBuffer {
  int64_t sample_rate = 44100;
  int32_t channels = 2;

  /// Interleaved samples (size = frames * channels) as a zero-copy
  /// view of shared storage — audio timing derivations (cut, excerpt)
  /// alias their source samples. Sample-writing code takes
  /// `samples.MutableCopy()`, mutates the owned vector, and assigns it
  /// back (a zero-copy wrap).
  SampleSlice samples;

  int64_t FrameCount() const {
    return channels == 0 ? 0 : static_cast<int64_t>(samples.size()) / channels;
  }
  double DurationSeconds() const {
    return sample_rate == 0
               ? 0.0
               : static_cast<double>(FrameCount()) / sample_rate;
  }

  /// Sanity: samples.size() divisible by channels, positive rate.
  Status Validate() const;

  /// Serializes to little-endian interleaved bytes (2 bytes/sample).
  Bytes ToBytes() const;

  /// Parses little-endian interleaved bytes.
  static Result<AudioBuffer> FromBytes(ByteSpan bytes, int64_t sample_rate,
                                       int32_t channels);
};

/// Peak absolute amplitude, 0..32767.
int16_t PeakAmplitude(const AudioBuffer& audio);

/// Root-mean-square amplitude.
double RmsAmplitude(const AudioBuffer& audio);

/// Deterministic test-signal generators (the "capture hardware"
/// substitute for audio).
namespace audiogen {

/// A sine tone at `frequency_hz` with amplitude in [0,1].
AudioBuffer Sine(int64_t sample_rate, int32_t channels, double frequency_hz,
                 double amplitude, double seconds);

/// Silence.
AudioBuffer Silence(int64_t sample_rate, int32_t channels, double seconds);

/// Deterministic pseudo-random noise (xorshift) with amplitude [0,1].
AudioBuffer Noise(int64_t sample_rate, int32_t channels, double amplitude,
                  double seconds, uint64_t seed);

/// A "speech-like" narration stand-in: amplitude-modulated low tones
/// with pauses, deterministic per seed.
AudioBuffer Narration(int64_t sample_rate, int32_t channels, double seconds,
                      uint64_t seed);

}  // namespace audiogen

/// Signal-to-noise ratio of `decoded` against reference `original`, in
/// dB — the audio analogue of PSNR, used to validate lossy audio paths.
Result<double> AudioSnr(const AudioBuffer& original,
                        const AudioBuffer& decoded);

}  // namespace tbm

#endif  // TBM_CODEC_PCM_H_

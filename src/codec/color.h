#ifndef TBM_CODEC_COLOR_H_
#define TBM_CODEC_COLOR_H_

#include "codec/image.h"

namespace tbm {

/// Color-model conversions used by the Figure 2 capture pipeline and
/// the Table 1 color-separation derivation.

/// RGB → planar YUV (BT.601 full-range) at the requested subsampling
/// (kYuv444, kYuv422 or kYuv420). Chroma is averaged over the pixels it
/// covers, matching the paper's "U and V are subsampled (averaged over
/// neighboring pixels)".
Result<Image> RgbToYuv(const Image& rgb, ColorModel target);

/// Planar YUV (any subsampling) → RGB. Chroma is replicated.
Result<Image> YuvToRgb(const Image& yuv);

/// Parameters for RGB → CMYK separation. The mapping is not unique
/// (paper §4.2): black generation and under-color removal depend on
/// inks and paper, so they are derivation parameters.
struct SeparationParams {
  /// Fraction [0,1] of the gray component moved into the K channel
  /// (black generation).
  double black_generation = 1.0;
  /// Fraction [0,1] of that gray removed from C/M/Y (under-color
  /// removal).
  double under_color_removal = 1.0;
};

/// RGB → CMYK with the given separation table parameters (Table 1:
/// "color separation", category: change of content).
Result<Image> RgbToCmyk(const Image& rgb, const SeparationParams& params);

/// Raw per-pixel kernel behind RgbToCmyk: converts `n` interleaved RGB
/// pixels into `n` interleaved CMYK pixels. Exposed so the derivation
/// plan compiler can run the separation inside a fused element loop
/// without materializing an intermediate Image. `params` must already
/// be validated to [0,1].
void RgbToCmykPixels(const uint8_t* rgb, uint8_t* cmyk, size_t n,
                     const SeparationParams& params);

/// CMYK → RGB (for round-trip verification of separations).
Result<Image> CmykToRgb(const Image& cmyk);

/// Extracts one CMYK channel (0=C,1=M,2=Y,3=K) as a grayscale plate —
/// the four printing plates of Figure 3a.
Result<Image> CmykPlate(const Image& cmyk, int channel);

/// RGB → 8-bit grayscale (BT.601 luma).
Result<Image> RgbToGray(const Image& rgb);

}  // namespace tbm

#endif  // TBM_CODEC_COLOR_H_

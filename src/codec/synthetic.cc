#include "codec/synthetic.h"

#include <algorithm>
#include <cmath>

namespace tbm {
namespace videogen {

namespace {

// Small deterministic hash for per-scene parameters.
uint32_t Mix(uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352dU;
  x ^= x >> 15;
  x *= 0x846ca68bU;
  x ^= x >> 16;
  return x;
}

double Param(uint32_t scene_id, uint32_t salt, double lo, double hi) {
  uint32_t h = Mix(scene_id * 0x9e3779b9U + salt);
  return lo + (hi - lo) * (h / 4294967295.0);
}

}  // namespace

Image Frame(int32_t width, int32_t height, int64_t frame_index,
            uint32_t scene_id) {
  Image img = Image::Zero(width, height, ColorModel::kRgb24);
  Bytes pixels_out(img.data.size(), 0);
  const double t = static_cast<double>(frame_index);

  // Scene-dependent palette and motion.
  const double base_r = Param(scene_id, 1, 40, 200);
  const double base_g = Param(scene_id, 2, 40, 200);
  const double base_b = Param(scene_id, 3, 40, 200);
  const double drift = Param(scene_id, 4, 0.2, 1.5);
  const double disc_radius = Param(scene_id, 5, 0.08, 0.2) *
                             std::min(width, height);
  const double disc_speed = Param(scene_id, 6, 0.01, 0.05);
  const double disc2_speed = Param(scene_id, 7, 0.008, 0.04);

  const double cx1 = width * (0.5 + 0.35 * std::sin(disc_speed * t));
  const double cy1 = height * (0.5 + 0.35 * std::cos(disc_speed * t * 0.9));
  const double cx2 = width * (0.5 + 0.3 * std::cos(disc2_speed * t + 1.7));
  const double cy2 = height * (0.5 + 0.3 * std::sin(disc2_speed * t + 0.4));

  for (int32_t y = 0; y < height; ++y) {
    for (int32_t x = 0; x < width; ++x) {
      // Drifting diagonal gradient.
      double g = (x + y + drift * t) / (width + height);
      g -= std::floor(g);
      double r_val = base_r + 55.0 * g;
      double g_val = base_g + 55.0 * (1.0 - g);
      double b_val = base_b + 40.0 * std::sin(2.0 * M_PI * g);

      // Two moving discs.
      double d1 = std::hypot(x - cx1, y - cy1);
      if (d1 < disc_radius) {
        double s = 1.0 - d1 / disc_radius;
        r_val = r_val * (1 - s) + 235.0 * s;
        g_val = g_val * (1 - s) + 80.0 * s;
        b_val = b_val * (1 - s) + 60.0 * s;
      }
      double d2 = std::hypot(x - cx2, y - cy2);
      if (d2 < disc_radius * 0.7) {
        double s = 1.0 - d2 / (disc_radius * 0.7);
        r_val = r_val * (1 - s) + 50.0 * s;
        g_val = g_val * (1 - s) + 90.0 * s;
        b_val = b_val * (1 - s) + 220.0 * s;
      }

      uint8_t* px = pixels_out.data() + 3 * (static_cast<size_t>(y) * width + x);
      px[0] = static_cast<uint8_t>(std::clamp(r_val, 0.0, 255.0));
      px[1] = static_cast<uint8_t>(std::clamp(g_val, 0.0, 255.0));
      px[2] = static_cast<uint8_t>(std::clamp(b_val, 0.0, 255.0));
    }
  }
  img.data = std::move(pixels_out);
  return img;
}

std::vector<Image> Clip(int32_t width, int32_t height, int64_t count,
                        uint32_t scene_id) {
  std::vector<Image> frames;
  frames.reserve(count);
  for (int64_t i = 0; i < count; ++i) {
    frames.push_back(Frame(width, height, i, scene_id));
  }
  return frames;
}

Image Still(int32_t width, int32_t height, uint32_t scene_id) {
  return Frame(width, height, 0, scene_id);
}

}  // namespace videogen
}  // namespace tbm

#include "midi/midi.h"

#include <algorithm>

#include "base/macros.h"

namespace tbm {

std::string_view MidiEventKindToString(MidiEventKind kind) {
  switch (kind) {
    case MidiEventKind::kNoteOn: return "note-on";
    case MidiEventKind::kNoteOff: return "note-off";
    case MidiEventKind::kProgramChange: return "program-change";
    case MidiEventKind::kTempo: return "tempo";
  }
  return "unknown";
}

void MidiEvent::Serialize(BinaryWriter* writer) const {
  writer->WriteVarI64(tick);
  writer->WriteU8(static_cast<uint8_t>(kind));
  writer->WriteU8(channel);
  writer->WriteU8(note);
  writer->WriteU8(velocity);
  writer->WriteI32(value);
}

Result<MidiEvent> MidiEvent::Deserialize(BinaryReader* reader) {
  MidiEvent event;
  TBM_ASSIGN_OR_RETURN(event.tick, reader->ReadVarI64());
  TBM_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadU8());
  if (kind > static_cast<uint8_t>(MidiEventKind::kTempo)) {
    return Status::Corruption("bad MIDI event kind");
  }
  event.kind = static_cast<MidiEventKind>(kind);
  TBM_ASSIGN_OR_RETURN(event.channel, reader->ReadU8());
  TBM_ASSIGN_OR_RETURN(event.note, reader->ReadU8());
  TBM_ASSIGN_OR_RETURN(event.velocity, reader->ReadU8());
  TBM_ASSIGN_OR_RETURN(event.value, reader->ReadI32());
  return event;
}

Status MidiSequence::AddEvent(MidiEvent event) {
  if (event.tick < 0) {
    return Status::InvalidArgument("negative event tick");
  }
  if (event.note > 127 || event.velocity > 127 || event.channel > 15) {
    return Status::InvalidArgument("MIDI field out of range");
  }
  // Keep events sorted by tick (stable: equal ticks keep insert order).
  auto it = std::upper_bound(
      events_.begin(), events_.end(), event.tick,
      [](int64_t tick, const MidiEvent& e) { return tick < e.tick; });
  events_.insert(it, event);
  return Status::OK();
}

Status MidiSequence::AddNote(int64_t tick, int64_t duration, uint8_t note,
                             uint8_t velocity, uint8_t channel) {
  if (duration <= 0) {
    return Status::InvalidArgument("note duration must be positive");
  }
  MidiEvent on;
  on.tick = tick;
  on.kind = MidiEventKind::kNoteOn;
  on.channel = channel;
  on.note = note;
  on.velocity = velocity;
  TBM_RETURN_IF_ERROR(AddEvent(on));
  MidiEvent off = on;
  off.tick = tick + duration;
  off.kind = MidiEventKind::kNoteOff;
  off.velocity = 0;
  return AddEvent(off);
}

Status MidiSequence::SetProgram(uint8_t channel, int32_t program) {
  MidiEvent event;
  event.tick = 0;
  event.kind = MidiEventKind::kProgramChange;
  event.channel = channel;
  event.value = program;
  return AddEvent(event);
}

int64_t MidiSequence::LastTick() const {
  return events_.empty() ? 0 : events_.back().tick;
}

TimeSystem MidiSequence::time_system() const {
  // division ticks per quarter * bpm quarters per minute / 60.
  return TimeSystem(Rational(division_, 1) *
                    Rational(static_cast<int64_t>(tempo_bpm_ * 100), 6000));
}

Result<TimedStream> MidiSequence::ToEventStream() const {
  MediaDescriptor desc;
  desc.type_name = "music/midi";
  desc.kind = MediaKind::kMusic;
  desc.attrs.SetInt("division", division_);
  desc.attrs.SetRational("tempo bpm",
                         Rational(static_cast<int64_t>(tempo_bpm_ * 100), 100));
  TimedStream stream(desc, time_system());
  for (const MidiEvent& event : events_) {
    BinaryWriter writer;
    event.Serialize(&writer);
    ElementDescriptor ed;
    ed.SetString("event kind", std::string(MidiEventKindToString(event.kind)));
    TBM_RETURN_IF_ERROR(
        stream.AppendEvent(writer.TakeBuffer(), event.tick, std::move(ed)));
  }
  return stream;
}

Result<TimedStream> MidiSequence::ToNoteStream() const {
  MediaDescriptor desc;
  desc.type_name = "music/midi";
  desc.kind = MediaKind::kMusic;
  desc.attrs.SetInt("division", division_);
  desc.attrs.SetRational("tempo bpm",
                         Rational(static_cast<int64_t>(tempo_bpm_ * 100), 100));
  TimedStream stream(desc, time_system());

  // Pair note-ons with their offs; emit one element per note.
  struct Note {
    int64_t tick;
    int64_t duration;
    uint8_t channel, note, velocity;
  };
  std::vector<Note> notes;
  std::vector<MidiEvent> open;
  for (const MidiEvent& event : events_) {
    if (event.kind == MidiEventKind::kNoteOn) {
      open.push_back(event);
    } else if (event.kind == MidiEventKind::kNoteOff) {
      for (auto it = open.begin(); it != open.end(); ++it) {
        if (it->channel == event.channel && it->note == event.note) {
          notes.push_back(Note{it->tick, event.tick - it->tick, it->channel,
                               it->note, it->velocity});
          open.erase(it);
          break;
        }
      }
    }
  }
  std::stable_sort(notes.begin(), notes.end(),
                   [](const Note& a, const Note& b) { return a.tick < b.tick; });
  for (const Note& note : notes) {
    StreamElement element;
    BinaryWriter writer;
    writer.WriteU8(note.channel);
    writer.WriteU8(note.note);
    writer.WriteU8(note.velocity);
    element.data = writer.TakeBuffer();
    element.start = note.tick;
    element.duration = note.duration;
    element.descriptor.SetInt("note", note.note);
    element.descriptor.SetInt("channel", note.channel);
    TBM_RETURN_IF_ERROR(stream.Append(std::move(element)));
  }
  return stream;
}

Result<MidiSequence> MidiSequence::FromEventStream(const TimedStream& stream) {
  TBM_ASSIGN_OR_RETURN(int64_t division,
                       stream.descriptor().attrs.GetInt("division"));
  TBM_ASSIGN_OR_RETURN(Rational bpm,
                       stream.descriptor().attrs.GetRational("tempo bpm"));
  MidiSequence seq(static_cast<int32_t>(division), bpm.ToDouble());
  for (const StreamElement& element : stream) {
    BinaryReader reader(element.data);
    TBM_ASSIGN_OR_RETURN(MidiEvent event, MidiEvent::Deserialize(&reader));
    TBM_RETURN_IF_ERROR(seq.AddEvent(event));
  }
  return seq;
}

void MidiSequence::Serialize(BinaryWriter* writer) const {
  writer->WriteI32(division_);
  writer->WriteF64(tempo_bpm_);
  writer->WriteVarU64(events_.size());
  for (const MidiEvent& event : events_) event.Serialize(writer);
}

Result<MidiSequence> MidiSequence::Deserialize(BinaryReader* reader) {
  MidiSequence seq;
  TBM_ASSIGN_OR_RETURN(seq.division_, reader->ReadI32());
  TBM_ASSIGN_OR_RETURN(seq.tempo_bpm_, reader->ReadF64());
  if (seq.division_ <= 0 || seq.tempo_bpm_ <= 0) {
    return Status::Corruption("bad MIDI sequence header");
  }
  TBM_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarU64());
  for (uint64_t i = 0; i < count; ++i) {
    TBM_ASSIGN_OR_RETURN(MidiEvent event, MidiEvent::Deserialize(reader));
    TBM_RETURN_IF_ERROR(seq.AddEvent(event));
  }
  return seq;
}

}  // namespace tbm

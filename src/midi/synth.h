#ifndef TBM_MIDI_SYNTH_H_
#define TBM_MIDI_SYNTH_H_

#include "codec/pcm.h"
#include "midi/midi.h"

namespace tbm {

/// Software wavetable synthesizer: the *type-changing derivation* of
/// Table 1 ("MIDI synthesis: music (MIDI) → audio"). Parameters are
/// the ones the paper names: tempo, channel-to-instrument mappings and
/// instrument parameters.
enum class Instrument : uint8_t {
  kSine = 0,
  kSquare = 1,
  kSawtooth = 2,
  kTriangle = 3,
  kPluck = 4,  ///< Decaying harmonic stack, guitar-ish.
  kOrgan = 5,  ///< Harmonic stack with sustain.
};

std::string_view InstrumentToString(Instrument instrument);

struct SynthParams {
  int64_t sample_rate = 44100;
  int32_t channels = 2;
  /// Overrides the sequence's tempo when > 0 (paper: tempo is a
  /// derivation parameter).
  double tempo_bpm = 0.0;
  /// Channel → instrument mapping; MIDI program-change events override
  /// per channel (program numbers are taken modulo the instrument
  /// count).
  Instrument default_instrument = Instrument::kSine;
  /// Master gain applied before clipping, 0..1.
  double gain = 0.5;
  /// Envelope attack/release in seconds.
  double attack_seconds = 0.005;
  double release_seconds = 0.05;
};

/// Renders a MIDI sequence to PCM audio.
Result<AudioBuffer> Synthesize(const MidiSequence& sequence,
                               const SynthParams& params);

}  // namespace tbm

#endif  // TBM_MIDI_SYNTH_H_

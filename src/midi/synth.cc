#include "midi/synth.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace tbm {

std::string_view InstrumentToString(Instrument instrument) {
  switch (instrument) {
    case Instrument::kSine: return "sine";
    case Instrument::kSquare: return "square";
    case Instrument::kSawtooth: return "sawtooth";
    case Instrument::kTriangle: return "triangle";
    case Instrument::kPluck: return "pluck";
    case Instrument::kOrgan: return "organ";
  }
  return "unknown";
}

namespace {

constexpr int kInstrumentCount = 6;

double NoteFrequency(uint8_t note) {
  return 440.0 * std::pow(2.0, (static_cast<int>(note) - 69) / 12.0);
}

// Oscillator value at phase (cycles) for an instrument; `age` is the
// time since note-on in seconds, used for plucked decay.
double Oscillate(Instrument instrument, double phase, double age) {
  double frac = phase - std::floor(phase);
  switch (instrument) {
    case Instrument::kSine:
      return std::sin(2.0 * M_PI * frac);
    case Instrument::kSquare:
      return frac < 0.5 ? 0.7 : -0.7;
    case Instrument::kSawtooth:
      return 2.0 * frac - 1.0;
    case Instrument::kTriangle:
      return frac < 0.5 ? 4.0 * frac - 1.0 : 3.0 - 4.0 * frac;
    case Instrument::kPluck: {
      double decay = std::exp(-3.0 * age);
      return decay * (std::sin(2.0 * M_PI * frac) +
                      0.5 * std::sin(4.0 * M_PI * frac) +
                      0.25 * std::sin(6.0 * M_PI * frac));
    }
    case Instrument::kOrgan:
      return 0.6 * std::sin(2.0 * M_PI * frac) +
             0.3 * std::sin(4.0 * M_PI * frac) +
             0.15 * std::sin(8.0 * M_PI * frac);
  }
  return 0.0;
}

struct ActiveNote {
  uint8_t channel;
  uint8_t note;
  double velocity;    // 0..1
  int64_t on_frame;
  int64_t off_frame;  // INT64_MAX while held.
  double phase = 0.0;
};

}  // namespace

Result<AudioBuffer> Synthesize(const MidiSequence& sequence,
                               const SynthParams& params) {
  if (params.sample_rate <= 0 || params.channels <= 0) {
    return Status::InvalidArgument("bad synthesizer output format");
  }
  const double bpm =
      params.tempo_bpm > 0.0 ? params.tempo_bpm : sequence.tempo_bpm();
  const double seconds_per_tick = 60.0 / (bpm * sequence.division());
  const double sr = static_cast<double>(params.sample_rate);

  auto tick_to_frame = [&](int64_t tick) {
    return static_cast<int64_t>(std::llround(tick * seconds_per_tick * sr));
  };

  const int64_t tail_frames =
      static_cast<int64_t>(params.release_seconds * sr) +
      params.sample_rate / 10;
  const int64_t total_frames =
      tick_to_frame(sequence.LastTick()) + tail_frames;

  AudioBuffer out;
  out.sample_rate = params.sample_rate;
  out.channels = params.channels;
  std::vector<int16_t> samples(
      static_cast<size_t>(total_frames) * params.channels, 0);

  std::array<Instrument, 16> channel_instrument;
  channel_instrument.fill(params.default_instrument);

  // Expand events to per-note segments with frame bounds.
  std::vector<ActiveNote> notes;
  std::vector<size_t> open;  // Indexes into notes still held.
  for (const MidiEvent& event : sequence.events()) {
    switch (event.kind) {
      case MidiEventKind::kProgramChange:
        channel_instrument[event.channel % 16] = static_cast<Instrument>(
            ((event.value % kInstrumentCount) + kInstrumentCount) %
            kInstrumentCount);
        break;
      case MidiEventKind::kNoteOn: {
        ActiveNote note;
        note.channel = event.channel;
        note.note = event.note;
        note.velocity = event.velocity / 127.0;
        note.on_frame = tick_to_frame(event.tick);
        note.off_frame = INT64_MAX;
        open.push_back(notes.size());
        notes.push_back(note);
        break;
      }
      case MidiEventKind::kNoteOff: {
        for (auto it = open.begin(); it != open.end(); ++it) {
          if (notes[*it].channel == event.channel &&
              notes[*it].note == event.note) {
            notes[*it].off_frame = tick_to_frame(event.tick);
            open.erase(it);
            break;
          }
        }
        break;
      }
      case MidiEventKind::kTempo:
        // Initial tempo only in this implementation; mid-sequence tempo
        // changes are ignored (documented simplification).
        break;
    }
  }
  for (size_t i : open) {
    notes[i].off_frame = tick_to_frame(sequence.LastTick());
  }

  // Additive render.
  std::vector<double> mix(total_frames, 0.0);
  const double attack_frames = std::max(1.0, params.attack_seconds * sr);
  const double release_frames = std::max(1.0, params.release_seconds * sr);
  for (const ActiveNote& note : notes) {
    const Instrument instrument = channel_instrument[note.channel % 16];
    const double freq = NoteFrequency(note.note);
    const double phase_inc = freq / sr;
    const int64_t end_frame =
        std::min<int64_t>(total_frames,
                          note.off_frame + static_cast<int64_t>(release_frames));
    double phase = 0.0;
    for (int64_t f = note.on_frame; f < end_frame; ++f) {
      const double age = (f - note.on_frame) / sr;
      double envelope = 1.0;
      if (f - note.on_frame < attack_frames) {
        envelope = (f - note.on_frame) / attack_frames;
      }
      if (f >= note.off_frame) {
        envelope *= 1.0 - (f - note.off_frame) / release_frames;
      }
      mix[f] += note.velocity * envelope * Oscillate(instrument, phase, age);
      phase += phase_inc;
    }
  }

  for (int64_t f = 0; f < total_frames; ++f) {
    double v = std::clamp(params.gain * mix[f], -1.0, 1.0);
    int16_t s = static_cast<int16_t>(std::lround(v * 32767.0));
    for (int32_t c = 0; c < params.channels; ++c) {
      samples[f * params.channels + c] = s;
    }
  }
  out.samples = std::move(samples);
  return out;
}

}  // namespace tbm

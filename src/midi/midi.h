#ifndef TBM_MIDI_MIDI_H_
#define TBM_MIDI_MIDI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/io.h"
#include "stream/timed_stream.h"

namespace tbm {

/// Symbolic music events, modeled on MIDI — the paper's canonical
/// *event-based* stream ("An example is MIDI where elements are musical
/// events of the form 'Start Note X' and 'Stop Note Y'", §3.3).
enum class MidiEventKind : uint8_t {
  kNoteOn = 0,
  kNoteOff = 1,
  kProgramChange = 2,  ///< Selects the channel's instrument.
  kTempo = 3,          ///< Sets tempo; value = microseconds per quarter.
};

std::string_view MidiEventKindToString(MidiEventKind kind);

struct MidiEvent {
  int64_t tick = 0;  ///< Time in divisions (pulses per quarter note).
  MidiEventKind kind = MidiEventKind::kNoteOn;
  uint8_t channel = 0;
  uint8_t note = 60;      ///< MIDI note number (60 = middle C).
  uint8_t velocity = 96;  ///< 0..127.
  int32_t value = 0;      ///< Program number or tempo µs/quarter.

  void Serialize(BinaryWriter* writer) const;
  static Result<MidiEvent> Deserialize(BinaryReader* reader);

  friend bool operator==(const MidiEvent&, const MidiEvent&) = default;
};

/// A music object: events ordered by tick, with a PPQ division and an
/// initial tempo.
class MidiSequence {
 public:
  MidiSequence() = default;
  MidiSequence(int32_t division, double tempo_bpm)
      : division_(division), tempo_bpm_(tempo_bpm) {}

  int32_t division() const { return division_; }
  double tempo_bpm() const { return tempo_bpm_; }

  const std::vector<MidiEvent>& events() const { return events_; }

  /// Appends an event; InvalidArgument if it precedes the last event.
  Status AddEvent(MidiEvent event);

  /// Convenience: emits a NoteOn at `tick` and NoteOff at
  /// `tick + duration` (events are kept sorted, so interleaved calls
  /// must be made in tick order of the *on* events; offs are inserted
  /// in place).
  Status AddNote(int64_t tick, int64_t duration, uint8_t note,
                 uint8_t velocity = 96, uint8_t channel = 0);

  /// Sets the instrument (program) of a channel at tick 0.
  Status SetProgram(uint8_t channel, int32_t program);

  int64_t LastTick() const;

  /// Seconds per division tick at the initial tempo.
  double SecondsPerTick() const {
    return 60.0 / (tempo_bpm_ * division_);
  }
  double DurationSeconds() const { return LastTick() * SecondsPerTick(); }

  /// The Def. 2 time system of this sequence: frequency =
  /// division * bpm / 60 ticks per second.
  TimeSystem time_system() const;

  /// As an event-based timed stream (d_i = 0 for all i); element
  /// payloads are the serialized events, element descriptors carry the
  /// event kind.
  Result<TimedStream> ToEventStream() const;

  /// As a non-continuous *note* stream: one element per note with the
  /// note's true duration — overlapping elements for chords (the
  /// paper's §3.3 example of overlap).
  Result<TimedStream> ToNoteStream() const;

  /// Rebuilds a sequence from an event stream produced by
  /// ToEventStream().
  static Result<MidiSequence> FromEventStream(const TimedStream& stream);

  void Serialize(BinaryWriter* writer) const;
  static Result<MidiSequence> Deserialize(BinaryReader* reader);

 private:
  int32_t division_ = 480;
  double tempo_bpm_ = 120.0;
  std::vector<MidiEvent> events_;
};

}  // namespace tbm

#endif  // TBM_MIDI_MIDI_H_

#include "compose/timeline.h"

#include "base/macros.h"

namespace tbm {

std::string_view IntervalRelationToString(IntervalRelation relation) {
  switch (relation) {
    case IntervalRelation::kBefore: return "before";
    case IntervalRelation::kMeets: return "meets";
    case IntervalRelation::kOverlaps: return "overlaps";
    case IntervalRelation::kStarts: return "starts";
    case IntervalRelation::kDuring: return "during";
    case IntervalRelation::kFinishes: return "finishes";
    case IntervalRelation::kEquals: return "equals";
    case IntervalRelation::kAfter: return "after";
    case IntervalRelation::kMetBy: return "met-by";
    case IntervalRelation::kOverlappedBy: return "overlapped-by";
    case IntervalRelation::kStartedBy: return "started-by";
    case IntervalRelation::kContains: return "contains";
    case IntervalRelation::kFinishedBy: return "finished-by";
  }
  return "unknown";
}

namespace {

Status CheckProper(const TimeInterval& interval, const char* which) {
  if (!interval.Valid()) {
    return Status::InvalidArgument(std::string("interval ") + which +
                                   " is invalid (end < start)");
  }
  if (interval.Duration() == Rational(0)) {
    return Status::InvalidArgument(std::string("interval ") + which +
                                   " is empty; Allen relations need "
                                   "proper intervals");
  }
  return Status::OK();
}

}  // namespace

Result<IntervalRelation> Classify(const TimeInterval& a,
                                  const TimeInterval& b) {
  TBM_RETURN_IF_ERROR(CheckProper(a, "a"));
  TBM_RETURN_IF_ERROR(CheckProper(b, "b"));
  if (a.start == b.start && a.end == b.end) return IntervalRelation::kEquals;
  if (a.end < b.start) return IntervalRelation::kBefore;
  if (b.end < a.start) return IntervalRelation::kAfter;
  if (a.end == b.start) return IntervalRelation::kMeets;
  if (b.end == a.start) return IntervalRelation::kMetBy;
  if (a.start == b.start) {
    return a.end < b.end ? IntervalRelation::kStarts
                         : IntervalRelation::kStartedBy;
  }
  if (a.end == b.end) {
    return a.start > b.start ? IntervalRelation::kFinishes
                             : IntervalRelation::kFinishedBy;
  }
  if (a.start > b.start && a.end < b.end) return IntervalRelation::kDuring;
  if (b.start > a.start && b.end < a.end) return IntervalRelation::kContains;
  return a.start < b.start ? IntervalRelation::kOverlaps
                           : IntervalRelation::kOverlappedBy;
}

}  // namespace tbm

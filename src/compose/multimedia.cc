#include "compose/multimedia.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/macros.h"

namespace tbm {

Status MultimediaObject::AddComponent(
    const std::string& relationship_name, NodeId media,
    Rational start_seconds, std::optional<SpatialPlacement> spatial) {
  if (start_seconds.IsNegative()) {
    return Status::InvalidArgument("component start must be >= 0");
  }
  for (const Component& c : components_) {
    if (c.name == relationship_name) {
      return Status::AlreadyExists("component \"" + relationship_name +
                                   "\" already present");
    }
  }
  if (!graph_->NameOf(media).ok()) {
    return Status::NotFound("no media node " + std::to_string(media));
  }
  Component component;
  component.name = relationship_name;
  component.media = media;
  component.start_seconds = start_seconds;
  component.spatial = spatial;
  components_.push_back(std::move(component));
  return Status::OK();
}

Result<std::vector<MultimediaObject::TimelineEntry>>
MultimediaObject::Timeline() const {
  std::vector<TimelineEntry> entries;
  for (const Component& component : components_) {
    TBM_ASSIGN_OR_RETURN(ValueRef value, graph_->Evaluate(component.media));
    TimelineEntry entry;
    entry.component = component.name;
    TBM_ASSIGN_OR_RETURN(entry.media, graph_->NameOf(component.media));
    entry.kind = KindOfValue(*value);
    double duration = PresentationSeconds(*value);
    entry.interval.start = component.start_seconds;
    // Durations measured from media values are doubles; quantize to
    // milliseconds for exact timeline arithmetic.
    entry.interval.end =
        component.start_seconds +
        Rational(static_cast<int64_t>(std::llround(duration * 1000)), 1000);
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<Rational> MultimediaObject::Duration() const {
  TBM_ASSIGN_OR_RETURN(auto timeline, Timeline());
  Rational end(0);
  for (const TimelineEntry& entry : timeline) {
    if (entry.interval.end > end) end = entry.interval.end;
  }
  return end;
}

Result<IntervalRelation> MultimediaObject::RelationBetween(
    const std::string& a, const std::string& b) const {
  TBM_ASSIGN_OR_RETURN(auto timeline, Timeline());
  const TimelineEntry* ea = nullptr;
  const TimelineEntry* eb = nullptr;
  for (const TimelineEntry& entry : timeline) {
    if (entry.component == a) ea = &entry;
    if (entry.component == b) eb = &entry;
  }
  if (ea == nullptr || eb == nullptr) {
    return Status::NotFound("component not found");
  }
  return Classify(ea->interval, eb->interval);
}

Status MultimediaObject::RequireRelation(const std::string& a,
                                         const std::string& b,
                                         IntervalRelation relation) {
  bool have_a = false, have_b = false;
  for (const Component& component : components_) {
    if (component.name == a) have_a = true;
    if (component.name == b) have_b = true;
  }
  if (!have_a || !have_b) {
    return Status::NotFound("sync rule references unknown component");
  }
  rules_.push_back(SyncRule{a, b, relation});
  return Status::OK();
}

Status MultimediaObject::ValidateRelations() const {
  for (const SyncRule& rule : rules_) {
    TBM_ASSIGN_OR_RETURN(IntervalRelation actual,
                         RelationBetween(rule.a, rule.b));
    if (actual != rule.relation) {
      return Status::FailedPrecondition(
          "sync rule violated: " + rule.a + " must be '" +
          std::string(IntervalRelationToString(rule.relation)) + "' " +
          rule.b + " but is '" +
          std::string(IntervalRelationToString(actual)) + "'");
    }
  }
  return Status::OK();
}

Result<std::string> MultimediaObject::RenderTimelineAscii(int columns) const {
  TBM_ASSIGN_OR_RETURN(auto timeline, Timeline());
  TBM_ASSIGN_OR_RETURN(Rational total, Duration());
  if (total.IsZero()) return std::string("(empty timeline)\n");
  std::string out;
  size_t name_width = 8;
  for (const TimelineEntry& e : timeline) {
    name_width = std::max(name_width, e.media.size() + 1);
  }
  for (const TimelineEntry& e : timeline) {
    std::string row = e.media;
    row.resize(name_width, ' ');
    row += "|";
    double scale = columns / total.ToDouble();
    int begin = static_cast<int>(e.interval.start.ToDouble() * scale);
    int end = static_cast<int>(e.interval.end.ToDouble() * scale);
    end = std::max(end, begin + 1);
    for (int col = 0; col < columns; ++col) {
      row += (col >= begin && col < end) ? '#' : ' ';
    }
    row += "|\n";
    out += row;
  }
  // Time ruler.
  std::string ruler(name_width, ' ');
  ruler += "0";
  double total_seconds = total.ToDouble();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", total_seconds);
  int pad = columns - static_cast<int>(std::string(buf).size());
  ruler += std::string(std::max(1, pad), ' ');
  ruler += buf;
  ruler += "\n";
  out += ruler;
  return out;
}

Result<AudioBuffer> MultimediaObject::MixAudio(int64_t sample_rate,
                                               int32_t channels) const {
  if (sample_rate <= 0 || channels <= 0) {
    return Status::InvalidArgument("bad mix format");
  }
  TBM_ASSIGN_OR_RETURN(Rational total, Duration());
  int64_t frames = RescaleTicks(1, total * Rational(sample_rate),
                                Rounding::kCeil);
  std::vector<double> mix(static_cast<size_t>(frames) * channels, 0.0);
  for (const Component& component : components_) {
    TBM_ASSIGN_OR_RETURN(ValueRef value, graph_->Evaluate(component.media));
    const AudioBuffer* audio = std::get_if<AudioBuffer>(value.get());
    if (audio == nullptr) continue;  // Only audio components contribute.
    if (audio->sample_rate != sample_rate || audio->channels != channels) {
      return Status::InvalidArgument(
          "component \"" + component.name +
          "\" format differs from mix format; insert an 'audio resample' "
          "derivation");
    }
    int64_t offset = RescaleTicks(
        1, component.start_seconds * Rational(sample_rate), Rounding::kNearest);
    for (int64_t f = 0; f < audio->FrameCount(); ++f) {
      int64_t out_frame = offset + f;
      if (out_frame < 0 || out_frame >= frames) continue;
      for (int32_t c = 0; c < channels; ++c) {
        mix[out_frame * channels + c] += audio->samples[f * channels + c];
      }
    }
  }
  AudioBuffer out;
  out.sample_rate = sample_rate;
  out.channels = channels;
  std::vector<int16_t> samples(mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    samples[i] = static_cast<int16_t>(
        std::clamp(std::lround(mix[i]), -32768L, 32767L));
  }
  out.samples = std::move(samples);
  return out;
}

Result<Image> MultimediaObject::RenderFrameAt(double t_seconds, int32_t width,
                                              int32_t height) const {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("bad frame geometry");
  }
  Image canvas = Image::Zero(width, height, ColorModel::kRgb24);
  Bytes pixels_out(canvas.data.size(), 0);

  struct VisualHit {
    const Component* component;
    ValueRef value;  ///< Pins `frame`, which points into it.
    const Image* frame;
    SpatialPlacement placement;
  };
  std::vector<VisualHit> hits;
  for (const Component& component : components_) {
    TBM_ASSIGN_OR_RETURN(ValueRef value, graph_->Evaluate(component.media));
    const VideoValue* video = std::get_if<VideoValue>(value.get());
    const Image* still = std::get_if<Image>(value.get());
    const Image* frame = nullptr;
    if (video != nullptr) {
      double local = t_seconds - component.start_seconds.ToDouble();
      if (local < 0) continue;
      int64_t index =
          static_cast<int64_t>(local * video->frame_rate.ToDouble());
      if (index >= static_cast<int64_t>(video->frames.size())) continue;
      frame = &video->frames[index];
    } else if (still != nullptr) {
      if (t_seconds < component.start_seconds.ToDouble()) continue;
      frame = still;
    } else {
      continue;  // Non-visual component.
    }
    if (frame->model != ColorModel::kRgb24) {
      return Status::Unsupported("visual components must be RGB");
    }
    SpatialPlacement placement =
        component.spatial.value_or(SpatialPlacement{});
    hits.push_back(VisualHit{&component, std::move(value), frame, placement});
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const VisualHit& a, const VisualHit& b) {
                     return a.placement.layer < b.placement.layer;
                   });
  for (const VisualHit& hit : hits) {
    const Image& src = *hit.frame;
    for (int32_t y = 0; y < src.height; ++y) {
      int32_t dy = hit.placement.y + y;
      if (dy < 0 || dy >= height) continue;
      for (int32_t x = 0; x < src.width; ++x) {
        int32_t dx = hit.placement.x + x;
        if (dx < 0 || dx >= width) continue;
        const uint8_t* sp =
            src.data.data() + 3 * (static_cast<size_t>(y) * src.width + x);
        uint8_t* dp =
            pixels_out.data() + 3 * (static_cast<size_t>(dy) * width + dx);
        dp[0] = sp[0];
        dp[1] = sp[1];
        dp[2] = sp[2];
      }
    }
  }
  canvas.data = std::move(pixels_out);
  return canvas;
}

}  // namespace tbm

#ifndef TBM_COMPOSE_TIMELINE_H_
#define TBM_COMPOSE_TIMELINE_H_

#include <string>

#include "base/result.h"
#include "time/rational.h"

namespace tbm {

/// A half-open interval [start, end) on a continuous timeline, in
/// seconds (exact rationals).
struct TimeInterval {
  Rational start;
  Rational end;

  Rational Duration() const { return end - start; }
  bool Valid() const { return start <= end; }

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

/// Allen's interval relations — the vocabulary of temporal composition
/// (cf. Little & Ghafoor's spatio-temporal composition, cited by the
/// paper as [11]).
enum class IntervalRelation {
  kBefore,        ///< a ends strictly before b starts.
  kMeets,         ///< a ends exactly where b starts.
  kOverlaps,      ///< a starts first, they overlap, b ends last.
  kStarts,        ///< same start, a ends first.
  kDuring,        ///< a strictly inside b.
  kFinishes,      ///< same end, a starts later.
  kEquals,        ///< identical intervals.
  // Inverses:
  kAfter,
  kMetBy,
  kOverlappedBy,
  kStartedBy,
  kContains,
  kFinishedBy,
};

std::string_view IntervalRelationToString(IntervalRelation relation);

/// Classifies the relation of `a` to `b`. InvalidArgument if either
/// interval is invalid (end < start) or empty — Allen's relations are
/// only defined over proper intervals.
Result<IntervalRelation> Classify(const TimeInterval& a,
                                  const TimeInterval& b);

}  // namespace tbm

#endif  // TBM_COMPOSE_TIMELINE_H_

#ifndef TBM_COMPOSE_MULTIMEDIA_H_
#define TBM_COMPOSE_MULTIMEDIA_H_

#include <optional>
#include <string>
#include <vector>

#include "compose/timeline.h"
#include "derive/graph.h"

namespace tbm {

/// Spatial placement of a visual component during presentation
/// (paper Def. 7: composition relationships are temporal and/or
/// spatial).
struct SpatialPlacement {
  int32_t x = 0;
  int32_t y = 0;
  int32_t layer = 0;  ///< Higher layers composite over lower ones.
};

/// One composition relationship c_i: it relates a media object (a node
/// of a derivation graph) to the multimedia object with a temporal
/// offset and optional spatial placement.
struct Component {
  std::string name;  ///< e.g. "c1".
  NodeId media = 0;
  Rational start_seconds;  ///< When the component begins on the timeline.
  std::optional<SpatialPlacement> spatial;
};

/// A multimedia object (paper Definition 7): "the specification of
/// temporal and/or spatial relationships between a group of media
/// objects. The result of composition is called a multimedia object,
/// the spatiotemporally related objects are called its components."
///
/// Components reference nodes of a DerivationGraph, so a multimedia
/// object composes derived and non-derived media objects uniformly —
/// the Figure 5 layering.
class MultimediaObject {
 public:
  MultimediaObject(std::string name, DerivationGraph* graph)
      : name_(std::move(name)), graph_(graph) {}

  const std::string& name() const { return name_; }
  const std::vector<Component>& components() const { return components_; }

  /// Adds a temporal composition relationship.
  Status AddComponent(const std::string& relationship_name, NodeId media,
                      Rational start_seconds,
                      std::optional<SpatialPlacement> spatial = std::nullopt);

  /// Evaluated timeline entry of one component.
  struct TimelineEntry {
    std::string component;  ///< Relationship name.
    std::string media;      ///< Media object (node) name.
    MediaKind kind = MediaKind::kAudio;
    TimeInterval interval;  ///< Seconds on the master timeline.
  };

  /// Evaluates all components and returns their timeline intervals
  /// (expansion of derived components happens here, memoized by the
  /// graph).
  Result<std::vector<TimelineEntry>> Timeline() const;

  /// Total duration: max component end.
  Result<Rational> Duration() const;

  /// Allen relation between two components' intervals.
  Result<IntervalRelation> RelationBetween(const std::string& a,
                                           const std::string& b) const;

  /// Declares a temporal-correlation constraint (paper §2.2: "temporal
  /// correlations can occur between media elements ... the data model
  /// must address the timing"): component `a`'s interval must stand in
  /// `relation` to component `b`'s. Checked by ValidateRelations().
  Status RequireRelation(const std::string& a, const std::string& b,
                         IntervalRelation relation);

  /// Evaluates the timeline and checks every declared constraint;
  /// FailedPrecondition naming the first violated rule otherwise.
  Status ValidateRelations() const;

  /// Renders the Figure 4b-style timeline diagram as ASCII art: one row
  /// per component, time increasing left to right.
  Result<std::string> RenderTimelineAscii(int columns = 64) const;

  /// Mixes all audio components (at their temporal offsets) into one
  /// PCM buffer at `sample_rate`/`channels` — the audible presentation
  /// of the multimedia object.
  Result<AudioBuffer> MixAudio(int64_t sample_rate, int32_t channels) const;

  /// Composites all visual components at master time `t_seconds` into
  /// one frame of the given size (spatial composition; layers
  /// ascending). Components without spatial placement default to (0,0),
  /// layer 0.
  Result<Image> RenderFrameAt(double t_seconds, int32_t width,
                              int32_t height) const;

 private:
  struct SyncRule {
    std::string a;
    std::string b;
    IntervalRelation relation;
  };

  std::string name_;
  DerivationGraph* graph_;
  std::vector<Component> components_;
  std::vector<SyncRule> rules_;
};

}  // namespace tbm

#endif  // TBM_COMPOSE_MULTIMEDIA_H_

#ifndef TBM_TBM_H_
#define TBM_TBM_H_

/// Umbrella header: the library's public surface behind one include.
///
/// Applications (examples/, tools/tbmctl) include this instead of
/// picking individual module headers; the per-module headers remain the
/// include points for code *inside* the library, which should stay
/// minimal about its dependencies.
///
/// Layering (each group may depend on those above it):
///
///   base     status/result, bytes, io, checksums, thread pool
///   obs      metrics registry and span tracing (observability)
///   time     rational time, time systems, timecodes
///   blob     uninterpreted byte storage (Def. 1)
///   media    attributes, descriptors, media types, quality
///   stream   timed streams (Def. 4) and their categories
///   codec    coded representations and transforms
///   text     captions and fonts
///   midi     music sequences and synthesis
///   anim     animation scenes
///   interp   interpretations (Def. 2) and capture
///   derive   derivation graphs, operators, engine, expansion cache
///   compose  multimedia objects and timeline algebra
///   playback activities, admission control, playout simulation
///   db       the catalog: entities through multimedia objects

// base
#include "base/buffer.h"
#include "base/bytes.h"
#include "base/crc32.h"
#include "base/durable.h"
#include "base/io.h"
#include "base/macros.h"
#include "base/result.h"
#include "base/sha256.h"
#include "base/simd.h"
#include "base/status.h"
#include "base/thread_pool.h"

// obs
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// time
#include "time/rational.h"
#include "time/time_system.h"
#include "time/timecode.h"

// blob
#include "blob/blob_store.h"
#include "blob/cas_store.h"
#include "blob/chunk_reader.h"
#include "blob/fault_store.h"
#include "blob/file_store.h"
#include "blob/memory_store.h"
#include "blob/paged_store.h"
#include "blob/prefetcher.h"
#include "blob/read_policy.h"

// media
#include "media/attr.h"
#include "media/descriptor.h"
#include "media/media_type.h"
#include "media/quality.h"

// stream
#include "stream/category.h"
#include "stream/timed_stream.h"

// codec
#include "codec/adpcm.h"
#include "codec/color.h"
#include "codec/dct.h"
#include "codec/export.h"
#include "codec/image.h"
#include "codec/layered.h"
#include "codec/pcm.h"
#include "codec/rle.h"
#include "codec/synthetic.h"
#include "codec/tjpeg.h"
#include "codec/tmpeg.h"

// text
#include "text/captions.h"
#include "text/font.h"

// midi
#include "midi/midi.h"
#include "midi/synth.h"

// anim
#include "anim/animation.h"

// interp
#include "interp/av_capture.h"
#include "interp/capture.h"
#include "interp/index.h"
#include "interp/interpretation.h"
#include "interp/streaming.h"

// derive
#include "derive/cache.h"
#include "derive/graph.h"
#include "derive/operators.h"
#include "derive/plan.h"
#include "derive/scheduler.h"
#include "derive/value.h"

// compose
#include "compose/multimedia.h"
#include "compose/timeline.h"

// playback
#include "playback/activity.h"
#include "playback/admission.h"
#include "playback/simulator.h"
#include "playback/streaming.h"

// db
#include "db/catalog_io.h"
#include "db/codec_bridge.h"
#include "db/database.h"
#include "db/edit_list.h"
#include "db/rights.h"
#include "db/wal/crash_point.h"
#include "db/wal/superblock.h"
#include "db/wal/wal.h"

// serve
#include "serve/client.h"
#include "serve/connection.h"
#include "serve/framing.h"
#include "serve/protocol.h"
#include "serve/reactor.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/tcp_transport.h"
#include "serve/transport.h"

#endif  // TBM_TBM_H_

#ifndef TBM_INTERP_INDEX_H_
#define TBM_INTERP_INDEX_H_

#include <vector>

#include "interp/interpretation.h"

namespace tbm {

/// Compact run-length index over an interpreted object's element table.
///
/// The per-element placement table is the *logical view* of the
/// interpretation mapping (paper §4.1: "existing storage systems for
/// time-based media use multiple index structures ... QuickTime uses up
/// to seven indexes for a single timed stream"). This class is the
/// implementation view, modeled on the QuickTime movie-atom indexes:
///
///  - time-to-sample runs (count, duration) — collapses constant-
///    frequency spans to one entry;
///  - chunk table — consecutive elements that are byte-adjacent in the
///    BLOB form a chunk and share one offset entry (interleaved A/V
///    layouts group naturally);
///  - sample sizes — a single constant or an explicit table;
///  - sync table — element numbers of key elements ("frame kind" ==
///    "key"), for random access into interframe-coded video.
///
/// The index answers element-at-time and placement-of-element queries
/// in O(log runs), and its memory is compared against the flat table in
/// the interpretation bench.
class CompactElementIndex {
 public:
  CompactElementIndex() = default;

  /// Builds the index from an object's element table.
  static CompactElementIndex Build(const InterpretedObject& object);

  int64_t element_count() const { return n_; }

  /// Element number whose time span contains `t`; NotFound in gaps and
  /// outside the stream.
  Result<int64_t> ElementAtTime(int64_t t) const;

  /// Time span of an element.
  Result<TickSpan> SpanOf(int64_t element_number) const;

  /// BLOB byte range of an element.
  Result<ByteRange> PlacementOf(int64_t element_number) const;

  /// Element numbers of sync (key) elements, ascending.
  const std::vector<int64_t>& sync_elements() const { return sync_; }

  /// Nearest sync element at or before `element_number` (for seeking
  /// into interframe video); NotFound if none precede it.
  Result<int64_t> SyncBefore(int64_t element_number) const;

  /// Approximate heap bytes used by the index tables.
  size_t MemoryBytes() const;

  /// Number of time runs / chunks (compression diagnostics).
  size_t time_run_count() const { return time_runs_.size(); }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct TimeRun {
    int64_t first_element;  ///< Element number of the run's first element.
    int64_t count;          ///< Elements in the run.
    int64_t start;          ///< Start time of the first element.
    int64_t duration;       ///< Common element duration.
  };
  struct Chunk {
    int64_t first_element;
    int64_t count;
    uint64_t offset;  ///< BLOB offset of the first element.
  };

  std::vector<TimeRun> time_runs_;
  std::vector<Chunk> chunks_;
  std::vector<uint32_t> sizes_;  ///< Per-element sizes; empty if constant.
  uint64_t constant_size_ = 0;   ///< Valid when sizes_ is empty.
  std::vector<int64_t> sync_;
  int64_t n_ = 0;
};

}  // namespace tbm

#endif  // TBM_INTERP_INDEX_H_

#ifndef TBM_INTERP_STREAMING_H_
#define TBM_INTERP_STREAMING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "blob/blob_store.h"
#include "blob/prefetcher.h"
#include "blob/read_policy.h"
#include "interp/interpretation.h"
#include "stream/timed_stream.h"

namespace tbm {

/// How an ElementStream reads its BLOB.
struct StreamReadOptions {
  /// Chunk granularity of the underlying reads. Stores may round this
  /// up (PagedBlobStore aligns to whole page payloads).
  uint64_t chunk_size = 256 * 1024;

  /// Chunks of readahead. 0 (or a null `pool`) reads synchronously —
  /// each element's chunks are fetched when the element is requested.
  int prefetch_depth = 4;

  /// Backpressure bound on prefetched-but-unconsumed bytes.
  uint64_t max_inflight_bytes = 8ull << 20;

  /// Retry/backoff/timeout applied to every chunk read.
  ReadPolicy policy;

  /// Pool the readahead runs on; borrowed, may be null (synchronous).
  ThreadPool* pool = nullptr;
};

/// Counters of one ElementStream's lifetime.
struct ElementStreamStats {
  uint64_t elements_delivered = 0;

  /// Elements whose bytes were no longer (or not yet) in the chunk
  /// window and were fetched with a direct ranged read instead —
  /// happens only for out-of-order placements (e.g. key-first layouts).
  uint64_t fallback_element_reads = 0;

  /// High-water mark of chunks buffered in the assembly window.
  uint64_t peak_window_chunks = 0;

  /// Counters of the underlying prefetcher.
  PrefetchStats prefetch;
};

/// Incremental expansion of one interpreted object: delivers the
/// object's elements in element order, reading the BLOB chunk by chunk
/// with asynchronous readahead instead of one read per element (or one
/// read for the whole object).
///
/// This is the streaming form of Interpretation::Materialize. Playback
/// consumes elements in timestamp order at a sustained rate (paper
/// §2.2), so sequential chunk readahead overlaps store latency with
/// decode/presentation work; the chunk window holds only bytes that a
/// future element still needs, so memory stays bounded by the
/// prefetch budget plus the span of out-of-order placements.
///
/// The store (and the thread pool, if any) must outlive the stream.
/// The Interpretation may be destroyed after Open — the placement
/// table is copied.
class ElementStream {
 public:
  /// Opens a stream over `interpretation`'s object `name` in `store`.
  static Result<std::unique_ptr<ElementStream>> Open(
      const BlobStore& store, const Interpretation& interpretation,
      const std::string& name, const StreamReadOptions& options = {});

  /// True when every element has been delivered.
  bool Done() const { return next_element_ >= object_.elements.size(); }

  /// Elements delivered so far / in total.
  size_t position() const { return next_element_; }
  size_t size() const { return object_.elements.size(); }

  const MediaDescriptor& descriptor() const { return object_.descriptor; }
  const TimeSystem& time_system() const { return object_.time_system; }
  const InterpretedObject& object() const { return object_; }

  /// Delivers the next element in element order; OutOfRange once
  /// Done(). A failed read (after the policy's retries) fails only
  /// this call — the position still advances, so a lenient caller can
  /// skip the element and continue.
  Result<StreamElement> Next();

  /// Snapshot of the stream's counters.
  ElementStreamStats stats() const;

 private:
  ElementStream(const BlobStore& store, BlobId blob,
                InterpretedObject object, StreamReadOptions options);

  /// Opens the chunk reader and prefetcher on first use.
  Status EnsurePrefetcher();

  /// Pulls chunks from the prefetcher up to and including `chunk`.
  Status AdvanceTo(uint64_t chunk);

  /// Serves `range` out of the chunk window: a zero-copy sub-slice of
  /// the covering chunk when the range fits in one chunk (the common
  /// case — element ≤ chunk), an owned concatenation otherwise. False
  /// if any needed chunk has already been evicted (or lies behind a
  /// failed pull), in which case the caller falls back to a direct
  /// read.
  bool AssembleFromWindow(ByteRange range, BufferSlice* out) const;

  /// Drops window chunks no future element needs.
  void EvictBelow(uint64_t min_future_offset);

  const BlobStore& store_;
  BlobId blob_;
  InterpretedObject object_;
  StreamReadOptions options_;
  std::unique_ptr<AsyncPrefetcher> prefetcher_;

  /// suffix_min_offset_[i] = min placement offset over elements i..n-1
  /// (UINT64_MAX past the end) — the eviction horizon.
  std::vector<uint64_t> suffix_min_offset_;

  std::map<uint64_t, BufferSlice> window_;  ///< chunk index -> payload.
  uint64_t next_pull_ = 0;            ///< Next chunk the prefetcher yields.
  size_t next_element_ = 0;
  ElementStreamStats stats_;
};

/// Materializes the named object as a TimedStream via an ElementStream
/// — same result as Interpretation::Materialize, different read path.
Result<TimedStream> MaterializeStreamed(const BlobStore& store,
                                        const Interpretation& interpretation,
                                        const std::string& name,
                                        const StreamReadOptions& options = {});

}  // namespace tbm

#endif  // TBM_INTERP_STREAMING_H_

#ifndef TBM_INTERP_AV_CAPTURE_H_
#define TBM_INTERP_AV_CAPTURE_H_

#include <string>
#include <vector>

#include "codec/image.h"
#include "codec/pcm.h"
#include "interp/capture.h"

namespace tbm {

/// The paper's Figure 2 capture pipeline as a reusable operation:
/// digitize a video signal and an accompanying stereo audio signal into
/// one BLOB, interleaved with "audio samples following the associated
/// video frame", compressing frames with the TJPEG (JPEG stand-in)
/// codec at a named quality factor.
struct AvCaptureConfig {
  std::string video_name = "video1";
  std::string audio_name = "audio1";
  Rational frame_rate = Rational(25);      ///< PAL.
  std::string video_quality = "VHS quality";
  std::string audio_quality = "CD quality";
  /// Insert this many padding bytes after each frame's audio, matching
  /// storage transfer rate to media rate (CD-I style). 0 = none.
  size_t padding_per_frame = 0;
};

/// Result of a capture: where the data went and how to interpret it.
struct AvCaptureResult {
  BlobId blob = kInvalidBlobId;
  Interpretation interpretation;
  uint64_t raw_video_bytes = 0;      ///< Before compression.
  uint64_t encoded_video_bytes = 0;  ///< After compression.
  uint64_t audio_bytes = 0;
};

/// Captures `frames` (RGB, at `config.frame_rate`) and `audio`
/// (PCM; must span at least the video duration) into a fresh BLOB of
/// `store`. Audio elements are *per-frame sample blocks* (e.g. 1764
/// sample pairs per PAL frame at 44.1 kHz), interleaved after each
/// video frame. Returns the permanently-associated interpretation.
Result<AvCaptureResult> CaptureInterleavedAv(BlobStore* store,
                                             const std::vector<Image>& frames,
                                             const AudioBuffer& audio,
                                             const AvCaptureConfig& config);

}  // namespace tbm

#endif  // TBM_INTERP_AV_CAPTURE_H_

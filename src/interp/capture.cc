#include "interp/capture.h"

#include "base/macros.h"

namespace tbm {

Result<CaptureSession> CaptureSession::Begin(BlobStore* store) {
  TBM_ASSIGN_OR_RETURN(std::unique_ptr<PushHandle> push, store->StartPush());
  return CaptureSession(std::move(push));
}

Result<size_t> CaptureSession::DeclareObject(const std::string& name,
                                             MediaDescriptor descriptor,
                                             TimeSystem time_system) {
  if (finished_) {
    return Status::FailedPrecondition("capture session already finished");
  }
  for (const PendingObject& pending : objects_) {
    if (pending.object.name == name) {
      return Status::AlreadyExists("object \"" + name +
                                   "\" already declared");
    }
  }
  PendingObject pending;
  pending.object.name = name;
  pending.object.descriptor = std::move(descriptor);
  pending.object.time_system = time_system;
  objects_.push_back(std::move(pending));
  return objects_.size() - 1;
}

Status CaptureSession::CaptureElement(size_t handle, ByteSpan data,
                                      int64_t start, int64_t duration,
                                      ElementDescriptor descriptor) {
  if (finished_) {
    return Status::FailedPrecondition("capture session already finished");
  }
  if (handle >= objects_.size()) {
    return Status::InvalidArgument("bad object handle");
  }
  PendingObject& pending = objects_[handle];
  if (duration < 0) {
    return Status::InvalidArgument("negative element duration");
  }
  if (!pending.object.elements.empty() &&
      start < pending.object.elements.back().start) {
    return Status::InvalidArgument(
        "element start " + std::to_string(start) +
        " precedes previous start (Def. 3 requires s_{i+1} >= s_i)");
  }
  TBM_RETURN_IF_ERROR(push_->Push(data));
  ElementPlacement placement;
  placement.element_number =
      static_cast<int64_t>(pending.object.elements.size());
  placement.start = start;
  placement.duration = duration;
  placement.placement = ByteRange{offset_, data.size()};
  placement.descriptor = std::move(descriptor);
  pending.object.elements.push_back(std::move(placement));
  pending.next_start = start + duration;
  offset_ += data.size();
  return Status::OK();
}

Status CaptureSession::CaptureContiguous(size_t handle, ByteSpan data,
                                         int64_t duration,
                                         ElementDescriptor descriptor) {
  if (handle >= objects_.size()) {
    return Status::InvalidArgument("bad object handle");
  }
  return CaptureElement(handle, data, objects_[handle].next_start, duration,
                        std::move(descriptor));
}

Status CaptureSession::UpdateDescriptorAttr(size_t handle,
                                            const std::string& name,
                                            AttrValue value) {
  if (finished_) {
    return Status::FailedPrecondition("capture session already finished");
  }
  if (handle >= objects_.size()) {
    return Status::InvalidArgument("bad object handle");
  }
  objects_[handle].object.descriptor.attrs.Set(name, std::move(value));
  return Status::OK();
}

Status CaptureSession::AppendPadding(size_t count, uint8_t fill) {
  if (finished_) {
    return Status::FailedPrecondition("capture session already finished");
  }
  Bytes padding(count, fill);
  TBM_RETURN_IF_ERROR(push_->Push(padding));
  offset_ += count;
  return Status::OK();
}

Result<Interpretation> CaptureSession::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("capture session already finished");
  }
  finished_ = true;
  TBM_ASSIGN_OR_RETURN(BlobId blob, push_->Finish());
  Interpretation interp(blob);
  for (PendingObject& pending : objects_) {
    TBM_RETURN_IF_ERROR(interp.AddObject(std::move(pending.object)));
  }
  TBM_RETURN_IF_ERROR(interp.ValidateAgainstBlobSize(offset_));
  return interp;
}

}  // namespace tbm

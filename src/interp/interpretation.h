#ifndef TBM_INTERP_INTERPRETATION_H_
#define TBM_INTERP_INTERPRETATION_H_

#include <string>
#include <vector>

#include "base/io.h"
#include "blob/blob_store.h"
#include "stream/timed_stream.h"

namespace tbm {

/// Placement of one media element inside a BLOB — one row of the
/// paper's logical table
/// `video1(elementNumber, startTime, duration, elementDescriptor,
///         elementSize, blobPlacement)`.
struct ElementPlacement {
  int64_t element_number = 0;  ///< Order within the sequence.
  int64_t start = 0;           ///< Start time (discrete ticks).
  int64_t duration = 0;        ///< Duration (discrete ticks).
  ByteRange placement;         ///< Where the element's bytes live.
  ElementDescriptor descriptor;

  friend bool operator==(const ElementPlacement&,
                         const ElementPlacement&) = default;
};

/// One media object identified within a BLOB by an interpretation:
/// its descriptor, time system, and per-element placement table.
///
/// Element placements are kept in element-number order. Their BLOB
/// byte ranges need not be contiguous or in element order — this is
/// what lets one interpretation describe interleaved, padded and
/// out-of-order (key-first) layouts without copying data.
struct InterpretedObject {
  std::string name;  ///< e.g. "video1" — unique within the interpretation.
  MediaDescriptor descriptor;
  TimeSystem time_system;
  std::vector<ElementPlacement> elements;

  /// Total payload bytes (sum of placement lengths).
  uint64_t PayloadBytes() const;

  /// Stream span end: max(start + duration).
  int64_t EndTime() const;
};

/// An interpretation (paper Definition 5): a mapping from a BLOB to a
/// set of media objects, specifying for each object its descriptor and
/// placement, and for sequences each element's order, start time,
/// duration and element descriptor.
///
/// Interpretation is the bridge between the two views of multimedia
/// data (§4.1): below it, the BLOB is an uninterpreted byte sequence
/// that can be copied and deleted; above it, media objects are
/// intricately structured aggregates that can be queried, presented
/// and edited. The indexes that implement the mapping are hidden; what
/// applications see are media elements and their descriptors.
class Interpretation {
 public:
  Interpretation() = default;
  explicit Interpretation(BlobId blob) : blob_(blob) {}

  BlobId blob() const { return blob_; }
  void set_blob(BlobId blob) { blob_ = blob; }

  /// Adds a media object; AlreadyExists on duplicate names,
  /// InvalidArgument if element numbers are not 0..n-1 in order or
  /// start times are not non-decreasing (Def. 3).
  Status AddObject(InterpretedObject object);

  const std::vector<InterpretedObject>& objects() const { return objects_; }

  Result<const InterpretedObject*> FindObject(const std::string& name) const;

  /// Verifies every placement lies within a BLOB of `blob_size` bytes.
  Status ValidateAgainstBlobSize(uint64_t blob_size) const;

  /// Materializes the named object as a timed stream, reading every
  /// element's bytes from `store`. This is the "expansion" of the
  /// interpretation relationship: the result is the object as the data
  /// model presents it, independent of BLOB layout.
  Result<TimedStream> Materialize(const BlobStore& store,
                                  const std::string& name) const;

  /// Materializes only the elements whose spans intersect `span` —
  /// the structural-query path ("select a specific duration").
  Result<TimedStream> MaterializeSpan(const BlobStore& store,
                                      const std::string& name,
                                      TickSpan span) const;

  /// Reads a single element by element number.
  Result<StreamElement> ReadElement(const BlobStore& store,
                                    const std::string& name,
                                    int64_t element_number) const;

  /// Constructs a new interpretation exposing only the named objects —
  /// the paper's "alternative view of the BLOB (e.g., only the audio
  /// sequence is visible)".
  Result<Interpretation> Restrict(
      const std::vector<std::string>& names) const;

  /// Total bytes covered by element placements, as a fraction of
  /// `blob_size` — everything else is padding or unreferenced data.
  double Coverage(uint64_t blob_size) const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Interpretation> Deserialize(BinaryReader* reader);

 private:
  BlobId blob_ = kInvalidBlobId;
  std::vector<InterpretedObject> objects_;
};

}  // namespace tbm

#endif  // TBM_INTERP_INTERPRETATION_H_

#ifndef TBM_INTERP_CAPTURE_H_
#define TBM_INTERP_CAPTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "blob/blob_store.h"
#include "interp/interpretation.h"

namespace tbm {

/// Builds a BLOB and its interpretation together, the way the paper
/// recommends (§4.1: "It is probably a better practice if a BLOB has a
/// single, complete, interpretation which is built up as the BLOB is
/// captured or created and then permanently associated with the
/// BLOB").
///
/// A session streams element bytes (from any number of declared media
/// objects, interleaved in whatever order the producer emits them) and
/// padding into one BLOB push, while recording each element's
/// placement, timing and descriptor. `Finish()` completes the push —
/// the BLOB id materializes only then, which is what lets
/// content-addressed stores dedup the finished bytes — and yields the
/// complete interpretation.
class CaptureSession {
 public:
  /// Starts a session streaming into a fresh push of `store`.
  static Result<CaptureSession> Begin(BlobStore* store);

  /// Declares a media object to be captured; returns its handle.
  Result<size_t> DeclareObject(const std::string& name,
                               MediaDescriptor descriptor,
                               TimeSystem time_system);

  /// Appends one element of object `handle` at an explicit time.
  Status CaptureElement(size_t handle, ByteSpan data, int64_t start,
                        int64_t duration, ElementDescriptor descriptor = {});

  /// Appends one element immediately after the object's previous
  /// element (start = previous end, or 0).
  Status CaptureContiguous(size_t handle, ByteSpan data, int64_t duration,
                           ElementDescriptor descriptor = {});

  /// Updates a declared object's media descriptor before Finish() —
  /// used for attributes only known after capture, like the measured
  /// average/peak data rates the paper wants descriptors to carry.
  Status UpdateDescriptorAttr(size_t handle, const std::string& name,
                              AttrValue value);

  /// Appends `count` filler bytes that belong to no object — the
  /// "padding" layout the paper notes CD-I uses to match storage
  /// transfer rates to media data rates.
  Status AppendPadding(size_t count, uint8_t fill = 0);

  /// Bytes written to the BLOB so far.
  uint64_t BytesWritten() const { return offset_; }

  /// Completes the session: finishes the push (publishing the BLOB and
  /// materializing its id) and returns the validated interpretation.
  /// The session must not be used afterwards. If the session is
  /// dropped without Finish(), the push aborts and no BLOB is left
  /// behind.
  Result<Interpretation> Finish();

 private:
  explicit CaptureSession(std::unique_ptr<PushHandle> push)
      : push_(std::move(push)) {}

  struct PendingObject {
    InterpretedObject object;
    int64_t next_start = 0;
  };

  std::unique_ptr<PushHandle> push_;
  uint64_t offset_ = 0;
  std::vector<PendingObject> objects_;
  bool finished_ = false;
};

}  // namespace tbm

#endif  // TBM_INTERP_CAPTURE_H_

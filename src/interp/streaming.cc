#include "interp/streaming.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "base/macros.h"
#include "blob/chunk_reader.h"
#include "obs/trace.h"

namespace tbm {

Result<std::unique_ptr<ElementStream>> ElementStream::Open(
    const BlobStore& store, const Interpretation& interpretation,
    const std::string& name, const StreamReadOptions& options) {
  if (options.chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  TBM_ASSIGN_OR_RETURN(const InterpretedObject* object,
                       interpretation.FindObject(name));
  return std::unique_ptr<ElementStream>(new ElementStream(
      store, interpretation.blob(), *object, options));
}

ElementStream::ElementStream(const BlobStore& store, BlobId blob,
                             InterpretedObject object,
                             StreamReadOptions options)
    : store_(store),
      blob_(blob),
      object_(std::move(object)),
      options_(options) {
  const size_t n = object_.elements.size();
  suffix_min_offset_.assign(n + 1, std::numeric_limits<uint64_t>::max());
  for (size_t i = n; i-- > 0;) {
    suffix_min_offset_[i] = std::min(suffix_min_offset_[i + 1],
                                     object_.elements[i].placement.offset);
  }
}

Status ElementStream::EnsurePrefetcher() {
  if (prefetcher_ != nullptr) return Status::OK();
  // Opened on first use rather than in Open() so readahead does not
  // start (and OpenChunkReader cannot fail) before the first Next().
  ChunkReaderOptions reader_options;
  reader_options.chunk_size = options_.chunk_size;
  reader_options.policy = options_.policy;
  TBM_ASSIGN_OR_RETURN(std::unique_ptr<ChunkReader> reader,
                       store_.OpenChunkReader(blob_, reader_options));
  PrefetchOptions prefetch;
  prefetch.depth = options_.prefetch_depth;
  prefetch.max_inflight_bytes = options_.max_inflight_bytes;
  prefetcher_ = std::make_unique<AsyncPrefetcher>(std::move(reader),
                                                  options_.pool, prefetch);
  return Status::OK();
}

Status ElementStream::AdvanceTo(uint64_t chunk) {
  while (next_pull_ <= chunk) {
    const uint64_t index = next_pull_++;
    Result<BufferSlice> bytes = prefetcher_->Next();
    // A failed chunk is simply absent from the window: the element
    // needing it fails (or falls back to a direct read), later
    // elements keep streaming.
    TBM_RETURN_IF_ERROR(bytes.status());
    window_.emplace(index, std::move(bytes).value());
    stats_.peak_window_chunks =
        std::max<uint64_t>(stats_.peak_window_chunks, window_.size());
  }
  return Status::OK();
}

bool ElementStream::AssembleFromWindow(ByteRange range,
                                       BufferSlice* out) const {
  const uint64_t chunk_size = prefetcher_->reader().chunk_size();
  const uint64_t first = range.offset / chunk_size;
  const uint64_t last = (range.end() - 1) / chunk_size;
  if (first == last) {
    // Element within one chunk: alias the chunk's buffer, no copy.
    auto it = window_.find(first);
    if (it == window_.end()) return false;
    *out = it->second.Slice(range.offset - first * chunk_size, range.length);
    return out->size() == range.length;
  }
  Bytes assembled;
  assembled.reserve(range.length);
  for (uint64_t c = first; c <= last; ++c) {
    auto it = window_.find(c);
    if (it == window_.end()) return false;
    const BufferSlice& chunk = it->second;
    const uint64_t chunk_start = c * chunk_size;
    const uint64_t from =
        range.offset > chunk_start ? range.offset - chunk_start : 0;
    const uint64_t to =
        std::min<uint64_t>(chunk.size(), range.end() - chunk_start);
    if (from > to) return false;  // Short chunk; treat as a miss.
    assembled.insert(assembled.end(), chunk.begin() + from, chunk.begin() + to);
  }
  if (assembled.size() != range.length) return false;
  *out = BufferSlice(std::move(assembled));
  return true;
}

void ElementStream::EvictBelow(uint64_t min_future_offset) {
  if (prefetcher_ == nullptr) return;
  const uint64_t chunk_size = prefetcher_->reader().chunk_size();
  while (!window_.empty() &&
         (window_.begin()->first + 1) * chunk_size <= min_future_offset) {
    window_.erase(window_.begin());
  }
}

Result<StreamElement> ElementStream::Next() {
  if (Done()) {
    return Status::OutOfRange("element stream exhausted (" +
                              std::to_string(object_.elements.size()) +
                              " elements)");
  }
  obs::ScopedSpan span("interp.stream.next");
  const ElementPlacement& placement = object_.elements[next_element_];
  const ByteRange range = placement.placement;

  Result<BufferSlice> data = BufferSlice{};
  if (!range.empty()) {
    Status pulled = EnsurePrefetcher();
    if (pulled.ok()) {
      // Pull the prefetcher forward far enough to cover this element,
      // at the reader's actual chunk granularity (the store may have
      // rounded the requested size up).
      const uint64_t last_chunk =
          (range.end() - 1) / prefetcher_->reader().chunk_size();
      pulled = AdvanceTo(last_chunk);
    }
    BufferSlice assembled;
    if (pulled.ok() && AssembleFromWindow(range, &assembled)) {
      data = std::move(assembled);
    } else {
      // Out-of-order placement behind the eviction horizon (or a chunk
      // that failed after retries): one direct ranged read.
      ++stats_.fallback_element_reads;
      data = ReadWithPolicy(store_, blob_, range, options_.policy);
    }
  }

  ++next_element_;
  EvictBelow(suffix_min_offset_[next_element_]);
  if (!data.ok()) {
    return data.status().WithContext(
        "element " + std::to_string(placement.element_number) + " of '" +
        object_.name + "'");
  }
  ++stats_.elements_delivered;
  StreamElement element;
  element.data = std::move(data).value();
  element.start = placement.start;
  element.duration = placement.duration;
  element.descriptor = placement.descriptor;
  return element;
}

ElementStreamStats ElementStream::stats() const {
  ElementStreamStats stats = stats_;
  if (prefetcher_ != nullptr) stats.prefetch = prefetcher_->stats();
  return stats;
}

Result<TimedStream> MaterializeStreamed(const BlobStore& store,
                                        const Interpretation& interpretation,
                                        const std::string& name,
                                        const StreamReadOptions& options) {
  TBM_ASSIGN_OR_RETURN(std::unique_ptr<ElementStream> stream,
                       ElementStream::Open(store, interpretation, name,
                                           options));
  TimedStream out(stream->descriptor(), stream->time_system());
  while (!stream->Done()) {
    TBM_ASSIGN_OR_RETURN(StreamElement element, stream->Next());
    TBM_RETURN_IF_ERROR(out.Append(std::move(element)));
  }
  return out;
}

}  // namespace tbm

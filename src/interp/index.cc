#include "interp/index.h"

#include <algorithm>

namespace tbm {

CompactElementIndex CompactElementIndex::Build(
    const InterpretedObject& object) {
  CompactElementIndex index;
  const auto& elements = object.elements;
  index.n_ = static_cast<int64_t>(elements.size());
  if (elements.empty()) return index;

  // Time runs: extend while duration matches and starts are contiguous.
  for (int64_t i = 0; i < index.n_; ++i) {
    const ElementPlacement& e = elements[i];
    bool extend = false;
    if (!index.time_runs_.empty()) {
      TimeRun& run = index.time_runs_.back();
      int64_t expected_start = run.start + run.count * run.duration;
      extend = (e.duration == run.duration && e.start == expected_start &&
                run.duration > 0);
    }
    if (extend) {
      ++index.time_runs_.back().count;
    } else {
      index.time_runs_.push_back(TimeRun{i, 1, e.start, e.duration});
    }
  }

  // Chunks: extend while placements are byte-adjacent.
  for (int64_t i = 0; i < index.n_; ++i) {
    const ElementPlacement& e = elements[i];
    bool extend = false;
    if (!index.chunks_.empty() && i > 0) {
      const ElementPlacement& prev = elements[i - 1];
      extend = (e.placement.offset == prev.placement.end());
    }
    if (extend) {
      ++index.chunks_.back().count;
    } else {
      index.chunks_.push_back(Chunk{i, 1, e.placement.offset});
    }
  }

  // Sizes: constant or explicit.
  bool constant = true;
  for (const ElementPlacement& e : elements) {
    if (e.placement.length != elements.front().placement.length) {
      constant = false;
      break;
    }
  }
  if (constant) {
    index.constant_size_ = elements.front().placement.length;
  } else {
    index.sizes_.reserve(elements.size());
    for (const ElementPlacement& e : elements) {
      index.sizes_.push_back(static_cast<uint32_t>(e.placement.length));
    }
  }

  // Sync table.
  for (const ElementPlacement& e : elements) {
    auto kind = e.descriptor.GetString("frame kind");
    if (kind.ok() && *kind == "key") {
      index.sync_.push_back(e.element_number);
    }
  }
  return index;
}

Result<int64_t> CompactElementIndex::ElementAtTime(int64_t t) const {
  // Last run whose start is <= t.
  auto it = std::upper_bound(
      time_runs_.begin(), time_runs_.end(), t,
      [](int64_t value, const TimeRun& run) { return value < run.start; });
  if (it == time_runs_.begin()) {
    return Status::NotFound("no element at time " + std::to_string(t));
  }
  --it;
  if (it->duration == 0) {
    if (t == it->start) return it->first_element;
    return Status::NotFound("no element at time " + std::to_string(t));
  }
  int64_t offset = (t - it->start) / it->duration;
  if (offset >= it->count) {
    return Status::NotFound("no element at time " + std::to_string(t) +
                            " (gap)");
  }
  return it->first_element + offset;
}

Result<TickSpan> CompactElementIndex::SpanOf(int64_t element_number) const {
  if (element_number < 0 || element_number >= n_) {
    return Status::OutOfRange("element " + std::to_string(element_number));
  }
  auto it = std::upper_bound(time_runs_.begin(), time_runs_.end(),
                             element_number,
                             [](int64_t value, const TimeRun& run) {
                               return value < run.first_element;
                             });
  --it;
  int64_t offset = element_number - it->first_element;
  return TickSpan{it->start + offset * it->duration, it->duration};
}

Result<ByteRange> CompactElementIndex::PlacementOf(
    int64_t element_number) const {
  if (element_number < 0 || element_number >= n_) {
    return Status::OutOfRange("element " + std::to_string(element_number));
  }
  auto it = std::upper_bound(chunks_.begin(), chunks_.end(), element_number,
                             [](int64_t value, const Chunk& chunk) {
                               return value < chunk.first_element;
                             });
  --it;
  uint64_t offset = it->offset;
  if (constant_size_ != 0 || sizes_.empty()) {
    offset += constant_size_ * (element_number - it->first_element);
    return ByteRange{offset, constant_size_};
  }
  for (int64_t e = it->first_element; e < element_number; ++e) {
    offset += sizes_[e];
  }
  return ByteRange{offset, sizes_[element_number]};
}

Result<int64_t> CompactElementIndex::SyncBefore(
    int64_t element_number) const {
  auto it = std::upper_bound(sync_.begin(), sync_.end(), element_number);
  if (it == sync_.begin()) {
    return Status::NotFound("no sync element at or before " +
                            std::to_string(element_number));
  }
  return *(it - 1);
}

size_t CompactElementIndex::MemoryBytes() const {
  return time_runs_.size() * sizeof(TimeRun) + chunks_.size() * sizeof(Chunk) +
         sizes_.size() * sizeof(uint32_t) + sync_.size() * sizeof(int64_t);
}

}  // namespace tbm

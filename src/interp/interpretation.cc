#include "interp/interpretation.h"

#include <algorithm>

#include "base/macros.h"

namespace tbm {

uint64_t InterpretedObject::PayloadBytes() const {
  uint64_t total = 0;
  for (const ElementPlacement& e : elements) total += e.placement.length;
  return total;
}

int64_t InterpretedObject::EndTime() const {
  int64_t end = 0;
  for (const ElementPlacement& e : elements) {
    end = std::max(end, e.start + e.duration);
  }
  return end;
}

Status Interpretation::AddObject(InterpretedObject object) {
  for (const InterpretedObject& existing : objects_) {
    if (existing.name == object.name) {
      return Status::AlreadyExists("object \"" + object.name +
                                   "\" already in interpretation");
    }
  }
  for (size_t i = 0; i < object.elements.size(); ++i) {
    const ElementPlacement& e = object.elements[i];
    if (e.element_number != static_cast<int64_t>(i)) {
      return Status::InvalidArgument(
          "object \"" + object.name + "\": element numbers must be 0..n-1 " +
          "in order; position " + std::to_string(i) + " has number " +
          std::to_string(e.element_number));
    }
    if (e.duration < 0) {
      return Status::InvalidArgument("object \"" + object.name +
                                     "\": negative duration at element " +
                                     std::to_string(i));
    }
    if (i > 0 && e.start < object.elements[i - 1].start) {
      return Status::InvalidArgument(
          "object \"" + object.name + "\": start times must be " +
          "non-decreasing (Def. 3); element " + std::to_string(i));
    }
  }
  objects_.push_back(std::move(object));
  return Status::OK();
}

Result<const InterpretedObject*> Interpretation::FindObject(
    const std::string& name) const {
  for (const InterpretedObject& object : objects_) {
    if (object.name == name) return &object;
  }
  return Status::NotFound("no object \"" + name + "\" in interpretation");
}

Status Interpretation::ValidateAgainstBlobSize(uint64_t blob_size) const {
  for (const InterpretedObject& object : objects_) {
    for (const ElementPlacement& e : object.elements) {
      if (e.placement.end() > blob_size) {
        return Status::OutOfRange(
            "object \"" + object.name + "\" element " +
            std::to_string(e.element_number) + " placement [" +
            std::to_string(e.placement.offset) + ", " +
            std::to_string(e.placement.end()) + ") exceeds BLOB size " +
            std::to_string(blob_size));
      }
    }
  }
  return Status::OK();
}

namespace {

Result<StreamElement> MakeElement(const BlobStore& store, BlobId blob,
                                  const ElementPlacement& placement) {
  StreamElement element;
  TBM_ASSIGN_OR_RETURN(element.data, store.Read(blob, placement.placement));
  element.start = placement.start;
  element.duration = placement.duration;
  element.descriptor = placement.descriptor;
  return element;
}

}  // namespace

Result<TimedStream> Interpretation::Materialize(
    const BlobStore& store, const std::string& name) const {
  TBM_ASSIGN_OR_RETURN(const InterpretedObject* object, FindObject(name));
  TimedStream stream(object->descriptor, object->time_system);
  for (const ElementPlacement& placement : object->elements) {
    TBM_ASSIGN_OR_RETURN(StreamElement element,
                         MakeElement(store, blob_, placement));
    TBM_RETURN_IF_ERROR(stream.Append(std::move(element)));
  }
  return stream;
}

Result<TimedStream> Interpretation::MaterializeSpan(
    const BlobStore& store, const std::string& name, TickSpan span) const {
  TBM_ASSIGN_OR_RETURN(const InterpretedObject* object, FindObject(name));
  TimedStream stream(object->descriptor, object->time_system);
  for (const ElementPlacement& placement : object->elements) {
    TickSpan element_span{placement.start, placement.duration};
    bool hit = placement.duration == 0 ? span.Contains(placement.start)
                                       : element_span.Overlaps(span);
    if (!hit) continue;
    TBM_ASSIGN_OR_RETURN(StreamElement element,
                         MakeElement(store, blob_, placement));
    TBM_RETURN_IF_ERROR(stream.Append(std::move(element)));
  }
  return stream;
}

Result<StreamElement> Interpretation::ReadElement(
    const BlobStore& store, const std::string& name,
    int64_t element_number) const {
  TBM_ASSIGN_OR_RETURN(const InterpretedObject* object, FindObject(name));
  if (element_number < 0 ||
      element_number >= static_cast<int64_t>(object->elements.size())) {
    return Status::OutOfRange("element number " +
                              std::to_string(element_number) +
                              " out of range for \"" + name + "\"");
  }
  return MakeElement(store, blob_, object->elements[element_number]);
}

Result<Interpretation> Interpretation::Restrict(
    const std::vector<std::string>& names) const {
  Interpretation view(blob_);
  for (const std::string& name : names) {
    TBM_ASSIGN_OR_RETURN(const InterpretedObject* object, FindObject(name));
    TBM_RETURN_IF_ERROR(view.AddObject(*object));
  }
  return view;
}

double Interpretation::Coverage(uint64_t blob_size) const {
  if (blob_size == 0) return 0.0;
  uint64_t covered = 0;
  for (const InterpretedObject& object : objects_) {
    covered += object.PayloadBytes();
  }
  return static_cast<double>(covered) / static_cast<double>(blob_size);
}

void Interpretation::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(blob_);
  writer->WriteVarU64(objects_.size());
  for (const InterpretedObject& object : objects_) {
    writer->WriteString(object.name);
    object.descriptor.Serialize(writer);
    writer->WriteVarI64(object.time_system.frequency().num());
    writer->WriteVarI64(object.time_system.frequency().den());
    writer->WriteVarU64(object.elements.size());
    for (const ElementPlacement& e : object.elements) {
      writer->WriteVarI64(e.start);
      writer->WriteVarI64(e.duration);
      writer->WriteVarU64(e.placement.offset);
      writer->WriteVarU64(e.placement.length);
      e.descriptor.Serialize(writer);
    }
  }
}

Result<Interpretation> Interpretation::Deserialize(BinaryReader* reader) {
  Interpretation interp;
  TBM_ASSIGN_OR_RETURN(interp.blob_, reader->ReadU64());
  TBM_ASSIGN_OR_RETURN(uint64_t object_count, reader->ReadVarU64());
  for (uint64_t i = 0; i < object_count; ++i) {
    InterpretedObject object;
    TBM_ASSIGN_OR_RETURN(object.name, reader->ReadString());
    TBM_ASSIGN_OR_RETURN(object.descriptor,
                         MediaDescriptor::Deserialize(reader));
    TBM_ASSIGN_OR_RETURN(int64_t freq_num, reader->ReadVarI64());
    TBM_ASSIGN_OR_RETURN(int64_t freq_den, reader->ReadVarI64());
    if (freq_num <= 0 || freq_den <= 0) {
      return Status::Corruption("bad time-system frequency");
    }
    object.time_system = TimeSystem(Rational(freq_num, freq_den));
    TBM_ASSIGN_OR_RETURN(uint64_t element_count, reader->ReadVarU64());
    object.elements.reserve(element_count);
    for (uint64_t j = 0; j < element_count; ++j) {
      ElementPlacement e;
      e.element_number = static_cast<int64_t>(j);
      TBM_ASSIGN_OR_RETURN(e.start, reader->ReadVarI64());
      TBM_ASSIGN_OR_RETURN(e.duration, reader->ReadVarI64());
      TBM_ASSIGN_OR_RETURN(e.placement.offset, reader->ReadVarU64());
      TBM_ASSIGN_OR_RETURN(e.placement.length, reader->ReadVarU64());
      // Catalogs come off disk: reject placements whose offset+length
      // wraps uint64 before they can alias the wrong bytes.
      TBM_RETURN_IF_ERROR(e.placement.Validate());
      TBM_ASSIGN_OR_RETURN(e.descriptor, AttrMap::Deserialize(reader));
      object.elements.push_back(std::move(e));
    }
    TBM_RETURN_IF_ERROR(interp.AddObject(std::move(object)));
  }
  return interp;
}

}  // namespace tbm

#include "interp/av_capture.h"

#include <algorithm>

#include "base/macros.h"
#include "codec/tjpeg.h"
#include "media/quality.h"

namespace tbm {

Result<AvCaptureResult> CaptureInterleavedAv(BlobStore* store,
                                             const std::vector<Image>& frames,
                                             const AudioBuffer& audio,
                                             const AvCaptureConfig& config) {
  if (frames.empty()) {
    return Status::InvalidArgument("no video frames to capture");
  }
  TBM_RETURN_IF_ERROR(audio.Validate());
  TBM_ASSIGN_OR_RETURN(VideoQuality vq,
                       LookupVideoQuality(config.video_quality));

  const Image& first = frames.front();
  const int64_t n_frames = static_cast<int64_t>(frames.size());

  // Samples covered by each video frame: frame i covers audio frames
  // [floor(i * sr / fr), floor((i+1) * sr / fr)).
  const Rational samples_per_frame =
      Rational(audio.sample_rate) / config.frame_rate;
  const int64_t needed_frames =
      RescaleTicks(n_frames, samples_per_frame, Rounding::kCeil);
  if (audio.FrameCount() < needed_frames) {
    return Status::InvalidArgument(
        "audio too short: need " + std::to_string(needed_frames) +
        " sample frames to cover " + std::to_string(n_frames) +
        " video frames, have " + std::to_string(audio.FrameCount()));
  }

  TBM_ASSIGN_OR_RETURN(CaptureSession session, CaptureSession::Begin(store));

  MediaDescriptor video_desc;
  video_desc.type_name = "video/tjpeg";
  video_desc.kind = MediaKind::kVideo;
  video_desc.attrs.SetRational("frame rate", config.frame_rate);
  video_desc.attrs.SetInt("frame width", first.width);
  video_desc.attrs.SetInt("frame height", first.height);
  video_desc.attrs.SetInt("frame depth", 24);
  video_desc.attrs.SetString("color model", "RGB");
  video_desc.attrs.SetString("encoding", "YUV 4:2:0, TJPEG");
  video_desc.attrs.SetString("quality factor", config.video_quality);
  video_desc.attrs.SetInt("codec quality", vq.codec_quality);
  TBM_ASSIGN_OR_RETURN(
      size_t video_handle,
      session.DeclareObject(config.video_name, video_desc,
                            TimeSystem(config.frame_rate)));

  MediaDescriptor audio_desc;
  audio_desc.type_name = "audio/pcm-block";
  audio_desc.kind = MediaKind::kAudio;
  audio_desc.attrs.SetInt("sample rate", audio.sample_rate);
  audio_desc.attrs.SetInt("sample size", 16);
  audio_desc.attrs.SetInt("number of channels", audio.channels);
  audio_desc.attrs.SetString("encoding", "PCM");
  audio_desc.attrs.SetString("quality factor", config.audio_quality);
  TBM_ASSIGN_OR_RETURN(
      size_t audio_handle,
      session.DeclareObject(config.audio_name, audio_desc,
                            TimeSystem(audio.sample_rate)));

  AvCaptureResult result;
  uint64_t max_frame_bytes = 0;
  for (int64_t i = 0; i < n_frames; ++i) {
    TBM_RETURN_IF_ERROR(frames[i].Validate());
    result.raw_video_bytes += frames[i].data.size();
    TBM_ASSIGN_OR_RETURN(Bytes encoded,
                         TjpegEncode(frames[i], vq.codec_quality));
    result.encoded_video_bytes += encoded.size();
    max_frame_bytes = std::max<uint64_t>(max_frame_bytes, encoded.size());
    TBM_RETURN_IF_ERROR(
        session.CaptureElement(video_handle, encoded, i, 1));

    const int64_t a0 = RescaleTicks(i, samples_per_frame, Rounding::kFloor);
    const int64_t a1 =
        RescaleTicks(i + 1, samples_per_frame, Rounding::kFloor);
    const size_t byte0 = static_cast<size_t>(a0) * audio.channels * 2;
    const size_t byte1 = static_cast<size_t>(a1) * audio.channels * 2;
    Bytes audio_bytes(byte1 - byte0);
    for (size_t b = 0; b < audio_bytes.size(); ++b) {
      int16_t sample = audio.samples[byte0 / 2 + b / 2];
      uint16_t u = static_cast<uint16_t>(sample);
      audio_bytes[b] = (b % 2 == 0) ? static_cast<uint8_t>(u)
                                    : static_cast<uint8_t>(u >> 8);
    }
    result.audio_bytes += audio_bytes.size();
    TBM_RETURN_IF_ERROR(
        session.CaptureElement(audio_handle, audio_bytes, a0, a1 - a0));

    if (config.padding_per_frame > 0) {
      TBM_RETURN_IF_ERROR(session.AppendPadding(config.padding_per_frame));
    }
  }

  // Annotate resource-allocation metadata (paper §4.1: descriptors
  // should carry the average data rate and rate-variation info).
  const double seconds =
      static_cast<double>(n_frames) / config.frame_rate.ToDouble();
  TBM_RETURN_IF_ERROR(session.UpdateDescriptorAttr(
      video_handle, "average data rate",
      AttrValue(result.encoded_video_bytes / seconds)));
  TBM_RETURN_IF_ERROR(session.UpdateDescriptorAttr(
      audio_handle, "average data rate",
      AttrValue(result.audio_bytes / seconds)));
  // PCM audio is uniform: peak == average. Video frames vary per frame;
  // a conservative peak is max-frame-size × frame rate.
  TBM_RETURN_IF_ERROR(session.UpdateDescriptorAttr(
      audio_handle, "peak data rate",
      AttrValue(result.audio_bytes / seconds)));
  TBM_RETURN_IF_ERROR(session.UpdateDescriptorAttr(
      video_handle, "peak data rate",
      AttrValue(static_cast<double>(max_frame_bytes) *
                config.frame_rate.ToDouble())));

  TBM_ASSIGN_OR_RETURN(result.interpretation, session.Finish());
  result.blob = result.interpretation.blob();
  return result;
}

}  // namespace tbm

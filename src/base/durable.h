#ifndef TBM_BASE_DURABLE_H_
#define TBM_BASE_DURABLE_H_

/// Durability primitives for crash-safe persistence (DESIGN.md §16).
///
/// `WriteFile` in base/io.h is fire-and-forget: a crash mid-write can
/// leave a half-written file, and nothing forces the bytes out of the
/// OS page cache. The write-ahead log and checkpoint writer need three
/// stronger guarantees, provided here:
///
///  - `AppendOnlyFile`: an append-only handle with an explicit
///    durability barrier (`Sync` = flush + fsync). The WAL appends
///    records and fsyncs once per group commit.
///  - `AtomicWriteFile`: publish a whole file atomically — write to a
///    `.tmp` sibling, fsync it, rename over the target, fsync the
///    directory so the rename itself survives a crash. A reader sees
///    either the old file or the new one, never a torn mix.
///  - `FileLock`: an advisory `flock` so a second process opening the
///    same database directory fails fast instead of silently racing
///    the writer.
///
/// All functions are POSIX-backed; this library targets Linux.

#include <cstdint>
#include <memory>
#include <string>

#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm {

/// Append-only file handle with an explicit durability barrier.
///
/// `Append` hands bytes to the OS immediately (no user-space
/// buffering); `Sync` makes everything appended so far durable. The
/// distinction matters for group commit: many appends, one fsync.
/// Not thread-safe — callers serialize (the WAL leader owns the file).
class AppendOnlyFile {
 public:
  /// Opens `path` for appending, creating it if absent. With
  /// `truncate` set, any existing contents are discarded first — for
  /// writers (e.g. the checkpoint temp file) that must never append
  /// after bytes a crashed predecessor left behind.
  static Result<std::unique_ptr<AppendOnlyFile>> Open(const std::string& path,
                                                      bool truncate = false);

  ~AppendOnlyFile();
  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;

  /// Appends `data` at the end of the file. Durable only after Sync().
  Status Append(ByteSpan data);

  /// Durability barrier: fsyncs everything appended so far.
  Status Sync();

  /// File size in bytes (includes un-synced appends).
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  AppendOnlyFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  int fd_;
  std::string path_;
  uint64_t size_;
};

/// Writes `data` to `path` atomically: temp sibling + fsync + rename +
/// directory fsync. On any failure the target is untouched and the
/// temp file is removed (best effort).
Status AtomicWriteFile(const std::string& path, ByteSpan data);

/// Fsyncs the directory itself so recent renames/creates/unlinks in it
/// survive a crash.
Status FsyncDir(const std::string& dir);

/// Truncates `path` to exactly `size` bytes and fsyncs it. WAL recovery
/// uses this to physically discard a torn tail so the file can be
/// appended to again.
Status TruncateFile(const std::string& path, uint64_t size);

/// Advisory exclusive lock on `path` (created if absent) via flock.
///
/// Acquire is non-blocking: if another process (or another open handle
/// in this process) holds the lock, it fails with FailedPrecondition.
/// The lock is released when the object is destroyed.
class FileLock {
 public:
  static Result<std::unique_ptr<FileLock>> Acquire(const std::string& path);

  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  const std::string& path() const { return path_; }

 private:
  FileLock(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

}  // namespace tbm

#endif  // TBM_BASE_DURABLE_H_

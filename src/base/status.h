#ifndef TBM_BASE_STATUS_H_
#define TBM_BASE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tbm {

/// Error category carried by a Status.
///
/// The set of codes follows the conventions of production database
/// libraries (RocksDB, Arrow): a small, closed enumeration that callers
/// can dispatch on, with a free-form message for humans.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed value.
  kNotFound = 2,          ///< A named object or key does not exist.
  kAlreadyExists = 3,     ///< Creation conflicts with an existing object.
  kOutOfRange = 4,        ///< An index, time or span is outside valid bounds.
  kCorruption = 5,        ///< Stored data failed an integrity check.
  kIOError = 6,           ///< An operating-system I/O operation failed.
  kUnsupported = 7,       ///< The operation is not supported for this type.
  kFailedPrecondition = 8,///< Object state does not permit the operation.
  kResourceExhausted = 9, ///< A capacity or budget limit was exceeded.
  kInternal = 10,         ///< An invariant inside the library was violated.
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Operation outcome: either OK or an error code plus message.
///
/// The library never throws for expected failure modes; every fallible
/// public API returns `Status` or `Result<T>`. `Status` is cheap to
/// copy in the OK case (a single null pointer) and allocates only when
/// carrying an error.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must
  /// not be `kOk` (use the default constructor for success).
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status Corruption(std::string msg);
  static Status IOError(std::string msg);
  static Status Unsupported(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status Internal(std::string msg);

  /// True iff the status represents success.
  bool ok() const { return rep_ == nullptr; }

  /// The status code (`kOk` when `ok()`).
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message (empty when `ok()`).
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the
  /// message, preserving the code. No-op on OK statuses.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace tbm

#endif  // TBM_BASE_STATUS_H_

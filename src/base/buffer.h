#ifndef TBM_BASE_BUFFER_H_
#define TBM_BASE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "base/bytes.h"

namespace tbm {

class Buffer;

/// Shared, ref-counted handle to an immutable Buffer. A buffer stays
/// alive for as long as any BufferRef (or any BufferSlice over it)
/// does, wherever it came from — a BLOB store's backing array, a page
/// cache entry, a decoder's output. This is the ownership substrate of
/// the zero-copy read and derivation paths.
using BufferRef = std::shared_ptr<const Buffer>;

/// A ref-counted byte buffer, immutable once published.
///
/// The paper's storage argument (Def. 6, Table 1) needs derivations
/// that change only *timing* to cost orders of magnitude less than the
/// media they reference; that only works if the same physical pixels
/// can be aliased by many logical values. Buffer is that single
/// physical copy: every layer (blob stores, element assembly, codecs,
/// derivation values) holds slices of buffers instead of freshly
/// owned vectors.
///
/// Write-once contract: a producer may fill bytes through
/// `mutable_data()` *before* handing out any slice over them. Bytes
/// below any published slice's extent must never be rewritten —
/// MemoryBlobStore relies on this to append into spare capacity of a
/// buffer whose earlier bytes are already aliased by outstanding
/// reads. Consumers only ever see const bytes.
class Buffer {
 public:
  /// Takes ownership of `bytes` (no copy — the vector is moved into
  /// the buffer and its heap block becomes the payload).
  static BufferRef FromBytes(Bytes bytes);

  /// Allocates `size` zero-initialized bytes the caller may fill
  /// through mutable_data() before publishing slices.
  static BufferRef Allocate(size_t size);

  /// Allocates a new buffer holding a copy of `span`.
  static BufferRef CopyOf(ByteSpan span);

  /// Aliases external memory kept alive by `owner` (e.g. a
  /// std::vector<int16_t> viewed as bytes). `data` must stay valid for
  /// `owner`'s lifetime.
  static BufferRef Wrap(const void* data, size_t size,
                        std::shared_ptr<const void> owner);

  /// Like Wrap, but the wrapped memory is producer-writable: the
  /// returned buffer exposes `data` through mutable_data() under the
  /// usual write-once contract. Used for owned vectors that may still
  /// be filled (or, when a value holds the only reference, mutated in
  /// place by the fused derivation executor) before any sibling slice
  /// is published.
  static BufferRef WrapMutable(void* data, size_t size,
                               std::shared_ptr<const void> owner);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  ByteSpan span() const { return ByteSpan(data_, size_); }

  /// Process-unique identity, used to dedup *resident* byte
  /// accounting: two slices share physical storage iff their buffers
  /// have equal ids. Never 0.
  uint64_t id() const { return id_; }

  /// Fill access for the producing layer (see the write-once contract
  /// above). Null for buffers wrapping external const memory. Const so
  /// a producer can fill spare capacity through a BufferRef — the
  /// contract (never rewrite published bytes) is the real guard.
  uint8_t* mutable_data() const { return writable_; }

 private:
  Buffer(const uint8_t* data, uint8_t* writable, size_t size,
         std::shared_ptr<const void> owner);

  const uint8_t* data_;
  uint8_t* writable_;
  size_t size_;
  std::shared_ptr<const void> owner_;
  uint64_t id_;
};

/// A zero-copy view of a byte range inside a ref-counted Buffer.
///
/// BufferSlice is the library's unit of byte ownership: reading a BLOB
/// range, pulling a chunk, decoding an element and holding a frame's
/// pixels all yield slices, so the bytes are copied (at most) once —
/// when they enter memory — and aliased everywhere after.
///
/// The read API mirrors a const std::vector<uint8_t>, so consumers
/// iterate, index and measure slices exactly as they did owned Bytes.
/// Mutation is *explicitly* copy-on-write: `MutableCopy()` returns an
/// owned Bytes copy; writing it back (assignment from Bytes re-wraps
/// without copying) never affects sibling slices of the old buffer.
///
/// An empty slice needs no buffer; default construction is cheap.
class BufferSlice {
 public:
  BufferSlice() = default;

  /// Views all of `buffer` (which may be null — empty slice).
  BufferSlice(BufferRef buffer)  // NOLINT: implicit by design
      : buffer_(std::move(buffer)) {
    length_ = buffer_ ? buffer_->size() : 0;
  }

  /// Views `[offset, offset + length)` of `buffer`. The range is
  /// clamped to the buffer's extent.
  BufferSlice(BufferRef buffer, size_t offset, size_t length);

  /// Wraps an owned byte vector without copying (the vector is moved
  /// into a fresh buffer). Implicit so the pervasive pre-refactor
  /// idiom `slice_field = BuildBytes()` keeps working, now zero-copy.
  BufferSlice(Bytes bytes)  // NOLINT: implicit by design
      : BufferSlice(bytes.empty() ? nullptr
                                  : Buffer::FromBytes(std::move(bytes))) {}

  /// A slice over a fresh buffer holding a copy of `span`.
  static BufferSlice CopyOf(ByteSpan span);

  const uint8_t* data() const {
    return buffer_ ? buffer_->data() + offset_ : nullptr;
  }
  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + length_; }
  uint8_t front() const { return data()[0]; }
  uint8_t back() const { return data()[length_ - 1]; }

  ByteSpan span() const { return ByteSpan(data(), length_); }

  /// Sub-view sharing the same buffer; `[pos, pos + count)` is clamped
  /// to this slice's extent. O(1), no copy.
  BufferSlice Slice(size_t pos, size_t count) const;

  /// Explicit copy-on-write escape hatch: an owned, independent copy
  /// of the viewed bytes. Writes to it can never reach sibling slices.
  Bytes MutableCopy() const { return Bytes(begin(), end()); }

  /// The underlying buffer (null for empty slices).
  const BufferRef& buffer() const { return buffer_; }

  /// Identity of the underlying buffer, 0 if none. Slices with equal
  /// buffer_id() share physical bytes.
  uint64_t buffer_id() const { return buffer_ ? buffer_->id() : 0; }

  /// Offset of this view within its buffer.
  size_t offset() const { return offset_; }

  /// True iff both slices view the same underlying buffer.
  bool SharesBufferWith(const BufferSlice& other) const {
    return buffer_ != nullptr && buffer_ == other.buffer_;
  }

  /// Byte-wise equality (contents, not identity).
  friend bool operator==(const BufferSlice& a, const BufferSlice& b) {
    return a.length_ == b.length_ &&
           (a.length_ == 0 ||
            std::memcmp(a.data(), b.data(), a.length_) == 0);
  }
  friend bool operator==(const BufferSlice& a, const Bytes& b) {
    return a.length_ == b.size() &&
           (b.empty() || std::memcmp(a.data(), b.data(), b.size()) == 0);
  }
  friend bool operator==(const Bytes& a, const BufferSlice& b) {
    return b == a;
  }

 private:
  BufferRef buffer_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

/// A zero-copy, typed view of element data inside a ref-counted
/// Buffer — the slice form of std::vector<T> for POD sample types.
/// AudioBuffer holds a TypedSlice<int16_t> so audio timing derivations
/// (cut, excerpt) alias their source samples instead of copying them.
///
/// Same contract as BufferSlice: const-vector read API, explicit COW
/// via MutableCopy(), implicit zero-copy wrap of an owned vector.
template <typename T>
class TypedSlice {
  static_assert(std::is_trivially_copyable_v<T>,
                "TypedSlice requires a trivially copyable element type");

 public:
  TypedSlice() = default;

  /// Wraps an owned vector without copying its elements. The buffer is
  /// producer-writable (the vector is exclusively owned here), which
  /// lets the fused derivation executor transform samples in place when
  /// a value holds the only reference to them.
  TypedSlice(std::vector<T> v) {  // NOLINT: implicit by design
    if (v.empty()) return;
    auto owner = std::make_shared<std::vector<T>>(std::move(v));
    count_ = owner->size();
    T* elements = owner->data();  // Read before `owner` is moved from.
    buffer_ =
        Buffer::WrapMutable(elements, count_ * sizeof(T), std::move(owner));
  }

  /// A slice over a fresh buffer copying `[p, p + n)`.
  static TypedSlice CopyOf(const T* p, size_t n) {
    return TypedSlice(std::vector<T>(p, p + n));
  }

  const T* data() const {
    return buffer_ == nullptr
               ? nullptr
               : reinterpret_cast<const T*>(buffer_->data()) + offset_;
  }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + count_; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[count_ - 1]; }

  /// Sub-view (in elements) sharing the same buffer; clamped. O(1).
  TypedSlice Slice(size_t pos, size_t count) const {
    TypedSlice out;
    if (pos >= count_) return out;
    out.buffer_ = buffer_;
    out.offset_ = offset_ + pos;
    out.count_ = std::min(count, count_ - pos);
    if (out.count_ == 0) out.buffer_ = nullptr;
    return out;
  }

  /// Explicit copy-on-write: an owned, independent element copy.
  std::vector<T> MutableCopy() const { return std::vector<T>(begin(), end()); }

  const BufferRef& buffer() const { return buffer_; }
  uint64_t buffer_id() const { return buffer_ ? buffer_->id() : 0; }
  bool SharesBufferWith(const TypedSlice& other) const {
    return buffer_ != nullptr && buffer_ == other.buffer_;
  }

  friend bool operator==(const TypedSlice& a, const TypedSlice& b) {
    return a.count_ == b.count_ &&
           (a.count_ == 0 ||
            std::memcmp(a.data(), b.data(), a.count_ * sizeof(T)) == 0);
  }
  friend bool operator==(const TypedSlice& a, const std::vector<T>& b) {
    return a.count_ == b.size() &&
           (b.empty() ||
            std::memcmp(a.data(), b.data(), b.size() * sizeof(T)) == 0);
  }
  friend bool operator==(const std::vector<T>& a, const TypedSlice& b) {
    return b == a;
  }

 private:
  BufferRef buffer_;
  size_t offset_ = 0;  ///< In elements, relative to the buffer start.
  size_t count_ = 0;   ///< In elements.
};

/// Interleaved 16-bit PCM sample storage (see codec/pcm.h).
using SampleSlice = TypedSlice<int16_t>;

}  // namespace tbm

#endif  // TBM_BASE_BUFFER_H_

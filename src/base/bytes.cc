#include "base/bytes.h"

#include <cstdio>

namespace tbm {

Status ByteRange::Validate() const {
  if (length > std::numeric_limits<uint64_t>::max() - offset) {
    return Status::InvalidArgument(
        "byte range overflows: offset " + std::to_string(offset) +
        " + length " + std::to_string(length) + " wraps uint64");
  }
  return Status::OK();
}

std::string HumanBytes(uint64_t n) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(n);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(n));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string HumanRate(double bytes_per_second) {
  static const char* kUnits[] = {"B/s", "kB/s", "MB/s", "GB/s"};
  double value = bytes_per_second;
  int unit = 0;
  while (value >= 1000.0 && unit < 3) {
    value /= 1000.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  return buf;
}

}  // namespace tbm

#ifndef TBM_BASE_SHA256_H_
#define TBM_BASE_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "base/bytes.h"

namespace tbm {

/// A 256-bit content digest — the key of the content-addressed BLOB
/// tier. Wrapped in a struct so digests compare, hash and print as
/// values rather than raw arrays.
struct Sha256Digest {
  std::array<uint8_t, 32> bytes{};

  /// Lower-case 64-character hex form, used for on-disk shard paths
  /// (`xx/yy/<hex>`) and human-readable output.
  std::string ToHex() const;

  /// Parses a 64-character hex string; returns false on malformed
  /// input (wrong length or non-hex characters).
  static bool FromHex(std::string_view hex, Sha256Digest* out);

  friend bool operator==(const Sha256Digest& a, const Sha256Digest& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const Sha256Digest& a, const Sha256Digest& b) {
    return !(a == b);
  }
  friend bool operator<(const Sha256Digest& a, const Sha256Digest& b) {
    return a.bytes < b.bytes;
  }
};

/// Incremental SHA-256 (FIPS 180-4). Streaming-friendly: the CAS push
/// path feeds each pushed span through Update() so the content hash is
/// ready the moment the last byte lands, without buffering the BLOB.
///
///   Sha256 hasher;
///   hasher.Update(span_a);
///   hasher.Update(span_b);
///   Sha256Digest digest = hasher.Finish();
///
/// Finish() may be called once; the hasher is not reusable afterwards.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `data` into the running hash.
  void Update(ByteSpan data);

  /// Completes padding and returns the digest of everything updated.
  Sha256Digest Finish();

  /// Total bytes absorbed so far.
  uint64_t bytes_hashed() const { return total_; }

  /// One-shot convenience.
  static Sha256Digest Hash(ByteSpan data);

 private:
  void Compress(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_ = 0;          ///< Message length in bytes.
  uint8_t pending_[64];         ///< Partial block not yet compressed.
  size_t pending_len_ = 0;
};

}  // namespace tbm

#endif  // TBM_BASE_SHA256_H_

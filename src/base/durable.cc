#include "base/durable.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tbm {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// AppendOnlyFile

Result<std::unique_ptr<AppendOnlyFile>> AppendOnlyFile::Open(
    const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("cannot open for append:", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("cannot stat:", path));
  }
  return std::unique_ptr<AppendOnlyFile>(
      new AppendOnlyFile(fd, path, static_cast<uint64_t>(st.st_size)));
}

AppendOnlyFile::~AppendOnlyFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendOnlyFile::Append(ByteSpan data) {
  const uint8_t* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("write failed:", path_));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  size_ += data.size();
  return Status::OK();
}

Status AppendOnlyFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(Errno("fsync failed:", path_));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AtomicWriteFile

Status AtomicWriteFile(const std::string& path, ByteSpan data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("cannot open for write:", tmp));
  }
  const uint8_t* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError(Errno("write failed:", tmp));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("fsync failed:", tmp));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("close failed:", tmp));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("rename failed:", path));
  }
  // Persist the rename: fsync the containing directory.
  auto slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return FsyncDir(dir);
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError(Errno("cannot open directory:", dir));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(Errno("fsync failed on directory:", dir));
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError(Errno("cannot open for truncate:", path));
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    return Status::IOError(Errno("truncate failed:", path));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(Errno("fsync failed:", path));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FileLock

Result<std::unique_ptr<FileLock>> FileLock::Acquire(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError(Errno("cannot open lock file:", path));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    if (errno == EWOULDBLOCK || errno == EAGAIN) {
      return Status::FailedPrecondition("database is locked by another "
                                        "process (lock file " + path + ")");
    }
    return Status::IOError(Errno("flock failed:", path));
  }
  return std::unique_ptr<FileLock>(new FileLock(fd, path));
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace tbm

#ifndef TBM_BASE_MACROS_H_
#define TBM_BASE_MACROS_H_

#include <utility>

#include "base/result.h"
#include "base/status.h"

/// Evaluates `expr` (a Status expression); on error, returns it from the
/// enclosing function.
#define TBM_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::tbm::Status tbm_status_macro_tmp_ = (expr);        \
    if (!tbm_status_macro_tmp_.ok()) {                   \
      return tbm_status_macro_tmp_;                      \
    }                                                    \
  } while (false)

#define TBM_MACRO_CONCAT_INNER(x, y) x##y
#define TBM_MACRO_CONCAT(x, y) TBM_MACRO_CONCAT_INNER(x, y)

/// Evaluates `rexpr` (a Result<T> expression); on error returns the
/// status, otherwise assigns the value to `lhs`.
///
/// ```
/// TBM_ASSIGN_OR_RETURN(Blob blob, store.Get(id));
/// ```
#define TBM_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  TBM_ASSIGN_OR_RETURN_IMPL_(                                         \
      TBM_MACRO_CONCAT(tbm_result_macro_tmp_, __LINE__), lhs, rexpr)

#define TBM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#endif  // TBM_BASE_MACROS_H_

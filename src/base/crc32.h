#ifndef TBM_BASE_CRC32_H_
#define TBM_BASE_CRC32_H_

#include <cstdint>

#include "base/bytes.h"

namespace tbm {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to checksum BLOB
/// pages and the persisted catalog so corruption is detected on read
/// rather than silently interpreted.
uint32_t Crc32(ByteSpan data);

/// Incremental form: pass the previous CRC to extend it over more data.
/// `Crc32Extend(kCrc32Init, data)` finalized with `Crc32Finish` equals
/// `Crc32(data)`.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Extend(uint32_t crc, ByteSpan data);
inline uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

}  // namespace tbm

#endif  // TBM_BASE_CRC32_H_

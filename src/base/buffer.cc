#include "base/buffer.h"

#include <atomic>

namespace tbm {
namespace {

uint64_t NextBufferId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Buffer::Buffer(const uint8_t* data, uint8_t* writable, size_t size,
               std::shared_ptr<const void> owner)
    : data_(data),
      writable_(writable),
      size_(size),
      owner_(std::move(owner)),
      id_(NextBufferId()) {}

BufferRef Buffer::FromBytes(Bytes bytes) {
  auto owner = std::make_shared<Bytes>(std::move(bytes));
  uint8_t* data = owner->data();
  size_t size = owner->size();
  return BufferRef(new Buffer(data, data, size, std::move(owner)));
}

BufferRef Buffer::Allocate(size_t size) {
  return FromBytes(Bytes(size, 0));
}

BufferRef Buffer::CopyOf(ByteSpan span) {
  return FromBytes(Bytes(span.begin(), span.end()));
}

BufferRef Buffer::Wrap(const void* data, size_t size,
                       std::shared_ptr<const void> owner) {
  return BufferRef(new Buffer(static_cast<const uint8_t*>(data),
                              /*writable=*/nullptr, size, std::move(owner)));
}

BufferRef Buffer::WrapMutable(void* data, size_t size,
                              std::shared_ptr<const void> owner) {
  uint8_t* bytes = static_cast<uint8_t*>(data);
  return BufferRef(new Buffer(bytes, bytes, size, std::move(owner)));
}

BufferSlice::BufferSlice(BufferRef buffer, size_t offset, size_t length)
    : buffer_(std::move(buffer)) {
  const size_t extent = buffer_ ? buffer_->size() : 0;
  offset_ = std::min(offset, extent);
  length_ = std::min(length, extent - offset_);
  if (length_ == 0) {
    buffer_ = nullptr;
    offset_ = 0;
  }
}

BufferSlice BufferSlice::CopyOf(ByteSpan span) {
  if (span.empty()) return BufferSlice();
  return BufferSlice(Buffer::CopyOf(span));
}

BufferSlice BufferSlice::Slice(size_t pos, size_t count) const {
  if (pos >= length_) return BufferSlice();
  return BufferSlice(buffer_, offset_ + pos, std::min(count, length_ - pos));
}

}  // namespace tbm

#include "base/crc32.h"

#include <array>

namespace tbm {

namespace {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

uint32_t Crc32Extend(uint32_t crc, ByteSpan data) {
  for (uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32(ByteSpan data) {
  return Crc32Finish(Crc32Extend(kCrc32Init, data));
}

}  // namespace tbm

#include "base/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace tbm {

namespace {

std::atomic<void (*)(int64_t)> g_on_queue_depth{nullptr};
std::atomic<void (*)(uint64_t, uint64_t)> g_on_task_done{nullptr};

int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ReportDepth(size_t depth) {
  if (auto* hook = g_on_queue_depth.load(std::memory_order_relaxed)) {
    hook(static_cast<int64_t>(depth));
  }
}

}  // namespace

void ThreadPool::InstallHooks(const ThreadPoolHooks& hooks) {
  g_on_queue_depth.store(hooks.on_queue_depth, std::memory_order_relaxed);
  g_on_task_done.store(hooks.on_task_done, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int threads) {
  threads = std::max(threads, 1);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(QueuedTask{std::move(task), MonotonicNs()});
    depth = queue_.size();
  }
  ReportDepth(depth);
  cv_.notify_one();
}

int ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

int ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    ReportDepth(depth);
    auto* done = g_on_task_done.load(std::memory_order_relaxed);
    if (done == nullptr) {
      task.fn();
      continue;
    }
    const int64_t start_ns = MonotonicNs();
    task.fn();
    const int64_t end_ns = MonotonicNs();
    done(static_cast<uint64_t>(
             std::max<int64_t>(0, start_ns - task.enqueue_ns) / 1000),
         static_cast<uint64_t>(std::max<int64_t>(0, end_ns - start_ns) / 1000));
  }
}

}  // namespace tbm

#include "base/thread_pool.h"

#include <algorithm>

namespace tbm {

ThreadPool::ThreadPool(int threads) {
  threads = std::max(threads, 1);
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace tbm

#include "base/status.h"

namespace tbm {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
Status Status::Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace tbm

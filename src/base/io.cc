#include "base/io.h"

#include <cstdio>
#include <cstring>

namespace tbm {

void BinaryWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void BinaryWriter::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void BinaryWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

void BinaryWriter::WriteF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteVarU64(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void BinaryWriter::WriteVarI64(int64_t v) {
  // Zigzag encoding maps small negative values to small varints.
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  WriteVarU64(zz);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteVarU64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteBytes(ByteSpan b) {
  WriteVarU64(b.size());
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

void BinaryWriter::WriteRaw(ByteSpan b) {
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::Corruption("truncated input: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_) +
                              ", have " + std::to_string(data_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  if (auto s = Need(1); !s.ok()) return s;
  return data_[pos_++];
}

Result<uint16_t> BinaryReader::ReadU16() {
  if (auto s = Need(2); !s.ok()) return s;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  if (auto s = Need(4); !s.ok()) return s;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  if (auto s = Need(8); !s.ok()) return s;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> BinaryReader::ReadI32() {
  auto r = ReadU32();
  if (!r.ok()) return r.status();
  return static_cast<int32_t>(*r);
}

Result<int64_t> BinaryReader::ReadI64() {
  auto r = ReadU64();
  if (!r.ok()) return r.status();
  return static_cast<int64_t>(*r);
}

Result<double> BinaryReader::ReadF64() {
  auto r = ReadU64();
  if (!r.ok()) return r.status();
  double v;
  uint64_t bits = *r;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<uint64_t> BinaryReader::ReadVarU64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (auto s = Need(1); !s.ok()) return s;
    uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7E))) {
      return Status::Corruption("varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> BinaryReader::ReadVarI64() {
  auto r = ReadVarU64();
  if (!r.ok()) return r.status();
  uint64_t zz = *r;
  return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

Result<std::string> BinaryReader::ReadString() {
  auto len = ReadVarU64();
  if (!len.ok()) return len.status();
  if (auto s = Need(*len); !s.ok()) return s;
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return out;
}

Result<Bytes> BinaryReader::ReadBytes() {
  auto len = ReadVarU64();
  if (!len.ok()) return len.status();
  return ReadRaw(*len);
}

Result<Bytes> BinaryReader::ReadRaw(size_t n) {
  if (auto s = Need(n); !s.ok()) return s;
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Status WriteFile(const std::string& path, ByteSpan data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  Bytes out(static_cast<size_t>(size));
  size_t got = size == 0 ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) {
    return Status::IOError("short read: " + path);
  }
  return out;
}

}  // namespace tbm

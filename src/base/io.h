#ifndef TBM_BASE_IO_H_
#define TBM_BASE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/bytes.h"
#include "base/result.h"
#include "base/status.h"

namespace tbm {

/// Little-endian binary serializer used for catalog persistence and
/// on-disk BLOB metadata. All multi-byte integers are written
/// little-endian; variable-length integers use LEB128.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteI64(int64_t v);
  void WriteF64(double v);
  /// Unsigned LEB128 varint.
  void WriteVarU64(uint64_t v);
  /// Zigzag-encoded signed varint.
  void WriteVarI64(int64_t v);
  /// Length-prefixed (varint) string.
  void WriteString(std::string_view s);
  /// Length-prefixed (varint) byte buffer.
  void WriteBytes(ByteSpan b);
  /// Raw bytes, no length prefix.
  void WriteRaw(ByteSpan b);

  const Bytes& buffer() const { return buffer_; }
  Bytes TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Little-endian binary deserializer matching BinaryWriter. All reads
/// are bounds-checked and return Corruption on truncated input.
class BinaryReader {
 public:
  explicit BinaryReader(ByteSpan data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<uint64_t> ReadVarU64();
  Result<int64_t> ReadVarI64();
  Result<std::string> ReadString();
  Result<Bytes> ReadBytes();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> ReadRaw(size_t n);

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  ByteSpan data_;
  size_t pos_ = 0;
};

/// Writes `data` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, ByteSpan data);

/// Reads the entire file at `path`.
Result<Bytes> ReadFileBytes(const std::string& path);

}  // namespace tbm

#endif  // TBM_BASE_IO_H_

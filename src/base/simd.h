#ifndef TBM_BASE_SIMD_H_
#define TBM_BASE_SIMD_H_

/// Portable SIMD layer for the pixel/sample kernels that dominate the
/// codec and derivation hot paths (TJPEG DCT/quantize, RGB↔YUV, image
/// filters, level shifts).
///
/// Kernels are written once against the wrapper types below; the
/// backend is selected at compile time:
///
///   - TBM_SIMD_DISABLED (cmake -DTBM_SIMD_DISABLED=ON)  → scalar
///   - __SSE2__ / x86-64                                 → SSE2
///   - __ARM_NEON                                        → NEON
///   - anything else                                     → scalar
///
/// Determinism contract: every operation exposed here is either exact
/// integer arithmetic or an IEEE-754 single-precision operation
/// (+, -, *, /, min, max, round-to-nearest-even) applied per lane in a
/// fixed order, with no FMA contraction (the build sets
/// -ffp-contract=off). All three backends therefore produce
/// bit-identical results — the scalar-fallback CI job runs the full
/// test suite against the same expectations as the vector builds.
/// Float rounding uses round-to-nearest-even (SSE2 cvtps, NEON vcvtn,
/// scalar nearbyintf under the default rounding mode).

#if !defined(TBM_SIMD_DISABLED)
#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define TBM_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define TBM_SIMD_NEON 1
#endif
#endif

#if defined(TBM_SIMD_SSE2)
#include <emmintrin.h>
#elif defined(TBM_SIMD_NEON)
#include <arm_neon.h>
#endif

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace tbm::simd {

/// Name of the active backend, for bench and stats output.
constexpr const char* IsaName() {
#if defined(TBM_SIMD_SSE2)
  return "sse2";
#elif defined(TBM_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

constexpr bool Enabled() {
#if defined(TBM_SIMD_SSE2) || defined(TBM_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// F32x4: four packed single-precision floats

#if defined(TBM_SIMD_SSE2)

struct F32x4 {
  __m128 v;

  static F32x4 Zero() { return {_mm_setzero_ps()}; }
  static F32x4 Splat(float x) { return {_mm_set1_ps(x)}; }
  static F32x4 Load(const float* p) { return {_mm_loadu_ps(p)}; }
  static F32x4 FromI32(const int32_t* p) {
    return {_mm_cvtepi32_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
  }
  void Store(float* p) const { _mm_storeu_ps(p, v); }
  /// Rounds each lane to the nearest integer (ties to even) and stores
  /// four int32 lanes.
  void RoundStoreI32(int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), _mm_cvtps_epi32(v));
  }
  friend F32x4 operator+(F32x4 a, F32x4 b) { return {_mm_add_ps(a.v, b.v)}; }
  friend F32x4 operator-(F32x4 a, F32x4 b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend F32x4 operator*(F32x4 a, F32x4 b) { return {_mm_mul_ps(a.v, b.v)}; }
  friend F32x4 operator/(F32x4 a, F32x4 b) { return {_mm_div_ps(a.v, b.v)}; }
  static F32x4 Min(F32x4 a, F32x4 b) { return {_mm_min_ps(a.v, b.v)}; }
  static F32x4 Max(F32x4 a, F32x4 b) { return {_mm_max_ps(a.v, b.v)}; }
};

#elif defined(TBM_SIMD_NEON)

struct F32x4 {
  float32x4_t v;

  static F32x4 Zero() { return {vdupq_n_f32(0.0f)}; }
  static F32x4 Splat(float x) { return {vdupq_n_f32(x)}; }
  static F32x4 Load(const float* p) { return {vld1q_f32(p)}; }
  static F32x4 FromI32(const int32_t* p) {
    return {vcvtq_f32_s32(vld1q_s32(p))};
  }
  void Store(float* p) const { vst1q_f32(p, v); }
  void RoundStoreI32(int32_t* p) const { vst1q_s32(p, vcvtnq_s32_f32(v)); }
  friend F32x4 operator+(F32x4 a, F32x4 b) { return {vaddq_f32(a.v, b.v)}; }
  friend F32x4 operator-(F32x4 a, F32x4 b) { return {vsubq_f32(a.v, b.v)}; }
  friend F32x4 operator*(F32x4 a, F32x4 b) { return {vmulq_f32(a.v, b.v)}; }
  friend F32x4 operator/(F32x4 a, F32x4 b) { return {vdivq_f32(a.v, b.v)}; }
  static F32x4 Min(F32x4 a, F32x4 b) { return {vminq_f32(a.v, b.v)}; }
  static F32x4 Max(F32x4 a, F32x4 b) { return {vmaxq_f32(a.v, b.v)}; }
};

#else  // scalar fallback

struct F32x4 {
  float v[4];

  static F32x4 Zero() { return {{0.0f, 0.0f, 0.0f, 0.0f}}; }
  static F32x4 Splat(float x) { return {{x, x, x, x}}; }
  static F32x4 Load(const float* p) { return {{p[0], p[1], p[2], p[3]}}; }
  static F32x4 FromI32(const int32_t* p) {
    return {{static_cast<float>(p[0]), static_cast<float>(p[1]),
             static_cast<float>(p[2]), static_cast<float>(p[3])}};
  }
  void Store(float* p) const { std::memcpy(p, v, sizeof(v)); }
  void RoundStoreI32(int32_t* p) const {
    for (int i = 0; i < 4; ++i) {
      p[i] = static_cast<int32_t>(std::nearbyintf(v[i]));
    }
  }
  friend F32x4 operator+(F32x4 a, F32x4 b) {
    return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
             a.v[3] + b.v[3]}};
  }
  friend F32x4 operator-(F32x4 a, F32x4 b) {
    return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
             a.v[3] - b.v[3]}};
  }
  friend F32x4 operator*(F32x4 a, F32x4 b) {
    return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
             a.v[3] * b.v[3]}};
  }
  friend F32x4 operator/(F32x4 a, F32x4 b) {
    return {{a.v[0] / b.v[0], a.v[1] / b.v[1], a.v[2] / b.v[2],
             a.v[3] / b.v[3]}};
  }
  static F32x4 Min(F32x4 a, F32x4 b) {
    return {{a.v[0] < b.v[0] ? a.v[0] : b.v[0],
             a.v[1] < b.v[1] ? a.v[1] : b.v[1],
             a.v[2] < b.v[2] ? a.v[2] : b.v[2],
             a.v[3] < b.v[3] ? a.v[3] : b.v[3]}};
  }
  static F32x4 Max(F32x4 a, F32x4 b) {
    return {{a.v[0] > b.v[0] ? a.v[0] : b.v[0],
             a.v[1] > b.v[1] ? a.v[1] : b.v[1],
             a.v[2] > b.v[2] ? a.v[2] : b.v[2],
             a.v[3] > b.v[3] ? a.v[3] : b.v[3]}};
  }
};

#endif

// ---------------------------------------------------------------------------
// Byte-array kernels (exact integer semantics on every backend)

/// out[i] = 255 - in[i]. In-place safe (out may equal in).
inline void InvertBytes(const uint8_t* in, uint8_t* out, size_t n) {
  size_t i = 0;
#if defined(TBM_SIMD_SSE2)
  const __m128i ones = _mm_set1_epi8(static_cast<char>(0xFF));
  for (; i + 16 <= n; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_xor_si128(b, ones));
  }
#elif defined(TBM_SIMD_NEON)
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(out + i, vmvnq_u8(vld1q_u8(in + i)));
  }
#endif
  for (; i < n; ++i) out[i] = static_cast<uint8_t>(255 - in[i]);
}

/// out[i] = in[i] >= threshold ? 255 : 0. In-place safe.
inline void ThresholdBytes(const uint8_t* in, uint8_t* out, size_t n,
                           uint8_t threshold) {
  size_t i = 0;
#if defined(TBM_SIMD_SSE2)
  const __m128i t = _mm_set1_epi8(static_cast<char>(threshold));
  for (; i + 16 <= n; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    // max(b, t) == b  ⇔  b >= t (unsigned); the compare mask is the
    // output value itself (0xFF / 0x00).
    __m128i mask = _mm_cmpeq_epi8(_mm_max_epu8(b, t), b);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), mask);
  }
#elif defined(TBM_SIMD_NEON)
  const uint8x16_t t = vdupq_n_u8(threshold);
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(out + i, vcgeq_u8(vld1q_u8(in + i), t));
  }
#endif
  for (; i < n; ++i) out[i] = in[i] >= threshold ? 255 : 0;
}

/// out[i] = int16(in[i]) - 128 (the TJPEG level shift).
inline void LevelShiftBytes(const uint8_t* in, int16_t* out, size_t n) {
  size_t i = 0;
#if defined(TBM_SIMD_SSE2)
  const __m128i zero = _mm_setzero_si128();
  const __m128i bias = _mm_set1_epi16(128);
  for (; i + 16 <= n; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i lo = _mm_sub_epi16(_mm_unpacklo_epi8(b, zero), bias);
    __m128i hi = _mm_sub_epi16(_mm_unpackhi_epi8(b, zero), bias);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 8), hi);
  }
#elif defined(TBM_SIMD_NEON)
  const int16x8_t bias = vdupq_n_s16(128);
  for (; i + 16 <= n; i += 16) {
    uint8x16_t b = vld1q_u8(in + i);
    vst1q_s16(out + i,
              vsubq_s16(vreinterpretq_s16_u16(vmovl_u8(vget_low_u8(b))),
                        bias));
    vst1q_s16(out + i + 8,
              vsubq_s16(vreinterpretq_s16_u16(vmovl_u8(vget_high_u8(b))),
                        bias));
  }
#endif
  for (; i < n; ++i) out[i] = static_cast<int16_t>(in[i]) - 128;
}

/// out[i] = clamp(in[i] + 128, 0, 255) (the TJPEG level unshift).
inline void LevelUnshiftBytes(const int16_t* in, uint8_t* out, size_t n) {
  size_t i = 0;
#if defined(TBM_SIMD_SSE2)
  const __m128i bias = _mm_set1_epi16(128);
  for (; i + 16 <= n; i += 16) {
    __m128i lo = _mm_add_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)), bias);
    __m128i hi = _mm_add_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i + 8)), bias);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packus_epi16(lo, hi));
  }
#elif defined(TBM_SIMD_NEON)
  const int16x8_t bias = vdupq_n_s16(128);
  for (; i + 16 <= n; i += 16) {
    uint8x8_t lo = vqmovun_s16(vaddq_s16(vld1q_s16(in + i), bias));
    uint8x8_t hi = vqmovun_s16(vaddq_s16(vld1q_s16(in + i + 8), bias));
    vst1q_u8(out + i, vcombine_u8(lo, hi));
  }
#endif
  for (; i < n; ++i) {
    int v = static_cast<int>(in[i]) + 128;
    out[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

}  // namespace tbm::simd

#endif  // TBM_BASE_SIMD_H_

#ifndef TBM_BASE_THREAD_POOL_H_
#define TBM_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tbm {

/// A fixed-size worker pool over a shared task queue.
///
/// This is the execution substrate of the derivation evaluation engine
/// (see derive/scheduler.h) and of parallel activity flows
/// (playback/activity.h). Tasks are plain closures; ordering across
/// tasks is unspecified, so callers sequence dependent work themselves
/// (the scheduler does this with dependency counts).
///
/// The pool is intentionally simple — a mutex-guarded deque and a
/// condition variable — because evaluation tasks are coarse (whole
/// derivation steps, typically milliseconds of media processing), so
/// queue contention is negligible compared to task cost.
class ThreadPool {
 public:
  /// Starts `threads` workers. `threads` must be >= 1; use
  /// DefaultThreads() to size from the hardware.
  explicit ThreadPool(int threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (the queue is unbounded); tasks run
  /// in FIFO dispatch order across whichever workers free up first.
  void Submit(std::function<void()> task);

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency, with a floor of 1 (hardware_concurrency()
  /// may report 0 on exotic platforms).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tbm

#endif  // TBM_BASE_THREAD_POOL_H_

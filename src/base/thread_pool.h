#ifndef TBM_BASE_THREAD_POOL_H_
#define TBM_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tbm {

/// Process-wide instrumentation hooks for every ThreadPool. `base/`
/// must stay below `obs/` in the layering, so the pool cannot record
/// into the metrics registry itself; instead obs installs these
/// callbacks once at static-initialization time (see obs/metrics.cc)
/// and every pool — the derivation engine's, the prefetch I/O pools,
/// the serve scheduler's — reports through them for free.
///
/// All callbacks may be invoked concurrently from many threads and
/// must be cheap and non-blocking.
struct ThreadPoolHooks {
  /// Queue depth after an enqueue or dequeue (tasks waiting, not
  /// counting ones already running).
  void (*on_queue_depth)(int64_t depth) = nullptr;

  /// A task finished; `run_us` is its execution time and `queue_us`
  /// the time it spent waiting in the queue, both microseconds.
  void (*on_task_done)(uint64_t queue_us, uint64_t run_us) = nullptr;
};

/// A fixed-size worker pool over a shared task queue.
///
/// This is the execution substrate of the derivation evaluation engine
/// (see derive/scheduler.h) and of parallel activity flows
/// (playback/activity.h). Tasks are plain closures; ordering across
/// tasks is unspecified, so callers sequence dependent work themselves
/// (the scheduler does this with dependency counts).
///
/// The pool is intentionally simple — a mutex-guarded deque and a
/// condition variable — because evaluation tasks are coarse (whole
/// derivation steps, typically milliseconds of media processing), so
/// queue contention is negligible compared to task cost.
class ThreadPool {
 public:
  /// Starts `threads` workers. `threads` must be >= 1; use
  /// DefaultThreads() to size from the hardware.
  explicit ThreadPool(int threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (the queue is unbounded); tasks run
  /// in FIFO dispatch order across whichever workers free up first.
  void Submit(std::function<void()> task);

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Tasks currently waiting in the queue (excludes running tasks).
  int queue_depth() const;

  /// Hardware concurrency, with a floor of 1 (hardware_concurrency()
  /// may report 0 on exotic platforms).
  static int DefaultThreads();

  /// Installs the process-wide hooks. Intended to be called once,
  /// before any pool is busy (obs does so during static
  /// initialization); the slots are atomics, so a late install is
  /// safe, merely missing earlier events.
  static void InstallHooks(const ThreadPoolHooks& hooks);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tbm

#endif  // TBM_BASE_THREAD_POOL_H_

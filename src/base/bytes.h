#ifndef TBM_BASE_BYTES_H_
#define TBM_BASE_BYTES_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"

namespace tbm {

/// Owned byte buffer used throughout the library for raw media data.
using Bytes = std::vector<uint8_t>;

/// Non-owning read-only view over bytes.
using ByteSpan = std::span<const uint8_t>;

/// A half-open byte range [offset, offset + length) within a BLOB or
/// buffer. This is the unit of "placement" in interpretations (Def. 5).
struct ByteRange {
  uint64_t offset = 0;
  uint64_t length = 0;

  /// One past the last byte. Saturates at UINT64_MAX instead of
  /// wrapping when `offset + length` overflows — a wrapped end() made
  /// Contains/Overlaps accept ranges that reach past the address
  /// space. Ranges that saturate fail Validate().
  uint64_t end() const {
    const uint64_t kMax = std::numeric_limits<uint64_t>::max();
    return length > kMax - offset ? kMax : offset + length;
  }
  bool empty() const { return length == 0; }

  /// OK iff `offset + length` does not overflow uint64_t. Stores call
  /// this at their API boundary so a hostile or corrupt placement is
  /// rejected instead of aliasing the wrong bytes.
  Status Validate() const;

  /// True iff `other` lies entirely inside this range. Overflowing
  /// ranges saturate (see end()), so a wrapped `other` is never
  /// "contained" by a small range.
  bool Contains(const ByteRange& other) const {
    return other.offset >= offset && other.end() <= end() &&
           other.length <= length;
  }

  /// True iff the two ranges share at least one byte.
  bool Overlaps(const ByteRange& other) const {
    return offset < other.end() && other.offset < end();
  }

  friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

/// Formats a byte count with binary units, e.g. "1.50 MiB".
std::string HumanBytes(uint64_t n);

/// Formats a data rate, e.g. "0.52 MB/s" (decimal units, matching the
/// paper's Mbyte/sec figures).
std::string HumanRate(double bytes_per_second);

}  // namespace tbm

#endif  // TBM_BASE_BYTES_H_

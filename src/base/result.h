#ifndef TBM_BASE_RESULT_H_
#define TBM_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace tbm {

/// Value-or-error: holds either a `T` or a non-OK `Status`.
///
/// Usage:
/// ```
/// Result<Blob> r = store.Get(id);
/// if (!r.ok()) return r.status();
/// Blob& blob = *r;
/// ```
/// With the TBM_ASSIGN_OR_RETURN macro (see base/macros.h) the pattern
/// collapses to one line.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status. Passing an OK status is a bug and
  /// is converted to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; returns OK when a value is held.
  const Status& status() const { return status_; }

  /// Accessors; must hold a value.
  T& value() & { assert(ok()); return *value_; }
  const T& value() const& { assert(ok()); return *value_; }
  T&& value() && { assert(ok()); return std::move(*value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace tbm

#endif  // TBM_BASE_RESULT_H_

#include "media/descriptor.h"

#include "base/macros.h"

namespace tbm {

std::string MediaDescriptor::ToString(const std::string& object_name) const {
  std::string out = object_name + " descriptor = {\n";
  out += "  type = " + type_name + " (" +
         std::string(MediaKindToString(kind)) + ")\n";
  out += attrs.ToString();
  out += "}";
  return out;
}

Status MediaDescriptor::Validate(const MediaTypeRegistry& registry) const {
  TBM_ASSIGN_OR_RETURN(MediaType type, registry.Find(type_name));
  if (type.kind() != kind) {
    return Status::InvalidArgument(
        "descriptor kind " + std::string(MediaKindToString(kind)) +
        " does not match type " + type_name);
  }
  return type.ValidateDescriptor(attrs);
}

void MediaDescriptor::Serialize(BinaryWriter* writer) const {
  writer->WriteString(type_name);
  writer->WriteU8(static_cast<uint8_t>(kind));
  attrs.Serialize(writer);
}

Result<MediaDescriptor> MediaDescriptor::Deserialize(BinaryReader* reader) {
  MediaDescriptor d;
  TBM_ASSIGN_OR_RETURN(d.type_name, reader->ReadString());
  TBM_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->ReadU8());
  if (kind_byte > static_cast<uint8_t>(MediaKind::kText)) {
    return Status::Corruption("bad media kind tag");
  }
  d.kind = static_cast<MediaKind>(kind_byte);
  TBM_ASSIGN_OR_RETURN(d.attrs, AttrMap::Deserialize(reader));
  return d;
}

}  // namespace tbm

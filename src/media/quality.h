#ifndef TBM_MEDIA_QUALITY_H_
#define TBM_MEDIA_QUALITY_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "time/rational.h"

namespace tbm {

/// Descriptive quality factors (paper §2.2, "Quality Factors"): users
/// specify "VHS quality" or "CD quality" on a media-valued attribute;
/// the library — not the application — maps the name to low-level
/// encoding parameters. Low-level compression parameters never appear
/// at the data-modeling level.

/// Encoding parameters behind a named audio quality.
struct AudioQuality {
  std::string name;       ///< e.g. "CD quality".
  int64_t sample_rate;    ///< Hz.
  int64_t sample_size;    ///< Bits per sample.
  int64_t channels;
};

/// Encoding parameters behind a named video quality.
struct VideoQuality {
  std::string name;       ///< e.g. "VHS quality".
  int64_t width;
  int64_t height;
  Rational frame_rate;    ///< Frames per second.
  int codec_quality;      ///< TJPEG quality knob, 1 (worst) .. 100 (best).
  double target_bpp;      ///< Approximate compressed bits per pixel.
};

/// Named audio qualities: "telephone quality", "AM quality",
/// "FM quality", "CD quality", "DAT quality".
Result<AudioQuality> LookupAudioQuality(const std::string& name);

/// Named video qualities: "videophone quality", "VHS quality",
/// "broadcast quality", "studio quality".
Result<VideoQuality> LookupVideoQuality(const std::string& name);

/// All registered quality names, for enumeration sweeps.
std::vector<std::string> AudioQualityNames();
std::vector<std::string> VideoQualityNames();

}  // namespace tbm

#endif  // TBM_MEDIA_QUALITY_H_

#ifndef TBM_MEDIA_MEDIA_TYPE_H_
#define TBM_MEDIA_MEDIA_TYPE_H_

#include <optional>
#include <string>
#include <vector>

#include "media/attr.h"
#include "time/time_system.h"

namespace tbm {

/// The broad medium a media object belongs to.
enum class MediaKind : uint8_t {
  kImage = 0,
  kAudio = 1,
  kVideo = 2,
  kMusic = 3,      ///< Symbolic music (MIDI-style events).
  kAnimation = 4,  ///< Symbolic animation (scene/movement events).
  kText = 5,
};

std::string_view MediaKindToString(MediaKind kind);

/// Declaration of one attribute a media type requires or permits in
/// its descriptors.
struct AttrSpec {
  std::string name;
  AttrType type = AttrType::kInt;
  bool required = true;
};

/// A media type (paper Definition 1): a specification of the attributes
/// found in media descriptors and their possible values; for time-based
/// media, also the form of element descriptors and the constraints the
/// type imposes on its timed streams (§3.3: "Generally a media type
/// imposes restrictions on the form of timed streams based on that
/// type", e.g. CD audio forces s_{i+1} = s_i + d_i and d_i = 1).
class MediaType {
 public:
  MediaType() = default;
  MediaType(std::string name, MediaKind kind)
      : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const { return name_; }
  MediaKind kind() const { return kind_; }

  /// Attribute specifications for media descriptors.
  const std::vector<AttrSpec>& descriptor_spec() const {
    return descriptor_spec_;
  }
  /// Attribute specifications for element descriptors (empty for types
  /// whose elements are fully described by the media descriptor —
  /// homogeneous streams).
  const std::vector<AttrSpec>& element_spec() const { return element_spec_; }

  MediaType& AddDescriptorAttr(AttrSpec spec) {
    descriptor_spec_.push_back(std::move(spec));
    return *this;
  }
  MediaType& AddElementAttr(AttrSpec spec) {
    element_spec_.push_back(std::move(spec));
    return *this;
  }

  /// Stream-form constraints imposed by this type.
  /// If set, streams of this type must use exactly this time system.
  const std::optional<TimeSystem>& fixed_time_system() const {
    return fixed_time_system_;
  }
  /// If true, streams must be continuous (s_{i+1} = s_i + d_i).
  bool requires_continuous() const { return requires_continuous_; }
  /// If set, every element must have exactly this duration in ticks.
  std::optional<int64_t> fixed_element_duration() const {
    return fixed_element_duration_;
  }
  /// If true, elements are duration-less events (d_i = 0).
  bool event_based() const { return event_based_; }

  MediaType& SetFixedTimeSystem(TimeSystem ts) {
    fixed_time_system_ = ts;
    return *this;
  }
  MediaType& SetRequiresContinuous(bool v) {
    requires_continuous_ = v;
    return *this;
  }
  MediaType& SetFixedElementDuration(int64_t d) {
    fixed_element_duration_ = d;
    return *this;
  }
  MediaType& SetEventBased(bool v) {
    event_based_ = v;
    return *this;
  }

  /// Checks `attrs` against the descriptor spec: every required
  /// attribute present with the declared type; no checks on extras
  /// (types are open to annotation).
  Status ValidateDescriptor(const AttrMap& attrs) const;

  /// Checks one element descriptor against the element spec.
  Status ValidateElementDescriptor(const AttrMap& attrs) const;

 private:
  std::string name_;
  MediaKind kind_ = MediaKind::kAudio;
  std::vector<AttrSpec> descriptor_spec_;
  std::vector<AttrSpec> element_spec_;
  std::optional<TimeSystem> fixed_time_system_;
  std::optional<int64_t> fixed_element_duration_;
  bool requires_continuous_ = false;
  bool event_based_ = false;
};

/// Registry mapping type names ("audio/pcm", "video/tjpeg", ...) to
/// their specifications. `Builtin()` returns the registry preloaded
/// with the library's media types.
class MediaTypeRegistry {
 public:
  /// Registers a type; AlreadyExists if the name is taken.
  Status Register(MediaType type);

  /// Looks a type up by name.
  Result<MediaType> Find(const std::string& name) const;

  bool Contains(const std::string& name) const;

  std::vector<std::string> Names() const;

  /// The registry of built-in types:
  ///  - "audio/pcm"       uniform PCM audio (CD-style)
  ///  - "audio/adpcm"     block-ADPCM audio, heterogeneous elements
  ///  - "image/raw"       uncompressed raster image
  ///  - "image/tjpeg"     DCT-compressed image
  ///  - "video/raw"       uniform uncompressed video
  ///  - "video/tjpeg"     intraframe-compressed video (variable size)
  ///  - "video/tmpeg"     key/delta compressed video (out-of-order keys)
  ///  - "music/midi"      event-based MIDI music
  ///  - "animation/scene" non-continuous animation events
  static const MediaTypeRegistry& Builtin();

 private:
  std::map<std::string, MediaType> types_;
};

}  // namespace tbm

#endif  // TBM_MEDIA_MEDIA_TYPE_H_

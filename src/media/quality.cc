#include "media/quality.h"

namespace tbm {

namespace {

const std::vector<AudioQuality>& AudioQualities() {
  static const std::vector<AudioQuality> kQualities = {
      {"telephone quality", 8000, 8, 1},
      {"AM quality", 11025, 8, 1},
      {"FM quality", 22050, 16, 2},
      {"CD quality", 44100, 16, 2},
      {"DAT quality", 48000, 16, 2},
  };
  return kQualities;
}

const std::vector<VideoQuality>& VideoQualities() {
  static const std::vector<VideoQuality> kQualities = {
      // Quality ladder loosely following the paper's examples: DVI/MPEG-I
      // deliver "VHS quality" around 0.5 bit/pixel; MPEG-II targets
      // "near-broadcast quality".
      {"videophone quality", 176, 144, Rational(10), 20, 0.25},
      {"VHS quality", 640, 480, Rational(25), 50, 0.5},
      {"broadcast quality", 720, 576, Rational(25), 75, 1.5},
      {"studio quality", 720, 576, Rational(25), 95, 4.0},
  };
  return kQualities;
}

}  // namespace

Result<AudioQuality> LookupAudioQuality(const std::string& name) {
  for (const AudioQuality& q : AudioQualities()) {
    if (q.name == name) return q;
  }
  return Status::NotFound("unknown audio quality factor \"" + name + "\"");
}

Result<VideoQuality> LookupVideoQuality(const std::string& name) {
  for (const VideoQuality& q : VideoQualities()) {
    if (q.name == name) return q;
  }
  return Status::NotFound("unknown video quality factor \"" + name + "\"");
}

std::vector<std::string> AudioQualityNames() {
  std::vector<std::string> names;
  for (const AudioQuality& q : AudioQualities()) names.push_back(q.name);
  return names;
}

std::vector<std::string> VideoQualityNames() {
  std::vector<std::string> names;
  for (const VideoQuality& q : VideoQualities()) names.push_back(q.name);
  return names;
}

}  // namespace tbm

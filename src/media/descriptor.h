#ifndef TBM_MEDIA_DESCRIPTOR_H_
#define TBM_MEDIA_DESCRIPTOR_H_

#include <string>

#include "media/attr.h"
#include "media/media_type.h"

namespace tbm {

/// A media descriptor: the minimum a database system should know about
/// a media object — its type plus the encoding attributes that vary
/// from type to type (paper §3.2). An image descriptor carries width
/// and height; an audio descriptor carries sample size and rate; and so
/// on per the type's AttrSpec list.
struct MediaDescriptor {
  /// Name of the media type in the registry, e.g. "video/tjpeg".
  std::string type_name;
  MediaKind kind = MediaKind::kAudio;
  /// The attribute values (must satisfy the type's descriptor spec).
  AttrMap attrs;

  /// Renders in the paper's Figure 2 box style:
  /// ```
  /// video1 descriptor = {
  ///   frame rate = 25
  ///   ...
  /// }
  /// ```
  std::string ToString(const std::string& object_name) const;

  /// Validates against the named type in `registry`.
  Status Validate(const MediaTypeRegistry& registry) const;

  void Serialize(BinaryWriter* writer) const;
  static Result<MediaDescriptor> Deserialize(BinaryReader* reader);

  friend bool operator==(const MediaDescriptor&,
                         const MediaDescriptor&) = default;
};

}  // namespace tbm

#endif  // TBM_MEDIA_DESCRIPTOR_H_

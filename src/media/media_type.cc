#include "media/media_type.h"

#include "base/macros.h"

namespace tbm {

std::string_view MediaKindToString(MediaKind kind) {
  switch (kind) {
    case MediaKind::kImage: return "image";
    case MediaKind::kAudio: return "audio";
    case MediaKind::kVideo: return "video";
    case MediaKind::kMusic: return "music";
    case MediaKind::kAnimation: return "animation";
    case MediaKind::kText: return "text";
  }
  return "unknown";
}

namespace {

Status ValidateAgainstSpec(const AttrMap& attrs,
                           const std::vector<AttrSpec>& spec,
                           const std::string& what) {
  for (const AttrSpec& s : spec) {
    if (!attrs.Has(s.name)) {
      if (s.required) {
        return Status::InvalidArgument(what + " missing required attribute \"" +
                                       s.name + "\"");
      }
      continue;
    }
    auto v = attrs.Get(s.name);
    if (!v.ok()) return v.status();
    if (TypeOf(*v) != s.type) {
      return Status::InvalidArgument(
          what + " attribute \"" + s.name + "\" has type " +
          std::string(AttrTypeToString(TypeOf(*v))) + ", expected " +
          std::string(AttrTypeToString(s.type)));
    }
  }
  return Status::OK();
}

}  // namespace

Status MediaType::ValidateDescriptor(const AttrMap& attrs) const {
  return ValidateAgainstSpec(attrs, descriptor_spec_,
                             "media descriptor for " + name_);
}

Status MediaType::ValidateElementDescriptor(const AttrMap& attrs) const {
  return ValidateAgainstSpec(attrs, element_spec_,
                             "element descriptor for " + name_);
}

Status MediaTypeRegistry::Register(MediaType type) {
  if (types_.count(type.name()) > 0) {
    return Status::AlreadyExists("media type \"" + type.name() +
                                 "\" already registered");
  }
  std::string name = type.name();
  types_.emplace(std::move(name), std::move(type));
  return Status::OK();
}

Result<MediaType> MediaTypeRegistry::Find(const std::string& name) const {
  auto it = types_.find(name);
  if (it == types_.end()) {
    return Status::NotFound("unknown media type \"" + name + "\"");
  }
  return it->second;
}

bool MediaTypeRegistry::Contains(const std::string& name) const {
  return types_.count(name) > 0;
}

std::vector<std::string> MediaTypeRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& [name, type] : types_) names.push_back(name);
  return names;
}

const MediaTypeRegistry& MediaTypeRegistry::Builtin() {
  static const MediaTypeRegistry* kRegistry = [] {
    auto* reg = new MediaTypeRegistry();

    MediaType pcm("audio/pcm", MediaKind::kAudio);
    pcm.AddDescriptorAttr({"sample rate", AttrType::kInt, true})
        .AddDescriptorAttr({"sample size", AttrType::kInt, true})
        .AddDescriptorAttr({"number of channels", AttrType::kInt, true})
        .AddDescriptorAttr({"encoding", AttrType::kString, true})
        .AddDescriptorAttr({"quality factor", AttrType::kString, false})
        .SetRequiresContinuous(true)
        .SetFixedElementDuration(1);
    (void)reg->Register(std::move(pcm));

    // Block-granularity PCM: elements are sample blocks (e.g. the 1764
    // sample pairs per PAL frame of the paper's Figure 2), so element
    // durations equal the block length rather than 1.
    MediaType pcm_block("audio/pcm-block", MediaKind::kAudio);
    pcm_block.AddDescriptorAttr({"sample rate", AttrType::kInt, true})
        .AddDescriptorAttr({"sample size", AttrType::kInt, true})
        .AddDescriptorAttr({"number of channels", AttrType::kInt, true})
        .AddDescriptorAttr({"encoding", AttrType::kString, true})
        .AddDescriptorAttr({"quality factor", AttrType::kString, false})
        .SetRequiresContinuous(true);
    (void)reg->Register(std::move(pcm_block));

    MediaType adpcm("audio/adpcm", MediaKind::kAudio);
    adpcm.AddDescriptorAttr({"sample rate", AttrType::kInt, true})
        .AddDescriptorAttr({"number of channels", AttrType::kInt, true})
        .AddDescriptorAttr({"block size", AttrType::kInt, true})
        .AddDescriptorAttr({"encoding", AttrType::kString, true})
        .AddElementAttr({"predictor", AttrType::kInt, true})
        .AddElementAttr({"step index", AttrType::kInt, true})
        .SetRequiresContinuous(true);
    (void)reg->Register(std::move(adpcm));

    MediaType image_raw("image/raw", MediaKind::kImage);
    image_raw.AddDescriptorAttr({"width", AttrType::kInt, true})
        .AddDescriptorAttr({"height", AttrType::kInt, true})
        .AddDescriptorAttr({"depth", AttrType::kInt, true})
        .AddDescriptorAttr({"color model", AttrType::kString, true});
    (void)reg->Register(std::move(image_raw));

    MediaType image_tjpeg("image/tjpeg", MediaKind::kImage);
    image_tjpeg.AddDescriptorAttr({"width", AttrType::kInt, true})
        .AddDescriptorAttr({"height", AttrType::kInt, true})
        .AddDescriptorAttr({"depth", AttrType::kInt, true})
        .AddDescriptorAttr({"color model", AttrType::kString, true})
        .AddDescriptorAttr({"encoding", AttrType::kString, true})
        .AddDescriptorAttr({"quality factor", AttrType::kString, false})
        .AddDescriptorAttr({"codec quality", AttrType::kInt, false});
    (void)reg->Register(std::move(image_tjpeg));

    MediaType video_raw("video/raw", MediaKind::kVideo);
    video_raw.AddDescriptorAttr({"frame rate", AttrType::kRational, true})
        .AddDescriptorAttr({"frame width", AttrType::kInt, true})
        .AddDescriptorAttr({"frame height", AttrType::kInt, true})
        .AddDescriptorAttr({"frame depth", AttrType::kInt, true})
        .AddDescriptorAttr({"color model", AttrType::kString, true})
        .SetRequiresContinuous(true)
        .SetFixedElementDuration(1);
    (void)reg->Register(std::move(video_raw));

    MediaType video_tjpeg("video/tjpeg", MediaKind::kVideo);
    video_tjpeg.AddDescriptorAttr({"frame rate", AttrType::kRational, true})
        .AddDescriptorAttr({"frame width", AttrType::kInt, true})
        .AddDescriptorAttr({"frame height", AttrType::kInt, true})
        .AddDescriptorAttr({"frame depth", AttrType::kInt, true})
        .AddDescriptorAttr({"color model", AttrType::kString, true})
        .AddDescriptorAttr({"encoding", AttrType::kString, true})
        .AddDescriptorAttr({"quality factor", AttrType::kString, false})
        .AddDescriptorAttr({"codec quality", AttrType::kInt, false})
        .SetRequiresContinuous(true)
        .SetFixedElementDuration(1);
    (void)reg->Register(std::move(video_tjpeg));

    MediaType video_tmpeg("video/tmpeg", MediaKind::kVideo);
    video_tmpeg.AddDescriptorAttr({"frame rate", AttrType::kRational, true})
        .AddDescriptorAttr({"frame width", AttrType::kInt, true})
        .AddDescriptorAttr({"frame height", AttrType::kInt, true})
        .AddDescriptorAttr({"frame depth", AttrType::kInt, true})
        .AddDescriptorAttr({"color model", AttrType::kString, true})
        .AddDescriptorAttr({"encoding", AttrType::kString, true})
        .AddDescriptorAttr({"key interval", AttrType::kInt, true})
        .AddDescriptorAttr({"quality factor", AttrType::kString, false})
        .AddDescriptorAttr({"codec quality", AttrType::kInt, false})
        .AddElementAttr({"frame kind", AttrType::kString, true})
        .SetRequiresContinuous(true)
        .SetFixedElementDuration(1);
    (void)reg->Register(std::move(video_tmpeg));

    MediaType midi("music/midi", MediaKind::kMusic);
    midi.AddDescriptorAttr({"division", AttrType::kInt, true})
        .AddDescriptorAttr({"tempo bpm", AttrType::kRational, true})
        .AddElementAttr({"event kind", AttrType::kString, false})
        .SetEventBased(true);
    (void)reg->Register(std::move(midi));

    MediaType anim("animation/scene", MediaKind::kAnimation);
    anim.AddDescriptorAttr({"frame rate", AttrType::kRational, true})
        .AddDescriptorAttr({"width", AttrType::kInt, true})
        .AddDescriptorAttr({"height", AttrType::kInt, true});
    (void)reg->Register(std::move(anim));

    MediaType text("text/plain", MediaKind::kText);
    text.AddDescriptorAttr({"charset", AttrType::kString, false});
    (void)reg->Register(std::move(text));

    // Timed text: captions are a non-continuous stream (on-screen spans
    // with silence gaps).
    MediaType captions("text/captions", MediaKind::kText);
    captions.AddDescriptorAttr({"charset", AttrType::kString, false});
    (void)reg->Register(std::move(captions));

    return reg;
  }();
  return *kRegistry;
}

}  // namespace tbm

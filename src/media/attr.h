#ifndef TBM_MEDIA_ATTR_H_
#define TBM_MEDIA_ATTR_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>

#include "base/io.h"
#include "base/result.h"
#include "time/rational.h"

namespace tbm {

/// The value types that media-descriptor and element-descriptor
/// attributes can take (paper Definition 1: "a specification of the
/// attributes found in media descriptors and their possible values").
enum class AttrType : uint8_t {
  kInt = 0,
  kDouble = 1,
  kBool = 2,
  kString = 3,
  kRational = 4,
};

std::string_view AttrTypeToString(AttrType type);

/// A single attribute value.
using AttrValue = std::variant<int64_t, double, bool, std::string, Rational>;

/// The AttrType of a value.
AttrType TypeOf(const AttrValue& value);

/// Renders a value for display ("VHS quality", "25", "30000/1001", ...).
std::string AttrValueToString(const AttrValue& value);

/// An ordered attribute set: the representation of media descriptors
/// and element descriptors. Ordered (std::map) so that printed
/// descriptors and serialized bytes are deterministic.
class AttrMap {
 public:
  AttrMap() = default;

  void SetInt(std::string_view name, int64_t v) { attrs_[std::string(name)] = v; }
  void SetDouble(std::string_view name, double v) { attrs_[std::string(name)] = v; }
  void SetBool(std::string_view name, bool v) { attrs_[std::string(name)] = v; }
  void SetString(std::string_view name, std::string v) {
    attrs_[std::string(name)] = std::move(v);
  }
  void SetRational(std::string_view name, Rational v) {
    attrs_[std::string(name)] = v;
  }

  bool Has(std::string_view name) const;
  /// Typed getters; NotFound if absent, InvalidArgument on type mismatch.
  Result<int64_t> GetInt(std::string_view name) const;
  Result<double> GetDouble(std::string_view name) const;
  Result<bool> GetBool(std::string_view name) const;
  Result<std::string> GetString(std::string_view name) const;
  Result<Rational> GetRational(std::string_view name) const;

  /// Untyped access.
  Result<AttrValue> Get(std::string_view name) const;
  void Set(std::string_view name, AttrValue value) {
    attrs_[std::string(name)] = std::move(value);
  }
  Status Remove(std::string_view name);

  size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  auto begin() const { return attrs_.begin(); }
  auto end() const { return attrs_.end(); }

  /// Multi-line rendering in the paper's descriptor-box style:
  /// each line "  name = value".
  std::string ToString() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<AttrMap> Deserialize(BinaryReader* reader);

  friend bool operator==(const AttrMap&, const AttrMap&) = default;

 private:
  std::map<std::string, AttrValue> attrs_;
};

/// Element descriptors (paper Def. 1) are attribute sets describing an
/// individual media element rather than the object as a whole —
/// e.g. the per-block step-size state of an ADPCM coder, or a video
/// frame's key/intermediate role.
using ElementDescriptor = AttrMap;

}  // namespace tbm

#endif  // TBM_MEDIA_ATTR_H_

#include "media/attr.h"

#include <cstdio>

#include "base/macros.h"

namespace tbm {

std::string_view AttrTypeToString(AttrType type) {
  switch (type) {
    case AttrType::kInt: return "int";
    case AttrType::kDouble: return "double";
    case AttrType::kBool: return "bool";
    case AttrType::kString: return "string";
    case AttrType::kRational: return "rational";
  }
  return "unknown";
}

AttrType TypeOf(const AttrValue& value) {
  return static_cast<AttrType>(value.index());
}

std::string AttrValueToString(const AttrValue& value) {
  switch (TypeOf(value)) {
    case AttrType::kInt:
      return std::to_string(std::get<int64_t>(value));
    case AttrType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(value));
      return buf;
    }
    case AttrType::kBool:
      return std::get<bool>(value) ? "true" : "false";
    case AttrType::kString:
      return "\"" + std::get<std::string>(value) + "\"";
    case AttrType::kRational:
      return std::get<Rational>(value).ToString();
  }
  return "?";
}

bool AttrMap::Has(std::string_view name) const {
  return attrs_.count(std::string(name)) > 0;
}

Result<AttrValue> AttrMap::Get(std::string_view name) const {
  auto it = attrs_.find(std::string(name));
  if (it == attrs_.end()) {
    return Status::NotFound("no attribute \"" + std::string(name) + "\"");
  }
  return it->second;
}

namespace {
template <typename T>
Result<T> GetTyped(const AttrMap& map, std::string_view name,
                   AttrType expected) {
  TBM_ASSIGN_OR_RETURN(AttrValue v, map.Get(name));
  if (TypeOf(v) != expected) {
    return Status::InvalidArgument(
        "attribute \"" + std::string(name) + "\" is " +
        std::string(AttrTypeToString(TypeOf(v))) + ", expected " +
        std::string(AttrTypeToString(expected)));
  }
  return std::get<T>(v);
}
}  // namespace

Result<int64_t> AttrMap::GetInt(std::string_view name) const {
  return GetTyped<int64_t>(*this, name, AttrType::kInt);
}
Result<double> AttrMap::GetDouble(std::string_view name) const {
  return GetTyped<double>(*this, name, AttrType::kDouble);
}
Result<bool> AttrMap::GetBool(std::string_view name) const {
  return GetTyped<bool>(*this, name, AttrType::kBool);
}
Result<std::string> AttrMap::GetString(std::string_view name) const {
  return GetTyped<std::string>(*this, name, AttrType::kString);
}
Result<Rational> AttrMap::GetRational(std::string_view name) const {
  return GetTyped<Rational>(*this, name, AttrType::kRational);
}

Status AttrMap::Remove(std::string_view name) {
  if (attrs_.erase(std::string(name)) == 0) {
    return Status::NotFound("no attribute \"" + std::string(name) + "\"");
  }
  return Status::OK();
}

std::string AttrMap::ToString() const {
  std::string out;
  for (const auto& [name, value] : attrs_) {
    out += "  ";
    out += name;
    out += " = ";
    out += AttrValueToString(value);
    out += "\n";
  }
  return out;
}

void AttrMap::Serialize(BinaryWriter* writer) const {
  writer->WriteVarU64(attrs_.size());
  for (const auto& [name, value] : attrs_) {
    writer->WriteString(name);
    writer->WriteU8(static_cast<uint8_t>(TypeOf(value)));
    switch (TypeOf(value)) {
      case AttrType::kInt:
        writer->WriteVarI64(std::get<int64_t>(value));
        break;
      case AttrType::kDouble:
        writer->WriteF64(std::get<double>(value));
        break;
      case AttrType::kBool:
        writer->WriteU8(std::get<bool>(value) ? 1 : 0);
        break;
      case AttrType::kString:
        writer->WriteString(std::get<std::string>(value));
        break;
      case AttrType::kRational: {
        const Rational& r = std::get<Rational>(value);
        writer->WriteVarI64(r.num());
        writer->WriteVarI64(r.den());
        break;
      }
    }
  }
}

Result<AttrMap> AttrMap::Deserialize(BinaryReader* reader) {
  AttrMap map;
  TBM_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarU64());
  for (uint64_t i = 0; i < count; ++i) {
    TBM_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    TBM_ASSIGN_OR_RETURN(uint8_t type_byte, reader->ReadU8());
    if (type_byte > static_cast<uint8_t>(AttrType::kRational)) {
      return Status::Corruption("bad attribute type tag");
    }
    switch (static_cast<AttrType>(type_byte)) {
      case AttrType::kInt: {
        TBM_ASSIGN_OR_RETURN(int64_t v, reader->ReadVarI64());
        map.SetInt(name, v);
        break;
      }
      case AttrType::kDouble: {
        TBM_ASSIGN_OR_RETURN(double v, reader->ReadF64());
        map.SetDouble(name, v);
        break;
      }
      case AttrType::kBool: {
        TBM_ASSIGN_OR_RETURN(uint8_t v, reader->ReadU8());
        map.SetBool(name, v != 0);
        break;
      }
      case AttrType::kString: {
        TBM_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
        map.SetString(name, std::move(v));
        break;
      }
      case AttrType::kRational: {
        TBM_ASSIGN_OR_RETURN(int64_t num, reader->ReadVarI64());
        TBM_ASSIGN_OR_RETURN(int64_t den, reader->ReadVarI64());
        if (den <= 0) return Status::Corruption("bad rational denominator");
        map.SetRational(name, Rational(num, den));
        break;
      }
    }
  }
  return map;
}

}  // namespace tbm

#include "time/timecode.h"

#include <cstdio>

namespace tbm {

namespace {

// Frames dropped per drop event (numbers 0 and 1 of the minute).
constexpr int64_t kDropPerMinute = 2;

}  // namespace

std::string Timecode::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d%c%02d", hours, minutes,
                seconds, drop_frame ? ';' : ':', frames);
  return buf;
}

Result<Timecode> FrameToTimecode(int64_t frame, int nominal_fps,
                                 bool drop_frame) {
  if (frame < 0) return Status::InvalidArgument("negative frame index");
  if (nominal_fps <= 0) return Status::InvalidArgument("non-positive fps");
  if (drop_frame && nominal_fps != 30) {
    return Status::InvalidArgument(
        "drop-frame timecode is defined only for nominal 30 fps");
  }
  int64_t fps = nominal_fps;
  int64_t label = frame;
  if (drop_frame) {
    // Convert real frame count to the label count that skips 2 frame
    // numbers per minute except every 10th minute.
    const int64_t frames_per_10min = 10 * 60 * fps - 9 * kDropPerMinute;
    const int64_t frames_per_min = 60 * fps - kDropPerMinute;
    int64_t d = frame / frames_per_10min;
    int64_t m = frame % frames_per_10min;
    int64_t extra;
    if (m < 60 * fps) {
      extra = 0;  // Within the first (non-dropping boundary) minute.
    } else {
      extra = kDropPerMinute * (1 + (m - 60 * fps) / frames_per_min);
    }
    label = frame + 9 * kDropPerMinute * d + extra;
  }
  Timecode tc;
  tc.nominal_fps = nominal_fps;
  tc.drop_frame = drop_frame;
  tc.frames = static_cast<int>(label % fps);
  int64_t total_seconds = label / fps;
  tc.seconds = static_cast<int>(total_seconds % 60);
  tc.minutes = static_cast<int>((total_seconds / 60) % 60);
  tc.hours = static_cast<int>(total_seconds / 3600);
  return tc;
}

Result<int64_t> TimecodeToFrame(const Timecode& tc) {
  if (tc.nominal_fps <= 0) return Status::InvalidArgument("non-positive fps");
  if (tc.hours < 0 || tc.minutes < 0 || tc.minutes > 59 || tc.seconds < 0 ||
      tc.seconds > 59 || tc.frames < 0 || tc.frames >= tc.nominal_fps) {
    return Status::InvalidArgument("timecode field out of range: " +
                                   tc.ToString());
  }
  if (tc.drop_frame && tc.nominal_fps != 30) {
    return Status::InvalidArgument(
        "drop-frame timecode is defined only for nominal 30 fps");
  }
  const int64_t fps = tc.nominal_fps;
  int64_t total_minutes = 60LL * tc.hours + tc.minutes;
  if (tc.drop_frame && tc.seconds == 0 && tc.frames < kDropPerMinute &&
      tc.minutes % 10 != 0) {
    return Status::InvalidArgument("timecode label does not exist "
                                   "(dropped under drop-frame): " +
                                   tc.ToString());
  }
  int64_t label = ((total_minutes * 60) + tc.seconds) * fps + tc.frames;
  if (!tc.drop_frame) return label;
  int64_t dropped =
      kDropPerMinute * (total_minutes - total_minutes / 10);
  return label - dropped;
}

Result<Timecode> ParseTimecode(const std::string& text, int nominal_fps) {
  Timecode tc;
  tc.nominal_fps = nominal_fps;
  char sep = ':';
  if (std::sscanf(text.c_str(), "%d:%d:%d%c%d", &tc.hours, &tc.minutes,
                  &tc.seconds, &sep, &tc.frames) != 5) {
    return Status::InvalidArgument("cannot parse timecode: " + text);
  }
  if (sep != ':' && sep != ';') {
    return Status::InvalidArgument("bad timecode separator: " + text);
  }
  tc.drop_frame = (sep == ';');
  // Validate via the inverse mapping.
  auto frame = TimecodeToFrame(tc);
  if (!frame.ok()) return frame.status();
  return tc;
}

}  // namespace tbm

#include "time/rational.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

namespace tbm {

namespace {

using Int128 = __int128;

// Reduces a 128-bit fraction to a normalized 64-bit Rational. Values in
// this library come from media frequencies and frame counts, so after
// gcd reduction they always fit; assert as a backstop.
Rational Reduce128(Int128 num, Int128 den) {
  assert(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  Int128 a = num < 0 ? -num : num;
  Int128 b = den;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  if (a != 0) {
    num /= a;
    den /= a;
  }
  assert(num <= INT64_MAX && num >= INT64_MIN && den <= INT64_MAX);
  return Rational(static_cast<int64_t>(num), static_cast<int64_t>(den));
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) {
  assert(den != 0);
  if (den == 0) {  // Release-build fallback: treat as zero.
    num_ = 0;
    den_ = 1;
    return;
  }
  if (den < 0) {
    num = -num;
    den = -den;
  }
  int64_t g = std::gcd(num < 0 ? -num : num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  num_ = num;
  den_ = den;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const { return Rational(-num_, den_); }

Rational Rational::operator+(const Rational& o) const {
  return Reduce128(static_cast<Int128>(num_) * o.den_ +
                       static_cast<Int128>(o.num_) * den_,
                   static_cast<Int128>(den_) * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Reduce128(static_cast<Int128>(num_) * o.den_ -
                       static_cast<Int128>(o.num_) * den_,
                   static_cast<Int128>(den_) * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Reduce128(static_cast<Int128>(num_) * o.num_,
                   static_cast<Int128>(den_) * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  assert(!o.IsZero());
  if (o.IsZero()) return Rational();
  return Reduce128(static_cast<Int128>(num_) * o.den_,
                   static_cast<Int128>(den_) * o.num_);
}

Rational Rational::Reciprocal() const {
  assert(num_ != 0);
  if (num_ == 0) return Rational();
  return Rational(den_, num_);
}

Rational Rational::Abs() const {
  return num_ < 0 ? Rational(-num_, den_) : *this;
}

int64_t Rational::Floor() const {
  int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

int64_t Rational::Ceil() const {
  int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  return q;
}

int64_t Rational::Round() const {
  // Half away from zero: floor(|x| + 1/2) with sign reapplied.
  Int128 twice = static_cast<Int128>(num_) * 2;
  Int128 d = den_;
  if (num_ >= 0) {
    return static_cast<int64_t>((twice + d) / (2 * d));
  }
  return -static_cast<int64_t>((-twice + d) / (2 * d));
}

bool operator<(const Rational& a, const Rational& b) {
  return static_cast<Int128>(a.num_) * b.den_ <
         static_cast<Int128>(b.num_) * a.den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

int64_t RescaleTicks(int64_t ticks, const Rational& factor,
                     Rounding rounding) {
  Int128 num = static_cast<Int128>(ticks) * factor.num();
  Int128 den = factor.den();  // Always > 0.
  Int128 q = num / den;
  Int128 r = num % den;
  switch (rounding) {
    case Rounding::kFloor:
      if (r != 0 && num < 0) --q;
      break;
    case Rounding::kCeil:
      if (r != 0 && num > 0) ++q;
      break;
    case Rounding::kNearest: {
      Int128 ar = r < 0 ? -r : r;
      if (2 * ar >= den) {
        q += num >= 0 ? 1 : -1;
      }
      break;
    }
  }
  assert(q <= INT64_MAX && q >= INT64_MIN);
  return static_cast<int64_t>(q);
}

}  // namespace tbm

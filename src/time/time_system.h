#ifndef TBM_TIME_TIME_SYSTEM_H_
#define TBM_TIME_TIME_SYSTEM_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "time/rational.h"

namespace tbm {

/// A discrete time system D_f (paper Definition 2): the mapping
/// `i → i / f` from integer *discrete time values* (ticks) to
/// *continuous time values* in seconds, where `f` is the frequency of
/// the system.
///
/// Frequencies are exact rationals: NTSC video is D_{30000/1001}, not
/// D_{29.97}. Two time systems are equal iff their frequencies are
/// equal.
class TimeSystem {
 public:
  /// Default: one tick per second (D_1).
  TimeSystem() : frequency_(1) {}

  /// A system with `frequency` ticks per second; must be positive.
  explicit TimeSystem(Rational frequency) : frequency_(frequency) {}

  /// Convenience for integral frequencies (D_25, D_44100, ...).
  explicit TimeSystem(int64_t frequency) : frequency_(frequency) {}

  const Rational& frequency() const { return frequency_; }

  /// The continuous duration of a single tick, in seconds (1/f).
  Rational TickDuration() const { return frequency_.Reciprocal(); }

  /// Maps a discrete time value to continuous seconds: D_f(i) = i / f.
  Rational ToSeconds(int64_t ticks) const {
    return Rational(ticks) / frequency_;
  }

  double ToSecondsF(int64_t ticks) const { return ToSeconds(ticks).ToDouble(); }

  /// Maps continuous seconds to the discrete value under `rounding`.
  int64_t FromSeconds(const Rational& seconds,
                      Rounding rounding = Rounding::kNearest) const {
    return RescaleTicks(1, seconds * frequency_, rounding);
  }

  /// Converts a tick count from this system into `target`'s ticks.
  /// Exact when the frequencies are commensurable; otherwise rounded
  /// per `rounding`.
  int64_t ConvertTo(const TimeSystem& target, int64_t ticks,
                    Rounding rounding = Rounding::kNearest) const {
    return RescaleTicks(ticks, target.frequency_ / frequency_, rounding);
  }

  /// Renders as "D_f", e.g. "D_25", "D_30000/1001".
  std::string ToString() const;

  friend bool operator==(const TimeSystem& a, const TimeSystem& b) {
    return a.frequency_ == b.frequency_;
  }
  friend bool operator!=(const TimeSystem& a, const TimeSystem& b) {
    return !(a == b);
  }

 private:
  Rational frequency_;
};

std::ostream& operator<<(std::ostream& os, const TimeSystem& ts);

/// The time systems named in the paper (§3.3) plus common extras.
namespace time_systems {

/// North American (NTSC) video: D_29.97, exactly 30000/1001 Hz.
TimeSystem Ntsc();
/// European (PAL) video: D_25.
TimeSystem Pal();
/// Film: D_24.
TimeSystem Film();
/// CD audio: D_44100.
TimeSystem CdAudio();
/// DAT / professional audio: D_48000.
TimeSystem DatAudio();
/// Telephone-quality audio: D_8000.
TimeSystem Telephony();
/// MIDI sequencing at 960 pulses per quarter at 120 BPM = 1920 Hz.
TimeSystem MidiPpq960At120Bpm();
/// Milliseconds: D_1000, convenient for authoring-level timelines.
TimeSystem Millis();

}  // namespace time_systems

/// A time span [start, start + duration) measured in ticks of some time
/// system. This is the <s_i, d_i> part of a timed-stream tuple.
struct TickSpan {
  int64_t start = 0;
  int64_t duration = 0;

  int64_t end() const { return start + duration; }
  bool Contains(int64_t t) const { return t >= start && t < end(); }
  bool Overlaps(const TickSpan& o) const {
    return start < o.end() && o.start < end();
  }
  friend bool operator==(const TickSpan&, const TickSpan&) = default;
};

std::ostream& operator<<(std::ostream& os, const TickSpan& span);

}  // namespace tbm

#endif  // TBM_TIME_TIME_SYSTEM_H_

#ifndef TBM_TIME_TIMECODE_H_
#define TBM_TIME_TIMECODE_H_

#include <cstdint>
#include <string>

#include "base/result.h"
#include "time/time_system.h"

namespace tbm {

/// SMPTE-style timecode: HH:MM:SS:FF (or HH:MM:SS;FF for drop-frame).
///
/// Timecode is the human-facing address space of video editing; the
/// library uses it in editing APIs and example programs. Non-drop
/// timecode counts frames at an integral nominal rate; drop-frame
/// timecode (NTSC, nominal 30) skips frame numbers 0 and 1 of every
/// minute not divisible by 10 so that wall-clock and timecode stay
/// aligned at 29.97 fps.
struct Timecode {
  int hours = 0;
  int minutes = 0;
  int seconds = 0;
  int frames = 0;
  int nominal_fps = 25;     ///< Frame-number base (25 PAL, 30 NTSC, 24 film).
  bool drop_frame = false;  ///< Only meaningful with nominal_fps == 30.

  /// Renders as "HH:MM:SS:FF" (":" → ";" before FF when drop-frame).
  std::string ToString() const;

  friend bool operator==(const Timecode&, const Timecode&) = default;
};

/// Converts a frame index (0-based) to timecode.
/// For drop-frame, `frame` still counts real frames; the timecode label
/// skips dropped numbers.
Result<Timecode> FrameToTimecode(int64_t frame, int nominal_fps,
                                 bool drop_frame);

/// Converts a timecode to its 0-based frame index. Rejects labels that
/// are skipped under drop-frame counting and out-of-range fields.
Result<int64_t> TimecodeToFrame(const Timecode& tc);

/// Parses "HH:MM:SS:FF" / "HH:MM:SS;FF".
Result<Timecode> ParseTimecode(const std::string& text, int nominal_fps);

}  // namespace tbm

#endif  // TBM_TIME_TIMECODE_H_

#include "time/time_system.h"

namespace tbm {

std::string TimeSystem::ToString() const {
  return "D_" + frequency_.ToString();
}

std::ostream& operator<<(std::ostream& os, const TimeSystem& ts) {
  return os << ts.ToString();
}

namespace time_systems {

TimeSystem Ntsc() { return TimeSystem(Rational(30000, 1001)); }
TimeSystem Pal() { return TimeSystem(25); }
TimeSystem Film() { return TimeSystem(24); }
TimeSystem CdAudio() { return TimeSystem(44100); }
TimeSystem DatAudio() { return TimeSystem(48000); }
TimeSystem Telephony() { return TimeSystem(8000); }
TimeSystem MidiPpq960At120Bpm() { return TimeSystem(1920); }
TimeSystem Millis() { return TimeSystem(1000); }

}  // namespace time_systems

std::ostream& operator<<(std::ostream& os, const TickSpan& span) {
  return os << "[" << span.start << ", " << span.end() << ")";
}

}  // namespace tbm

#ifndef TBM_TIME_RATIONAL_H_
#define TBM_TIME_RATIONAL_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace tbm {

/// Exact rational number with 64-bit numerator and denominator.
///
/// Time-based media demands exact frequency arithmetic: NTSC video runs
/// at 30000/1001 frames per second, and representing that as 29.97
/// drifts by a frame every few hours. All frequencies and time
/// conversions in the library are carried as `Rational`.
///
/// The value is always kept normalized: gcd(|num|, den) == 1, den > 0.
/// Intermediate products use 128-bit arithmetic so that any pair of
/// practically occurring media frequencies can be combined without
/// overflow.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}

  /// An integer value.
  constexpr Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT

  /// num/den. den must be non-zero; the sign is normalized onto the
  /// numerator and the fraction reduced.
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }
  bool IsInteger() const { return den_ == 1; }

  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Renders as "num/den", or just "num" for integers.
  std::string ToString() const;

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division by zero is a programming error and asserts in debug
  /// builds; release builds return zero.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  Rational Reciprocal() const;
  Rational Abs() const;

  /// Floor of the rational as an integer.
  int64_t Floor() const;
  /// Ceiling of the rational as an integer.
  int64_t Ceil() const;
  /// Round half away from zero.
  int64_t Round() const;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }

 private:
  int64_t num_;
  int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Rounding policy for tick rescaling between time systems.
enum class Rounding {
  kFloor,
  kCeil,
  kNearest,  ///< Half away from zero.
};

/// Rescales `ticks * factor` to an integer under the given rounding,
/// using 128-bit intermediates.
int64_t RescaleTicks(int64_t ticks, const Rational& factor, Rounding rounding);

}  // namespace tbm

#endif  // TBM_TIME_RATIONAL_H_

#ifndef TBM_DERIVE_VALUE_H_
#define TBM_DERIVE_VALUE_H_

#include <memory>
#include <variant>
#include <vector>

#include "anim/animation.h"
#include "codec/image.h"
#include "codec/pcm.h"
#include "midi/midi.h"
#include "stream/timed_stream.h"
#include "time/rational.h"

namespace tbm {

/// A decoded video sequence: RGB frames at a frame rate. This is the
/// working (presentation-side) form video derivations operate on;
/// encoded forms live in BLOBs behind interpretations.
struct VideoValue {
  Rational frame_rate = Rational(25);
  std::vector<Image> frames;

  double DurationSeconds() const {
    if (frames.empty()) return 0.0;
    return static_cast<double>(frames.size()) /
           frame_rate.ToDouble();
  }
  Status Validate() const;
};

/// The runtime value of a media object during derivation evaluation:
/// the concrete, media-specific form an object takes once materialized.
/// Non-derived objects enter as leaves (from interpretations or
/// constructors); derivations map values to values.
using MediaValue = std::variant<AudioBuffer, VideoValue, Image, MidiSequence,
                                AnimationScene, TimedStream>;

/// Shared, immutable handle to an expanded media value.
///
/// Evaluation hands out ValueRefs instead of raw pointers so that the
/// expansion cache can evict entries under its byte budget without
/// invalidating values a caller is still holding: the value stays alive
/// for as long as any ValueRef to it does, wherever the cache entry
/// went.
using ValueRef = std::shared_ptr<const MediaValue>;

/// The media kind of a runtime value (timed streams report their
/// descriptor's kind).
MediaKind KindOfValue(const MediaValue& value);

/// Approximate storage footprint of the value if it were expanded and
/// stored rather than derived — the quantity the paper's storage-saving
/// argument compares derivation records against.
uint64_t ExpandedBytes(const MediaValue& value);

/// Presentation duration in seconds (0 for still images).
double PresentationSeconds(const MediaValue& value);

}  // namespace tbm

#endif  // TBM_DERIVE_VALUE_H_

#ifndef TBM_DERIVE_VALUE_H_
#define TBM_DERIVE_VALUE_H_

#include <memory>
#include <unordered_map>
#include <variant>
#include <vector>

#include "anim/animation.h"
#include "codec/image.h"
#include "codec/pcm.h"
#include "midi/midi.h"
#include "stream/timed_stream.h"
#include "time/rational.h"

namespace tbm {

/// A decoded video sequence: RGB frames at a frame rate. This is the
/// working (presentation-side) form video derivations operate on;
/// encoded forms live in BLOBs behind interpretations.
struct VideoValue {
  Rational frame_rate = Rational(25);
  std::vector<Image> frames;

  double DurationSeconds() const {
    if (frames.empty()) return 0.0;
    return static_cast<double>(frames.size()) /
           frame_rate.ToDouble();
  }
  Status Validate() const;
};

/// The runtime value of a media object during derivation evaluation:
/// the concrete, media-specific form an object takes once materialized.
/// Non-derived objects enter as leaves (from interpretations or
/// constructors); derivations map values to values.
using MediaValue = std::variant<AudioBuffer, VideoValue, Image, MidiSequence,
                                AnimationScene, TimedStream>;

/// Shared, immutable handle to an expanded media value.
///
/// Evaluation hands out ValueRefs instead of raw pointers so that the
/// expansion cache can evict entries under its byte budget without
/// invalidating values a caller is still holding: the value stays alive
/// for as long as any ValueRef to it does, wherever the cache entry
/// went.
using ValueRef = std::shared_ptr<const MediaValue>;

/// The media kind of a runtime value (timed streams report their
/// descriptor's kind).
MediaKind KindOfValue(const MediaValue& value);

/// Approximate storage footprint of the value if it were expanded and
/// stored rather than derived — the quantity the paper's storage-saving
/// argument compares derivation records against. Counts every slice at
/// its full logical length, so structurally shared bytes are counted
/// once per reference ("logical bytes").
uint64_t ExpandedBytes(const MediaValue& value);

/// The shared buffers backing a value's payload slices.
///
/// `buffers` maps buffer id to the *full* allocated size of that
/// buffer (a slice pins its whole buffer, so that is what residency
/// costs); each buffer appears once however many slices reference it.
/// `sliced_bytes` sums the slice lengths with multiplicity — the part
/// of ExpandedBytes that is backed by shared buffers at all.
struct BufferAudit {
  std::unordered_map<uint64_t, uint64_t> buffers;
  uint64_t sliced_bytes = 0;
};
BufferAudit AuditBuffers(const MediaValue& value);

/// Actual bytes held resident by the value: the deduplicated sum of
/// its backing buffer allocations (plus the serialized size for
/// variants that do not use shared buffers). For timing-only
/// derivations — edit lists, reversals, repeats — this is far below
/// ExpandedBytes, because the result shares the source's buffers.
uint64_t ResidentBytes(const MediaValue& value);

/// Presentation duration in seconds (0 for still images).
double PresentationSeconds(const MediaValue& value);

}  // namespace tbm

#endif  // TBM_DERIVE_VALUE_H_

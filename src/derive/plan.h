#ifndef TBM_DERIVE_PLAN_H_
#define TBM_DERIVE_PLAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "derive/graph.h"
#include "derive/operators.h"

namespace tbm {

/// One derived node, as the plan compiler sees it: the resolved
/// operator (null when the graph names an unknown derivation — the
/// error then surfaces at execution, exactly as before), the node's
/// parameters and inputs, and a label for error context. `params`
/// points into the graph, which must not be mutated while a compiled
/// plan is in use (the same contract evaluation already imposes).
struct PlanNodeSpec {
  NodeId id = 0;
  const DerivationOp* op = nullptr;
  const AttrMap* params = nullptr;
  std::vector<NodeId> inputs;
  std::string op_name;  ///< For per-op stats and unknown-op errors.
  std::string label;    ///< Node name, or the op name when unnamed.
};

/// A unit of execution: either a single node (executed exactly as the
/// node-at-a-time path always has) or a fused chain of content ops.
///
/// In a fused stage, `nodes.front()` is the head — the only node whose
/// inputs are external — and every later node is unary with its sole
/// input being the previous node's output. Only the tail's value
/// escapes the stage; interior values are fusion-elided and are never
/// cached.
struct PlanStage {
  std::vector<PlanNodeSpec> nodes;

  bool fused() const { return nodes.size() > 1; }
  NodeId output() const { return nodes.back().id; }
  /// External inputs (the head's), one entry per argument occurrence.
  const std::vector<NodeId>& inputs() const { return nodes.front().inputs; }
};

/// Compiler knobs. `fuse = false` compiles every node into its own
/// stage, reproducing node-at-a-time evaluation exactly (the `tbmctl
/// eval --no-fuse` escape hatch).
struct PlanOptions {
  bool fuse = true;
};

/// The executable form of one Evaluate call's subgraph.
struct CompiledPlan {
  /// Stages in topological order (derived from the node topo order, so
  /// a stage's external inputs are always produced by earlier stages or
  /// resolved before execution starts).
  std::vector<PlanStage> stages;

  /// Nodes placed inside fused stages (diagnostic; 0 without fusion).
  uint64_t fused_nodes = 0;

  /// Human-readable stage listing, for tests and debugging.
  std::string ToString() const;
};

/// Compiles a topologically ordered node list into stages.
///
/// A node B is appended to the stage currently tailed by its input A
/// iff fusion is on, B is unary with a whole-value stage form
/// (op->stage_fn), and A has exactly one consumer graph-wide
/// (`consumer_count`) — so eliding A's value can never starve another
/// reader, in this evaluation or a later one. Any node can head a
/// chain (multi-input ops only as the head); unknown-op nodes compile
/// to non-extendable singleton stages.
CompiledPlan CompilePlan(std::vector<PlanNodeSpec> specs,
                         const std::unordered_map<NodeId, int>& consumer_count,
                         const PlanOptions& options = {});

/// Per-stage execution accounting, consumed by the engine's stats.
struct FusedStageStats {
  /// Wall seconds attributed to each stage node (composed-run time is
  /// divided equally among the run's nodes).
  std::vector<double> node_seconds;
  /// Bytes of intermediate values never materialized: for every
  /// fusion-elided interior of a composed element-kernel run, its
  /// would-have-been payload size.
  uint64_t elided_bytes = 0;
  /// Stage nodes actually attempted (== nodes.size() on success; fewer
  /// when a node fails partway).
  size_t nodes_run = 0;
};

/// Executes a fused stage against its resolved external inputs.
///
/// Maximal runs of chainable element kernels (equal element counts,
/// each kernel consuming exactly what the previous produced) execute
/// as one tiled pass with no intermediate MediaValue — in place when
/// every kernel preserves the element stride and the stage exclusively
/// owns the payload. Nodes without a usable kernel fall back to their
/// whole-value form, which also reproduces the node-at-a-time error
/// behavior. Output is bit-identical to evaluating the chain
/// node-at-a-time.
Result<MediaValue> ExecuteFusedStage(const DerivationRegistry& registry,
                                     const PlanStage& stage,
                                     const std::vector<const MediaValue*>& args,
                                     FusedStageStats* stats);

}  // namespace tbm

#endif  // TBM_DERIVE_PLAN_H_

#include "derive/value.h"

namespace tbm {

Status VideoValue::Validate() const {
  if (frame_rate.IsZero() || frame_rate.IsNegative()) {
    return Status::InvalidArgument("non-positive frame rate");
  }
  for (const Image& frame : frames) {
    if (auto s = frame.Validate(); !s.ok()) return s;
    if (frame.width != frames.front().width ||
        frame.height != frames.front().height ||
        frame.model != frames.front().model) {
      return Status::InvalidArgument("video frames must share geometry");
    }
  }
  return Status::OK();
}

MediaKind KindOfValue(const MediaValue& value) {
  struct Visitor {
    MediaKind operator()(const AudioBuffer&) { return MediaKind::kAudio; }
    MediaKind operator()(const VideoValue&) { return MediaKind::kVideo; }
    MediaKind operator()(const Image&) { return MediaKind::kImage; }
    MediaKind operator()(const MidiSequence&) { return MediaKind::kMusic; }
    MediaKind operator()(const AnimationScene&) {
      return MediaKind::kAnimation;
    }
    MediaKind operator()(const TimedStream& stream) {
      return stream.descriptor().kind;
    }
  };
  return std::visit(Visitor{}, value);
}

uint64_t ExpandedBytes(const MediaValue& value) {
  struct Visitor {
    uint64_t operator()(const AudioBuffer& audio) {
      return audio.samples.size() * sizeof(int16_t);
    }
    uint64_t operator()(const VideoValue& video) {
      uint64_t total = 0;
      for (const Image& frame : video.frames) total += frame.data.size();
      return total;
    }
    uint64_t operator()(const Image& image) { return image.data.size(); }
    uint64_t operator()(const MidiSequence& midi) {
      BinaryWriter writer;
      midi.Serialize(&writer);
      return writer.size();
    }
    uint64_t operator()(const AnimationScene& scene) {
      BinaryWriter writer;
      scene.Serialize(&writer);
      return writer.size();
    }
    uint64_t operator()(const TimedStream& stream) {
      return stream.TotalBytes();
    }
  };
  return std::visit(Visitor{}, value);
}

namespace {

void NoteBuffer(const BufferRef& buffer, uint64_t slice_length,
                BufferAudit* audit) {
  if (buffer == nullptr) return;
  audit->sliced_bytes += slice_length;
  audit->buffers.emplace(buffer->id(), buffer->size());
}

}  // namespace

BufferAudit AuditBuffers(const MediaValue& value) {
  BufferAudit audit;
  struct Visitor {
    BufferAudit* audit;
    void operator()(const AudioBuffer& audio) {
      NoteBuffer(audio.samples.buffer(),
                 audio.samples.size() * sizeof(int16_t), audit);
    }
    void operator()(const VideoValue& video) {
      for (const Image& frame : video.frames) {
        NoteBuffer(frame.data.buffer(), frame.data.size(), audit);
      }
    }
    void operator()(const Image& image) {
      NoteBuffer(image.data.buffer(), image.data.size(), audit);
    }
    void operator()(const MidiSequence&) {}
    void operator()(const AnimationScene&) {}
    void operator()(const TimedStream& stream) {
      for (const StreamElement& element : stream) {
        NoteBuffer(element.data.buffer(), element.data.size(), audit);
      }
    }
  };
  std::visit(Visitor{&audit}, value);
  return audit;
}

uint64_t ResidentBytes(const MediaValue& value) {
  if (std::holds_alternative<MidiSequence>(value) ||
      std::holds_alternative<AnimationScene>(value)) {
    return ExpandedBytes(value);  // No shared buffers behind these.
  }
  BufferAudit audit = AuditBuffers(value);
  uint64_t resident = 0;
  for (const auto& [id, size] : audit.buffers) resident += size;
  return resident;
}

double PresentationSeconds(const MediaValue& value) {
  struct Visitor {
    double operator()(const AudioBuffer& audio) {
      return audio.DurationSeconds();
    }
    double operator()(const VideoValue& video) {
      return video.DurationSeconds();
    }
    double operator()(const Image&) { return 0.0; }
    double operator()(const MidiSequence& midi) {
      return midi.DurationSeconds();
    }
    double operator()(const AnimationScene& scene) {
      return scene.frame_rate().IsZero()
                 ? 0.0
                 : scene.EndTick() / scene.frame_rate().ToDouble();
    }
    double operator()(const TimedStream& stream) {
      return stream.DurationSeconds().ToDouble();
    }
  };
  return std::visit(Visitor{}, value);
}

}  // namespace tbm

#include "derive/graph.h"

#include <chrono>

#include "base/macros.h"

namespace tbm {

NodeId DerivationGraph::AddLeaf(MediaValue value, std::string name) {
  Node node;
  node.name = name.empty() ? "leaf" + std::to_string(nodes_.size())
                           : std::move(name);
  node.value = std::move(value);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<NodeId> DerivationGraph::AddDerived(const std::string& op,
                                           std::vector<NodeId> inputs,
                                           AttrMap params, std::string name) {
  TBM_ASSIGN_OR_RETURN(const DerivationOp* op_info, registry_->Find(op));
  if (inputs.size() != op_info->arg_kinds.size()) {
    return Status::InvalidArgument(
        "derivation \"" + op + "\" takes " +
        std::to_string(op_info->arg_kinds.size()) + " input(s), got " +
        std::to_string(inputs.size()));
  }
  for (NodeId input : inputs) {
    TBM_RETURN_IF_ERROR(CheckId(input));
  }
  Node node;
  node.name = name.empty() ? "derived" + std::to_string(nodes_.size())
                           : std::move(name);
  node.op = op;
  node.inputs = std::move(inputs);
  node.params = std::move(params);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status DerivationGraph::CheckId(NodeId id) const {
  if (id < 0 || id >= static_cast<NodeId>(nodes_.size())) {
    return Status::NotFound("no derivation node " + std::to_string(id));
  }
  return Status::OK();
}

bool DerivationGraph::IsDerived(NodeId id) const {
  return CheckId(id).ok() && !nodes_[id].value.has_value();
}

Result<std::string> DerivationGraph::NameOf(NodeId id) const {
  TBM_RETURN_IF_ERROR(CheckId(id));
  return nodes_[id].name;
}

Result<const MediaValue*> DerivationGraph::Evaluate(NodeId id) {
  TBM_RETURN_IF_ERROR(CheckId(id));
  Node& node = nodes_[id];
  if (node.value.has_value()) return &*node.value;
  if (node.cache.has_value()) return &*node.cache;
  std::vector<const MediaValue*> args;
  args.reserve(node.inputs.size());
  for (NodeId input : node.inputs) {
    TBM_ASSIGN_OR_RETURN(const MediaValue* value, Evaluate(input));
    args.push_back(value);
  }
  TBM_ASSIGN_OR_RETURN(MediaValue result,
                       registry_->Apply(node.op, args, node.params));
  node.cache = std::move(result);
  return &*node.cache;
}

void DerivationGraph::DropCache() {
  for (Node& node : nodes_) node.cache.reset();
}

Result<uint64_t> DerivationGraph::DerivationRecordBytes(NodeId id) const {
  TBM_RETURN_IF_ERROR(CheckId(id));
  const Node& node = nodes_[id];
  if (node.value.has_value()) {
    return sizeof(NodeId);  // A leaf contributes only its reference.
  }
  BinaryWriter writer;
  writer.WriteString(node.op);
  writer.WriteVarU64(node.inputs.size());
  for (NodeId input : node.inputs) writer.WriteVarI64(input);
  node.params.Serialize(&writer);
  uint64_t total = writer.size();
  for (NodeId input : node.inputs) {
    TBM_ASSIGN_OR_RETURN(uint64_t sub, DerivationRecordBytes(input));
    total += sub;
  }
  return total;
}

Result<DerivationGraph::Feasibility> DerivationGraph::MeasureFeasibility(
    NodeId id) {
  TBM_RETURN_IF_ERROR(CheckId(id));
  DropCache();
  auto start = std::chrono::steady_clock::now();
  TBM_ASSIGN_OR_RETURN(const MediaValue* value, Evaluate(id));
  auto end = std::chrono::steady_clock::now();
  Feasibility feasibility;
  feasibility.expansion_seconds =
      std::chrono::duration<double>(end - start).count();
  feasibility.presentation_seconds = PresentationSeconds(*value);
  feasibility.real_time =
      feasibility.expansion_seconds <= feasibility.presentation_seconds;
  return feasibility;
}

std::vector<DerivationGraph::NodeInfo> DerivationGraph::Nodes() const {
  std::vector<NodeInfo> infos;
  infos.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    NodeInfo info;
    info.id = static_cast<NodeId>(i);
    info.name = node.name;
    info.derived = !node.value.has_value();
    info.op = node.op;
    info.inputs = node.inputs;
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace tbm

#include "derive/graph.h"

#include <algorithm>
#include <chrono>

#include "base/macros.h"
#include "derive/scheduler.h"

namespace tbm {

namespace {
/// Dirty-log entries retained before the window is trimmed. Large
/// enough that any engine evaluating with normal cadence reconciles
/// incrementally; an engine further behind falls back to a full
/// invalidation.
constexpr size_t kDirtyLogWindow = 4096;
}  // namespace

DerivationGraph::DerivationGraph(const DerivationRegistry* registry)
    : registry_(registry) {}

DerivationGraph::~DerivationGraph() = default;

DerivationGraph::DerivationGraph(DerivationGraph&& other) noexcept
    : registry_(other.registry_),
      nodes_(std::move(other.nodes_)),
      mutation_seq_(other.mutation_seq_),
      dirty_log_(std::move(other.dirty_log_)),
      dirty_trimmed_seq_(other.dirty_trimmed_seq_) {
  // other's builtin engine points at `other`; it cannot be adopted.
  // Ours is rebuilt lazily (its cache starts cold, which is safe).
  other.nodes_.clear();
  other.dirty_log_.clear();
  other.builtin_engine_.reset();
}

DerivationGraph& DerivationGraph::operator=(DerivationGraph&& other) noexcept {
  if (this != &other) {
    registry_ = other.registry_;
    nodes_ = std::move(other.nodes_);
    mutation_seq_ = other.mutation_seq_;
    dirty_log_ = std::move(other.dirty_log_);
    dirty_trimmed_seq_ = other.dirty_trimmed_seq_;
    builtin_engine_.reset();
    other.nodes_.clear();
    other.dirty_log_.clear();
    other.builtin_engine_.reset();
  }
  return *this;
}

DerivationEngine* DerivationGraph::BuiltinEngine() {
  if (builtin_engine_ == nullptr) {
    builtin_engine_ = std::make_unique<DerivationEngine>(this, EvalOptions{});
  }
  return builtin_engine_.get();
}

NodeId DerivationGraph::AddLeaf(MediaValue value, std::string name) {
  Node node;
  node.name = name.empty() ? "leaf" + std::to_string(nodes_.size())
                           : std::move(name);
  node.value = std::make_shared<const MediaValue>(std::move(value));
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<NodeId> DerivationGraph::AddDerived(const std::string& op,
                                           std::vector<NodeId> inputs,
                                           AttrMap params, std::string name) {
  TBM_ASSIGN_OR_RETURN(const DerivationOp* op_info, registry_->Find(op));
  if (inputs.size() != op_info->arg_kinds.size()) {
    return Status::InvalidArgument(
        "derivation \"" + op + "\" takes " +
        std::to_string(op_info->arg_kinds.size()) + " input(s), got " +
        std::to_string(inputs.size()));
  }
  for (NodeId input : inputs) {
    TBM_RETURN_IF_ERROR(CheckId(input));
  }
  Node node;
  node.name = name.empty() ? "derived" + std::to_string(nodes_.size())
                           : std::move(name);
  node.op = op;
  node.inputs = std::move(inputs);
  node.params = std::move(params);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Status DerivationGraph::UpdateParams(NodeId id, AttrMap params) {
  TBM_RETURN_IF_ERROR(CheckId(id));
  Node& node = nodes_[id];
  if (node.value != nullptr) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is a leaf and has no parameters");
  }
  node.params = std::move(params);
  ++mutation_seq_;
  dirty_log_.emplace_back(mutation_seq_, id);
  if (dirty_log_.size() > kDirtyLogWindow) {
    size_t drop = dirty_log_.size() / 2;
    dirty_trimmed_seq_ = dirty_log_[drop - 1].first;
    dirty_log_.erase(dirty_log_.begin(),
                     dirty_log_.begin() + static_cast<ptrdiff_t>(drop));
  }
  return Status::OK();
}

std::vector<NodeId> DerivationGraph::DirtyNodesSince(uint64_t seq) const {
  if (seq < dirty_trimmed_seq_) {
    return {kDirtyLogTrimmed};  // The log no longer reaches back to seq.
  }
  std::vector<NodeId> dirty;
  for (const auto& [at, id] : dirty_log_) {
    if (at > seq) dirty.push_back(id);
  }
  return dirty;
}

Status DerivationGraph::CheckId(NodeId id) const {
  if (id < 0 || id >= static_cast<NodeId>(nodes_.size())) {
    return Status::NotFound("no derivation node " + std::to_string(id));
  }
  return Status::OK();
}

Result<bool> DerivationGraph::IsDerived(NodeId id) const {
  TBM_RETURN_IF_ERROR(CheckId(id));
  return nodes_[id].value == nullptr;
}

Result<std::string> DerivationGraph::NameOf(NodeId id) const {
  TBM_RETURN_IF_ERROR(CheckId(id));
  return nodes_[id].name;
}

Result<ValueRef> DerivationGraph::Evaluate(NodeId id) {
  return BuiltinEngine()->Evaluate(id);
}

void DerivationGraph::DropCache() {
  if (builtin_engine_ != nullptr) builtin_engine_->InvalidateAll();
}

Result<uint64_t> DerivationGraph::DerivationRecordBytes(NodeId id) const {
  TBM_RETURN_IF_ERROR(CheckId(id));
  const Node& node = nodes_[id];
  if (node.value != nullptr) {
    return sizeof(NodeId);  // A leaf contributes only its reference.
  }
  BinaryWriter writer;
  writer.WriteString(node.op);
  writer.WriteVarU64(node.inputs.size());
  for (NodeId input : node.inputs) writer.WriteVarI64(input);
  node.params.Serialize(&writer);
  uint64_t total = writer.size();
  for (NodeId input : node.inputs) {
    TBM_ASSIGN_OR_RETURN(uint64_t sub, DerivationRecordBytes(input));
    total += sub;
  }
  return total;
}

Result<DerivationGraph::Feasibility> DerivationGraph::MeasureFeasibility(
    NodeId id) {
  TBM_RETURN_IF_ERROR(CheckId(id));
  DropCache();
  auto start = std::chrono::steady_clock::now();
  TBM_ASSIGN_OR_RETURN(ValueRef value, Evaluate(id));
  auto end = std::chrono::steady_clock::now();
  Feasibility feasibility;
  feasibility.expansion_seconds =
      std::chrono::duration<double>(end - start).count();
  feasibility.presentation_seconds = PresentationSeconds(*value);
  feasibility.real_time =
      feasibility.expansion_seconds <= feasibility.presentation_seconds;
  return feasibility;
}

std::vector<DerivationGraph::NodeInfo> DerivationGraph::Nodes() const {
  std::vector<NodeInfo> infos;
  infos.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    NodeInfo info;
    info.id = static_cast<NodeId>(i);
    info.name = node.name;
    info.derived = node.value == nullptr;
    info.op = node.op;
    info.inputs = node.inputs;
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace tbm

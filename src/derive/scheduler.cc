#include "derive/scheduler.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/macros.h"
#include "derive/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tbm {

namespace {

/// Process-wide engine metrics (EvalStats stays the per-engine view and
/// keeps working in TBM_OBS_DISABLED builds; these registry mirrors add
/// latency distributions and fleet-wide aggregation on top).
struct EngineMetrics {
  obs::Counter* evaluations;
  obs::Counter* nodes_evaluated;
  obs::Counter* fused_nodes;
  obs::Counter* elided_bytes;
  obs::Histogram* evaluate_us;
  obs::Histogram* node_us;
  obs::Histogram* queue_wait_us;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return EngineMetrics{registry.counter("derive.evaluations"),
                           registry.counter("derive.nodes_evaluated"),
                           registry.counter("derive.fused_nodes"),
                           registry.counter("derive.elided_bytes"),
                           registry.histogram("derive.evaluate_us"),
                           registry.histogram("derive.node_us"),
                           registry.histogram("derive.queue_wait_us")};
    }();
    return metrics;
  }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string HumanByteCount(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", (unsigned long long)bytes);
  }
  return buf;
}

}  // namespace

std::string EvalStats::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "evaluations: %llu (%llu nodes evaluated, %.3f s wall)\n",
                (unsigned long long)evaluations,
                (unsigned long long)nodes_evaluated, wall_seconds);
  out += line;
  std::snprintf(line, sizeof(line),
                "cache: %llu hits, %llu misses, %llu evictions, "
                "%llu invalidations\n",
                (unsigned long long)cache_hits,
                (unsigned long long)cache_misses,
                (unsigned long long)cache_evictions,
                (unsigned long long)entries_invalidated);
  out += line;
  std::snprintf(line, sizeof(line), "cache occupancy: %s of %s budget\n",
                HumanByteCount(bytes_cached).c_str(),
                HumanByteCount(cache_budget_bytes).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "cache bytes: %s logical, %s resident (shared buffers "
                "counted once)\n",
                HumanByteCount(logical_bytes).c_str(),
                HumanByteCount(resident_bytes).c_str());
  out += line;
  std::snprintf(line, sizeof(line), "fusion: %llu nodes fused, %s elided\n",
                (unsigned long long)fused_nodes,
                HumanByteCount(elided_bytes).c_str());
  out += line;
  if (!per_op.empty()) {
    out += "per-op wall time:\n";
    for (const auto& [name, op] : per_op) {
      std::snprintf(line, sizeof(line), "  %-22s %6llu calls  %9.3f s\n",
                    name.c_str(), (unsigned long long)op.invocations,
                    op.seconds);
      out += line;
    }
  }
  return out;
}

/// The subgraph one Evaluate call must execute: nodes whose expansions
/// are not already available, in topological (postorder) order, plus
/// the dependency bookkeeping the parallel executor consumes.
struct DerivationEngine::Plan {
  NodeId root = 0;
  /// Resolved values: leaves, cache hits, then computed stage outputs.
  /// Holding the ValueRefs here pins them for the duration of the run,
  /// so later stages can safely use raw pointers into them even if the
  /// cache evicts concurrently. Fusion-elided interiors never appear.
  std::unordered_map<NodeId, ValueRef> values;
  /// Derived nodes to execute, topologically ordered.
  std::vector<NodeId> order;
  /// `order` compiled into stages (derive/plan.h): chains of
  /// single-consumer content ops become one fused stage; with
  /// EvalOptions::fuse off, exactly one stage per node.
  CompiledPlan compiled;
  /// Unresolved-input counts per stage, and which stages each pending
  /// value releases (one entry per argument occurrence).
  std::vector<int> remaining;
  std::unordered_map<NodeId, std::vector<size_t>> dependents;
};

DerivationEngine::DerivationEngine(DerivationGraph* graph, EvalOptions options)
    : graph_(graph),
      options_(options),
      threads_(options.threads == 0 ? ThreadPool::DefaultThreads()
                                    : std::max(options.threads, 1)),
      cache_(options.cache_budget_bytes, options.cache_shards) {}

DerivationEngine::~DerivationEngine() = default;

void DerivationEngine::SyncWithGraph() {
  uint64_t seq = graph_->mutation_seq();
  if (seq == synced_seq_) return;
  std::vector<NodeId> dirty = graph_->DirtyNodesSince(synced_seq_);
  if (!dirty.empty() && dirty.front() == DerivationGraph::kDirtyLogTrimmed) {
    cache_.Clear();
  } else if (!dirty.empty()) {
    InvalidateDependentsLocked(dirty);
  }
  synced_seq_ = seq;
}

void DerivationEngine::InvalidateDependentsLocked(
    const std::vector<NodeId>& roots) {
  // Transitive closure over reverse edges: one forward scan builds the
  // reverse adjacency (node ids are dense), then a BFS from the roots.
  const auto& nodes = graph_->nodes_;
  std::vector<std::vector<NodeId>> reverse(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (NodeId input : nodes[i].inputs) {
      reverse[static_cast<size_t>(input)].push_back(
          static_cast<NodeId>(i));
    }
  }
  std::vector<bool> seen(nodes.size(), false);
  std::vector<NodeId> frontier;
  for (NodeId id : roots) {
    if (id < 0 || static_cast<size_t>(id) >= nodes.size()) continue;
    if (!seen[static_cast<size_t>(id)]) {
      seen[static_cast<size_t>(id)] = true;
      frontier.push_back(id);
    }
  }
  while (!frontier.empty()) {
    NodeId id = frontier.back();
    frontier.pop_back();
    cache_.Erase(id);
    for (NodeId dep : reverse[static_cast<size_t>(id)]) {
      if (!seen[static_cast<size_t>(dep)]) {
        seen[static_cast<size_t>(dep)] = true;
        frontier.push_back(dep);
      }
    }
  }
}

void DerivationEngine::InvalidateAll() {
  std::lock_guard<std::mutex> lock(eval_mu_);
  cache_.Clear();
  synced_seq_ = graph_->mutation_seq();
}

Status DerivationEngine::Invalidate(NodeId id) {
  std::lock_guard<std::mutex> lock(eval_mu_);
  TBM_RETURN_IF_ERROR(graph_->CheckId(id));
  InvalidateDependentsLocked({id});
  return Status::OK();
}

Result<ValueRef> DerivationEngine::ApplyNode(
    NodeId id, const std::vector<const MediaValue*>& args) {
  const DerivationGraph::Node& node =
      graph_->nodes_[static_cast<size_t>(id)];
  // Per-node expansion span. Worker threads have no enclosing span of
  // their own, so they link to the Evaluate span explicitly.
  uint64_t parent = obs::Tracer::CurrentSpanId();
  if (parent == 0) parent = eval_span_id_;
  obs::ScopedSpan span(SpanNameForOp(node.op), parent);
  auto start = std::chrono::steady_clock::now();
  Result<MediaValue> result =
      graph_->registry_->Apply(node.op, args, node.params);
  double seconds = SecondsSince(start);
  EngineMetrics::Get().nodes_evaluated->Add();
  EngineMetrics::Get().node_us->Record(
      static_cast<uint64_t>(seconds * 1e6));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    OpStats& op = per_op_[node.op];
    ++op.invocations;
    op.seconds += seconds;
    ++nodes_evaluated_;
  }
  if (!result.ok()) {
    std::string label = node.name.empty() ? node.op : node.name;
    return result.status().WithContext("evaluating '" + label + "'");
  }
  ValueRef ref = std::make_shared<const MediaValue>(std::move(*result));
  cache_.Insert(id, ref, ExpandedBytes(*ref), seconds);
  return ref;
}

Result<ValueRef> DerivationEngine::ApplyStage(
    const Plan& plan, size_t stage_index,
    const std::vector<const MediaValue*>& args) {
  const PlanStage& stage = plan.compiled.stages[stage_index];
  if (!stage.fused()) {
    return ApplyNode(stage.nodes.front().id, args);
  }
  uint64_t parent = obs::Tracer::CurrentSpanId();
  if (parent == 0) parent = eval_span_id_;
  obs::ScopedSpan span("derive.fused_stage", parent);
  auto start = std::chrono::steady_clock::now();
  FusedStageStats fused;
  Result<MediaValue> result =
      ExecuteFusedStage(*graph_->registry_, stage, args, &fused);
  double seconds = SecondsSince(start);
  EngineMetrics::Get().nodes_evaluated->Add(fused.nodes_run);
  EngineMetrics::Get().fused_nodes->Add(fused.nodes_run);
  EngineMetrics::Get().elided_bytes->Add(fused.elided_bytes);
  EngineMetrics::Get().node_us->Record(
      static_cast<uint64_t>(seconds * 1e6));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (size_t k = 0; k < fused.nodes_run; ++k) {
      OpStats& op = per_op_[stage.nodes[k].op_name];
      ++op.invocations;
      op.seconds += fused.node_seconds[k];
    }
    nodes_evaluated_ += fused.nodes_run;
    fused_nodes_ += fused.nodes_run;
    elided_bytes_ += fused.elided_bytes;
  }
  if (!result.ok()) return result.status();
  ValueRef ref = std::make_shared<const MediaValue>(std::move(*result));
  // Only the stage output is cacheable; its recompute cost is the whole
  // chain's, which is what the cost-aware LRU should weigh.
  cache_.Insert(stage.output(), ref, ExpandedBytes(*ref), seconds);
  return ref;
}

Result<ValueRef> DerivationEngine::ExecuteInline(Plan* plan) {
  for (size_t s = 0; s < plan->compiled.stages.size(); ++s) {
    const PlanStage& stage = plan->compiled.stages[s];
    std::vector<const MediaValue*> args;
    args.reserve(stage.inputs().size());
    for (NodeId input : stage.inputs()) {
      args.push_back(plan->values.at(input).get());
    }
    TBM_ASSIGN_OR_RETURN(ValueRef value, ApplyStage(*plan, s, args));
    plan->values.emplace(stage.output(), std::move(value));
  }
  return plan->values.at(plan->root);
}

Result<ValueRef> DerivationEngine::ExecuteParallel(Plan* plan) {
  struct Run {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<size_t> ready;  // Stage indices.
    int inflight = 0;
    Status error;      // First failure in completion order.
    bool stop = false; // fail_fast tripped: schedule nothing further.
  };
  Run run;

  // exec(s) evaluates one stage and, under the run lock, releases any
  // dependent stages whose inputs are now all resolved. Newly ready
  // stages are submitted outside the lock. The driver below joins on
  // inflight == 0 && ready.empty(), so `run`, `plan` and `exec` outlive
  // every task that references them.
  std::function<void(size_t)> exec = [&](size_t s) {
    const PlanStage& stage = plan->compiled.stages[s];
    std::vector<const MediaValue*> args;
    args.reserve(stage.inputs().size());
    {
      // Values are appended concurrently; the pointed-to MediaValues
      // themselves are heap-allocated and pinned by the map's refs, so
      // raw pointers stay valid across rehashes.
      std::lock_guard<std::mutex> lock(run.mu);
      for (NodeId input : stage.inputs()) {
        args.push_back(plan->values.at(input).get());
      }
    }
    Result<ValueRef> result = ApplyStage(*plan, s, args);
    std::vector<size_t> to_submit;
    {
      std::lock_guard<std::mutex> lock(run.mu);
      --run.inflight;
      if (!result.ok()) {
        if (run.error.ok()) run.error = result.status();
        if (options_.fail_fast) {
          run.stop = true;
          run.ready.clear();
        }
        // Without fail_fast, dependents of the failed stage simply
        // never become ready; independent branches keep going.
      } else if (!run.stop) {
        plan->values.emplace(stage.output(), std::move(*result));
        for (size_t dep : plan->dependents[stage.output()]) {
          if (--plan->remaining[dep] == 0) run.ready.push_back(dep);
        }
      } else {
        plan->values.emplace(stage.output(), std::move(*result));
      }
      to_submit.swap(run.ready);
      run.inflight += static_cast<int>(to_submit.size());
      if (run.inflight == 0) run.cv.notify_all();
    }
    for (size_t next : to_submit) {
      int64_t submitted = obs::NowTicksNs();
      pool_->Submit([&exec, next, submitted] {
        EngineMetrics::Get().queue_wait_us->Record(static_cast<uint64_t>(
            std::max<int64_t>(0, obs::NowTicksNs() - submitted) / 1000));
        exec(next);
      });
    }
  };

  {
    std::lock_guard<std::mutex> lock(run.mu);
    for (size_t s = 0; s < plan->compiled.stages.size(); ++s) {
      if (plan->remaining[s] == 0) run.ready.push_back(s);
    }
    run.inflight = static_cast<int>(run.ready.size());
  }
  std::vector<size_t> seeds;
  {
    std::lock_guard<std::mutex> lock(run.mu);
    seeds.swap(run.ready);
  }
  for (size_t s : seeds) {
    int64_t submitted = obs::NowTicksNs();
    pool_->Submit([&exec, s, submitted] {
      EngineMetrics::Get().queue_wait_us->Record(static_cast<uint64_t>(
          std::max<int64_t>(0, obs::NowTicksNs() - submitted) / 1000));
      exec(s);
    });
  }
  {
    std::unique_lock<std::mutex> lock(run.mu);
    run.cv.wait(lock, [&run] { return run.inflight == 0; });
  }

  if (!run.error.ok()) return run.error;
  auto it = plan->values.find(plan->root);
  if (it == plan->values.end()) {
    return Status::Internal("evaluation finished without a root value");
  }
  return it->second;
}

const char* DerivationEngine::SpanNameForOp(const std::string& op) {
#ifdef TBM_OBS_DISABLED
  (void)op;
  return "";
#else
  std::lock_guard<std::mutex> lock(span_names_mu_);
  auto it = span_names_.find(op);
  if (it == span_names_.end()) {
    it = span_names_
             .emplace(op, obs::Tracer::Global().Intern("derive:" + op))
             .first;
  }
  return it->second;
#endif
}

Result<ValueRef> DerivationEngine::Evaluate(NodeId id) {
  std::lock_guard<std::mutex> lock(eval_mu_);
  obs::ScopedSpan eval_span("derive.evaluate");
  // Workers started by this call parent their node spans here (written
  // before any task is submitted; the pool's queue synchronizes).
  eval_span_id_ = eval_span.span_id();
  obs::ScopedTimerUs eval_timer(EngineMetrics::Get().evaluate_us);
  EngineMetrics::Get().evaluations->Add();
  TBM_RETURN_IF_ERROR(graph_->CheckId(id));
  auto start = std::chrono::steady_clock::now();
  SyncWithGraph();

  // Plan: DFS postorder over the needed subgraph. Leaves and cache hits
  // resolve immediately (a hit is pinned into the plan, so eviction
  // during the run cannot unresolve it); the rest is emitted in
  // topological order.
  Plan plan;
  {
    obs::ScopedSpan plan_span("derive.plan");
    plan.root = id;
    std::vector<std::pair<NodeId, bool>> stack{{id, false}};
    std::unordered_set<NodeId> visited;
    while (!stack.empty()) {
      auto [current, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        plan.order.push_back(current);
        continue;
      }
      if (!visited.insert(current).second) continue;
      const DerivationGraph::Node& node =
          graph_->nodes_[static_cast<size_t>(current)];
      if (node.value != nullptr) {
        plan.values.emplace(current, node.value);
        continue;
      }
      if (ValueRef cached = cache_.Lookup(current)) {
        plan.values.emplace(current, std::move(cached));
        continue;
      }
      stack.emplace_back(current, true);
      for (NodeId input : node.inputs) {
        if (visited.count(input) == 0) stack.emplace_back(input, false);
      }
    }
    // Compile the topo order into stages: chains of single-consumer
    // content ops fuse into one stage (derive/plan.h); everything else
    // stays node-at-a-time. Consumer counts are graph-wide, so a value
    // some *other* evaluation could still want is never elided.
    std::vector<PlanNodeSpec> specs;
    specs.reserve(plan.order.size());
    for (NodeId nid : plan.order) {
      const DerivationGraph::Node& node =
          graph_->nodes_[static_cast<size_t>(nid)];
      PlanNodeSpec spec;
      spec.id = nid;
      Result<const DerivationOp*> op = graph_->registry_->Find(node.op);
      spec.op = op.ok() ? *op : nullptr;
      spec.params = &node.params;
      spec.inputs = node.inputs;
      spec.op_name = node.op;
      spec.label = node.name.empty() ? node.op : node.name;
      specs.push_back(std::move(spec));
    }
    std::unordered_map<NodeId, int> consumers;
    for (const DerivationGraph::Node& node : graph_->nodes_) {
      for (NodeId input : node.inputs) ++consumers[input];
    }
    plan.compiled = CompilePlan(std::move(specs), consumers,
                                PlanOptions{options_.fuse});
    plan.remaining.assign(plan.compiled.stages.size(), 0);
    for (size_t s = 0; s < plan.compiled.stages.size(); ++s) {
      for (NodeId input : plan.compiled.stages[s].inputs()) {
        if (plan.values.count(input) == 0) {
          ++plan.remaining[s];
          plan.dependents[input].push_back(s);
        }
      }
    }
  }

  Result<ValueRef> result = [&]() -> Result<ValueRef> {
    if (plan.compiled.stages.empty()) return plan.values.at(plan.root);
    if (threads_ <= 1 || plan.compiled.stages.size() == 1) {
      return ExecuteInline(&plan);
    }
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
    return ExecuteParallel(&plan);
  }();

  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++evaluations_;
    wall_seconds_ += SecondsSince(start);
  }
  return result;
}

EvalStats DerivationEngine::stats() const {
  CacheStats cache = cache_.stats();
  EvalStats out;
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_evictions = cache.evictions;
  out.bytes_cached = cache.bytes_cached;
  out.cache_budget_bytes = cache.budget_bytes;
  out.logical_bytes = cache.logical_bytes;
  out.resident_bytes = cache.resident_bytes;
  out.entries_invalidated = cache.invalidations;
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.nodes_evaluated = nodes_evaluated_;
  out.evaluations = evaluations_;
  out.wall_seconds = wall_seconds_;
  out.fused_nodes = fused_nodes_;
  out.elided_bytes = elided_bytes_;
  out.per_op = per_op_;
  return out;
}

}  // namespace tbm

#include "derive/plan.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "base/macros.h"

namespace tbm {

namespace {

/// Tile size of the fused element loop: large enough to amortize the
/// per-tile dispatch, small enough that a tile of every intermediate
/// stays cache-resident.
constexpr size_t kTileBytes = 64 * 1024;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Raw payload bytes of an image or audio value, plus a mutable pointer
/// when (and only when) `exclusive` is claimed and the value is the
/// sole owner of a writable, exactly-covering buffer — the condition
/// under which the fused executor may transform the payload in place.
struct PayloadView {
  const uint8_t* data = nullptr;
  size_t size = 0;
  uint8_t* writable = nullptr;
};

PayloadView ViewPayload(const MediaValue& value, bool exclusive) {
  PayloadView view;
  if (const Image* image = std::get_if<Image>(&value)) {
    const BufferSlice& slice = image->data;
    view.data = slice.data();
    view.size = slice.size();
    const BufferRef& buffer = slice.buffer();
    if (exclusive && buffer != nullptr && buffer.use_count() == 1 &&
        buffer->mutable_data() != nullptr && slice.data() == buffer->data() &&
        slice.size() == buffer->size()) {
      view.writable = buffer->mutable_data();
    }
    return view;
  }
  if (const AudioBuffer* audio = std::get_if<AudioBuffer>(&value)) {
    const SampleSlice& slice = audio->samples;
    view.data = reinterpret_cast<const uint8_t*>(slice.data());
    view.size = slice.size() * sizeof(int16_t);
    const BufferRef& buffer = slice.buffer();
    if (exclusive && buffer != nullptr && buffer.use_count() == 1 &&
        buffer->mutable_data() != nullptr &&
        view.data == buffer->data() && view.size == buffer->size()) {
      view.writable = buffer->mutable_data();
    }
    return view;
  }
  return view;
}

/// Output storage for a composed run, allocated once for the final
/// kernel's shape. Images back onto Bytes, audio onto the sample
/// vector a SampleSlice wraps zero-copy.
struct RunOutput {
  Bytes bytes;
  std::vector<int16_t> samples;
  uint8_t* data = nullptr;

  static Result<RunOutput> For(const ElementShape& shape) {
    RunOutput out;
    const size_t size = shape.PayloadBytes();
    switch (shape.kind) {
      case MediaKind::kImage:
        out.bytes.assign(size, 0);
        out.data = out.bytes.data();
        return out;
      case MediaKind::kAudio:
        out.samples.assign(size / sizeof(int16_t), 0);
        out.data = reinterpret_cast<uint8_t*>(out.samples.data());
        return out;
      default:
        return Status::Internal("fused run produced a shapeless kind");
    }
  }

  Result<MediaValue> Finish(const ElementShape& shape) && {
    switch (shape.kind) {
      case MediaKind::kImage: {
        Image image;
        image.width = shape.width;
        image.height = shape.height;
        image.model = shape.model;
        image.data = std::move(bytes);
        return MediaValue(std::move(image));
      }
      case MediaKind::kAudio: {
        AudioBuffer audio;
        audio.sample_rate = shape.sample_rate;
        audio.channels = shape.channels;
        audio.samples = std::move(samples);
        return MediaValue(std::move(audio));
      }
      default:
        return Status::Internal("fused run produced a shapeless kind");
    }
  }
};

/// Rewrites `value`'s metadata to `shape` after an in-place composed
/// run (payload bytes were transformed through the buffer directly;
/// strides were equal, so sizes already agree).
void ApplyShapeInPlace(MediaValue* value, const ElementShape& shape) {
  if (Image* image = std::get_if<Image>(value)) {
    image->width = shape.width;
    image->height = shape.height;
    image->model = shape.model;
  } else if (AudioBuffer* audio = std::get_if<AudioBuffer>(value)) {
    audio->sample_rate = shape.sample_rate;
    audio->channels = shape.channels;
  }
}

/// Executes kernels[0..n) as one tiled pass over `input`. When
/// `owned` is non-null (the input is this stage's exclusively held
/// intermediate) and every kernel preserves the element stride, the
/// pass runs in place on the input payload; otherwise intermediates
/// ping-pong through two tile-sized scratch buffers and only the final
/// kernel's output is materialized.
Result<MediaValue> RunComposed(const std::vector<ElementKernel>& kernels,
                               const MediaValue& input, MediaValue* owned,
                               uint64_t* elided_bytes) {
  const size_t count = kernels.front().count;
  const ElementShape& out_shape = kernels.back().out_shape;
  for (size_t k = 0; k + 1 < kernels.size(); ++k) {
    *elided_bytes += count * kernels[k].out_bytes;
  }

  size_t max_stride = kernels.front().in_bytes;
  bool uniform_stride = true;
  for (const ElementKernel& kernel : kernels) {
    max_stride = std::max(max_stride, kernel.out_bytes);
    uniform_stride = uniform_stride &&
                     kernel.in_bytes == kernels.front().in_bytes &&
                     kernel.out_bytes == kernels.front().in_bytes;
  }
  const size_t tile =
      std::clamp<size_t>(kTileBytes / std::max<size_t>(max_stride, 1), 1,
                         std::max<size_t>(count, 1));

  if (owned != nullptr && uniform_stride) {
    PayloadView view = ViewPayload(*owned, /*exclusive=*/true);
    if (view.writable != nullptr) {
      const size_t stride = kernels.front().in_bytes;
      for (size_t first = 0; first < count; first += tile) {
        const size_t n = std::min(tile, count - first);
        uint8_t* p = view.writable + first * stride;
        for (const ElementKernel& kernel : kernels) {
          kernel.run(p, p, first, n);
        }
      }
      ApplyShapeInPlace(owned, out_shape);
      return std::move(*owned);
    }
  }

  PayloadView view = ViewPayload(input, /*exclusive=*/false);
  TBM_ASSIGN_OR_RETURN(RunOutput output, RunOutput::For(out_shape));
  const size_t in_stride = kernels.front().in_bytes;
  const size_t out_stride = kernels.back().out_bytes;
  size_t scratch_stride = 0;
  for (size_t k = 0; k + 1 < kernels.size(); ++k) {
    scratch_stride = std::max(scratch_stride, kernels[k].out_bytes);
  }
  std::vector<uint8_t> scratch[2];
  if (scratch_stride > 0) {
    scratch[0].resize(tile * scratch_stride);
    scratch[1].resize(tile * scratch_stride);
  }
  for (size_t first = 0; first < count; first += tile) {
    const size_t n = std::min(tile, count - first);
    const uint8_t* src = view.data + first * in_stride;
    int ping = 0;
    for (size_t k = 0; k < kernels.size(); ++k) {
      uint8_t* dst = (k + 1 == kernels.size())
                         ? output.data + first * out_stride
                         : scratch[ping].data();
      kernels[k].run(src, dst, first, n);
      src = dst;
      ping ^= 1;
    }
  }
  return std::move(output).Finish(out_shape);
}

/// Mirrors ApplyOp's single-argument kind check for interior nodes,
/// whose input never passes through the registry.
Status CheckInteriorKind(const DerivationOp& op, const MediaValue& value) {
  MediaKind kind = KindOfValue(value);
  if (kind != op.arg_kinds[0]) {
    return Status::InvalidArgument(
        "derivation \"" + op.name + "\" argument 0 must be " +
        std::string(MediaKindToString(op.arg_kinds[0])) + ", got " +
        std::string(MediaKindToString(kind)));
  }
  return Status::OK();
}

}  // namespace

std::string CompiledPlan::ToString() const {
  std::string out;
  for (size_t s = 0; s < stages.size(); ++s) {
    const PlanStage& stage = stages[s];
    out += "stage " + std::to_string(s) + ": ";
    for (size_t k = 0; k < stage.nodes.size(); ++k) {
      if (k > 0) out += " -> ";
      out += stage.nodes[k].op_name.empty() ? "(leafless)"
                                            : stage.nodes[k].op_name;
      out += "#" + std::to_string(stage.nodes[k].id);
    }
    if (stage.fused()) out += " [fused]";
    out += "\n";
  }
  return out;
}

CompiledPlan CompilePlan(std::vector<PlanNodeSpec> specs,
                         const std::unordered_map<NodeId, int>& consumer_count,
                         const PlanOptions& options) {
  CompiledPlan plan;
  plan.stages.reserve(specs.size());
  // Stage index currently tailed by each open (extendable) node value.
  std::unordered_map<NodeId, size_t> open_tail;
  for (PlanNodeSpec& spec : specs) {
    const NodeId id = spec.id;
    const bool extendable = spec.op != nullptr;
    bool appended = false;
    if (options.fuse && spec.op != nullptr && spec.op->stage_fn != nullptr &&
        spec.inputs.size() == 1) {
      auto tail = open_tail.find(spec.inputs[0]);
      if (tail != open_tail.end()) {
        auto consumers = consumer_count.find(spec.inputs[0]);
        if (consumers != consumer_count.end() && consumers->second == 1) {
          const size_t stage_index = tail->second;
          open_tail.erase(tail);
          plan.stages[stage_index].nodes.push_back(std::move(spec));
          open_tail[id] = stage_index;
          appended = true;
        }
      }
    }
    if (!appended) {
      plan.stages.push_back(PlanStage{{std::move(spec)}});
      if (extendable) open_tail[id] = plan.stages.size() - 1;
    }
  }
  for (const PlanStage& stage : plan.stages) {
    if (stage.fused()) plan.fused_nodes += stage.nodes.size();
  }
  return plan;
}

Result<MediaValue> ExecuteFusedStage(const DerivationRegistry& registry,
                                     const PlanStage& stage,
                                     const std::vector<const MediaValue*>& args,
                                     FusedStageStats* stats) {
  stats->node_seconds.assign(stage.nodes.size(), 0.0);
  stats->elided_bytes = 0;
  stats->nodes_run = 0;

  MediaValue current;
  bool have_current = false;
  size_t i = 0;
  while (i < stage.nodes.size()) {
    const PlanNodeSpec& node = stage.nodes[i];
    if (node.op == nullptr) {
      return Status::Internal("fused stage contains an unresolved op \"" +
                              node.op_name + "\"");
    }

    // Open the longest composed element-kernel run starting at node i.
    // The head may join only when unary (its single external argument
    // is then the run input); later starts read the staged value.
    const MediaValue* run_input = nullptr;
    if (i == 0) {
      if (args.size() == 1 && node.inputs.size() == 1) run_input = args[0];
    } else {
      run_input = &current;
    }
    std::vector<ElementKernel> kernels;
    if (run_input != nullptr) {
      Result<ElementShape> shape_or = ShapeOfValue(*run_input);
      if (shape_or.ok()) {
        ElementShape shape = *shape_or;
        for (size_t j = i; j < stage.nodes.size(); ++j) {
          const PlanNodeSpec& candidate = stage.nodes[j];
          if (candidate.op == nullptr || candidate.op->element_fn == nullptr) {
            break;
          }
          if (j == 0 && (candidate.op->arg_kinds.size() != 1 ||
                         candidate.op->stream_generic)) {
            break;
          }
          Result<ElementKernel> kernel_or =
              candidate.op->element_fn(shape, *candidate.params);
          if (!kernel_or.ok() || kernel_or->run == nullptr) break;
          if (kernels.empty()) {
            // The first kernel must consume exactly the input payload.
            if (kernel_or->in_bytes * kernel_or->count !=
                ViewPayload(*run_input, false).size) {
              break;
            }
          } else if (kernel_or->count != kernels.back().count ||
                     kernel_or->in_bytes != kernels.back().out_bytes) {
            break;
          }
          shape = kernel_or->out_shape;
          kernels.push_back(std::move(*kernel_or));
        }
      }
    }

    if (!kernels.empty()) {
      auto start = std::chrono::steady_clock::now();
      MediaValue* owned = (i > 0) ? &current : nullptr;
      TBM_ASSIGN_OR_RETURN(
          MediaValue result,
          RunComposed(kernels, *run_input, owned, &stats->elided_bytes));
      const double each = SecondsSince(start) / kernels.size();
      for (size_t k = 0; k < kernels.size(); ++k) {
        stats->node_seconds[i + k] = each;
      }
      stats->nodes_run += kernels.size();
      current = std::move(result);
      have_current = true;
      i += kernels.size();
      continue;
    }

    // Whole-value fallback for node i alone.
    auto start = std::chrono::steady_clock::now();
    Result<MediaValue> result = [&]() -> Result<MediaValue> {
      if (i == 0) return registry.ApplyOp(*node.op, args, *node.params);
      TBM_RETURN_IF_ERROR(CheckInteriorKind(*node.op, current));
      return node.op->stage_fn(std::move(current), *node.params);
    }();
    stats->node_seconds[i] = SecondsSince(start);
    ++stats->nodes_run;
    if (!result.ok()) {
      return result.status().WithContext("evaluating '" + node.label + "'");
    }
    current = std::move(*result);
    have_current = true;
    ++i;
  }

  if (!have_current) {
    return Status::Internal("fused stage executed no nodes");
  }
  return current;
}

}  // namespace tbm

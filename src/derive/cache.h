#ifndef TBM_DERIVE_CACHE_H_
#define TBM_DERIVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "derive/value.h"

namespace tbm {

/// Node handle within a DerivationGraph (mirrors derive/graph.h).
using NodeId = int64_t;

/// Counters exposed by ExpansionCache. All values are cumulative since
/// construction (or the last Clear(), for the occupancy fields).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;         ///< Entries pushed out by the byte budget.
  uint64_t insertions = 0;
  uint64_t oversize_rejects = 0;  ///< Values too large to ever fit a shard.
  uint64_t invalidations = 0;     ///< Entries dropped by Erase()/Clear().
  uint64_t bytes_cached = 0;      ///< Current charged occupancy (deduped).
  uint64_t entries = 0;           ///< Current entry count.
  uint64_t budget_bytes = 0;      ///< Configured ceiling.
  /// Sum of the live entries' declared (ExpandedBytes) sizes: what the
  /// cache would hold if every value owned a private copy of its bytes.
  uint64_t logical_bytes = 0;
  /// Actual bytes pinned: unique backing-buffer allocations (counted
  /// once however many entries share them) plus unshared value bytes.
  uint64_t resident_bytes = 0;

  std::string ToString() const;
};

/// A sharded, byte-budgeted expansion cache for derivation results.
///
/// The paper's derivation objects store the *specification* of each
/// step and are expanded on demand (§4.2); under server load the
/// expansions themselves must be reusable yet bounded in memory. This
/// cache maps derivation nodes to their expanded values with:
///
///  - **sharding**: entries hash to one of N independently locked
///    shards, so concurrent evaluation workers rarely contend;
///  - **byte budget**: the sum of cached value sizes never exceeds the
///    configured budget (values larger than a shard's slice are simply
///    not cached);
///  - **cost-aware LRU eviction**: when a shard must make room it
///    examines a small sample of its least-recently-used entries and
///    evicts the one that is cheapest to recompute per byte freed
///    (recompute seconds / bytes), so an expensive little render
///    outlives a cheap bulky memcpy of the same age.
///
/// Thread-safe. ValueRefs returned by Lookup remain valid after the
/// entry is evicted.
class ExpansionCache {
 public:
  static constexpr int kDefaultShards = 8;
  /// How many LRU-tail entries the evictor weighs against each other.
  static constexpr int kEvictionSample = 4;

  /// `budget_bytes` is the total ceiling across shards; each of the
  /// `shards` slices enforces an equal share of it.
  explicit ExpansionCache(uint64_t budget_bytes, int shards = kDefaultShards);
  ~ExpansionCache();

  ExpansionCache(const ExpansionCache&) = delete;
  ExpansionCache& operator=(const ExpansionCache&) = delete;

  /// Returns the cached value for `id`, or nullptr (counted as hit or
  /// miss). A hit refreshes the entry's recency.
  ValueRef Lookup(NodeId id);

  /// Caches `value` (replacing any previous entry for `id`).
  /// `bytes` is the value's declared (logical) expanded size;
  /// `cost_seconds` is the wall time that was spent computing it, used
  /// by the cost-aware evictor. The budget is charged the *deduped*
  /// cost: backing buffers already pinned by another live entry are
  /// free, so timing-only views of cached sources charge O(1) bytes.
  void Insert(NodeId id, ValueRef value, uint64_t bytes, double cost_seconds);

  /// Drops the entry for `id`, if present.
  void Erase(NodeId id);

  /// Drops every entry.
  void Clear();

  CacheStats stats() const;
  uint64_t budget_bytes() const { return budget_; }

 private:
  struct Entry {
    NodeId id = 0;
    ValueRef value;
    uint64_t bytes = 0;    ///< Declared (logical) size.
    uint64_t charge = 0;   ///< What this entry paid against the budget.
    uint64_t private_bytes = 0;  ///< Declared bytes not backed by buffers.
    /// Backing buffers referenced by the value: (buffer id, full size).
    std::vector<std::pair<uint64_t, uint64_t>> buffers;
    double cost_seconds = 0.0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<NodeId, std::list<Entry>::iterator> index;
    uint64_t bytes = 0;
    uint64_t budget = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
    uint64_t oversize_rejects = 0;
    uint64_t invalidations = 0;
  };
  /// Cross-shard residency of one backing buffer.
  struct BufferUse {
    uint64_t size = 0;
    uint64_t refs = 0;  ///< Live entries (any shard) referencing it.
  };

  Shard& ShardFor(NodeId id);
  /// Bytes `entry` would charge right now: private bytes plus buffers
  /// not yet pinned by any live entry. Caller holds `ledger_mu_`.
  uint64_t ChargeOfLocked(const Entry& entry) const;
  /// Commits `entry`'s buffer references into the ledger. Caller holds
  /// `ledger_mu_`.
  void PinBuffersLocked(const Entry& entry);
  /// Removes one entry's accounting (ledger refs, shard bytes, global
  /// totals). Caller holds `shard.mu`; takes `ledger_mu_` itself.
  void ReleaseEntry(Shard& shard, const Entry& entry);

  uint64_t budget_;
  int shard_count_;
  std::unique_ptr<Shard[]> shards_;

  /// Buffer ledger: which backing buffers are pinned by live entries,
  /// deduplicated across shards. Locked after a shard's `mu` (always
  /// in that order); never held across shard-lock acquisition.
  mutable std::mutex ledger_mu_;
  std::unordered_map<uint64_t, BufferUse> ledger_;
  uint64_t ledger_resident_ = 0;  ///< Σ sizes of pinned buffers.
  uint64_t private_total_ = 0;    ///< Σ private bytes of live entries.
  uint64_t logical_total_ = 0;    ///< Σ declared bytes of live entries.
};

}  // namespace tbm

#endif  // TBM_DERIVE_CACHE_H_

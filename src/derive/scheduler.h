#ifndef TBM_DERIVE_SCHEDULER_H_
#define TBM_DERIVE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "base/thread_pool.h"
#include "derive/cache.h"
#include "derive/graph.h"

namespace tbm {

/// Evaluation knobs, shared by every entry point that expands
/// derivations (DerivationEngine, DerivationGraph::Evaluate,
/// MediaDatabase::Materialize, tbmctl eval).
struct EvalOptions {
  /// Worker threads for DAG-parallel expansion. 1 evaluates inline on
  /// the calling thread (fully deterministic scheduling); 0 means "use
  /// the hardware" (ThreadPool::DefaultThreads()).
  int threads = 1;

  /// Byte budget of the expansion cache. The cache never holds more
  /// than this many bytes of expanded media.
  uint64_t cache_budget_bytes = 256ull << 20;  // 256 MiB

  /// Lock shards of the expansion cache.
  int cache_shards = ExpansionCache::kDefaultShards;

  /// When true (default), the first failing derivation stops the
  /// scheduling of further nodes; in-flight nodes still finish. When
  /// false, every node whose inputs all succeeded is still evaluated
  /// (useful for batch jobs that want all cacheable work done even if
  /// one branch is broken). The reported error is the first failure in
  /// completion order either way.
  bool fail_fast = true;

  /// When true (default), the engine compiles each evaluation through
  /// the plan compiler (derive/plan.h): maximal chains of
  /// single-consumer content ops execute as one fused stage with no
  /// intermediate MediaValue, bit-identical to node-at-a-time
  /// evaluation. False forces one stage per node (`tbmctl eval
  /// --no-fuse`). Note that fusion-elided interiors are not inserted
  /// into the expansion cache — only stage outputs are cacheable.
  bool fuse = true;
};

/// Per-operator timing breakdown.
struct OpStats {
  uint64_t invocations = 0;
  double seconds = 0.0;  ///< Summed wall time inside the operator.
};

/// Counters for one engine: cache behaviour plus evaluation work.
/// Cumulative across Evaluate calls.
struct EvalStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t bytes_cached = 0;       ///< Current charged occupancy (deduped).
  uint64_t cache_budget_bytes = 0;
  /// Declared (ExpandedBytes) total of live cache entries — the cost
  /// if every value owned private copies of its bytes.
  uint64_t logical_bytes = 0;
  /// Actual bytes pinned by the cache: backing buffers counted once
  /// however many entries share them, plus unshared value bytes. For
  /// timing-only derivation workloads resident ≪ logical.
  uint64_t resident_bytes = 0;
  uint64_t nodes_evaluated = 0;    ///< Operator applications performed.
  uint64_t entries_invalidated = 0;
  uint64_t evaluations = 0;        ///< Top-level Evaluate calls.
  double wall_seconds = 0.0;       ///< Summed Evaluate wall time.
  /// Nodes executed inside fused plan stages (chains compiled by
  /// derive/plan.h). Interior nodes still count in nodes_evaluated.
  uint64_t fused_nodes = 0;
  /// Bytes of fusion-elided intermediates that were never materialized.
  uint64_t elided_bytes = 0;
  std::map<std::string, OpStats> per_op;

  /// Multi-line human-readable rendering (tbmctl `eval` prints this).
  std::string ToString() const;
};

/// Concurrent, cache-bounded evaluator of derivation graphs — the
/// system's hot path (§4.2: derived objects are "expanded on demand").
///
/// Evaluate(id) plans the needed subgraph (skipping nodes whose
/// expansion is cached), then executes it:
///
///  - with `threads == 1`, inline in topological order — bitwise
///    deterministic, no pool;
///  - with `threads > 1`, by topological scheduling over a thread
///    pool: every node whose inputs are resolved is submitted
///    immediately, so independent branches — e.g. Table 1's five
///    derivations of one source, or the per-language dubs of a movie —
///    expand concurrently. Operators are pure functions, so results
///    are identical to the single-threaded ones.
///
/// Completed expansions land in a sharded, byte-budgeted,
/// cost-aware-LRU ExpansionCache (derive/cache.h). Graph mutations are
/// reconciled at the start of each Evaluate: nodes dirtied by
/// UpdateParams — and everything downstream of them — are invalidated
/// before planning.
///
/// Thread-safety: an engine may be shared; concurrent Evaluate calls
/// are serialized internally. The underlying graph must not be mutated
/// while an evaluation is in flight.
class DerivationEngine {
 public:
  /// Does not take ownership of `graph`, which must outlive the engine.
  explicit DerivationEngine(DerivationGraph* graph, EvalOptions options = {});
  ~DerivationEngine();

  DerivationEngine(const DerivationEngine&) = delete;
  DerivationEngine& operator=(const DerivationEngine&) = delete;

  /// Expands node `id`, reusing and populating the expansion cache.
  Result<ValueRef> Evaluate(NodeId id);

  /// Drops every cached expansion.
  void InvalidateAll();

  /// Drops the cached expansion of `id` and of every node that
  /// transitively depends on it.
  Status Invalidate(NodeId id);

  EvalStats stats() const;
  const EvalOptions& options() const { return options_; }

  /// The resolved worker count (options().threads, with 0 expanded to
  /// the hardware's).
  int threads() const { return threads_; }

 private:
  struct Plan;

  /// Applies mutations recorded by the graph since the last call.
  void SyncWithGraph();
  void InvalidateDependentsLocked(const std::vector<NodeId>& roots);
  Result<ValueRef> ExecuteInline(Plan* plan);
  Result<ValueRef> ExecuteParallel(Plan* plan);
  /// Applies one derivation, returning its value and recording per-op
  /// timing, cache insertion and node counts.
  Result<ValueRef> ApplyNode(NodeId id,
                             const std::vector<const MediaValue*>& args);
  /// Executes one compiled stage: singletons through ApplyNode, fused
  /// chains through the plan executor. Caches only the stage output.
  Result<ValueRef> ApplyStage(const Plan& plan, size_t stage_index,
                              const std::vector<const MediaValue*>& args);
  /// Interned "derive:<op>" span name for the tracer (stable storage;
  /// returns "" in TBM_OBS_DISABLED builds).
  const char* SpanNameForOp(const std::string& op);

  DerivationGraph* graph_;
  EvalOptions options_;
  int threads_;
  ExpansionCache cache_;
  std::unique_ptr<ThreadPool> pool_;  ///< Created on first parallel run.

  std::mutex eval_mu_;  ///< Serializes top-level Evaluate calls.
  uint64_t synced_seq_ = 0;

  /// Span id of the in-flight Evaluate; pool workers parent their node
  /// spans here (written under eval_mu_ before any task is submitted).
  uint64_t eval_span_id_ = 0;
  std::mutex span_names_mu_;
  std::map<std::string, const char*> span_names_;

  mutable std::mutex stats_mu_;
  uint64_t nodes_evaluated_ = 0;
  uint64_t evaluations_ = 0;
  double wall_seconds_ = 0.0;
  uint64_t fused_nodes_ = 0;
  uint64_t elided_bytes_ = 0;
  std::map<std::string, OpStats> per_op_;
};

}  // namespace tbm

#endif  // TBM_DERIVE_SCHEDULER_H_

#ifndef TBM_DERIVE_GRAPH_H_
#define TBM_DERIVE_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "derive/operators.h"

namespace tbm {

/// Node handle within a DerivationGraph.
using NodeId = int64_t;

class DerivationEngine;

/// A DAG of media objects related by derivation.
///
/// Leaves are non-derived media objects (materialized from
/// interpretations or constructed); internal nodes are *derivation
/// objects* (Def. 6): "the information needed to compute a derived
/// object, references to the media objects and parameter values used."
/// The graph stores the specification of each derivation step rather
/// than its result (§4.2: "rather than storing the results of
/// derivations it is possible to store the specification of each
/// derivation step"); expansion is performed by a DerivationEngine
/// (derive/scheduler.h), which schedules independent nodes across
/// threads and caches expansions under a byte budget.
///
/// Because nodes can only reference previously created nodes, the
/// structure is acyclic by construction.
///
/// Thread-safety: the graph may be read by many engine workers
/// concurrently, but must not be mutated (AddLeaf / AddDerived /
/// UpdateParams) while an evaluation is in flight.
class DerivationGraph {
 public:
  /// Uses the built-in operator registry unless one is supplied.
  explicit DerivationGraph(
      const DerivationRegistry* registry = &DerivationRegistry::Builtin());
  ~DerivationGraph();

  // Movable but not copyable: the built-in engine (and any user-created
  // DerivationEngine) holds a pointer to this graph.
  DerivationGraph(DerivationGraph&& other) noexcept;
  DerivationGraph& operator=(DerivationGraph&& other) noexcept;
  DerivationGraph(const DerivationGraph&) = delete;
  DerivationGraph& operator=(const DerivationGraph&) = delete;

  /// Adds a non-derived media object.
  NodeId AddLeaf(MediaValue value, std::string name = "");

  /// Adds a derivation object `op(inputs, params)`. Inputs must exist.
  Result<NodeId> AddDerived(const std::string& op, std::vector<NodeId> inputs,
                            AttrMap params, std::string name = "");

  /// Replaces the parameters of derived node `id` — the non-destructive
  /// edit tweak (adjust a cut point, a gain, a transition length).
  /// Marks the node dirty so engines invalidate its cached expansion
  /// and every transitive dependent's before the next evaluation.
  Status UpdateParams(NodeId id, AttrMap params);

  size_t size() const { return nodes_.size(); }

  /// True iff `id` names a derivation object; NotFound for bad ids.
  Result<bool> IsDerived(NodeId id) const;

  Result<std::string> NameOf(NodeId id) const;

  /// Expands (evaluates) a node through the graph's built-in
  /// single-threaded engine, memoizing results in its bounded
  /// expansion cache. For concurrent evaluation or an explicit cache
  /// budget, create a DerivationEngine with EvalOptions instead.
  Result<ValueRef> Evaluate(NodeId id);

  /// Discards every expansion cached by the built-in engine (leaf
  /// values are part of the graph, not cache). Engines created by the
  /// caller invalidate via DerivationEngine::InvalidateAll.
  void DropCache();

  /// Serialized size of the derivation objects (op names, input refs,
  /// parameters) in the subtree rooted at `id` — what the database
  /// stores when the derived object is kept implicit. Leaves contribute
  /// only a reference, not their media bytes. This is the numerator of
  /// the paper's storage-saving ratio ("a video edit list is likely
  /// many orders of magnitude smaller than a video object").
  Result<uint64_t> DerivationRecordBytes(NodeId id) const;

  /// Real-time feasibility (paper §4.2: "the media elements need only
  /// be stored if the calculation cannot be performed in real time").
  struct Feasibility {
    double expansion_seconds = 0.0;     ///< Wall-clock cost of expansion.
    double presentation_seconds = 0.0;  ///< Playback duration of result.
    bool real_time = false;  ///< expansion <= presentation duration.
  };

  /// Measures a cold expansion of `id` (cache is dropped first) and
  /// compares against the result's presentation duration, answering the
  /// store-derived vs store-expanded question.
  Result<Feasibility> MeasureFeasibility(NodeId id);

  /// Introspection (used to print Figure 4-style instance diagrams).
  struct NodeInfo {
    NodeId id = 0;
    std::string name;
    bool derived = false;
    std::string op;             ///< Empty for leaves.
    std::vector<NodeId> inputs; ///< Empty for leaves.
  };
  std::vector<NodeInfo> Nodes() const;

  /// Monotonic counter bumped by every spec-changing mutation
  /// (UpdateParams). Engines compare it against the value they last
  /// synchronized at to decide what to invalidate.
  uint64_t mutation_seq() const { return mutation_seq_; }

  /// Ids of nodes whose specification changed after `seq`, oldest
  /// first. If the change log has been trimmed past `seq` the first
  /// element is kDirtyLogTrimmed and callers must invalidate
  /// everything.
  static constexpr NodeId kDirtyLogTrimmed = -1;
  std::vector<NodeId> DirtyNodesSince(uint64_t seq) const;

 private:
  friend class DerivationEngine;

  struct Node {
    std::string name;
    // Exactly one of value (leaf) / op+inputs+params (derived) is set.
    ValueRef value;
    std::string op;
    std::vector<NodeId> inputs;
    AttrMap params;
  };

  Status CheckId(NodeId id) const;
  DerivationEngine* BuiltinEngine();

  const DerivationRegistry* registry_;
  std::vector<Node> nodes_;
  uint64_t mutation_seq_ = 0;
  /// (mutation_seq at change, node) pairs, oldest first, trimmed to a
  /// bounded window.
  std::vector<std::pair<uint64_t, NodeId>> dirty_log_;
  /// Highest mutation_seq whose log entry has been trimmed away.
  uint64_t dirty_trimmed_seq_ = 0;
  std::unique_ptr<DerivationEngine> builtin_engine_;
};

}  // namespace tbm

#endif  // TBM_DERIVE_GRAPH_H_

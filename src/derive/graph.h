#ifndef TBM_DERIVE_GRAPH_H_
#define TBM_DERIVE_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "derive/operators.h"

namespace tbm {

/// Node handle within a DerivationGraph.
using NodeId = int64_t;

/// A DAG of media objects related by derivation.
///
/// Leaves are non-derived media objects (materialized from
/// interpretations or constructed); internal nodes are *derivation
/// objects* (Def. 6): "the information needed to compute a derived
/// object, references to the media objects and parameter values used."
/// The graph stores the specification of each derivation step rather
/// than its result (§4.2: "rather than storing the results of
/// derivations it is possible to store the specification of each
/// derivation step"), and *expands* derived objects on demand, caching
/// the expansion.
///
/// Because nodes can only reference previously created nodes, the
/// structure is acyclic by construction.
class DerivationGraph {
 public:
  /// Uses the built-in operator registry unless one is supplied.
  explicit DerivationGraph(
      const DerivationRegistry* registry = &DerivationRegistry::Builtin())
      : registry_(registry) {}

  /// Adds a non-derived media object.
  NodeId AddLeaf(MediaValue value, std::string name = "");

  /// Adds a derivation object `op(inputs, params)`. Inputs must exist.
  Result<NodeId> AddDerived(const std::string& op, std::vector<NodeId> inputs,
                            AttrMap params, std::string name = "");

  size_t size() const { return nodes_.size(); }
  bool IsDerived(NodeId id) const;
  Result<std::string> NameOf(NodeId id) const;

  /// Expands (evaluates) a node, memoizing results. Returned pointer is
  /// owned by the graph and valid until DropCache / destruction.
  Result<const MediaValue*> Evaluate(NodeId id);

  /// Discards every cached expansion of derived nodes (leaf values are
  /// part of the graph, not cache).
  void DropCache();

  /// Serialized size of the derivation objects (op names, input refs,
  /// parameters) in the subtree rooted at `id` — what the database
  /// stores when the derived object is kept implicit. Leaves contribute
  /// only a reference, not their media bytes. This is the numerator of
  /// the paper's storage-saving ratio ("a video edit list is likely
  /// many orders of magnitude smaller than a video object").
  Result<uint64_t> DerivationRecordBytes(NodeId id) const;

  /// Real-time feasibility (paper §4.2: "the media elements need only
  /// be stored if the calculation cannot be performed in real time").
  struct Feasibility {
    double expansion_seconds = 0.0;     ///< Wall-clock cost of expansion.
    double presentation_seconds = 0.0;  ///< Playback duration of result.
    bool real_time = false;  ///< expansion <= presentation duration.
  };

  /// Measures a cold expansion of `id` (cache is dropped first) and
  /// compares against the result's presentation duration, answering the
  /// store-derived vs store-expanded question.
  Result<Feasibility> MeasureFeasibility(NodeId id);

  /// Introspection (used to print Figure 4-style instance diagrams).
  struct NodeInfo {
    NodeId id = 0;
    std::string name;
    bool derived = false;
    std::string op;             ///< Empty for leaves.
    std::vector<NodeId> inputs; ///< Empty for leaves.
  };
  std::vector<NodeInfo> Nodes() const;

 private:
  struct Node {
    std::string name;
    // Exactly one of value (leaf) / op+inputs+params (derived) is set.
    std::optional<MediaValue> value;
    std::string op;
    std::vector<NodeId> inputs;
    AttrMap params;
    std::optional<MediaValue> cache;
  };

  Status CheckId(NodeId id) const;

  const DerivationRegistry* registry_;
  std::vector<Node> nodes_;
};

}  // namespace tbm

#endif  // TBM_DERIVE_GRAPH_H_

#include "derive/operators.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "base/macros.h"
#include "base/simd.h"
#include "codec/color.h"
#include "codec/tjpeg.h"
#include "midi/synth.h"
#include "text/captions.h"
#include "text/font.h"

namespace tbm {

std::string_view DerivationCategoryToString(DerivationCategory category) {
  switch (category) {
    case DerivationCategory::kContent: return "change of content";
    case DerivationCategory::kTiming: return "change of timing";
    case DerivationCategory::kType: return "change of type";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Element shapes

size_t ElementShape::PayloadBytes() const {
  switch (kind) {
    case MediaKind::kImage:
      return static_cast<size_t>(Image::ExpectedBytes(width, height, model));
    case MediaKind::kAudio:
      return static_cast<size_t>(frames) * channels * sizeof(int16_t);
    default:
      return 0;
  }
}

Result<ElementShape> ShapeOfValue(const MediaValue& value) {
  ElementShape shape;
  if (const Image* image = std::get_if<Image>(&value)) {
    TBM_RETURN_IF_ERROR(image->Validate());
    shape.kind = MediaKind::kImage;
    shape.width = image->width;
    shape.height = image->height;
    shape.model = image->model;
    return shape;
  }
  if (const AudioBuffer* audio = std::get_if<AudioBuffer>(&value)) {
    TBM_RETURN_IF_ERROR(audio->Validate());
    shape.kind = MediaKind::kAudio;
    shape.sample_rate = audio->sample_rate;
    shape.channels = audio->channels;
    shape.frames = audio->FrameCount();
    return shape;
  }
  return Status::Unsupported("value kind has no element shape");
}

namespace {

// ---------------------------------------------------------------------------
// Typed argument access

template <typename T>
Result<const T*> ArgAs(const std::vector<const MediaValue*>& args, size_t i,
                       const char* what) {
  if (i >= args.size()) {
    return Status::InvalidArgument(std::string(what) + ": missing argument " +
                                   std::to_string(i));
  }
  const T* value = std::get_if<T>(args[i]);
  if (value == nullptr) {
    return Status::InvalidArgument(std::string(what) + ": argument " +
                                   std::to_string(i) + " has wrong kind");
  }
  return value;
}

// Mutable access for stage functions, which receive the single argument
// by value. Mirrors the ArgAs error text.
template <typename T>
Result<T*> StageAs(MediaValue* value, const char* what) {
  T* typed = std::get_if<T>(value);
  if (typed == nullptr) {
    return Status::InvalidArgument(std::string(what) +
                                   ": argument 0 has wrong kind");
  }
  return typed;
}

// Canonical parameter keys contain spaces ("target peak"); the
// underscore alias ("target_peak") is accepted everywhere. The
// canonical spelling wins when both are present.
std::string UnderscoreAlias(std::string_view name) {
  std::string alias(name);
  for (char& c : alias) {
    if (c == ' ') c = '_';
  }
  return alias;
}

int64_t ParamInt(const AttrMap& params, std::string_view name,
                 int64_t fallback) {
  auto v = params.GetInt(name);
  if (v.ok()) return *v;
  std::string alias = UnderscoreAlias(name);
  if (alias != name) {
    auto a = params.GetInt(alias);
    if (a.ok()) return *a;
  }
  return fallback;
}

double ParamDouble(const AttrMap& params, std::string_view name,
                   double fallback) {
  auto v = params.GetDouble(name);
  if (v.ok()) return *v;
  std::string alias = UnderscoreAlias(name);
  if (alias != name) {
    auto a = params.GetDouble(alias);
    if (a.ok()) return *a;
  }
  return fallback;
}

std::string ParamString(const AttrMap& params, std::string_view name,
                        std::string fallback) {
  auto v = params.GetString(name);
  if (v.ok()) return *v;
  std::string alias = UnderscoreAlias(name);
  if (alias != name) {
    auto a = params.GetString(alias);
    if (a.ok()) return *a;
  }
  return fallback;
}

// ---------------------------------------------------------------------------
// Shared scalar/SIMD kernels. Stage functions and element kernels both
// route through these, so the fused and node-at-a-time paths are
// bit-identical by construction.

void ThresholdSpan(const uint8_t* in, uint8_t* out, size_t n, int64_t t) {
  if (t <= 0) {
    std::memset(out, 255, n);
  } else if (t > 255) {
    std::memset(out, 0, n);
  } else {
    simd::ThresholdBytes(in, out, n, static_cast<uint8_t>(t));
  }
}

void GainSamples(const int16_t* in, int16_t* out, size_t n, double gain) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<int16_t>(
        std::clamp(std::lround(in[i] * gain), -32768L, 32767L));
  }
}

// Fade envelope over frames [first, first + n) of a `frames`-frame
// buffer. Absolute frame indices keep the math identical no matter how
// the range is tiled.
void FadeFrames(const int16_t* in, int16_t* out, size_t first, size_t n,
                int32_t channels, int64_t frames, int64_t fade_in,
                int64_t fade_out) {
  for (size_t f = 0; f < n; ++f) {
    const int64_t frame = static_cast<int64_t>(first + f);
    double g = 1.0;
    bool scaled = false;
    if (frame < fade_in) {
      g = static_cast<double>(frame) / fade_in;
      scaled = true;
    } else if (frame >= frames - fade_out) {
      g = static_cast<double>(frames - 1 - frame) / fade_out;
      scaled = true;
    }
    const size_t base = f * channels;
    if (scaled) {
      for (int32_t c = 0; c < channels; ++c) {
        out[base + c] = static_cast<int16_t>(std::lround(in[base + c] * g));
      }
    } else if (in != out) {
      std::memcpy(out + base, in + base, channels * sizeof(int16_t));
    }
  }
}

// Interleaved fixed-bytes-per-pixel models have pixel elements; planar
// YUV models fall back to byte elements (returns 0).
size_t InterleavedBpp(ColorModel model) {
  switch (model) {
    case ColorModel::kGray8: return 1;
    case ColorModel::kRgb24: return 3;
    case ColorModel::kCmyk32: return 4;
    default: return 0;
  }
}

// ---------------------------------------------------------------------------
// Image derivations

Result<MediaValue> ColorSeparationStage(MediaValue value,
                                        const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(Image * image,
                       StageAs<Image>(&value, "color separation"));
  SeparationParams sep;
  sep.black_generation = ParamDouble(params, "black generation", 1.0);
  sep.under_color_removal = ParamDouble(params, "under color removal", 1.0);
  TBM_ASSIGN_OR_RETURN(Image cmyk, RgbToCmyk(*image, sep));
  return MediaValue(std::move(cmyk));
}

Result<ElementKernel> ColorSeparationKernel(const ElementShape& in,
                                            const AttrMap& params) {
  ElementKernel kernel;
  if (in.kind != MediaKind::kImage || in.model != ColorModel::kRgb24) {
    return kernel;
  }
  SeparationParams sep;
  sep.black_generation = ParamDouble(params, "black generation", 1.0);
  sep.under_color_removal = ParamDouble(params, "under color removal", 1.0);
  if (sep.black_generation < 0.0 || sep.black_generation > 1.0 ||
      sep.under_color_removal < 0.0 || sep.under_color_removal > 1.0) {
    return kernel;  // Whole-value path reports the parameter error.
  }
  kernel.in_bytes = 3;
  kernel.out_bytes = 4;
  kernel.count = static_cast<size_t>(in.width) * in.height;
  kernel.out_shape = in;
  kernel.out_shape.model = ColorModel::kCmyk32;
  kernel.run = [sep](const uint8_t* src, uint8_t* dst, size_t /*first*/,
                     size_t n) { RgbToCmykPixels(src, dst, n, sep); };
  return kernel;
}

Result<MediaValue> OpColorSeparation(
    const std::vector<const MediaValue*>& args, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const Image* image,
                       ArgAs<Image>(args, 0, "color separation"));
  return ColorSeparationStage(MediaValue(*image), params);
}

Result<MediaValue> ImageFilterStage(MediaValue value, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(Image * image, StageAs<Image>(&value, "image filter"));
  TBM_RETURN_IF_ERROR(image->Validate());
  std::string kind = ParamString(params, "kind", "invert");
  if (kind == "invert") {
    Bytes pixels = image->data.MutableCopy();
    simd::InvertBytes(pixels.data(), pixels.data(), pixels.size());
    image->data = std::move(pixels);
  } else if (kind == "threshold") {
    int64_t threshold = ParamInt(params, "threshold", 128);
    Bytes pixels = image->data.MutableCopy();
    ThresholdSpan(pixels.data(), pixels.data(), pixels.size(), threshold);
    image->data = std::move(pixels);
  } else if (kind == "box blur") {
    if (image->model != ColorModel::kRgb24) {
      return Status::InvalidArgument("box blur expects RGB input");
    }
    int64_t radius = std::max<int64_t>(1, ParamInt(params, "radius", 1));
    const int32_t w = image->width, h = image->height;
    Bytes pixels_out(image->data.size(), 0);
    for (int32_t y = 0; y < h; ++y) {
      for (int32_t x = 0; x < w; ++x) {
        for (int c = 0; c < 3; ++c) {
          int64_t sum = 0, count = 0;
          for (int32_t dy = -radius; dy <= radius; ++dy) {
            for (int32_t dx = -radius; dx <= radius; ++dx) {
              int32_t sx = x + dx, sy = y + dy;
              if (sx < 0 || sx >= w || sy < 0 || sy >= h) continue;
              sum += image->data[3 * (static_cast<size_t>(sy) * w + sx) + c];
              ++count;
            }
          }
          pixels_out[3 * (static_cast<size_t>(y) * w + x) + c] =
              static_cast<uint8_t>(sum / count);
        }
      }
    }
    image->data = std::move(pixels_out);
  } else {
    return Status::InvalidArgument("unknown image filter \"" + kind + "\"");
  }
  return value;
}

Result<ElementKernel> ImageFilterKernel(const ElementShape& in,
                                        const AttrMap& params) {
  ElementKernel kernel;
  if (in.kind != MediaKind::kImage) return kernel;
  const size_t bpp = InterleavedBpp(in.model);
  const size_t stride = bpp > 0 ? bpp : 1;
  kernel.in_bytes = stride;
  kernel.out_bytes = stride;
  kernel.count = bpp > 0 ? static_cast<size_t>(in.width) * in.height
                         : in.PayloadBytes();
  kernel.out_shape = in;
  std::string kind = ParamString(params, "kind", "invert");
  if (kind == "invert") {
    kernel.run = [stride](const uint8_t* src, uint8_t* dst, size_t /*first*/,
                          size_t n) { simd::InvertBytes(src, dst, n * stride); };
  } else if (kind == "threshold") {
    int64_t threshold = ParamInt(params, "threshold", 128);
    kernel.run = [stride, threshold](const uint8_t* src, uint8_t* dst,
                                     size_t /*first*/, size_t n) {
      ThresholdSpan(src, dst, n * stride, threshold);
    };
  }
  // box blur (neighborhood gather) and unknown kinds: run stays null so
  // the executor falls back to the whole-value path.
  return kernel;
}

Result<MediaValue> OpImageFilter(const std::vector<const MediaValue*>& args,
                                 const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const Image* image,
                       ArgAs<Image>(args, 0, "image filter"));
  return ImageFilterStage(MediaValue(*image), params);
}

Result<MediaValue> ImageReencodeStage(MediaValue value,
                                      const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(Image * image,
                       StageAs<Image>(&value, "image reencode"));
  int64_t quality = ParamInt(params, "quality", 50);
  TBM_ASSIGN_OR_RETURN(Bytes encoded,
                       TjpegEncode(*image, static_cast<int>(quality)));
  TBM_ASSIGN_OR_RETURN(Image decoded, TjpegDecode(encoded));
  return MediaValue(std::move(decoded));
}

Result<MediaValue> OpImageReencode(const std::vector<const MediaValue*>& args,
                                   const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const Image* image,
                       ArgAs<Image>(args, 0, "image reencode"));
  return ImageReencodeStage(MediaValue(*image), params);
}

// ---------------------------------------------------------------------------
// Audio derivations

Result<MediaValue> AudioNormalizeStage(MediaValue value,
                                       const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(AudioBuffer * audio,
                       StageAs<AudioBuffer>(&value, "audio normalization"));
  TBM_RETURN_IF_ERROR(audio->Validate());
  double target = ParamDouble(params, "target peak", 0.95);
  if (target <= 0.0 || target > 1.0) {
    return Status::InvalidArgument("target peak must be in (0, 1]");
  }
  // Paper: "parameters needed are the start and end points of the audio
  // sequence to be normalized. If no parameters are specified,
  // normalization is performed for the whole audio object."
  int64_t start = ParamInt(params, "start frame", 0);
  int64_t end = ParamInt(params, "end frame", audio->FrameCount());
  if (start < 0 || end > audio->FrameCount() || start >= end) {
    return Status::OutOfRange("normalization span out of range");
  }
  int32_t peak = 0;
  for (int64_t f = start; f < end; ++f) {
    for (int32_t c = 0; c < audio->channels; ++c) {
      peak = std::max(peak, std::abs(static_cast<int32_t>(
                                audio->samples[f * audio->channels + c])));
    }
  }
  if (peak == 0) return value;  // Silence stays silent.
  double scale = target * 32767.0 / peak;
  std::vector<int16_t> samples = audio->samples.MutableCopy();
  for (int64_t f = start; f < end; ++f) {
    for (int32_t c = 0; c < audio->channels; ++c) {
      size_t i = f * audio->channels + c;
      samples[i] = static_cast<int16_t>(std::clamp(
          std::lround(audio->samples[i] * scale), -32768L, 32767L));
    }
  }
  audio->samples = std::move(samples);
  return value;
}

Result<MediaValue> OpAudioNormalize(const std::vector<const MediaValue*>& args,
                                    const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* audio,
                       ArgAs<AudioBuffer>(args, 0, "audio normalization"));
  return AudioNormalizeStage(MediaValue(*audio), params);
}

Result<MediaValue> AudioGainStage(MediaValue value, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(AudioBuffer * audio,
                       StageAs<AudioBuffer>(&value, "audio gain"));
  double gain = ParamDouble(params, "gain", 1.0);
  std::vector<int16_t> samples = audio->samples.MutableCopy();
  GainSamples(samples.data(), samples.data(), samples.size(), gain);
  audio->samples = std::move(samples);
  return value;
}

Result<ElementKernel> AudioGainKernel(const ElementShape& in,
                                      const AttrMap& params) {
  ElementKernel kernel;
  if (in.kind != MediaKind::kAudio || in.channels <= 0) return kernel;
  const int32_t channels = in.channels;
  const size_t stride = static_cast<size_t>(channels) * sizeof(int16_t);
  kernel.in_bytes = stride;
  kernel.out_bytes = stride;
  kernel.count = static_cast<size_t>(in.frames);
  kernel.out_shape = in;
  double gain = ParamDouble(params, "gain", 1.0);
  kernel.run = [channels, gain](const uint8_t* src, uint8_t* dst,
                                size_t /*first*/, size_t n) {
    GainSamples(reinterpret_cast<const int16_t*>(src),
                reinterpret_cast<int16_t*>(dst),
                n * static_cast<size_t>(channels), gain);
  };
  return kernel;
}

Result<MediaValue> OpAudioGain(const std::vector<const MediaValue*>& args,
                               const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* audio,
                       ArgAs<AudioBuffer>(args, 0, "audio gain"));
  return AudioGainStage(MediaValue(*audio), params);
}

Result<MediaValue> OpAudioMix(const std::vector<const MediaValue*>& args,
                              const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* a,
                       ArgAs<AudioBuffer>(args, 0, "audio mix"));
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* b,
                       ArgAs<AudioBuffer>(args, 1, "audio mix"));
  if (a->sample_rate != b->sample_rate || a->channels != b->channels) {
    return Status::InvalidArgument(
        "audio mix requires matching rate and channels");
  }
  double gain_a = ParamDouble(params, "gain a", 1.0);
  double gain_b = ParamDouble(params, "gain b", 1.0);
  int64_t offset = ParamInt(params, "offset frames", 0);
  if (offset < 0) return Status::InvalidArgument("negative mix offset");
  int64_t frames = std::max(a->FrameCount(), offset + b->FrameCount());
  AudioBuffer out;
  out.sample_rate = a->sample_rate;
  out.channels = a->channels;
  std::vector<int16_t> samples(frames * a->channels, 0);
  for (int64_t f = 0; f < frames; ++f) {
    for (int32_t c = 0; c < a->channels; ++c) {
      double v = 0.0;
      if (f < a->FrameCount()) {
        v += gain_a * a->samples[f * a->channels + c];
      }
      int64_t bf = f - offset;
      if (bf >= 0 && bf < b->FrameCount()) {
        v += gain_b * b->samples[bf * b->channels + c];
      }
      samples[f * out.channels + c] = static_cast<int16_t>(
          std::clamp(std::lround(v), -32768L, 32767L));
    }
  }
  out.samples = std::move(samples);
  return MediaValue(std::move(out));
}

Result<MediaValue> OpAudioCut(const std::vector<const MediaValue*>& args,
                              const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* audio,
                       ArgAs<AudioBuffer>(args, 0, "audio cut"));
  int64_t start = ParamInt(params, "start frame", 0);
  int64_t count = ParamInt(params, "frame count",
                           audio->FrameCount() - start);
  if (start < 0 || count < 0 || start + count > audio->FrameCount()) {
    return Status::OutOfRange("audio cut span out of range");
  }
  AudioBuffer out;
  out.sample_rate = audio->sample_rate;
  out.channels = audio->channels;
  // Timing-only change: the cut is a sub-view sharing the source samples.
  out.samples = audio->samples.Slice(start * audio->channels,
                                     count * audio->channels);
  return MediaValue(std::move(out));
}

Result<MediaValue> OpAudioConcat(const std::vector<const MediaValue*>& args,
                                 const AttrMap& params) {
  (void)params;
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* a,
                       ArgAs<AudioBuffer>(args, 0, "audio concat"));
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* b,
                       ArgAs<AudioBuffer>(args, 1, "audio concat"));
  if (a->sample_rate != b->sample_rate || a->channels != b->channels) {
    return Status::InvalidArgument(
        "audio concat requires matching rate and channels (the paper: an "
        "audio sequence cannot be concatenated to a video sequence)");
  }
  AudioBuffer out = *a;
  std::vector<int16_t> samples;
  samples.reserve(a->samples.size() + b->samples.size());
  samples.insert(samples.end(), a->samples.begin(), a->samples.end());
  samples.insert(samples.end(), b->samples.begin(), b->samples.end());
  out.samples = std::move(samples);
  return MediaValue(std::move(out));
}

Result<MediaValue> AudioResampleStage(MediaValue value,
                                      const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(AudioBuffer * audio,
                       StageAs<AudioBuffer>(&value, "audio resample"));
  int64_t target = ParamInt(params, "target rate", 44100);
  if (target <= 0) return Status::InvalidArgument("bad target rate");
  if (target == audio->sample_rate) return value;
  AudioBuffer out;
  out.sample_rate = target;
  out.channels = audio->channels;
  int64_t frames = audio->FrameCount() * target / audio->sample_rate;
  std::vector<int16_t> samples(frames * out.channels);
  for (int64_t f = 0; f < frames; ++f) {
    double src = static_cast<double>(f) * audio->sample_rate / target;
    int64_t i0 = static_cast<int64_t>(src);
    int64_t i1 = std::min(i0 + 1, audio->FrameCount() - 1);
    double frac = src - i0;
    for (int32_t c = 0; c < out.channels; ++c) {
      double v = (1.0 - frac) * audio->samples[i0 * audio->channels + c] +
                 frac * audio->samples[i1 * audio->channels + c];
      samples[f * out.channels + c] =
          static_cast<int16_t>(std::lround(v));
    }
  }
  out.samples = std::move(samples);
  return MediaValue(std::move(out));
}

Result<MediaValue> OpAudioResample(const std::vector<const MediaValue*>& args,
                                   const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* audio,
                       ArgAs<AudioBuffer>(args, 0, "audio resample"));
  return AudioResampleStage(MediaValue(*audio), params);
}

// ---------------------------------------------------------------------------
// Video derivations

Result<MediaValue> OpVideoEdit(const std::vector<const MediaValue*>& args,
                               const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const VideoValue* video,
                       ArgAs<VideoValue>(args, 0, "video edit"));
  int64_t start = ParamInt(params, "start frame", 0);
  int64_t count = ParamInt(params, "frame count",
                           static_cast<int64_t>(video->frames.size()) - start);
  if (start < 0 || count < 0 ||
      start + count > static_cast<int64_t>(video->frames.size())) {
    return Status::OutOfRange("video edit span out of range");
  }
  VideoValue out;
  out.frame_rate = video->frame_rate;
  out.frames.assign(video->frames.begin() + start,
                    video->frames.begin() + start + count);
  return MediaValue(std::move(out));
}

Result<MediaValue> OpVideoConcat(const std::vector<const MediaValue*>& args,
                                 const AttrMap& params) {
  (void)params;
  TBM_ASSIGN_OR_RETURN(const VideoValue* a,
                       ArgAs<VideoValue>(args, 0, "video concat"));
  TBM_ASSIGN_OR_RETURN(const VideoValue* b,
                       ArgAs<VideoValue>(args, 1, "video concat"));
  if (!(a->frame_rate == b->frame_rate)) {
    return Status::InvalidArgument("video concat requires equal frame rates");
  }
  if (!a->frames.empty() && !b->frames.empty() &&
      (a->frames.front().width != b->frames.front().width ||
       a->frames.front().height != b->frames.front().height)) {
    return Status::InvalidArgument("video concat requires equal geometry");
  }
  VideoValue out = *a;
  out.frames.insert(out.frames.end(), b->frames.begin(), b->frames.end());
  return MediaValue(std::move(out));
}

Result<MediaValue> OpVideoTransition(
    const std::vector<const MediaValue*>& args, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const VideoValue* a,
                       ArgAs<VideoValue>(args, 0, "video transition"));
  TBM_ASSIGN_OR_RETURN(const VideoValue* b,
                       ArgAs<VideoValue>(args, 1, "video transition"));
  if (!(a->frame_rate == b->frame_rate)) {
    return Status::InvalidArgument("transition requires equal frame rates");
  }
  const int64_t na = static_cast<int64_t>(a->frames.size());
  const int64_t nb = static_cast<int64_t>(b->frames.size());
  // Paper: "The parameters for this kind of derivation specify the type
  // of transition, its duration and the start time in both video
  // objects."
  std::string kind = ParamString(params, "kind", "fade");
  int64_t duration = ParamInt(params, "duration frames", 10);
  int64_t start_a = ParamInt(params, "start a", na - duration);
  int64_t start_b = ParamInt(params, "start b", 0);
  if (duration <= 0 || start_a < 0 || start_a + duration > na ||
      start_b < 0 || start_b + duration > nb) {
    return Status::OutOfRange("transition span out of range");
  }
  if (na > 0 && nb > 0 &&
      (a->frames.front().width != b->frames.front().width ||
       a->frames.front().height != b->frames.front().height)) {
    return Status::InvalidArgument("transition requires equal geometry");
  }

  VideoValue out;
  out.frame_rate = a->frame_rate;
  // A before the transition.
  out.frames.assign(a->frames.begin(), a->frames.begin() + start_a);
  // The transition itself.
  for (int64_t i = 0; i < duration; ++i) {
    const Image& fa = a->frames[start_a + i];
    const Image& fb = b->frames[start_b + i];
    double t = static_cast<double>(i + 1) / (duration + 1);
    Image frame = fa;
    if (kind == "fade") {
      Bytes pixels(fa.data.size(), 0);
      for (size_t p = 0; p < pixels.size(); ++p) {
        pixels[p] = static_cast<uint8_t>(
            std::lround((1.0 - t) * fa.data[p] + t * fb.data[p]));
      }
      frame.data = std::move(pixels);
    } else if (kind == "wipe") {
      // Left-to-right wipe: B replaces A up to column boundary.
      Bytes pixels = fa.data.MutableCopy();
      int32_t boundary = static_cast<int32_t>(t * frame.width);
      for (int32_t y = 0; y < frame.height; ++y) {
        for (int32_t x = 0; x < boundary; ++x) {
          for (int c = 0; c < 3; ++c) {
            size_t p = 3 * (static_cast<size_t>(y) * frame.width + x) + c;
            pixels[p] = fb.data[p];
          }
        }
      }
      frame.data = std::move(pixels);
    } else {
      return Status::InvalidArgument("unknown transition \"" + kind + "\"");
    }
    out.frames.push_back(std::move(frame));
  }
  // B after the transition.
  out.frames.insert(out.frames.end(), b->frames.begin() + start_b + duration,
                    b->frames.end());
  return MediaValue(std::move(out));
}

Result<MediaValue> OpChromaKey(const std::vector<const MediaValue*>& args,
                               const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const VideoValue* fg,
                       ArgAs<VideoValue>(args, 0, "chroma key"));
  TBM_ASSIGN_OR_RETURN(const VideoValue* bg,
                       ArgAs<VideoValue>(args, 1, "chroma key"));
  int64_t key_r = ParamInt(params, "key r", 0);
  int64_t key_g = ParamInt(params, "key g", 255);
  int64_t key_b = ParamInt(params, "key b", 0);
  int64_t tolerance = ParamInt(params, "tolerance", 96);
  const size_t frames = std::min(fg->frames.size(), bg->frames.size());
  VideoValue out;
  out.frame_rate = fg->frame_rate;
  for (size_t i = 0; i < frames; ++i) {
    const Image& f = fg->frames[i];
    const Image& g = bg->frames[i];
    if (f.width != g.width || f.height != g.height) {
      return Status::InvalidArgument("chroma key requires equal geometry");
    }
    Image frame = f;
    Bytes pixels = f.data.MutableCopy();
    for (size_t p = 0; p + 2 < pixels.size(); p += 3) {
      int64_t dr = f.data[p] - key_r;
      int64_t dg = f.data[p + 1] - key_g;
      int64_t db = f.data[p + 2] - key_b;
      if (dr * dr + dg * dg + db * db <= tolerance * tolerance) {
        pixels[p] = g.data[p];
        pixels[p + 1] = g.data[p + 1];
        pixels[p + 2] = g.data[p + 2];
      }
    }
    frame.data = std::move(pixels);
    out.frames.push_back(std::move(frame));
  }
  return MediaValue(std::move(out));
}

Result<MediaValue> OpVideoReverse(const std::vector<const MediaValue*>& args,
                                  const AttrMap& params) {
  (void)params;
  TBM_ASSIGN_OR_RETURN(const VideoValue* video,
                       ArgAs<VideoValue>(args, 0, "video reverse"));
  // Paper §2.1 on intraframe codecs: "it is easier to rearrange the
  // order of the frames and to playback in reverse or at variable
  // rates." At the decoded level reversal is a pure reordering.
  VideoValue out;
  out.frame_rate = video->frame_rate;
  out.frames.assign(video->frames.rbegin(), video->frames.rend());
  return MediaValue(std::move(out));
}

Result<MediaValue> OpVideoSpeed(const std::vector<const MediaValue*>& args,
                                const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const VideoValue* video,
                       ArgAs<VideoValue>(args, 0, "video speed"));
  // factor > 1 plays faster (drops frames); < 1 slower (repeats).
  int64_t num = ParamInt(params, "speed num", 1);
  int64_t den = ParamInt(params, "speed den", 1);
  if (num <= 0 || den <= 0) {
    return Status::InvalidArgument("speed factor must be positive");
  }
  const int64_t n = static_cast<int64_t>(video->frames.size());
  VideoValue out;
  out.frame_rate = video->frame_rate;
  int64_t out_frames = n * den / num;
  out.frames.reserve(out_frames);
  for (int64_t i = 0; i < out_frames; ++i) {
    int64_t src = i * num / den;
    if (src >= n) break;
    out.frames.push_back(video->frames[src]);
  }
  return MediaValue(std::move(out));
}

Result<MediaValue> AudioFadeStage(MediaValue value, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(AudioBuffer * audio,
                       StageAs<AudioBuffer>(&value, "audio fade"));
  TBM_RETURN_IF_ERROR(audio->Validate());
  int64_t fade_in = ParamInt(params, "fade in frames", 0);
  int64_t fade_out = ParamInt(params, "fade out frames", 0);
  const int64_t frames = audio->FrameCount();
  if (fade_in < 0 || fade_out < 0 || fade_in + fade_out > frames) {
    return Status::OutOfRange("fade spans exceed the audio length");
  }
  std::vector<int16_t> samples = audio->samples.MutableCopy();
  FadeFrames(samples.data(), samples.data(), 0,
             static_cast<size_t>(frames), audio->channels, frames, fade_in,
             fade_out);
  audio->samples = std::move(samples);
  return value;
}

Result<ElementKernel> AudioFadeKernel(const ElementShape& in,
                                      const AttrMap& params) {
  ElementKernel kernel;
  if (in.kind != MediaKind::kAudio || in.channels <= 0) return kernel;
  int64_t fade_in = ParamInt(params, "fade in frames", 0);
  int64_t fade_out = ParamInt(params, "fade out frames", 0);
  const int64_t frames = in.frames;
  if (fade_in < 0 || fade_out < 0 || fade_in + fade_out > frames) {
    return kernel;  // Whole-value path reports the range error.
  }
  const int32_t channels = in.channels;
  const size_t stride = static_cast<size_t>(channels) * sizeof(int16_t);
  kernel.in_bytes = stride;
  kernel.out_bytes = stride;
  kernel.count = static_cast<size_t>(frames);
  kernel.out_shape = in;
  kernel.run = [channels, frames, fade_in, fade_out](
                   const uint8_t* src, uint8_t* dst, size_t first, size_t n) {
    FadeFrames(reinterpret_cast<const int16_t*>(src),
               reinterpret_cast<int16_t*>(dst), first, n, channels, frames,
               fade_in, fade_out);
  };
  return kernel;
}

Result<MediaValue> OpAudioFade(const std::vector<const MediaValue*>& args,
                               const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const AudioBuffer* audio,
                       ArgAs<AudioBuffer>(args, 0, "audio fade"));
  return AudioFadeStage(MediaValue(*audio), params);
}

Result<MediaValue> ImageCropStage(MediaValue value, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(Image * image, StageAs<Image>(&value, "image crop"));
  TBM_RETURN_IF_ERROR(image->Validate());
  if (image->model != ColorModel::kRgb24 &&
      image->model != ColorModel::kGray8) {
    return Status::Unsupported("image crop expects RGB or GRAY input");
  }
  int64_t x = ParamInt(params, "x", 0);
  int64_t y = ParamInt(params, "y", 0);
  int64_t w = ParamInt(params, "width", image->width - x);
  int64_t h = ParamInt(params, "height", image->height - y);
  if (x < 0 || y < 0 || w <= 0 || h <= 0 || x + w > image->width ||
      y + h > image->height) {
    return Status::OutOfRange("crop rectangle outside the image");
  }
  const int bytes_per_pixel = image->model == ColorModel::kRgb24 ? 3 : 1;
  Image out = Image::Zero(static_cast<int32_t>(w), static_cast<int32_t>(h),
                          image->model);
  Bytes pixels_out(out.data.size(), 0);
  for (int64_t row = 0; row < h; ++row) {
    const uint8_t* src = image->data.data() +
                         bytes_per_pixel * ((y + row) * image->width + x);
    uint8_t* dst = pixels_out.data() + bytes_per_pixel * row * w;
    std::copy(src, src + bytes_per_pixel * w, dst);
  }
  out.data = std::move(pixels_out);
  return MediaValue(std::move(out));
}

Result<MediaValue> OpImageCrop(const std::vector<const MediaValue*>& args,
                               const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const Image* image,
                       ArgAs<Image>(args, 0, "image crop"));
  return ImageCropStage(MediaValue(*image), params);
}

Result<MediaValue> ImageScaleStage(MediaValue value, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(Image * image, StageAs<Image>(&value, "image scale"));
  TBM_RETURN_IF_ERROR(image->Validate());
  if (image->model != ColorModel::kRgb24 &&
      image->model != ColorModel::kGray8) {
    return Status::Unsupported("image scale expects RGB or GRAY input");
  }
  int64_t w = ParamInt(params, "width", image->width / 2);
  int64_t h = ParamInt(params, "height", image->height / 2);
  if (w <= 0 || h <= 0 || w > (1 << 20) || h > (1 << 20)) {
    return Status::InvalidArgument("bad target geometry");
  }
  const int bpp = image->model == ColorModel::kRgb24 ? 3 : 1;
  Image out = Image::Zero(static_cast<int32_t>(w), static_cast<int32_t>(h),
                          image->model);
  Bytes pixels_out(out.data.size(), 0);
  // Bilinear resampling. Horizontal sample positions are independent of
  // the output row, so precompute the per-column taps once.
  std::vector<int64_t> x0s(w), x1s(w);
  std::vector<double> fxs(w);
  for (int64_t ox = 0; ox < w; ++ox) {
    double sx = (ox + 0.5) * image->width / w - 0.5;
    x0s[ox] = std::clamp<int64_t>(static_cast<int64_t>(std::floor(sx)), 0,
                                  image->width - 1);
    x1s[ox] = std::min<int64_t>(x0s[ox] + 1, image->width - 1);
    fxs[ox] = std::clamp(sx - x0s[ox], 0.0, 1.0);
  }
  for (int64_t oy = 0; oy < h; ++oy) {
    double sy = (oy + 0.5) * image->height / h - 0.5;
    int64_t y0 = std::clamp<int64_t>(static_cast<int64_t>(std::floor(sy)), 0,
                                     image->height - 1);
    int64_t y1 = std::min<int64_t>(y0 + 1, image->height - 1);
    double fy = std::clamp(sy - y0, 0.0, 1.0);
    const uint8_t* row0 = image->data.data() + bpp * y0 * image->width;
    const uint8_t* row1 = image->data.data() + bpp * y1 * image->width;
    for (int64_t ox = 0; ox < w; ++ox) {
      const int64_t x0 = x0s[ox], x1 = x1s[ox];
      const double fx = fxs[ox];
      for (int c = 0; c < bpp; ++c) {
        double v00 = row0[bpp * x0 + c];
        double v01 = row0[bpp * x1 + c];
        double v10 = row1[bpp * x0 + c];
        double v11 = row1[bpp * x1 + c];
        double v = (1 - fy) * ((1 - fx) * v00 + fx * v01) +
                   fy * ((1 - fx) * v10 + fx * v11);
        pixels_out[bpp * (oy * w + ox) + c] =
            static_cast<uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
      }
    }
  }
  out.data = std::move(pixels_out);
  return MediaValue(std::move(out));
}

Result<MediaValue> OpImageScale(const std::vector<const MediaValue*>& args,
                                const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const Image* image,
                       ArgAs<Image>(args, 0, "image scale"));
  return ImageScaleStage(MediaValue(*image), params);
}

// ---------------------------------------------------------------------------
// Type-changing derivations

Result<MediaValue> OpMidiSynthesis(const std::vector<const MediaValue*>& args,
                                   const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const MidiSequence* midi,
                       ArgAs<MidiSequence>(args, 0, "MIDI synthesis"));
  SynthParams synth;
  synth.sample_rate = ParamInt(params, "sample rate", 44100);
  synth.channels = static_cast<int32_t>(ParamInt(params, "channels", 2));
  synth.tempo_bpm = ParamDouble(params, "tempo bpm", 0.0);
  synth.gain = ParamDouble(params, "gain", 0.5);
  int64_t instrument = ParamInt(params, "instrument", 0);
  synth.default_instrument = static_cast<Instrument>(instrument % 6);
  TBM_ASSIGN_OR_RETURN(AudioBuffer audio, Synthesize(*midi, synth));
  return MediaValue(std::move(audio));
}

Result<MediaValue> OpAnimationRender(
    const std::vector<const MediaValue*>& args, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const AnimationScene* scene,
                       ArgAs<AnimationScene>(args, 0, "animation render"));
  int64_t count = ParamInt(params, "frame count", scene->EndTick() + 1);
  if (count <= 0) return Status::InvalidArgument("bad frame count");
  VideoValue out;
  out.frame_rate = scene->frame_rate();
  TBM_ASSIGN_OR_RETURN(out.frames, scene->RenderClip(count));
  return MediaValue(std::move(out));
}

Result<MediaValue> OpVideoPoster(const std::vector<const MediaValue*>& args,
                                 const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const VideoValue* video,
                       ArgAs<VideoValue>(args, 0, "video poster"));
  int64_t frame = ParamInt(params, "frame", 0);
  if (frame < 0 || frame >= static_cast<int64_t>(video->frames.size())) {
    return Status::OutOfRange("poster frame out of range");
  }
  return MediaValue(video->frames[frame]);
}

Result<MediaValue> OpCaptionBurnIn(const std::vector<const MediaValue*>& args,
                                   const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const VideoValue* video,
                       ArgAs<VideoValue>(args, 0, "caption burn-in"));
  TBM_ASSIGN_OR_RETURN(const TimedStream* caption_stream,
                       ArgAs<TimedStream>(args, 1, "caption burn-in"));
  TBM_ASSIGN_OR_RETURN(CaptionTrack track,
                       CaptionTrack::FromTimedStream(*caption_stream));
  int64_t scale = ParamInt(params, "scale", 2);
  int64_t r = ParamInt(params, "r", 255);
  int64_t g = ParamInt(params, "g", 255);
  int64_t b = ParamInt(params, "b", 255);

  TimeSystem video_time{video->frame_rate};
  VideoValue out;
  out.frame_rate = video->frame_rate;
  out.frames.reserve(video->frames.size());
  for (size_t i = 0; i < video->frames.size(); ++i) {
    Image frame = video->frames[i];
    int64_t caption_tick = video_time.ConvertTo(
        track.time_system(), static_cast<int64_t>(i), Rounding::kFloor);
    auto caption = track.At(caption_tick);
    if (caption.ok()) {
      int32_t width = font5x7::TextWidth((*caption)->text,
                                         static_cast<int>(scale));
      int32_t x = (frame.width - width) / 2;
      int32_t y = frame.height - font5x7::TextHeight(static_cast<int>(scale)) -
                  4 * static_cast<int32_t>(scale);
      TBM_RETURN_IF_ERROR(font5x7::DrawText(
          &frame, (*caption)->text, x, y, static_cast<uint8_t>(r),
          static_cast<uint8_t>(g), static_cast<uint8_t>(b),
          static_cast<int>(scale)));
    }
    out.frames.push_back(std::move(frame));
  }
  return MediaValue(std::move(out));
}

// ---------------------------------------------------------------------------
// Generic timing derivations over timed streams

Result<MediaValue> OpTemporalTranslate(
    const std::vector<const MediaValue*>& args, const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const TimedStream* stream,
                       ArgAs<TimedStream>(args, 0, "temporal translate"));
  int64_t offset = ParamInt(params, "offset", 0);
  TimedStream out(stream->descriptor(), stream->time_system());
  for (const StreamElement& e : *stream) {
    StreamElement shifted = e;
    shifted.start += offset;
    if (shifted.start < 0) {
      return Status::OutOfRange("translate would move starts below zero");
    }
    TBM_RETURN_IF_ERROR(out.Append(std::move(shifted)));
  }
  return MediaValue(std::move(out));
}

Result<MediaValue> OpTemporalScale(const std::vector<const MediaValue*>& args,
                                   const AttrMap& params) {
  TBM_ASSIGN_OR_RETURN(const TimedStream* stream,
                       ArgAs<TimedStream>(args, 0, "temporal scale"));
  int64_t num = ParamInt(params, "scale num", 1);
  int64_t den = ParamInt(params, "scale den", 1);
  if (num <= 0 || den <= 0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  Rational factor(num, den);
  TimedStream out(stream->descriptor(), stream->time_system());
  for (const StreamElement& e : *stream) {
    StreamElement scaled = e;
    scaled.start = RescaleTicks(e.start, factor, Rounding::kNearest);
    scaled.duration = RescaleTicks(e.duration, factor, Rounding::kNearest);
    TBM_RETURN_IF_ERROR(out.Append(std::move(scaled)));
  }
  return MediaValue(std::move(out));
}

}  // namespace

Status DerivationRegistry::Register(DerivationOp op) {
  if (ops_.count(op.name) > 0) {
    return Status::AlreadyExists("derivation \"" + op.name +
                                 "\" already registered");
  }
  std::string name = op.name;
  ops_.emplace(std::move(name), std::move(op));
  return Status::OK();
}

Result<const DerivationOp*> DerivationRegistry::Find(
    const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("unknown derivation \"" + name + "\"");
  }
  return &it->second;
}

std::vector<std::string> DerivationRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, op] : ops_) names.push_back(name);
  return names;
}

Result<MediaValue> DerivationRegistry::Apply(
    const std::string& name, const std::vector<const MediaValue*>& args,
    const AttrMap& params) const {
  TBM_ASSIGN_OR_RETURN(const DerivationOp* op, Find(name));
  return ApplyOp(*op, args, params);
}

Result<MediaValue> DerivationRegistry::ApplyOp(
    const DerivationOp& op, const std::vector<const MediaValue*>& args,
    const AttrMap& params) const {
  if (args.size() != op.arg_kinds.size()) {
    return Status::InvalidArgument(
        "derivation \"" + op.name + "\" takes " +
        std::to_string(op.arg_kinds.size()) + " argument(s), got " +
        std::to_string(args.size()));
  }
  // The paper (§4.2): "The types of media objects participating in
  // derivations are usually constrained." Kind checks enforce exactly
  // the Table 1 signatures; generic timing derivations accept timed
  // streams of any kind.
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == nullptr) {
      return Status::InvalidArgument("null argument " + std::to_string(i));
    }
    if (op.stream_generic) {
      if (!std::holds_alternative<TimedStream>(*args[i])) {
        return Status::InvalidArgument(
            "generic timing derivation \"" + op.name +
            "\" requires a timed-stream argument");
      }
      continue;
    }
    MediaKind kind = KindOfValue(*args[i]);
    if (kind != op.arg_kinds[i]) {
      return Status::InvalidArgument(
          "derivation \"" + op.name + "\" argument " + std::to_string(i) +
          " must be " + std::string(MediaKindToString(op.arg_kinds[i])) +
          ", got " + std::string(MediaKindToString(kind)));
    }
  }
  return op.fn(args, params);
}

const DerivationRegistry& DerivationRegistry::Builtin() {
  static const DerivationRegistry* kRegistry = [] {
    auto* reg = new DerivationRegistry();
    auto add = [reg](std::string name, std::vector<MediaKind> args,
                     MediaKind result, DerivationCategory category,
                     std::string description, DerivationFn fn) {
      (void)reg->Register(DerivationOp{std::move(name), std::move(args),
                                       result, category,
                                       std::move(description), std::move(fn)});
    };
    // Marks a unary content op as fusable: the plan compiler may place
    // it inside a fused stage via its whole-value stage form and
    // (optionally) run it inside a fused element loop.
    auto set_fused = [reg](const std::string& name, StageFn stage,
                           ElementKernelFn element) {
      DerivationOp& op = reg->ops_.at(name);
      op.stage_fn = std::move(stage);
      op.element_fn = std::move(element);
    };
    using MK = MediaKind;
    using DC = DerivationCategory;
    add("color separation", {MK::kImage}, MK::kImage, DC::kContent,
        "RGB to CMYK with separation-table parameters", OpColorSeparation);
    add("image filter", {MK::kImage}, MK::kImage, DC::kContent,
        "digital filters: invert, threshold, box blur", OpImageFilter);
    add("image reencode", {MK::kImage}, MK::kImage, DC::kContent,
        "change compression parameters (TJPEG round trip)", OpImageReencode);
    add("audio normalization", {MK::kAudio}, MK::kAudio, DC::kContent,
        "scale to a target peak over an optional span", OpAudioNormalize);
    add("audio gain", {MK::kAudio}, MK::kAudio, DC::kContent,
        "constant gain", OpAudioGain);
    add("audio mix", {MK::kAudio, MK::kAudio}, MK::kAudio, DC::kContent,
        "sum two sequences with per-input gain and offset", OpAudioMix);
    add("audio cut", {MK::kAudio}, MK::kAudio, DC::kTiming,
        "select a contiguous sample span", OpAudioCut);
    add("audio concat", {MK::kAudio, MK::kAudio}, MK::kAudio, DC::kTiming,
        "concatenate two sequences", OpAudioConcat);
    add("audio resample", {MK::kAudio}, MK::kAudio, DC::kType,
        "change the sampling rate (encoding change)", OpAudioResample);
    add("video edit", {MK::kVideo}, MK::kVideo, DC::kTiming,
        "select and reorder frame spans via an edit list", OpVideoEdit);
    add("video concat", {MK::kVideo, MK::kVideo}, MK::kVideo, DC::kTiming,
        "concatenate two sequences", OpVideoConcat);
    add("video transition", {MK::kVideo, MK::kVideo}, MK::kVideo, DC::kContent,
        "fade or wipe between two sequences", OpVideoTransition);
    add("chroma key", {MK::kVideo, MK::kVideo}, MK::kVideo, DC::kContent,
        "replace keyed foreground pixels with a background sequence",
        OpChromaKey);
    add("video reverse", {MK::kVideo}, MK::kVideo, DC::kTiming,
        "reverse frame order (intraframe media reorder freely)",
        OpVideoReverse);
    add("video speed", {MK::kVideo}, MK::kVideo, DC::kTiming,
        "variable-rate playback by dropping or repeating frames",
        OpVideoSpeed);
    add("audio fade", {MK::kAudio}, MK::kAudio, DC::kContent,
        "linear fade-in/fade-out envelopes", OpAudioFade);
    add("image crop", {MK::kImage}, MK::kImage, DC::kContent,
        "select a rectangular region", OpImageCrop);
    add("image scale", {MK::kImage}, MK::kImage, DC::kContent,
        "bilinear resampling to a new geometry", OpImageScale);
    add("MIDI synthesis", {MK::kMusic}, MK::kAudio, DC::kType,
        "render music events to PCM via the wavetable synthesizer",
        OpMidiSynthesis);
    add("animation render", {MK::kAnimation}, MK::kVideo, DC::kType,
        "rasterize an animation scene to video frames", OpAnimationRender);
    add("video poster", {MK::kVideo}, MK::kImage, DC::kType,
        "extract one frame as a still image", OpVideoPoster);
    add("caption burn-in", {MK::kVideo, MK::kText}, MK::kVideo, DC::kContent,
        "rasterize a caption track onto video frames", OpCaptionBurnIn);
    set_fused("color separation", ColorSeparationStage, ColorSeparationKernel);
    set_fused("image filter", ImageFilterStage, ImageFilterKernel);
    set_fused("image reencode", ImageReencodeStage, nullptr);
    set_fused("image crop", ImageCropStage, nullptr);
    set_fused("image scale", ImageScaleStage, nullptr);
    set_fused("audio normalization", AudioNormalizeStage, nullptr);
    set_fused("audio gain", AudioGainStage, AudioGainKernel);
    set_fused("audio fade", AudioFadeStage, AudioFadeKernel);
    set_fused("audio resample", AudioResampleStage, nullptr);
    auto add_generic = [reg](std::string name, std::string description,
                             DerivationFn fn) {
      (void)reg->Register(DerivationOp{
          std::move(name), {MediaKind::kVideo}, MediaKind::kVideo,
          DerivationCategory::kTiming, std::move(description), std::move(fn),
          /*stream_generic=*/true});
    };
    add_generic("temporal translate",
                "uniformly increment element start times (any timed stream)",
                OpTemporalTranslate);
    add_generic("temporal scale",
                "uniformly scale element start times and durations "
                "(any timed stream)",
                OpTemporalScale);
    return reg;
  }();
  return *kRegistry;
}

}  // namespace tbm

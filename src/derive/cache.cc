#include "derive/cache.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace tbm {

namespace {

/// Process-wide cache metrics, aggregated across every ExpansionCache
/// (per-engine breakdowns stay available via ExpansionCache::stats()).
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* insertions;
  obs::Counter* invalidations;
  obs::Gauge* bytes;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return CacheMetrics{registry.counter("derive.cache.hits"),
                          registry.counter("derive.cache.misses"),
                          registry.counter("derive.cache.evictions"),
                          registry.counter("derive.cache.insertions"),
                          registry.counter("derive.cache.invalidations"),
                          registry.gauge("derive.cache.bytes")};
    }();
    return metrics;
  }
};

}  // namespace

std::string CacheStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "hits %llu, misses %llu, evictions %llu, insertions %llu, "
                "oversize %llu, invalidations %llu, cached %llu/%llu bytes "
                "in %llu entries",
                (unsigned long long)hits, (unsigned long long)misses,
                (unsigned long long)evictions, (unsigned long long)insertions,
                (unsigned long long)oversize_rejects,
                (unsigned long long)invalidations,
                (unsigned long long)bytes_cached,
                (unsigned long long)budget_bytes, (unsigned long long)entries);
  return buf;
}

ExpansionCache::ExpansionCache(uint64_t budget_bytes, int shards)
    : budget_(budget_bytes),
      shard_count_(std::max(shards, 1)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  uint64_t slice = budget_ / shard_count_;
  uint64_t remainder = budget_ % shard_count_;
  for (int i = 0; i < shard_count_; ++i) {
    shards_[i].budget = slice + (static_cast<uint64_t>(i) < remainder ? 1 : 0);
  }
}

ExpansionCache::~ExpansionCache() {
  // Release this cache's share of the global occupancy gauge
  // (engines — and their caches — are routinely short-lived, e.g. one
  // per MediaDatabase::Materialize call).
  for (int i = 0; i < shard_count_; ++i) {
    CacheMetrics::Get().bytes->Add(-static_cast<int64_t>(shards_[i].bytes));
  }
}

ExpansionCache::Shard& ExpansionCache::ShardFor(NodeId id) {
  // Node ids are dense and sequential, so modulo spreads a DAG's nodes
  // evenly; mix in a shift so chains of adjacent ids don't all land in
  // lockstep order.
  uint64_t h = static_cast<uint64_t>(id);
  h ^= h >> 4;
  return shards_[h % static_cast<uint64_t>(shard_count_)];
}

ValueRef ExpansionCache::Lookup(NodeId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    ++shard.misses;
    CacheMetrics::Get().misses->Add();
    return nullptr;
  }
  ++shard.hits;
  CacheMetrics::Get().hits->Add();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ExpansionCache::MakeRoom(Shard& shard, uint64_t incoming) {
  while (!shard.lru.empty() && shard.bytes + incoming > shard.budget) {
    // Weigh the few least-recently-used entries and evict the one whose
    // recomputation is cheapest per byte freed.
    auto victim = std::prev(shard.lru.end());
    double victim_density =
        victim->cost_seconds / static_cast<double>(std::max<uint64_t>(
                                   victim->bytes, 1));
    auto candidate = victim;
    for (int i = 1; i < kEvictionSample && candidate != shard.lru.begin();
         ++i) {
      --candidate;
      double density = candidate->cost_seconds /
                       static_cast<double>(std::max<uint64_t>(
                           candidate->bytes, 1));
      if (density < victim_density) {
        victim = candidate;
        victim_density = density;
      }
    }
    shard.bytes -= victim->bytes;
    CacheMetrics::Get().bytes->Add(-static_cast<int64_t>(victim->bytes));
    shard.index.erase(victim->id);
    shard.lru.erase(victim);
    ++shard.evictions;
    CacheMetrics::Get().evictions->Add();
  }
}

void ExpansionCache::Insert(NodeId id, ValueRef value, uint64_t bytes,
                            double cost_seconds) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    CacheMetrics::Get().bytes->Add(-static_cast<int64_t>(it->second->bytes));
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  if (bytes > shard.budget) {
    ++shard.oversize_rejects;
    return;  // Caching it would break the budget invariant.
  }
  MakeRoom(shard, bytes);
  shard.lru.push_front(Entry{id, std::move(value), bytes, cost_seconds});
  shard.index.emplace(id, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
  CacheMetrics::Get().insertions->Add();
  CacheMetrics::Get().bytes->Add(static_cast<int64_t>(bytes));
}

void ExpansionCache::Erase(NodeId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  shard.bytes -= it->second->bytes;
  CacheMetrics::Get().bytes->Add(-static_cast<int64_t>(it->second->bytes));
  shard.lru.erase(it->second);
  shard.index.erase(it);
  ++shard.invalidations;
  CacheMetrics::Get().invalidations->Add();
}

void ExpansionCache::Clear() {
  for (int i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.invalidations += shard.lru.size();
    CacheMetrics::Get().invalidations->Add(shard.lru.size());
    CacheMetrics::Get().bytes->Add(-static_cast<int64_t>(shard.bytes));
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

CacheStats ExpansionCache::stats() const {
  CacheStats total;
  total.budget_bytes = budget_;
  for (int i = 0; i < shard_count_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.insertions += shard.insertions;
    total.oversize_rejects += shard.oversize_rejects;
    total.invalidations += shard.invalidations;
    total.bytes_cached += shard.bytes;
    total.entries += shard.lru.size();
  }
  return total;
}

}  // namespace tbm

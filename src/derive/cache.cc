#include "derive/cache.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace tbm {

namespace {

/// Process-wide cache metrics, aggregated across every ExpansionCache
/// (per-engine breakdowns stay available via ExpansionCache::stats()).
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* insertions;
  obs::Counter* invalidations;
  obs::Gauge* bytes;
  obs::Gauge* logical;
  obs::Gauge* resident;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      auto& registry = obs::Registry::Global();
      return CacheMetrics{registry.counter("derive.cache.hits"),
                          registry.counter("derive.cache.misses"),
                          registry.counter("derive.cache.evictions"),
                          registry.counter("derive.cache.insertions"),
                          registry.counter("derive.cache.invalidations"),
                          registry.gauge("derive.cache.bytes"),
                          registry.gauge("derive.cache.logical_bytes"),
                          registry.gauge("derive.cache.resident_bytes")};
    }();
    return metrics;
  }
};

}  // namespace

std::string CacheStats::ToString() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "hits %llu, misses %llu, evictions %llu, insertions %llu, "
                "oversize %llu, invalidations %llu, cached %llu/%llu bytes "
                "in %llu entries (logical %llu, resident %llu)",
                (unsigned long long)hits, (unsigned long long)misses,
                (unsigned long long)evictions, (unsigned long long)insertions,
                (unsigned long long)oversize_rejects,
                (unsigned long long)invalidations,
                (unsigned long long)bytes_cached,
                (unsigned long long)budget_bytes, (unsigned long long)entries,
                (unsigned long long)logical_bytes,
                (unsigned long long)resident_bytes);
  return buf;
}

ExpansionCache::ExpansionCache(uint64_t budget_bytes, int shards)
    : budget_(budget_bytes),
      shard_count_(std::max(shards, 1)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {
  uint64_t slice = budget_ / shard_count_;
  uint64_t remainder = budget_ % shard_count_;
  for (int i = 0; i < shard_count_; ++i) {
    shards_[i].budget = slice + (static_cast<uint64_t>(i) < remainder ? 1 : 0);
  }
}

ExpansionCache::~ExpansionCache() {
  // Release this cache's share of the global occupancy gauges
  // (engines — and their caches — are routinely short-lived, e.g. one
  // per MediaDatabase::Materialize call).
  for (int i = 0; i < shard_count_; ++i) {
    CacheMetrics::Get().bytes->Add(-static_cast<int64_t>(shards_[i].bytes));
  }
  std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
  CacheMetrics::Get().logical->Add(-static_cast<int64_t>(logical_total_));
  CacheMetrics::Get().resident->Add(
      -static_cast<int64_t>(ledger_resident_ + private_total_));
}

ExpansionCache::Shard& ExpansionCache::ShardFor(NodeId id) {
  // Node ids are dense and sequential, so modulo spreads a DAG's nodes
  // evenly; mix in a shift so chains of adjacent ids don't all land in
  // lockstep order.
  uint64_t h = static_cast<uint64_t>(id);
  h ^= h >> 4;
  return shards_[h % static_cast<uint64_t>(shard_count_)];
}

ValueRef ExpansionCache::Lookup(NodeId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    ++shard.misses;
    CacheMetrics::Get().misses->Add();
    return nullptr;
  }
  ++shard.hits;
  CacheMetrics::Get().hits->Add();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

uint64_t ExpansionCache::ChargeOfLocked(const Entry& entry) const {
  uint64_t charge = entry.private_bytes;
  for (const auto& [buffer_id, size] : entry.buffers) {
    if (ledger_.find(buffer_id) == ledger_.end()) charge += size;
  }
  return charge;
}

void ExpansionCache::PinBuffersLocked(const Entry& entry) {
  for (const auto& [buffer_id, size] : entry.buffers) {
    auto [it, inserted] = ledger_.try_emplace(buffer_id, BufferUse{size, 0});
    if (inserted) ledger_resident_ += size;
    ++it->second.refs;
  }
}

void ExpansionCache::ReleaseEntry(Shard& shard, const Entry& entry) {
  // Subtract exactly what the entry paid: never more, so shard byte
  // counters cannot underflow even when a shared buffer's original
  // payer was evicted before its sharers. (In that case the freed
  // bytes are under-reported until the last sharer goes — a bounded,
  // conservative error in the safe direction for the budget.)
  shard.bytes -= entry.charge;
  CacheMetrics::Get().bytes->Add(-static_cast<int64_t>(entry.charge));
  std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
  uint64_t resident_before = ledger_resident_ + private_total_;
  for (const auto& [buffer_id, size] : entry.buffers) {
    auto it = ledger_.find(buffer_id);
    if (it == ledger_.end()) continue;
    if (--it->second.refs == 0) {
      ledger_resident_ -= it->second.size;
      ledger_.erase(it);
    }
  }
  private_total_ -= entry.private_bytes;
  logical_total_ -= entry.bytes;
  CacheMetrics::Get().logical->Add(-static_cast<int64_t>(entry.bytes));
  CacheMetrics::Get().resident->Add(
      static_cast<int64_t>(ledger_resident_ + private_total_) -
      static_cast<int64_t>(resident_before));
}

void ExpansionCache::Insert(NodeId id, ValueRef value, uint64_t bytes,
                            double cost_seconds) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    ReleaseEntry(shard, *it->second);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }

  // What would this value actually add to memory? Buffers already
  // pinned by a live entry (typically the source a timing-only
  // derivation sliced) are free; only unpinned buffers plus the
  // value's non-buffer ("private") bytes are charged.
  Entry entry;
  entry.id = id;
  entry.bytes = bytes;
  entry.cost_seconds = cost_seconds;
  BufferAudit audit = AuditBuffers(*value);
  entry.private_bytes =
      bytes > audit.sliced_bytes ? bytes - audit.sliced_bytes : 0;
  entry.buffers.assign(audit.buffers.begin(), audit.buffers.end());
  entry.value = std::move(value);

  uint64_t charge;
  {
    std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
    charge = ChargeOfLocked(entry);
  }
  if (charge > shard.budget) {
    ++shard.oversize_rejects;
    return;  // Caching it would break the budget invariant.
  }
  while (!shard.lru.empty() && shard.bytes + charge > shard.budget) {
    // Weigh the few least-recently-used entries and evict the one whose
    // recomputation is cheapest per byte freed.
    auto victim = std::prev(shard.lru.end());
    double victim_density =
        victim->cost_seconds /
        static_cast<double>(std::max<uint64_t>(victim->charge, 1));
    auto candidate = victim;
    for (int i = 1; i < kEvictionSample && candidate != shard.lru.begin();
         ++i) {
      --candidate;
      double density = candidate->cost_seconds /
                       static_cast<double>(
                           std::max<uint64_t>(candidate->charge, 1));
      if (density < victim_density) {
        victim = candidate;
        victim_density = density;
      }
    }
    ReleaseEntry(shard, *victim);
    shard.index.erase(victim->id);
    shard.lru.erase(victim);
    ++shard.evictions;
    CacheMetrics::Get().evictions->Add();
    // An eviction can unpin a buffer this value shares, in which case
    // the incoming entry now has to pay for it — recompute.
    std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
    charge = ChargeOfLocked(entry);
  }
  if (shard.bytes + charge > shard.budget) {
    // Evicting everything still doesn't make room (possible only when
    // evictions unpinned buffers this value must now pay for).
    ++shard.oversize_rejects;
    return;
  }

  entry.charge = charge;
  {
    std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
    uint64_t resident_before = ledger_resident_ + private_total_;
    PinBuffersLocked(entry);
    private_total_ += entry.private_bytes;
    logical_total_ += entry.bytes;
    CacheMetrics::Get().logical->Add(static_cast<int64_t>(entry.bytes));
    CacheMetrics::Get().resident->Add(
        static_cast<int64_t>(ledger_resident_ + private_total_) -
        static_cast<int64_t>(resident_before));
  }
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(id, shard.lru.begin());
  shard.bytes += charge;
  ++shard.insertions;
  CacheMetrics::Get().insertions->Add();
  CacheMetrics::Get().bytes->Add(static_cast<int64_t>(charge));
}

void ExpansionCache::Erase(NodeId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  ReleaseEntry(shard, *it->second);
  shard.lru.erase(it->second);
  shard.index.erase(it);
  ++shard.invalidations;
  CacheMetrics::Get().invalidations->Add();
}

void ExpansionCache::Clear() {
  for (int i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.invalidations += shard.lru.size();
    CacheMetrics::Get().invalidations->Add(shard.lru.size());
    for (const Entry& entry : shard.lru) ReleaseEntry(shard, entry);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

CacheStats ExpansionCache::stats() const {
  CacheStats total;
  total.budget_bytes = budget_;
  for (int i = 0; i < shard_count_; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.insertions += shard.insertions;
    total.oversize_rejects += shard.oversize_rejects;
    total.invalidations += shard.invalidations;
    total.bytes_cached += shard.bytes;
    total.entries += shard.lru.size();
  }
  std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
  total.logical_bytes = logical_total_;
  total.resident_bytes = ledger_resident_ + private_total_;
  return total;
}

}  // namespace tbm

#ifndef TBM_DERIVE_OPERATORS_H_
#define TBM_DERIVE_OPERATORS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "derive/value.h"
#include "media/attr.h"

namespace tbm {

/// The paper's derivation taxonomy (§4.2): a derivation changes a media
/// object's content, its placement in time, or its media type.
enum class DerivationCategory : uint8_t {
  kContent = 0,
  kTiming = 1,
  kType = 2,
};

std::string_view DerivationCategoryToString(DerivationCategory category);

/// Implementation of one derivation D: a mapping D(O, P_D) → O₁
/// (Def. 6) from argument values and parameters to a derived value.
using DerivationFn = std::function<Result<MediaValue>(
    const std::vector<const MediaValue*>& args, const AttrMap& params)>;

/// Registry entry: signature and category metadata (the columns of
/// Table 1) plus the evaluator.
struct DerivationOp {
  std::string name;
  std::vector<MediaKind> arg_kinds;
  MediaKind result_kind;
  DerivationCategory category;
  std::string description;
  DerivationFn fn;
  /// Generic timing derivations (paper: "derivations involving changes
  /// in timing are generic in the sense that they apply to all
  /// time-based media"): when true, the single argument may be a timed
  /// stream of any media kind and the result has the same kind.
  bool stream_generic = false;
};

/// Registry of derivation operators. `Builtin()` carries every
/// derivation the paper names plus the generic timing derivations:
///
/// | name                 | args          | result | category |
/// |----------------------|---------------|--------|----------|
/// | color separation     | image         | image  | content  |
/// | image filter         | image         | image  | content  |
/// | image reencode       | image         | image  | content  |
/// | audio normalization  | audio         | audio  | content  |
/// | audio gain           | audio         | audio  | content  |
/// | audio mix            | audio, audio  | audio  | content  |
/// | audio cut            | audio         | audio  | timing   |
/// | audio concat         | audio, audio  | audio  | timing   |
/// | audio resample       | audio         | audio  | type     |
/// | video edit           | video         | video  | timing   |
/// | video concat         | video, video  | video  | timing   |
/// | video transition     | video, video  | video  | content  |
/// | chroma key           | video, video  | video  | content  |
/// | MIDI synthesis       | music         | audio  | type     |
/// | animation render     | animation     | video  | type     |
/// | temporal translate   | any stream    | same   | timing   |
/// | temporal scale       | any stream    | same   | timing   |
class DerivationRegistry {
 public:
  Status Register(DerivationOp op);
  Result<const DerivationOp*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Applies an operator after checking arity and argument kinds.
  Result<MediaValue> Apply(const std::string& name,
                           const std::vector<const MediaValue*>& args,
                           const AttrMap& params) const;

  static const DerivationRegistry& Builtin();

 private:
  std::map<std::string, DerivationOp> ops_;
};

}  // namespace tbm

#endif  // TBM_DERIVE_OPERATORS_H_

#ifndef TBM_DERIVE_OPERATORS_H_
#define TBM_DERIVE_OPERATORS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "derive/value.h"
#include "media/attr.h"

namespace tbm {

/// The paper's derivation taxonomy (§4.2): a derivation changes a media
/// object's content, its placement in time, or its media type.
enum class DerivationCategory : uint8_t {
  kContent = 0,
  kTiming = 1,
  kType = 2,
};

std::string_view DerivationCategoryToString(DerivationCategory category);

/// Implementation of one derivation D: a mapping D(O, P_D) → O₁
/// (Def. 6) from argument values and parameters to a derived value.
using DerivationFn = std::function<Result<MediaValue>(
    const std::vector<const MediaValue*>& args, const AttrMap& params)>;

/// Whole-value form of a unary derivation for the plan compiler: takes
/// the single argument by value (so an exclusively owned payload may be
/// transformed in place) and returns the derived value. Must compute
/// exactly what the op's DerivationFn computes.
using StageFn =
    std::function<Result<MediaValue>(MediaValue value, const AttrMap& params)>;

/// Shape of a media value: enough metadata to size, chain and validate
/// per-element kernels without materializing the value itself. Only
/// images and audio have element shapes today.
struct ElementShape {
  MediaKind kind = MediaKind::kImage;
  /// Image geometry (valid when kind == kImage).
  int32_t width = 0;
  int32_t height = 0;
  ColorModel model = ColorModel::kGray8;
  /// Audio geometry (valid when kind == kAudio).
  int64_t sample_rate = 0;
  int32_t channels = 0;
  int64_t frames = 0;

  /// Total payload size in bytes for this shape.
  size_t PayloadBytes() const;
};

/// The element shape of a value, or Unsupported for kinds that have no
/// per-element representation (video, MIDI, animation, streams).
Result<ElementShape> ShapeOfValue(const MediaValue& value);

/// A compiled per-element kernel: one derivation specialized to a
/// concrete input shape and parameter set. The plan compiler chains
/// kernels whose element granularity lines up (kernel B consumes
/// exactly the `out_bytes` kernel A produces per element, over the same
/// `count`) and runs whole chains through one tiled loop with no
/// intermediate MediaValue.
///
/// `run(in, out, first, n)` transforms elements `[first, first + n)`;
/// `in`/`out` point at the first element of the tile and `first` is the
/// absolute element index (for index-dependent math such as fades).
/// `in` and `out` may alias only when in_bytes == out_bytes.
///
/// A null `run` means "not element-wise for these params/this shape" —
/// the executor then falls back to the whole-value path, which also
/// surfaces any parameter/shape error with the op's usual message. A
/// factory must return a runnable kernel ONLY when the whole-value path
/// would succeed and must produce bit-identical bytes.
struct ElementKernel {
  size_t in_bytes = 0;   ///< Bytes consumed per element.
  size_t out_bytes = 0;  ///< Bytes produced per element.
  size_t count = 0;      ///< Number of elements.
  ElementShape out_shape;
  std::function<void(const uint8_t* in, uint8_t* out, size_t first, size_t n)>
      run;
};

/// Factory for an op's element kernel given the input shape and params.
using ElementKernelFn = std::function<Result<ElementKernel>(
    const ElementShape& in, const AttrMap& params)>;

/// Registry entry: signature and category metadata (the columns of
/// Table 1) plus the evaluator.
struct DerivationOp {
  std::string name;
  std::vector<MediaKind> arg_kinds;
  MediaKind result_kind;
  DerivationCategory category;
  std::string description;
  DerivationFn fn;
  /// Generic timing derivations (paper: "derivations involving changes
  /// in timing are generic in the sense that they apply to all
  /// time-based media"): when true, the single argument may be a timed
  /// stream of any media kind and the result has the same kind.
  bool stream_generic = false;
  /// Whole-value single-argument form, set for content ops the plan
  /// compiler may place inside a fused stage. Null for multi-argument,
  /// timing-alias and stream-generic ops.
  StageFn stage_fn;
  /// Per-element kernel factory, set for ops that can run inside a
  /// fused element loop (see ElementKernel). Null otherwise.
  ElementKernelFn element_fn;
};

/// Registry of derivation operators. `Builtin()` carries every
/// derivation the paper names plus the generic timing derivations:
///
/// | name                 | args          | result | category |
/// |----------------------|---------------|--------|----------|
/// | color separation     | image         | image  | content  |
/// | image filter         | image         | image  | content  |
/// | image reencode       | image         | image  | content  |
/// | audio normalization  | audio         | audio  | content  |
/// | audio gain           | audio         | audio  | content  |
/// | audio mix            | audio, audio  | audio  | content  |
/// | audio cut            | audio         | audio  | timing   |
/// | audio concat         | audio, audio  | audio  | timing   |
/// | audio resample       | audio         | audio  | type     |
/// | video edit           | video         | video  | timing   |
/// | video concat         | video, video  | video  | timing   |
/// | video transition     | video, video  | video  | content  |
/// | chroma key           | video, video  | video  | content  |
/// | MIDI synthesis       | music         | audio  | type     |
/// | animation render     | animation     | video  | type     |
/// | temporal translate   | any stream    | same   | timing   |
/// | temporal scale       | any stream    | same   | timing   |
///
/// Parameter naming: canonical parameter keys use spaces, matching the
/// paper's prose — e.g. "target peak", "scale num", "under color
/// removal". Every lookup also accepts the underscore alias
/// ("target_peak", "scale_num", "under_color_removal") for callers
/// whose key syntax cannot carry spaces; when both spellings are
/// present the canonical (spaced) key wins.
class DerivationRegistry {
 public:
  Status Register(DerivationOp op);
  Result<const DerivationOp*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Applies an operator after checking arity and argument kinds.
  Result<MediaValue> Apply(const std::string& name,
                           const std::vector<const MediaValue*>& args,
                           const AttrMap& params) const;

  /// Applies an already resolved operator (same checks as Apply).
  Result<MediaValue> ApplyOp(const DerivationOp& op,
                             const std::vector<const MediaValue*>& args,
                             const AttrMap& params) const;

  static const DerivationRegistry& Builtin();

 private:
  std::map<std::string, DerivationOp> ops_;
};

}  // namespace tbm

#endif  // TBM_DERIVE_OPERATORS_H_

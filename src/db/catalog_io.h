#ifndef TBM_DB_CATALOG_IO_H_
#define TBM_DB_CATALOG_IO_H_

/// Binary (de)serialization of catalog entries, shared by the snapshot
/// writer (checkpoint / Save) and the write-ahead log, whose upsert
/// records carry one full entry each. Keeping a single codec means a
/// replayed record and a snapshotted row can never diverge.

#include "base/io.h"
#include "db/database.h"

namespace tbm {

/// Appends one catalog entry to `writer` (self-delimiting).
void SerializeCatalogEntry(const CatalogEntry& entry, BinaryWriter* writer);

/// Reads one catalog entry; Corruption on malformed input.
Result<CatalogEntry> DeserializeCatalogEntry(BinaryReader* reader);

}  // namespace tbm

#endif  // TBM_DB_CATALOG_IO_H_

#include "db/rights.h"

#include "base/macros.h"

namespace tbm {

std::string_view MediaOperationToString(MediaOperation op) {
  switch (op) {
    case MediaOperation::kRead: return "read";
    case MediaOperation::kDerive: return "derive";
    case MediaOperation::kCompose: return "compose";
    case MediaOperation::kModify: return "modify";
    case MediaOperation::kDelete: return "delete";
  }
  return "unknown";
}

Status RightsManager::Protect(ObjectId object, const std::string& owner,
                              const std::string& copyright_notice) {
  if (owner.empty()) {
    return Status::InvalidArgument("owner must not be empty");
  }
  if (records_.count(object) > 0) {
    return Status::AlreadyExists("object " + std::to_string(object) +
                                 " already protected");
  }
  RightsRecord record;
  record.owner = owner;
  record.copyright_notice = copyright_notice;
  records_.emplace(object, std::move(record));
  return Status::OK();
}

bool RightsManager::IsProtected(ObjectId object) const {
  return records_.count(object) > 0;
}

Result<const RightsRecord*> RightsManager::Get(ObjectId object) const {
  auto it = records_.find(object);
  if (it == records_.end()) {
    return Status::NotFound("object " + std::to_string(object) +
                            " has no rights record");
  }
  return &it->second;
}

Status RightsManager::Grant(ObjectId object, const std::string& principal,
                            OperationMask operations) {
  auto it = records_.find(object);
  if (it == records_.end()) {
    return Status::NotFound("object " + std::to_string(object) +
                            " has no rights record");
  }
  if (principal.empty()) {
    return Status::InvalidArgument("principal must not be empty");
  }
  it->second.grants[principal] |= operations;
  return Status::OK();
}

Status RightsManager::Revoke(ObjectId object, const std::string& principal) {
  auto it = records_.find(object);
  if (it == records_.end()) {
    return Status::NotFound("object " + std::to_string(object) +
                            " has no rights record");
  }
  if (it->second.grants.erase(principal) == 0) {
    return Status::NotFound("no grant for \"" + principal + "\"");
  }
  return Status::OK();
}

Status RightsManager::Check(ObjectId object, const std::string& principal,
                            MediaOperation op) const {
  auto it = records_.find(object);
  if (it == records_.end()) return Status::OK();  // Unprotected.
  const RightsRecord& record = it->second;
  if (record.owner == principal) return Status::OK();
  OperationMask allowed = 0;
  auto grant = record.grants.find(principal);
  if (grant != record.grants.end()) allowed |= grant->second;
  auto wildcard = record.grants.find("*");
  if (wildcard != record.grants.end()) allowed |= wildcard->second;
  if (allowed & MaskOf(op)) return Status::OK();
  return Status::FailedPrecondition(
      "principal \"" + principal + "\" may not " +
      std::string(MediaOperationToString(op)) + " object " +
      std::to_string(object) + " (owner: " + record.owner + ")");
}

Status RightsManager::TransferOwnership(ObjectId object,
                                        const std::string& new_owner) {
  auto it = records_.find(object);
  if (it == records_.end()) {
    return Status::NotFound("object " + std::to_string(object) +
                            " has no rights record");
  }
  if (new_owner.empty()) {
    return Status::InvalidArgument("owner must not be empty");
  }
  it->second.owner = new_owner;
  return Status::OK();
}

std::string RightsManager::DeriveCopyrightNotice(
    const std::vector<ObjectId>& inputs) const {
  std::string notice;
  for (ObjectId input : inputs) {
    auto it = records_.find(input);
    if (it == records_.end() || it->second.copyright_notice.empty()) {
      continue;
    }
    if (!notice.empty()) notice += "; ";
    notice += "derived from: " + it->second.copyright_notice;
  }
  return notice;
}

void RightsManager::Serialize(BinaryWriter* writer) const {
  writer->WriteVarU64(records_.size());
  for (const auto& [object, record] : records_) {
    writer->WriteU64(object);
    writer->WriteString(record.owner);
    writer->WriteString(record.copyright_notice);
    writer->WriteVarU64(record.grants.size());
    for (const auto& [principal, mask] : record.grants) {
      writer->WriteString(principal);
      writer->WriteU8(mask);
    }
  }
}

Result<RightsManager> RightsManager::Deserialize(BinaryReader* reader) {
  RightsManager manager;
  TBM_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarU64());
  for (uint64_t i = 0; i < count; ++i) {
    TBM_ASSIGN_OR_RETURN(ObjectId object, reader->ReadU64());
    RightsRecord record;
    TBM_ASSIGN_OR_RETURN(record.owner, reader->ReadString());
    TBM_ASSIGN_OR_RETURN(record.copyright_notice, reader->ReadString());
    TBM_ASSIGN_OR_RETURN(uint64_t grant_count, reader->ReadVarU64());
    for (uint64_t g = 0; g < grant_count; ++g) {
      TBM_ASSIGN_OR_RETURN(std::string principal, reader->ReadString());
      TBM_ASSIGN_OR_RETURN(uint8_t mask, reader->ReadU8());
      record.grants.emplace(std::move(principal), mask);
    }
    manager.records_.emplace(object, std::move(record));
  }
  return manager;
}

}  // namespace tbm

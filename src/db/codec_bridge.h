#ifndef TBM_DB_CODEC_BRIDGE_H_
#define TBM_DB_CODEC_BRIDGE_H_

#include <string>

#include "derive/value.h"
#include "interp/interpretation.h"
#include "interp/streaming.h"

namespace tbm {

/// The bridge between stored form and working form of media objects.
///
/// Downward (Figure 5), interpretation turns BLOB bytes into timed
/// streams; DecodeStream turns a timed stream into the typed value
/// derivations operate on (PCM buffers, RGB frame sequences, MIDI
/// sequences, scenes). Upward, StoreValue expands a value back into an
/// encoded BLOB with a permanently associated interpretation — the
/// paper's "expand derived objects to produce actual (i.e.,
/// non-derived) objects".

/// Decodes a materialized timed stream into its typed media value,
/// dispatching on the stream's media type name:
///  - "audio/pcm", "audio/pcm-block" → AudioBuffer
///  - "audio/adpcm"                  → AudioBuffer (blocks decoded)
///  - "video/raw", "video/tjpeg", "video/tmpeg" → VideoValue
///  - "image/raw", "image/tjpeg"     → Image (single-element stream)
///  - "music/midi"                   → MidiSequence
///  - "animation/scene"              → AnimationScene (scene stream)
Result<MediaValue> DecodeStream(const TimedStream& stream);

/// Streaming form of interpretation + DecodeStream: expands the named
/// object element by element over an ElementStream (chunked reads with
/// asynchronous readahead per `options`) and decodes each element as it
/// arrives, so store I/O overlaps decode work instead of completing
/// before it. Per-element codecs (PCM, ADPCM blocks, TJPEG frames)
/// never hold the whole encoded object in memory; TMPEG parses frames
/// incrementally and runs the reference-ordered sequence decode at the
/// end; other types fall back to assembling the stream and calling
/// DecodeStream. If `stats` is non-null it receives the element
/// stream's counters (prefetch hits/stalls, fallback reads).
Result<MediaValue> DecodeStreamed(const BlobStore& store,
                                  const Interpretation& interpretation,
                                  const std::string& name,
                                  const StreamReadOptions& options = {},
                                  ElementStreamStats* stats = nullptr);

/// How StoreValue encodes values.
struct StoreOptions {
  /// Video codec: "tjpeg" (intraframe) or "tmpeg" (interframe) or
  /// "raw".
  std::string video_codec = "tjpeg";
  int video_quality = 50;   ///< Codec quality knob for lossy video.
  int key_interval = 12;    ///< TMPEG key spacing.
  bool bidirectional = false;  ///< TMPEG out-of-order group coding.
  bool motion_compensation = false;  ///< TMPEG block motion search.
  /// Named quality factor recorded on descriptors (informational).
  std::string quality_factor;
};

/// Expands `value` into a fresh BLOB of `store` and returns the
/// interpretation exposing it as object `name`.
Result<Interpretation> StoreValue(BlobStore* store, const MediaValue& value,
                                  const std::string& name,
                                  const StoreOptions& options = {});

}  // namespace tbm

#endif  // TBM_DB_CODEC_BRIDGE_H_
